"""Legacy setuptools shim.

The offline environment this project targets has setuptools but no ``wheel``
package, so ``pip install -e .`` must go through the classic
``setup.py develop`` code path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
