"""Unit tests for the anomaly monitor and the netflow simulator."""

import pytest

from repro.common.points import StreamPoint
from repro.core.disc import DISC
from repro.datasets.netflow import netflow_stream
from repro.monitoring import AnomalyMonitor


def sp(pid, x, y=0.0):
    return StreamPoint(pid, (float(x), float(y)), float(pid))


def blob(start_id, cx, cy=0.0, n=6, gap=0.3):
    return [
        sp(start_id + i, cx + gap * (i % 3), cy + gap * (i // 3))
        for i in range(n)
    ]


class TestAnomalyMonitor:
    def test_confirm_strides_validation(self):
        with pytest.raises(ValueError):
            AnomalyMonitor(DISC(1.0, 3), confirm_strides=0)

    def test_noise_confirmed_after_debounce(self):
        monitor = AnomalyMonitor(DISC(1.0, 3), confirm_strides=2)
        lonely = sp(99, 50.0, 50.0)
        report = monitor.advance(blob(0, 0.0) + [lonely], ())
        assert report.confirmed == []  # streak 1 of 2
        assert monitor.suspicion_of(99) == 1
        report = monitor.advance((), ())
        assert report.confirmed == [99]
        assert 99 in monitor.active_anomalies

    def test_confirm_strides_one_is_immediate(self):
        monitor = AnomalyMonitor(DISC(1.0, 3), confirm_strides=1)
        report = monitor.advance(blob(0, 0.0) + [sp(99, 50.0, 50.0)], ())
        assert report.confirmed == [99]

    def test_cluster_members_never_reported(self):
        monitor = AnomalyMonitor(DISC(1.0, 3), confirm_strides=1)
        report = monitor.advance(blob(0, 0.0), ())
        assert report.confirmed == []
        assert monitor.active_anomalies == frozenset()

    def test_retraction_when_neighbourhood_arrives(self):
        monitor = AnomalyMonitor(DISC(1.0, 3), confirm_strides=1)
        report = monitor.advance(blob(0, 0.0) + [sp(99, 50.0, 50.0)], ())
        assert report.confirmed == [99]
        # Surround the anomaly with a new dense blob: it becomes a cluster
        # member and the report is retracted.
        report = monitor.advance(blob(100, 50.0, 50.0), ())
        assert report.retracted == [99]
        assert 99 not in monitor.active_anomalies

    def test_departed_points_are_forgotten(self):
        monitor = AnomalyMonitor(DISC(1.0, 3), confirm_strides=1)
        lonely = sp(99, 50.0, 50.0)
        monitor.advance(blob(0, 0.0) + [lonely], ())
        assert 99 in monitor.active_anomalies
        monitor.advance((), [lonely])
        assert 99 not in monitor.active_anomalies
        assert monitor.suspicion_of(99) == 0

    def test_no_rereport_while_streak_continues(self):
        monitor = AnomalyMonitor(DISC(1.0, 3), confirm_strides=1)
        first = monitor.advance(blob(0, 0.0) + [sp(99, 50.0, 50.0)], ())
        assert first.confirmed == [99]
        second = monitor.advance((), ())
        assert second.confirmed == []

    def test_stride_counter(self):
        monitor = AnomalyMonitor(DISC(1.0, 3))
        assert monitor.advance([], ()).stride == 0
        assert monitor.advance([], ()).stride == 1


class TestNetflowSim:
    def test_determinism(self):
        assert netflow_stream(200, seed=1) == netflow_stream(200, seed=1)

    def test_anomaly_rate(self):
        points, anomalies = netflow_stream(2000, seed=0, anomaly_rate=0.05)
        assert 0.02 < len(anomalies) / len(points) < 0.09

    def test_anomalies_far_from_profiles(self):
        points, anomalies = netflow_stream(1000, seed=2)
        coords = {p.pid: p.coords for p in points}
        normal = [coords[p.pid] for p in points if p.pid not in anomalies]
        for pid in list(anomalies)[:20]:
            nearest = min(
                sum((a - b) ** 2 for a, b in zip(coords[pid], other))
                for other in normal
            )
            assert nearest > 0.5

    def test_end_to_end_detection_quality(self):
        points, truth = netflow_stream(2500, seed=3)
        from repro.common.config import WindowSpec
        from repro.window.sliding import SlidingWindow

        monitor = AnomalyMonitor(DISC(eps=1.0, tau=6), confirm_strides=2)
        reported: set[int] = set()
        spec = WindowSpec(window=1000, stride=100)
        for delta_in, delta_out in SlidingWindow(spec).slides(points):
            report = monitor.advance(delta_in, delta_out)
            reported |= set(report.confirmed)
            reported -= set(report.retracted)
        true_positives = len(reported & truth)
        precision = true_positives / max(1, len(reported))
        recall = true_positives / max(1, len(truth))
        assert precision > 0.85
        assert recall > 0.8
