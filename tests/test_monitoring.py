"""Unit tests for the anomaly monitor and the netflow simulator."""

import pytest

from repro.common.points import StreamPoint
from repro.core.disc import DISC
from repro.datasets.netflow import netflow_stream
from repro.monitoring import AnomalyMonitor


def sp(pid, x, y=0.0):
    return StreamPoint(pid, (float(x), float(y)), float(pid))


def blob(start_id, cx, cy=0.0, n=6, gap=0.3):
    return [
        sp(start_id + i, cx + gap * (i % 3), cy + gap * (i // 3))
        for i in range(n)
    ]


class TestAnomalyMonitor:
    def test_confirm_strides_validation(self):
        with pytest.raises(ValueError):
            AnomalyMonitor(DISC(1.0, 3), confirm_strides=0)

    def test_noise_confirmed_after_debounce(self):
        monitor = AnomalyMonitor(DISC(1.0, 3), confirm_strides=2)
        lonely = sp(99, 50.0, 50.0)
        report = monitor.advance(blob(0, 0.0) + [lonely], ())
        assert report.confirmed == []  # streak 1 of 2
        assert monitor.suspicion_of(99) == 1
        report = monitor.advance((), ())
        assert report.confirmed == [99]
        assert 99 in monitor.active_anomalies

    def test_confirm_strides_one_is_immediate(self):
        monitor = AnomalyMonitor(DISC(1.0, 3), confirm_strides=1)
        report = monitor.advance(blob(0, 0.0) + [sp(99, 50.0, 50.0)], ())
        assert report.confirmed == [99]

    def test_cluster_members_never_reported(self):
        monitor = AnomalyMonitor(DISC(1.0, 3), confirm_strides=1)
        report = monitor.advance(blob(0, 0.0), ())
        assert report.confirmed == []
        assert monitor.active_anomalies == frozenset()

    def test_retraction_when_neighbourhood_arrives(self):
        monitor = AnomalyMonitor(DISC(1.0, 3), confirm_strides=1)
        report = monitor.advance(blob(0, 0.0) + [sp(99, 50.0, 50.0)], ())
        assert report.confirmed == [99]
        # Surround the anomaly with a new dense blob: it becomes a cluster
        # member and the report is retracted.
        report = monitor.advance(blob(100, 50.0, 50.0), ())
        assert report.retracted == [99]
        assert 99 not in monitor.active_anomalies

    def test_departed_points_are_forgotten(self):
        monitor = AnomalyMonitor(DISC(1.0, 3), confirm_strides=1)
        lonely = sp(99, 50.0, 50.0)
        monitor.advance(blob(0, 0.0) + [lonely], ())
        assert 99 in monitor.active_anomalies
        monitor.advance((), [lonely])
        assert 99 not in monitor.active_anomalies
        assert monitor.suspicion_of(99) == 0

    def test_no_rereport_while_streak_continues(self):
        monitor = AnomalyMonitor(DISC(1.0, 3), confirm_strides=1)
        first = monitor.advance(blob(0, 0.0) + [sp(99, 50.0, 50.0)], ())
        assert first.confirmed == [99]
        second = monitor.advance((), ())
        assert second.confirmed == []

    def test_stride_counter(self):
        monitor = AnomalyMonitor(DISC(1.0, 3))
        assert monitor.advance([], ()).stride == 0
        assert monitor.advance([], ()).stride == 1


class TestNetflowSim:
    def test_determinism(self):
        assert netflow_stream(200, seed=1) == netflow_stream(200, seed=1)

    def test_anomaly_rate(self):
        points, anomalies = netflow_stream(2000, seed=0, anomaly_rate=0.05)
        assert 0.02 < len(anomalies) / len(points) < 0.09

    def test_anomalies_far_from_profiles(self):
        points, anomalies = netflow_stream(1000, seed=2)
        coords = {p.pid: p.coords for p in points}
        normal = [coords[p.pid] for p in points if p.pid not in anomalies]
        for pid in list(anomalies)[:20]:
            nearest = min(
                sum((a - b) ** 2 for a, b in zip(coords[pid], other))
                for other in normal
            )
            assert nearest > 0.5

    def test_end_to_end_detection_quality(self):
        points, truth = netflow_stream(2500, seed=3)
        from repro.common.config import WindowSpec
        from repro.window.sliding import SlidingWindow

        monitor = AnomalyMonitor(DISC(eps=1.0, tau=6), confirm_strides=2)
        reported: set[int] = set()
        spec = WindowSpec(window=1000, stride=100)
        for delta_in, delta_out in SlidingWindow(spec).slides(points):
            report = monitor.advance(delta_in, delta_out)
            reported |= set(report.confirmed)
            reported -= set(report.retracted)
        true_positives = len(reported & truth)
        precision = true_positives / max(1, len(reported))
        recall = true_positives / max(1, len(truth))
        assert precision > 0.85
        assert recall > 0.8


class _FakeSnapshot:
    def __init__(self, categories):
        self.categories = categories


class _ScriptedClusterer:
    """A clusterer whose snapshot is set directly by the test."""

    def __init__(self):
        self.categories = {}

    def advance(self, delta_in, delta_out=()):
        return None

    def snapshot(self):
        return _FakeSnapshot(dict(self.categories))


class TestReportedSetReconciliation:
    """Reported anomalies must not outlive their points (the leak fix).

    A resilient runtime can evict points without them ever appearing in the
    monitor's ``delta_out`` — dead-letter quarantine, an invariant-failure
    rebuild, a checkpoint restore. Pre-fix, such a point stayed in the
    monitor's reported set forever.
    """

    def _confirm(self, monitor, clusterer, pid):
        from repro.common.snapshot import Category

        clusterer.categories = {pid: Category.NOISE}
        monitor.advance((), ())
        report = monitor.advance((), ())
        assert report.confirmed == [pid]
        return monitor

    def test_evicted_anomaly_expires(self):
        clusterer = _ScriptedClusterer()
        monitor = AnomalyMonitor(clusterer, confirm_strides=2)
        self._confirm(monitor, clusterer, 7)
        # The clusterer silently drops the point: no delta_out, no category.
        clusterer.categories = {}
        report = monitor.advance((), ())
        assert report.expired == [7]
        assert 7 not in monitor.active_anomalies
        # And it stays gone on subsequent strides.
        assert monitor.advance((), ()).expired == []

    def test_delta_out_departure_is_not_expired(self):
        clusterer = _ScriptedClusterer()
        monitor = AnomalyMonitor(clusterer, confirm_strides=2)
        self._confirm(monitor, clusterer, 7)
        clusterer.categories = {}
        report = monitor.advance((), [sp(7, 50.0, 50.0)])
        # Departures announced via delta_out are ordinary forgetting, not
        # expiry.
        assert report.expired == []
        assert 7 not in monitor.active_anomalies

    def test_retraction_still_wins_over_expiry(self):
        from repro.common.snapshot import Category

        clusterer = _ScriptedClusterer()
        monitor = AnomalyMonitor(clusterer, confirm_strides=2)
        self._confirm(monitor, clusterer, 7)
        clusterer.categories = {7: Category.CORE}
        report = monitor.advance((), ())
        assert report.retracted == [7]
        assert report.expired == []

    def test_expired_with_real_disc_rebuild_path(self):
        """End-to-end: supervisor rebuild drops points past the monitor."""
        clusterer = _ScriptedClusterer()
        monitor = AnomalyMonitor(clusterer, confirm_strides=1)
        from repro.common.snapshot import Category

        clusterer.categories = {1: Category.NOISE, 2: Category.NOISE}
        report = monitor.advance((), ())
        assert report.confirmed == [1, 2]
        clusterer.categories = {2: Category.NOISE}
        report = monitor.advance((), ())
        assert report.expired == [1]
        assert monitor.active_anomalies == frozenset({2})
