"""Unit tests for k-distance-graph parameter estimation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.points import StreamPoint, make_points
from repro.metrics.kdist import k_distances, suggest_eps, suggest_tau


def grid_points(n_side=8, gap=1.0):
    coords = [
        (x * gap, y * gap) for x in range(n_side) for y in range(n_side)
    ]
    return make_points(coords)


def blob_and_noise(seed=0):
    import random

    rng = random.Random(seed)
    coords = [(rng.gauss(0, 0.3), rng.gauss(0, 0.3)) for _ in range(80)]
    coords += [(rng.uniform(-10, 10), rng.uniform(-10, 10)) for _ in range(20)]
    return make_points(coords)


class TestKDistances:
    def test_sorted_descending(self):
        profile = k_distances(blob_and_noise(), 4)
        assert profile == sorted(profile, reverse=True)

    def test_length(self):
        points = grid_points(5)
        assert len(k_distances(points, 3)) == len(points)

    def test_uniform_grid_value(self):
        # On a unit grid, the 4th nearest neighbour of an interior point is
        # at distance 1 (the four axis neighbours).
        profile = k_distances(grid_points(8), 4)
        assert min(profile) == pytest.approx(1.0)

    def test_k_validation(self):
        with pytest.raises(ConfigurationError):
            k_distances(grid_points(3), 0)

    def test_too_few_points(self):
        with pytest.raises(ConfigurationError):
            k_distances(make_points([(0.0, 0.0)]), 1)


class TestSuggestEps:
    def test_knee_separates_blob_from_noise(self):
        points = blob_and_noise()
        eps = suggest_eps(points, 4)
        # The knee should land between the blob scale (~0.3) and the noise
        # scale (several units).
        assert 0.1 < eps < 5.0

    def test_degenerate_flat_profile(self):
        points = grid_points(6)
        eps = suggest_eps(points, 4)
        assert eps > 0

    def test_suggested_eps_yields_clusters(self):
        from repro.core.disc import DISC

        points = blob_and_noise()
        eps = suggest_eps(points, 4)
        disc = DISC(eps=eps, tau=4)
        disc.advance(points, ())
        assert disc.snapshot().num_clusters >= 1


class TestSuggestTau:
    def test_matches_average_density(self):
        points = grid_points(8)
        # eps = 1.1 covers the 4 axis neighbours + self for interior points.
        tau = suggest_tau(points, 1.1)
        assert 3 <= tau <= 5

    def test_sampling_approximates_full(self):
        points = blob_and_noise()
        full = suggest_tau(points, 0.5)
        sampled = suggest_tau(points, 0.5, sample_every=3)
        assert abs(full - sampled) <= max(2, full // 3)

    def test_eps_validation(self):
        with pytest.raises(ConfigurationError):
            suggest_tau(grid_points(3), 0.0)

    def test_at_least_one(self):
        far = make_points([(0.0, 0.0), (100.0, 100.0)])
        assert suggest_tau(far, 0.5) >= 1
