"""Unit tests for STR bulk loading of the R-tree."""

import random

import pytest

from repro.common.errors import IndexError_
from repro.index.linear import LinearScanIndex
from repro.index.rtree import RTree


def random_points(seed, n, dim=2):
    rng = random.Random(seed)
    return [
        (i, tuple(rng.uniform(0, 10) for _ in range(dim))) for i in range(n)
    ]


class TestBulkLoad:
    def test_empty(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0
        assert tree.ball((0.0, 0.0), 1.0) == []

    @pytest.mark.parametrize("n", [1, 7, 8, 9, 64, 65, 500])
    def test_sizes_and_invariants(self, n):
        tree = RTree.bulk_load(random_points(n, n))
        assert len(tree) == n
        tree.check_invariants()

    @pytest.mark.parametrize("dim", [1, 2, 3, 4])
    def test_search_parity(self, dim):
        points = random_points(3, 400, dim)
        tree = RTree.bulk_load(points)
        oracle = LinearScanIndex()
        for pid, coords in points:
            oracle.insert(pid, coords)
        rng = random.Random(99)
        for _ in range(40):
            center = tuple(rng.uniform(0, 10) for _ in range(dim))
            got = sorted(p for p, _ in tree.ball(center, 1.5))
            want = sorted(p for p, _ in oracle.ball(center, 1.5))
            assert got == want

    def test_duplicate_pid_rejected(self):
        with pytest.raises(IndexError_):
            RTree.bulk_load([(1, (0.0, 0.0)), (1, (1.0, 1.0))])

    def test_dynamic_ops_after_bulk(self):
        points = random_points(5, 300)
        tree = RTree.bulk_load(points)
        for pid, _ in points[:150]:
            tree.delete(pid)
        tree.insert(9999, (5.0, 5.0))
        tree.check_invariants()
        assert 9999 in tree
        assert len(tree) == 151

    def test_epoch_probing_after_bulk(self):
        tree = RTree.bulk_load(random_points(7, 200))
        tick = tree.new_tick()
        first = {p for p, _ in tree.ball_unvisited((5.0, 5.0), 3.0, tick)}
        second = {p for p, _ in tree.ball_unvisited((5.0, 5.0), 3.0, tick)}
        assert first
        assert second == set()

    def test_packs_tighter_than_incremental(self):
        points = random_points(11, 2000)
        bulk = RTree.bulk_load(points)
        grown = RTree()
        for pid, coords in points:
            grown.insert(pid, coords)
        bulk.stats.reset()
        grown.stats.reset()
        rng = random.Random(1)
        for _ in range(50):
            center = (rng.uniform(0, 10), rng.uniform(0, 10))
            bulk.ball(center, 0.5)
            grown.ball(center, 0.5)
        assert bulk.stats.nodes_accessed <= grown.stats.nodes_accessed

    def test_usable_by_disc(self):
        # index_factory returning a pre-packed empty tree is still valid.
        from repro.core.disc import DISC
        from tests.conftest import clustered_stream

        disc = DISC(0.7, 4, index_factory=lambda: RTree.bulk_load([]))
        disc.advance(clustered_stream(1, 100), ())
        assert disc.snapshot().num_clusters >= 1
