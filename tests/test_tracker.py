"""Unit tests for cluster lineage tracking."""

from repro.common.points import StreamPoint
from repro.core.disc import DISC
from repro.core.events import EvolutionKind
from repro.core.tracker import ClusterTracker


def sp(pid, x, y=0.0):
    return StreamPoint(pid, (float(x), float(y)), float(pid))


def chain(start_id, x0, n, gap=0.4):
    return [sp(start_id + i, x0 + i * gap) for i in range(n)]


def observe(tracker, disc, delta_in, delta_out, stride):
    summary = disc.advance(delta_in, delta_out)
    tracker.observe(summary, stride)
    tracker.close_missing(set(disc.snapshot().core_clusters()), stride)
    return summary


class TestLineages:
    def test_birth(self):
        disc = DISC(0.5, 3)
        tracker = ClusterTracker()
        observe(tracker, disc, chain(0, 0.0, 5), (), stride=0)
        assert len(tracker) == 1
        lineage = tracker.alive()[0]
        assert lineage.born_at == 0
        assert (0, EvolutionKind.EMERGE) in lineage.events

    def test_death_by_dissipation(self):
        disc = DISC(0.5, 3)
        tracker = ClusterTracker()
        points = chain(0, 0.0, 5)
        observe(tracker, disc, points, (), stride=0)
        observe(tracker, disc, (), points, stride=1)
        assert tracker.alive() == []
        lineage = tracker.all_lineages()[0]
        assert lineage.died_at == 1

    def test_split_creates_children(self):
        disc = DISC(0.5, 3)
        tracker = ClusterTracker()
        bridge = chain(200, 1.8, 3, gap=0.45)
        window = chain(0, 0.0, 5) + chain(100, 3.0, 5) + bridge
        observe(tracker, disc, window, (), stride=0)
        observe(tracker, disc, (), bridge, stride=1)
        split_parents = [
            lin for lin in tracker.all_lineages() if lin.children
        ]
        assert split_parents
        parent = split_parents[0]
        child = tracker.lineage_of(parent.children[0])
        assert parent.cluster_id in child.parents
        assert child.born_at == 1

    def test_merge_records_parents(self):
        disc = DISC(0.5, 3)
        tracker = ClusterTracker()
        left = chain(0, 0.0, 5)
        right = chain(100, 3.0, 5)
        observe(tracker, disc, left + right, (), stride=0)
        assert len(tracker.alive()) == 2
        observe(tracker, disc, chain(200, 1.8, 3, gap=0.45), (), stride=1)
        alive = tracker.alive()
        assert len(alive) == 1
        dead = [lin for lin in tracker.all_lineages() if not lin.alive]
        assert dead
        assert dead[0].died_at == 1

    def test_expand_recorded_in_events(self):
        disc = DISC(0.5, 3)
        tracker = ClusterTracker()
        observe(tracker, disc, chain(0, 0.0, 5), (), stride=0)
        observe(tracker, disc, chain(100, 2.0, 3), (), stride=1)
        lineage = tracker.alive()[0]
        assert (1, EvolutionKind.EXPAND) in lineage.events

    def test_long_run_consistency(self):
        from tests.conftest import clustered_stream
        from repro.window.sliding import materialize_slides
        from repro.common.config import WindowSpec

        disc = DISC(0.7, 4)
        tracker = ClusterTracker()
        points = clustered_stream(17, 400)
        spec = WindowSpec(window=120, stride=40)
        for stride, (delta_in, delta_out) in enumerate(
            materialize_slides(points, spec)
        ):
            observe(tracker, disc, delta_in, delta_out, stride)
            # Invariant: lineages alive per tracker == live clusters that
            # the tracker has seen (every live cluster id must be tracked
            # and alive).
            live = set(disc.snapshot().core_clusters())
            for cid in live:
                lineage = tracker.lineage_of(cid)
                assert lineage.alive
