"""Failure injection: a rejected stride must leave state untouched."""

import pytest

from repro.common.errors import StreamOrderError
from repro.common.points import StreamPoint
from repro.core.disc import DISC
from repro.index.stats import IndexStats
from tests.conftest import clustered_stream


def sp(pid, x, y=0.0):
    return StreamPoint(pid, (float(x), float(y)), float(pid))


def state_fingerprint(disc):
    snapshot = disc.snapshot()
    return (
        dict(snapshot.labels),
        {pid: cat for pid, cat in snapshot.categories.items()},
        len(disc.index),
        {rec.pid: (rec.n_eps, rec.c_core) for rec in disc.state.live_records()},
    )


class TestAtomicAdvance:
    def setup_disc(self):
        disc = DISC(0.7, 4)
        disc.advance(clustered_stream(1, 100), ())
        return disc

    def test_unknown_delete_leaves_state_intact(self):
        disc = self.setup_disc()
        before = state_fingerprint(disc)
        batch = clustered_stream(2, 10, start_id=1000)
        with pytest.raises(StreamOrderError):
            disc.advance(batch, [sp(99999, 0)])
        assert state_fingerprint(disc) == before
        # The rejected arrivals were not half-applied either.
        assert 1000 not in disc.state.records

    def test_duplicate_insert_leaves_state_intact(self):
        disc = self.setup_disc()
        before = state_fingerprint(disc)
        with pytest.raises(StreamOrderError):
            disc.advance([sp(0, 5.0)], ())  # pid 0 already in the window
        assert state_fingerprint(disc) == before

    def test_double_delete_in_one_stride_rejected(self):
        disc = self.setup_disc()
        before = state_fingerprint(disc)
        victim = sp(0, *disc.state.records[0].coords)
        with pytest.raises(StreamOrderError):
            disc.advance((), [victim, victim])
        assert state_fingerprint(disc) == before

    def test_double_insert_in_one_stride_rejected(self):
        disc = self.setup_disc()
        before = state_fingerprint(disc)
        with pytest.raises(StreamOrderError):
            disc.advance([sp(500, 0), sp(500, 1)], ())
        assert state_fingerprint(disc) == before

    def test_recovery_after_rejection(self):
        disc = self.setup_disc()
        with pytest.raises(StreamOrderError):
            disc.advance((), [sp(424242, 0)])
        # The clusterer keeps working normally afterwards.
        batch = clustered_stream(3, 25, start_id=2000)
        disc.advance(batch, ())
        assert len(disc) == 125


class TestIndexStats:
    def test_reset(self):
        stats = IndexStats(range_searches=5, inserts=2)
        stats.reset()
        assert stats.range_searches == 0
        assert stats.inserts == 0

    def test_snapshot_is_independent(self):
        stats = IndexStats(range_searches=5)
        snap = stats.snapshot()
        stats.range_searches = 10
        assert snap.range_searches == 5

    def test_subtraction(self):
        after = IndexStats(range_searches=10, entries_scanned=100, deletes=4)
        before = IndexStats(range_searches=3, entries_scanned=40, deletes=1)
        diff = after - before
        assert diff.range_searches == 7
        assert diff.entries_scanned == 60
        assert diff.deletes == 3

    def test_shared_stats_across_indexes(self):
        from repro.index.rtree import RTree

        shared = IndexStats()
        a = RTree(stats=shared)
        b = RTree(stats=shared)
        a.insert(1, (0.0, 0.0))
        b.insert(2, (1.0, 1.0))
        a.ball((0.0, 0.0), 1.0)
        b.ball((0.0, 0.0), 1.0)
        assert shared.inserts == 2
        assert shared.range_searches == 2
