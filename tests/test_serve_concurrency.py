"""Readers vs. the writer: copy-on-publish must never expose torn state.

Satellite of the serving subsystem: concurrent reader tasks hammer the query
surface (membership, classification, full snapshots) while the writer task
advances strides. Every view a reader observes must be internally consistent
AND byte-identical to a fresh offline ``api.cluster_stream`` run truncated
at that view's stride — i.e. a reader can see *older* state, but never
*half-advanced* state.
"""

from __future__ import annotations

import asyncio

from repro.api import cluster_stream
from repro.common.config import WindowSpec
from repro.serve import SessionConfig, TenantSession

from .conftest import clustered_stream

EPS, TAU = 0.8, 4
WINDOW, STRIDE = 120, 30
N_POINTS = 450  # 15 exact strides
N_READERS = 8


def expected_history(points):
    """stride index -> offline labels dict (plus the pre-stream empty view)."""
    spec = WindowSpec(window=WINDOW, stride=STRIDE)
    history = {-1: {}}
    for i, (snapshot, _) in enumerate(
        cluster_stream(points, spec, eps=EPS, tau=TAU)
    ):
        history[i] = dict(snapshot.labels)
    return history


async def hammer(session, observations, stop):
    """One reader: grab the current view, interrogate it, record what it saw."""
    while not stop.is_set():
        view = session.view  # the atomic read: one reference load
        labels = dict(view.clustering.labels)
        payload = view.snapshot_payload()

        # Internal consistency of this one view (torn-read detection): the
        # snapshot payload, the core set and the membership answers must all
        # describe the same stride — every query surface stamps the same
        # ``stride`` consistency token, so a client can detect when two
        # answers came from different window states.
        assert payload["stride"] == view.stride
        assert payload["num_points"] == len(payload["categories"])
        assert payload["labels"] == {str(pid): cid for pid, cid in labels.items()}
        assert set(payload["labels"]) <= set(payload["categories"])
        for pid, _coords, core_label in view.cores:
            assert labels.get(pid) == core_label, (
                f"core {pid} labelled {core_label} but snapshot says "
                f"{labels.get(pid)} at stride {view.stride}"
            )
        verdict = view.classify((0.0, 0.0))
        assert verdict["stride"] == view.stride
        if labels:
            probe = next(iter(labels))
            answer = view.membership(probe)
            assert answer["stride"] == view.stride == payload["stride"]
            assert answer["label"] == labels[probe]

        observations.append((view.stride, labels))
        await asyncio.sleep(0)


async def run_stress(points):
    config = SessionConfig(
        eps=EPS, tau=TAU, window=WINDOW, stride=STRIDE, backpressure="block"
    )
    session = TenantSession("stress", config)
    session.start()

    stop = asyncio.Event()
    observations: list[tuple[int, dict]] = []
    readers = [
        asyncio.create_task(hammer(session, observations, stop))
        for _ in range(N_READERS)
    ]

    # Feed in small slices, yielding between them, so readers genuinely
    # interleave with the writer across every stride boundary.
    for i in range(0, len(points), 10):
        await session.offer(points[i : i + 10])
        await asyncio.sleep(0)

    await session.drain(flush_tail=True)
    # Let every reader observe the final stride at least once.
    for _ in range(3):
        await asyncio.sleep(0)
    stop.set()
    await asyncio.gather(*readers)
    await session.close()
    return session, observations


def test_concurrent_readers_never_see_torn_strides():
    points = clustered_stream(31, N_POINTS)
    expected = expected_history(points)

    session, observations = asyncio.run(run_stress(points))

    assert observations, "readers never ran"
    strides_seen = {stride for stride, _ in observations}
    # The readers genuinely raced the writer across stride boundaries...
    assert len(strides_seen) > 3, f"readers only saw strides {strides_seen}"
    assert max(strides_seen) == N_POINTS // STRIDE - 1
    # ...and every single observation matches the offline run at that
    # stride, byte for byte. A half-advanced window could not.
    for stride, labels in observations:
        assert labels == expected[stride], f"torn read at stride {stride}"
    # The session itself ended where the offline run ended.
    assert dict(session.view.clustering.labels) == expected[max(expected)]


def test_queries_are_not_blocked_by_a_busy_writer():
    """Reads complete between strides even while ingestion is saturated."""

    async def scenario():
        points = clustered_stream(32, 300)
        config = SessionConfig(
            eps=EPS, tau=TAU, window=WINDOW, stride=STRIDE, queue_limit=4096
        )
        session = TenantSession("busy", config)
        session.start()
        # Saturate the queue in one go; the writer now has 300 points of
        # work pending.
        await session.offer(points)
        reads = 0
        while session.ingested < len(points):
            view = session.view
            view.classify((0.0, 0.0))
            reads += 1
            await asyncio.sleep(0)
        await session.drain(flush_tail=True)
        await session.close()
        return reads

    reads = asyncio.run(scenario())
    # One read slot per stride boundary (the writer's only yield points).
    assert reads >= 300 // STRIDE - 1
