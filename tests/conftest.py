"""Shared test fixtures and stream-building helpers."""

from __future__ import annotations

import random

import pytest

from repro.common.config import ClusteringParams, WindowSpec
from repro.common.points import StreamPoint


def clustered_stream(
    seed: int,
    n_points: int,
    *,
    dim: int = 2,
    centers=((0.0, 0.0), (3.0, 3.0), (6.0, 0.0), (3.0, -3.0)),
    spread: float = 0.5,
    noise_fraction: float = 0.2,
    start_id: int = 0,
) -> list[StreamPoint]:
    """Deterministic blob-plus-noise stream used across the test suite."""
    rng = random.Random(seed)
    points = []
    for i in range(n_points):
        if rng.random() < noise_fraction:
            coords = tuple(rng.uniform(-2.0, 8.0) for _ in range(dim))
        else:
            center = rng.choice(centers)
            coords = tuple(
                (center[d] if d < len(center) else 0.0) + rng.gauss(0.0, spread)
                for d in range(dim)
            )
        pid = start_id + i
        points.append(StreamPoint(pid, coords, float(pid)))
    return points


def run_windowed(methods, points, spec: WindowSpec, checker=None):
    """Feed ``points`` through ``spec`` into every method in lockstep.

    ``checker(window_points)`` is invoked after every slide with the live
    window contents, letting tests compare the methods stride by stride.
    """
    from repro.window.sliding import SlidingWindow

    window: list[StreamPoint] = []
    for delta_in, delta_out in SlidingWindow(spec).slides(points):
        window.extend(delta_in)
        out_ids = {sp.pid for sp in delta_out}
        window = [sp for sp in window if sp.pid not in out_ids]
        for method in methods:
            method.advance(delta_in, delta_out)
        if checker is not None:
            checker(window)


@pytest.fixture
def params() -> ClusteringParams:
    return ClusteringParams(eps=0.7, tau=4)


@pytest.fixture
def spec() -> WindowSpec:
    return WindowSpec(window=100, stride=25)
