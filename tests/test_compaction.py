"""Tests for cluster-id forest compaction on long streams."""

import random

from repro.common.points import StreamPoint
from repro.core.disc import DISC
from repro.core.state import PointRecord
from repro.metrics.compare import assert_equivalent
from repro.baselines.dbscan import SlidingDBSCAN


def churn_stream(rng, n):
    points = []
    for i in range(n):
        cx = rng.choice([0.0, 3.0])
        points.append(
            StreamPoint(i, (cx + rng.gauss(0, 0.5), rng.gauss(0, 0.5)), float(i))
        )
    return points


class TestCompaction:
    def test_compact_preserves_labels(self):
        rng = random.Random(1)
        disc = DISC(0.6, 4)
        points = churn_stream(rng, 120)
        disc.advance(points, ())
        before = disc.labels()
        size = disc.state.compact_cids()
        after = disc.labels()
        # Same partition, ids resolved to roots.
        groups_before = {}
        for pid, cid in before.items():
            groups_before.setdefault(cid, set()).add(pid)
        groups_after = {}
        for pid, cid in after.items():
            groups_after.setdefault(cid, set()).add(pid)
        assert set(map(frozenset, groups_before.values())) == set(
            map(frozenset, groups_after.values())
        )
        assert size == len(set(after.values()))

    def test_fresh_ids_after_compaction_do_not_collide(self):
        disc = DISC(0.6, 3)
        rng = random.Random(2)
        first = churn_stream(rng, 60)
        disc.advance(first, ())
        disc.state.compact_cids()
        # Add a brand-new far-away cluster: its id must be new, not a reused
        # root of an existing cluster.
        far = [
            StreamPoint(1000 + i, (50.0 + 0.2 * i, 50.0), 0.0) for i in range(5)
        ]
        disc.advance(far, ())
        labels = disc.labels()
        old_ids = {cid for pid, cid in labels.items() if pid < 1000}
        new_ids = {cid for pid, cid in labels.items() if pid >= 1000}
        assert not (old_ids & new_ids)

    def test_forest_stays_bounded_on_long_stream(self):
        rng = random.Random(3)
        disc = DISC(0.6, 4)
        disc.compact_every = 20
        alive: list[StreamPoint] = []
        next_pid = 0
        for _ in range(200):  # 200 strides of churn
            batch = []
            for _ in range(20):
                cx = rng.choice([0.0, 3.0, 6.0])
                batch.append(
                    StreamPoint(
                        next_pid,
                        (cx + rng.gauss(0, 0.5), rng.gauss(0, 0.5)),
                        float(next_pid),
                    )
                )
                next_pid += 1
            out = alive[:20] if len(alive) >= 100 else []
            alive = alive[len(out):] + batch
            disc.advance(batch, out)
        # Without compaction this grows with every emerge/merge/split event
        # (hundreds over 200 strides); with it, it tracks live clusters.
        assert len(disc.state.cids) <= disc.snapshot().num_clusters + 40

    def test_vectorized_remap_matches_object_layout(self):
        """Regression: the one-pass columnar cid remap equals the per-record
        loop — same labels, same forest size, same carried-forward counter."""
        rng_a, rng_b = random.Random(7), random.Random(7)
        pair = []
        for layout, rng in (("columnar", rng_a), ("object", rng_b)):
            disc = DISC(0.6, 4, store=layout)
            disc.advance(churn_stream(rng, 150), ())
            size = disc.state.compact_cids()
            pair.append((disc.labels(), size, disc.state.cids._next_id))
        assert pair[0] == pair[1]

    def test_compact_on_columnar_skips_lingering_rows(self):
        """Compaction must only remap live rows; mid-run it is always called
        between strides, where every resident row is live."""
        rng = random.Random(8)
        disc = DISC(0.6, 4)
        disc.compact_every = 2
        alive: list[StreamPoint] = []
        next_pid = 0
        for _ in range(12):
            batch = churn_stream(rng, 20)
            batch = [
                StreamPoint(next_pid + i, p.coords, float(next_pid + i))
                for i, p in enumerate(batch)
            ]
            next_pid += len(batch)
            out = alive[:20] if len(alive) >= 80 else []
            alive = alive[len(out):] + batch
            disc.advance(batch, out)
        disc.state.store.check_invariants()
        before = disc.labels()
        disc.state.compact_cids()
        assert set(disc.labels()) == set(before)

    def test_point_record_repr_exposes_anchor_and_time(self):
        """Regression for repr drift: anchor/time were missing from the
        object-layout record repr while the columnar view showed them."""
        rec = PointRecord(4, (1.0, 2.0), 7.5)
        rec.anchor = 2
        rec.cid = 9
        text = repr(rec)
        assert "anchor=2" in text
        assert "time=7.5" in text
        assert "cid=9" in text

    def test_exactness_survives_compaction_cycles(self):
        rng = random.Random(4)
        disc = DISC(0.6, 4)
        disc.compact_every = 3  # compact aggressively mid-stream
        reference = SlidingDBSCAN(0.6, 4)
        alive: list[StreamPoint] = []
        next_pid = 0
        for _ in range(25):
            batch = []
            for _ in range(25):
                cx = rng.choice([0.0, 3.0])
                batch.append(
                    StreamPoint(
                        next_pid,
                        (cx + rng.gauss(0, 0.5), rng.gauss(0, 0.5)),
                        float(next_pid),
                    )
                )
                next_pid += 1
            out = alive[:25] if len(alive) >= 100 else []
            alive = alive[len(out):] + batch
            disc.advance(batch, out)
            reference.advance(batch, out)
            coords = {p.pid: p.coords for p in alive}
            assert_equivalent(
                disc.snapshot(), reference.snapshot(), coords, disc.params
            )
