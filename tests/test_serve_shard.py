"""Sharded serving: placement, layout migration, protocol equivalence,
placement stability across router restarts, and worker kill -9 drills.

The contract of ``repro serve --shards N`` is that clients cannot tell it
from ``--shards 0``: same frames, byte-identical answers, same durability
guarantees — plus process-level fault isolation (one worker dying leaves
co-resident shards serving) and self-healing worker supervision mirroring
the per-tenant circuit breaker.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from collections import Counter

import pytest

from repro.api import cluster_stream
from repro.common.config import WindowSpec
from repro.serve import SessionConfig, protocol
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.router import run_router
from repro.serve.server import run_server
from repro.serve.service import ClusterService
from repro.serve.shard import ShardedClusterService, migrate_layout, place

from .conftest import clustered_stream

EPS, TAU = 0.8, 4
WINDOW, STRIDE = 40, 10


def make_config(**overrides) -> SessionConfig:
    base = dict(eps=EPS, tau=TAU, window=WINDOW, stride=STRIDE, checkpoint_every=2)
    base.update(overrides)
    return SessionConfig(**base)


def offline_final_labels(points, config: SessionConfig) -> dict:
    spec = WindowSpec(window=config.window, stride=config.stride)
    last = None
    for snapshot, _ in cluster_stream(points, spec, eps=config.eps, tau=config.tau):
        last = snapshot
    return {str(pid): cid for pid, cid in last.labels.items()}


def pick_tenants(shards: int, per_shard: int = 1) -> list[str]:
    """Tenant names guaranteed to cover every shard of the deployment."""
    chosen: list[str] = []
    filled = {k: 0 for k in range(shards)}
    i = 0
    while any(count < per_shard for count in filled.values()):
        name = f"tenant-{i}"
        i += 1
        home = place(name, shards)
        if filled[home] < per_shard:
            filled[home] += 1
            chosen.append(name)
    return chosen


# ------------------------------------------------------------------ placement


class TestPlacement:
    def test_deterministic_and_in_range(self):
        for shards in (1, 2, 4, 8):
            for i in range(50):
                name = f"tenant-{i}"
                home = place(name, shards)
                assert 0 <= home < shards
                assert home == place(name, shards)

    def test_single_shard_takes_everything(self):
        assert all(place(f"t{i}", 1) == 0 for i in range(25))

    def test_spread_is_roughly_even(self):
        counts = Counter(place(f"tenant-{i}", 4) for i in range(2000))
        assert set(counts) == {0, 1, 2, 3}
        assert min(counts.values()) > 2000 / 4 * 0.5

    def test_growing_the_ring_moves_a_minority(self):
        names = [f"tenant-{i}" for i in range(1000)]
        moved = sum(place(n, 4) != place(n, 5) for n in names)
        # Consistent hashing: ~1/5 of tenants move when a 5th shard joins;
        # naive modulo placement would reshuffle ~4/5 of them.
        assert moved < 1000 * 0.45


class TestMigrateLayout:
    @staticmethod
    def fake_tenant(directory):
        (directory / "ckpt").mkdir(parents=True)
        (directory / "session.json").write_text("{}")

    def test_legacy_tenants_move_into_their_shard(self, tmp_path):
        for name in ("alpha", "beta", "gamma"):
            self.fake_tenant(tmp_path / name)
        moved = migrate_layout(tmp_path, 2)
        assert sorted(t for t, _ in moved) == ["alpha", "beta", "gamma"]
        for name, shard in moved:
            assert shard == place(name, 2)
            new_home = tmp_path / f"shard-{shard}" / name
            assert (new_home / "session.json").exists()
            assert (new_home / "ckpt").is_dir()
            assert not (tmp_path / name).exists()

    def test_reshard_rehomes_mismatched_tenants(self, tmp_path):
        names = ("alpha", "beta", "gamma", "delta")
        for name in names:  # a 1-shard layout: everything under shard-0
            self.fake_tenant(tmp_path / "shard-0" / name)
        moved = migrate_layout(tmp_path, 4)
        assert sorted(t for t, _ in moved) == sorted(
            n for n in names if place(n, 4) != 0
        )
        for name in names:
            home = tmp_path / f"shard-{place(name, 4)}" / name
            assert (home / "session.json").exists()

    def test_migration_is_idempotent(self, tmp_path):
        for name in ("alpha", "beta"):
            self.fake_tenant(tmp_path / name)
        assert migrate_layout(tmp_path, 2)
        assert migrate_layout(tmp_path, 2) == []


class TestShardMetricLabels:
    def test_extra_labels_merge_into_every_series(self, tmp_path):
        from repro.observability.sinks import PrometheusTextfileExporter

        labeled = PrometheusTextfileExporter(
            tmp_path / "l.prom", labels={"shard": "3"}
        ).render()
        assert 'disc_strides_total{shard="3"} 0' in labeled
        assert 'shard="3"' in labeled.splitlines()[2]  # build_info too
        # No labels => byte-identical to the historical output.
        plain = PrometheusTextfileExporter(tmp_path / "p.prom").render()
        assert "disc_strides_total 0" in plain
        assert "shard=" not in plain

    def test_service_metric_labels_reach_the_tenant_textfile(self, tmp_path):
        points = clustered_stream(90, 40)

        async def run():
            service = ClusterService(
                metrics_dir=tmp_path, metric_labels={"shard": "2"}
            )
            session = service.open("m", make_config())
            await session.offer(points)
            await service.drain("m")
            await service.shutdown()

        asyncio.run(run())
        text = (tmp_path / "m.prom").read_text()
        assert 'disc_strides_total{shard="2"}' in text
        assert ',shard="2"}' in text  # merged behind per-series labels too


# ------------------------------------------------- integration test harness


async def _raw_connect(port: int):
    return await asyncio.open_connection(
        "127.0.0.1", port, limit=protocol.MAX_FRAME_BYTES + 1024
    )


async def _raw_request(conn, frame: dict) -> bytes:
    reader, writer = conn
    writer.write(protocol.encode_frame(frame))
    await writer.drain()
    return await reader.readline()


async def _raw_close(conn) -> None:
    conn[1].close()
    try:
        await conn[1].wait_closed()
    except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
        pass


async def _wait_stride(conn, tenant: str, stride: int, timeout: float = 20.0):
    """Poll SNAPSHOT until the tenant's published view reaches ``stride``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = await _raw_request(
            conn, {"op": "SNAPSHOT", "id": "poll", "session": tenant}
        )
        if protocol.decode_frame(line).get("stride") == stride:
            return
        await asyncio.sleep(0.01)
    raise AssertionError(f"{tenant} never reached stride {stride}")


# --------------------------------------------------------------- equivalence


@pytest.mark.chaos
class TestProtocolEquivalence:
    def test_sharded_answers_byte_identical_to_single_process(self, tmp_path):
        """Per stride, per tenant: the raw QUERY and SNAPSHOT reply lines of
        a 2-shard deployment equal the single-process server's, byte for
        byte — the router is invisible at the protocol level."""
        shards = 2
        tenants = pick_tenants(shards)
        n_points = 60
        streams = {
            t: clustered_stream(60 + i, n_points) for i, t in enumerate(tenants)
        }
        config = make_config()

        async def run():
            reference = ClusterService(data_dir=tmp_path / "ref")
            ref_ready, ref_stop = asyncio.Event(), asyncio.Event()
            ref_task = asyncio.create_task(
                run_server(
                    reference, "127.0.0.1", 0, ready=ref_ready, stop=ref_stop
                )
            )
            sharded = ShardedClusterService(shards, data_dir=tmp_path / "data")
            ready, stop = asyncio.Event(), asyncio.Event()
            router_task = asyncio.create_task(
                run_router(sharded, "127.0.0.1", 0, ready=ready, stop=stop)
            )
            await asyncio.gather(ref_ready.wait(), ready.wait())
            try:
                ref = await _raw_connect(reference.port)
                shd = await _raw_connect(sharded.port)
                for t in tenants:
                    frame = {
                        "op": "OPEN",
                        "id": f"open-{t}",
                        "session": t,
                        "config": config.as_dict(),
                        "resume": False,
                    }
                    assert await _raw_request(ref, frame) == await _raw_request(
                        shd, frame
                    )
                for k in range(n_points // STRIDE):
                    for t in tenants:
                        chunk = streams[t][k * STRIDE : (k + 1) * STRIDE]
                        ingest = {
                            "op": "INGEST",
                            "id": f"i-{t}-{k}",
                            "session": t,
                            "points": protocol.encode_points(chunk),
                        }
                        # INGEST replies carry a timing-dependent queue
                        # depth; equivalence is asserted on the reads below.
                        await _raw_request(ref, ingest)
                        await _raw_request(shd, ingest)
                    for t in tenants:
                        await _wait_stride(ref, t, k)
                        await _wait_stride(shd, t, k)
                        chunk = streams[t][k * STRIDE : (k + 1) * STRIDE]
                        for frame in (
                            {"op": "SNAPSHOT", "id": f"s-{t}-{k}", "session": t},
                            {
                                "op": "QUERY",
                                "id": f"qp-{t}-{k}",
                                "session": t,
                                "pid": chunk[0].pid,
                            },
                            {
                                "op": "QUERY",
                                "id": f"qc-{t}-{k}",
                                "session": t,
                                "coords": list(chunk[-1].coords),
                            },
                        ):
                            a = await _raw_request(ref, frame)
                            b = await _raw_request(shd, frame)
                            assert a == b, (
                                f"{t} stride {k}: {frame['op']} diverged\n"
                                f"single: {a!r}\nsharded: {b!r}"
                            )
                await _raw_close(ref)
                await _raw_close(shd)
            finally:
                ref_stop.set()
                stop.set()
                await asyncio.gather(ref_task, router_task)

        asyncio.run(run())


class TestPlacementStability:
    def test_placement_and_data_dirs_survive_router_restart(self, tmp_path):
        shards = 2
        tenants = pick_tenants(shards)
        config = make_config()
        points = clustered_stream(71, 40)

        async def life(*, resume, feed):
            sharded = ShardedClusterService(shards, data_dir=tmp_path / "data")
            ready, stop = asyncio.Event(), asyncio.Event()
            task = asyncio.create_task(
                run_router(
                    sharded, "127.0.0.1", 0, resume=resume, ready=ready, stop=stop
                )
            )
            await ready.wait()
            try:
                client = await ServeClient.connect("127.0.0.1", sharded.port)
                if feed:
                    for t in tenants:
                        await client.open_session(t, config)
                        await client.ingest(t, points)
                        await client.drain(t)  # checkpoint for the resume
                stats = await client.stats()
                await client.close()
                return stats
            finally:
                stop.set()
                await task

        def placement(stats) -> dict:
            return {
                t: entry["shard"]
                for entry in stats["shard_detail"]
                for t in entry["tenants"]
            }

        first = asyncio.run(life(resume=False, feed=True))
        second = asyncio.run(life(resume=True, feed=False))
        expected = {t: place(t, shards) for t in tenants}
        assert placement(first) == expected
        assert placement(second) == expected  # resumed onto the same shards
        assert sorted(second["sessions"]) == sorted(tenants)
        assert second["shards"] == shards
        for t in tenants:
            home = tmp_path / "data" / f"shard-{place(t, shards)}" / t
            assert (home / "session.json").exists()


# ---------------------------------------------------------------- kill drill


@pytest.mark.chaos
class TestWorkerKillDrill:
    def test_kill9_isolates_the_shard_and_loses_no_acks(self, tmp_path):
        """``kill -9`` one worker: co-resident shards answer throughout,
        the dead shard reports ``shard-unavailable`` until its supervised
        restart, and the resumed tenants cover every acknowledged point
        (``wal_fsync=always``) with labels matching the offline run."""
        shards = 2
        tenants = pick_tenants(shards)
        config = make_config(wal=True, wal_fsync="always")
        n_points = 60
        cut = 30
        streams = {
            t: clustered_stream(80 + i, n_points) for i, t in enumerate(tenants)
        }

        async def run():
            sharded = ShardedClusterService(
                shards,
                data_dir=tmp_path / "data",
                restart_backoff_s=0.05,
                restart_reset_s=0.5,
            )
            ready, stop = asyncio.Event(), asyncio.Event()
            task = asyncio.create_task(
                run_router(sharded, "127.0.0.1", 0, ready=ready, stop=stop)
            )
            await ready.wait()
            try:
                client = await ServeClient.connect("127.0.0.1", sharded.port)
                for t in tenants:
                    await client.open_session(t, config)
                    reply = await client.ingest(t, streams[t][:cut])
                    assert reply["accepted"] == cut  # acked => fsynced
                victim, survivor = tenants[0], tenants[1]
                victim_worker = sharded.shard_for(victim)
                assert victim_worker is not sharded.shard_for(survivor)

                os.kill(victim_worker.pid, signal.SIGKILL)

                # Co-resident shard serves while the victim is down.
                reply = await client.ingest(survivor, streams[survivor][cut : cut + 10])
                assert reply["accepted"] == 10
                snap = await client.snapshot(survivor)
                assert snap["stride"] >= 0

                # The victim's shard degrades to an error envelope, never a
                # hang — and heals via the router's supervised restart.
                saw_unavailable = False
                reopened = None
                deadline = time.monotonic() + 20
                while time.monotonic() < deadline:
                    try:
                        reopened = await client.open_session(victim, config)
                        break
                    except ServeClientError as exc:
                        assert exc.code == "shard-unavailable", exc.code
                        saw_unavailable = True
                        await asyncio.sleep(0.02)
                assert reopened is not None, "victim shard never healed"
                assert saw_unavailable, "kill -9 was never even observed"

                # Zero acked loss: the resumed session covers every ack, so
                # the client's full re-send swallows exactly the acked prefix.
                assert reopened["replay_offset"] == cut
                reply = await client.ingest(victim, streams[victim])
                assert reply["accepted"] == n_points

                await client.ingest(survivor, streams[survivor][cut + 10 :])
                snapshots = {}
                for t in tenants:
                    await client.drain(t, flush_tail=True)
                    snapshots[t] = await client.snapshot(t)

                stats = await client.stats()
                assert stats["worker_restarts"] == 1
                assert stats["degraded"] == {}
                detail = {d["shard"]: d for d in stats["shard_detail"]}
                assert detail[victim_worker.index]["restarts"] == 1
                assert all(d["alive"] for d in stats["shard_detail"])
                assert all(
                    d["rss_bytes"] > 0 for d in stats["shard_detail"]
                ), "worker RSS should be measurable on linux"
                await client.close()
                return snapshots
            finally:
                stop.set()
                await task

        snapshots = asyncio.run(run())
        for t in tenants:
            assert snapshots[t]["labels"] == offline_final_labels(
                streams[t], config
            ), f"{t}: labels diverged from the offline run after kill -9"
