"""Unit tests for the R-tree: structure, searches, epochs, deletions."""

import random

import pytest

from repro.common.errors import IndexError_
from repro.index.linear import LinearScanIndex
from repro.index.rtree import RTree


def random_points(seed, n, dim=2, span=10.0):
    rng = random.Random(seed)
    return [
        (i, tuple(rng.uniform(0.0, span) for _ in range(dim))) for i in range(n)
    ]


class TestBasics:
    def test_empty(self):
        tree = RTree()
        assert len(tree) == 0
        assert 5 not in tree
        assert tree.ball((0.0, 0.0), 1.0) == []

    def test_insert_and_contains(self):
        tree = RTree()
        tree.insert(1, (0.5, 0.5))
        assert 1 in tree
        assert len(tree) == 1
        assert tree.coords_of(1) == (0.5, 0.5)

    def test_duplicate_insert_rejected(self):
        tree = RTree()
        tree.insert(1, (0.0, 0.0))
        with pytest.raises(IndexError_):
            tree.insert(1, (1.0, 1.0))

    def test_delete_unknown_rejected(self):
        with pytest.raises(IndexError_):
            RTree().delete(99)

    def test_bad_fanout_rejected(self):
        with pytest.raises(IndexError_):
            RTree(max_entries=4, min_entries=3)

    def test_items_roundtrip(self):
        tree = RTree()
        pts = random_points(0, 50)
        for pid, coords in pts:
            tree.insert(pid, coords)
        assert sorted(tree.items()) == sorted(pts)

    def test_height_grows(self):
        tree = RTree()
        for pid, coords in random_points(1, 200):
            tree.insert(pid, coords)
        assert tree.height() >= 2
        tree.check_invariants()


class TestBallSearch:
    def test_matches_linear_scan(self):
        tree = RTree()
        oracle = LinearScanIndex()
        rng = random.Random(7)
        for pid, coords in random_points(2, 400):
            tree.insert(pid, coords)
            oracle.insert(pid, coords)
        for _ in range(100):
            center = (rng.uniform(0, 10), rng.uniform(0, 10))
            radius = rng.uniform(0.1, 3.0)
            got = sorted(p for p, _ in tree.ball(center, radius))
            want = sorted(p for p, _ in oracle.ball(center, radius))
            assert got == want

    def test_inclusive_boundary(self):
        tree = RTree()
        tree.insert(1, (1.0, 0.0))
        assert [p for p, _ in tree.ball((0.0, 0.0), 1.0)] == [1]

    def test_search_counts_in_stats(self):
        tree = RTree()
        tree.insert(1, (0.0, 0.0))
        tree.ball((0.0, 0.0), 1.0)
        tree.ball((5.0, 5.0), 1.0)
        assert tree.stats.range_searches == 2

    def test_3d(self):
        tree = RTree()
        oracle = LinearScanIndex()
        rng = random.Random(11)
        for pid, coords in random_points(3, 300, dim=3):
            tree.insert(pid, coords)
            oracle.insert(pid, coords)
        for _ in range(50):
            center = tuple(rng.uniform(0, 10) for _ in range(3))
            got = sorted(p for p, _ in tree.ball(center, 2.0))
            want = sorted(p for p, _ in oracle.ball(center, 2.0))
            assert got == want


class TestDeletion:
    def test_delete_removes(self):
        tree = RTree()
        for pid, coords in random_points(4, 100):
            tree.insert(pid, coords)
        tree.delete(50)
        assert 50 not in tree
        assert len(tree) == 99
        assert 50 not in {p for p, _ in tree.ball(tree.coords_of(0), 100.0)}

    def test_delete_all_then_reuse(self):
        tree = RTree()
        pts = random_points(5, 120)
        for pid, coords in pts:
            tree.insert(pid, coords)
        for pid, _ in pts:
            tree.delete(pid)
        assert len(tree) == 0
        tree.check_invariants()
        tree.insert(999, (1.0, 1.0))
        assert [p for p, _ in tree.ball((1.0, 1.0), 0.1)] == [999]

    def test_interleaved_workload_keeps_invariants(self):
        tree = RTree()
        oracle = LinearScanIndex()
        rng = random.Random(9)
        alive = []
        next_pid = 0
        for step in range(1500):
            if alive and rng.random() < 0.45:
                pid = alive.pop(rng.randrange(len(alive)))
                tree.delete(pid)
                oracle.delete(pid)
            else:
                coords = (rng.uniform(0, 10), rng.uniform(0, 10))
                tree.insert(next_pid, coords)
                oracle.insert(next_pid, coords)
                alive.append(next_pid)
                next_pid += 1
            if step % 250 == 0:
                tree.check_invariants()
                center = (rng.uniform(0, 10), rng.uniform(0, 10))
                got = sorted(p for p, _ in tree.ball(center, 1.5))
                want = sorted(p for p, _ in oracle.ball(center, 1.5))
                assert got == want
        tree.check_invariants()


class TestEpochProbing:
    def test_unvisited_never_returns_twice(self):
        tree = RTree()
        for pid, coords in random_points(6, 300):
            tree.insert(pid, coords)
        tick = tree.new_tick()
        rng = random.Random(13)
        seen = set()
        for _ in range(80):
            center = (rng.uniform(0, 10), rng.uniform(0, 10))
            got = {p for p, _ in tree.ball_unvisited(center, 2.0, tick)}
            assert not (got & seen)
            seen |= got

    def test_new_tick_resets_visibility(self):
        tree = RTree()
        tree.insert(1, (0.0, 0.0))
        tick1 = tree.new_tick()
        assert tree.ball_unvisited((0.0, 0.0), 1.0, tick1)
        assert not tree.ball_unvisited((0.0, 0.0), 1.0, tick1)
        tick2 = tree.new_tick()
        assert tree.ball_unvisited((0.0, 0.0), 1.0, tick2)

    def test_should_mark_keeps_entries_visible(self):
        tree = RTree()
        tree.insert(1, (0.0, 0.0))
        tree.insert(2, (0.1, 0.0))
        tick = tree.new_tick()
        keep = lambda pid: pid != 1  # noqa: E731 - tiny test predicate
        first = {p for p, _ in tree.ball_unvisited((0.0, 0.0), 1.0, tick, keep)}
        assert first == {1, 2}
        second = {p for p, _ in tree.ball_unvisited((0.0, 0.0), 1.0, tick, keep)}
        assert second == {1}  # 1 was not marked, 2 was

    def test_mark_hides_entry(self):
        tree = RTree()
        tree.insert(1, (0.0, 0.0))
        tick = tree.new_tick()
        tree.mark(1, tick)
        assert tree.ball_unvisited((0.0, 0.0), 1.0, tick) == []

    def test_mark_unknown_rejected(self):
        tree = RTree()
        with pytest.raises(IndexError_):
            tree.mark(3, 1)

    def test_insert_after_tick_is_visible(self):
        tree = RTree()
        for pid, coords in random_points(8, 200):
            tree.insert(pid, coords)
        tick = tree.new_tick()
        # Exhaust a region, then insert a fresh point inside it.
        tree.ball_unvisited((5.0, 5.0), 3.0, tick)
        tree.insert(10_000, (5.0, 5.0))
        got = {p for p, _ in tree.ball_unvisited((5.0, 5.0), 3.0, tick)}
        assert got == {10_000}

    def test_matches_linear_oracle_under_mixed_ticks(self):
        tree = RTree()
        oracle = LinearScanIndex()
        rng = random.Random(21)
        for pid, coords in random_points(10, 250):
            tree.insert(pid, coords)
            oracle.insert(pid, coords)
        for _ in range(5):
            t_tree, t_oracle = tree.new_tick(), oracle.new_tick()
            for _ in range(30):
                center = (rng.uniform(0, 10), rng.uniform(0, 10))
                got = {p for p, _ in tree.ball_unvisited(center, 1.5, t_tree)}
                want = {
                    p for p, _ in oracle.ball_unvisited(center, 1.5, t_oracle)
                }
                assert got == want


class TestBulkLoadShape:
    """STR packing must never produce an underfull node.

    Regression: a short trailing slab in the recursive tiling used to pack
    into a single page with fewer than ``min_entries`` entries — the
    per-slab rebalance only fires within the final dimension's run.
    """

    def test_no_underfull_nodes_across_sizes(self):
        for seed in (0, 7, 21):
            for n in range(2, 70):
                tree = RTree()
                tree.insert_many(random_points(seed, n, span=6.0))
                tree.check_invariants()  # n=17 was underfull pre-fix

    def test_bulk_load_queries_match_incremental(self):
        points = random_points(21, 50, span=6.0)
        packed = RTree()
        packed.insert_many(points)
        grown = RTree()
        for pid, coords in points:
            grown.insert(pid, coords)
        rng = random.Random(99)
        for _ in range(25):
            center = (rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0))
            assert sorted(packed.ball(center, 0.75)) == sorted(
                grown.ball(center, 0.75)
            )
