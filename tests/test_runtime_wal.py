"""Write-ahead-log unit tests: framing, recovery, compaction, chaos.

The contract under test: however a segment directory was damaged — torn
header, body cut mid-record, flipped bit, lost unsynced bytes, a full disk
mid-append — reopening the log recovers the longest clean, contiguous
prefix of what was appended, and appending afterwards continues the
sequence exactly where the clean prefix ends.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.points import StreamPoint
from repro.datasets.io import MalformedRecord
from repro.runtime.chaos import (
    DiskFull,
    bit_flip,
    power_loss,
    torn_write,
    truncate_mid_record,
)
from repro.runtime.wal import (
    FSYNC_POLICIES,
    WAL_FIELDS,
    WalError,
    WalStats,
    WriteAheadLog,
    decode_item,
    encode_item,
    frame,
)


def points(n, start=0):
    return [
        StreamPoint(start + i, (float(start + i), (start + i) * 0.25), float(start + i))
        for i in range(n)
    ]


def reopen(wal: WriteAheadLog, **kwargs) -> WriteAheadLog:
    directory = wal.directory
    wal.close()
    return WriteAheadLog(directory, **kwargs)


class TestFraming:
    def test_point_round_trip(self):
        point = StreamPoint(7, (1.5, -2.25e-7), 3.0)
        seq, back = decode_item(encode_item(9, point))
        assert seq == 9
        assert back == point

    def test_float_repr_round_trips_exactly(self):
        # Durability means byte-identical replay: the JSON body must
        # reproduce pathological floats bit for bit.
        point = StreamPoint(1, (0.1 + 0.2, 1e308, -0.0), 1 / 3)
        _, back = decode_item(encode_item(0, point))
        assert back.coords == point.coords
        assert back.time == point.time

    def test_malformed_record_round_trip(self):
        item = MalformedRecord(42, "a,b,garbage", "bad float 'garbage'")
        seq, back = decode_item(encode_item(3, item))
        assert seq == 3
        assert back == item

    def test_unjournalable_item_rejected(self):
        with pytest.raises(WalError, match="cannot journal"):
            encode_item(0, object())

    def test_frame_is_header_plus_body(self):
        body = encode_item(0, StreamPoint(0, (0.0,), 0.0))
        framed = frame(body)
        assert len(framed) == 8 + len(body)


class TestAppendReplay:
    def test_sequences_are_contiguous_from_zero(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        assert [wal.append(p) for p in points(5)] == [0, 1, 2, 3, 4]
        assert wal.last_seq == 4

    def test_replay_returns_items_in_order(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        pts = points(40)
        mixed = pts[:20] + [MalformedRecord(3, "x", "boom")] + pts[20:]
        for item in mixed:
            wal.append(item)
        wal.commit()
        assert wal.replay(0) == mixed
        assert wal.replay(35) == mixed[35:]
        assert wal.stats.replayed == len(mixed) + len(mixed) - 35

    def test_reopen_resumes_sequence(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for p in points(7):
            wal.append(p)
        wal.commit()
        wal = reopen(wal)
        assert wal.next_seq == 7
        assert wal.append(points(1, start=7)[0]) == 7

    def test_rotation_seals_segments_durably(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=120)
        for p in points(30):
            wal.append(p)
        wal.commit()
        names = [p.name for p in wal.segments()]
        assert len(names) > 1
        assert names[0] == "wal-000000000000.seg"
        assert names == sorted(names)
        # Every sealed (non-active) segment was fsynced at rotation.
        extents = wal.durable_extents()
        for path in wal.segments()[:-1]:
            assert extents[path] == os.path.getsize(path)

    def test_fsync_policies_validate(self, tmp_path):
        for policy in FSYNC_POLICIES:
            WriteAheadLog(tmp_path / policy, fsync=policy).close()
        with pytest.raises(WalError, match="unknown fsync policy"):
            WriteAheadLog(tmp_path / "bad", fsync="sometimes")

    def test_always_policy_fsyncs_every_commit(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="always")
        for p in points(3):
            wal.append(p)
            wal.commit()
        assert wal.stats.fsyncs == 3

    def test_every_n_policy_batches_fsyncs(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="every_n", fsync_every=10)
        for p in points(25):
            wal.append(p)
            wal.commit()
        assert wal.stats.fsyncs == 2  # at records 10 and 20

    def test_stats_fields_match_schema_contract(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        assert tuple(wal.stats.as_dict()) == WAL_FIELDS

    def test_adopted_stats_carry_over(self, tmp_path):
        stats = WalStats(tenant_restarts=2)
        wal = WriteAheadLog(tmp_path, stats=stats)
        wal.append(points(1)[0])
        assert stats.appends == 1
        assert wal.stats.tenant_restarts == 2


class TestRecovery:
    def fill(self, tmp_path, n=30, segment_bytes=200):
        wal = WriteAheadLog(tmp_path, segment_bytes=segment_bytes)
        pts = points(n)
        for p in pts:
            wal.append(p)
        wal.commit()
        return wal, pts

    def test_torn_header_truncated(self, tmp_path):
        wal, pts = self.fill(tmp_path)
        tail = wal.segments()[-1]
        wal.close()
        torn_write(tail)
        wal = WriteAheadLog(tmp_path)
        recovered = wal.replay(0)
        assert recovered == pts[: len(recovered)]
        assert len(recovered) < len(pts)
        assert wal.stats.truncated_tail == 1

    def test_body_cut_mid_record_truncated(self, tmp_path):
        wal, pts = self.fill(tmp_path)
        tail = wal.segments()[-1]
        wal.close()
        truncate_mid_record(tail)
        wal = WriteAheadLog(tmp_path)
        recovered = wal.replay(0)
        assert recovered == pts[: len(recovered)]
        assert wal.stats.truncated_tail == 1

    def test_bit_flip_caught_by_crc(self, tmp_path):
        wal, pts = self.fill(tmp_path)
        tail = wal.segments()[-1]
        wal.close()
        bit_flip(tail, offset=-3)
        wal = WriteAheadLog(tmp_path)
        recovered = wal.replay(0)
        assert recovered == pts[: len(recovered)]
        assert len(recovered) < len(pts)

    def test_corruption_in_middle_segment_drops_later_segments(self, tmp_path):
        # A hole in the middle makes everything after it unreachable: the
        # sequence must stay contiguous, so later segments are deleted.
        wal, pts = self.fill(tmp_path, n=40, segment_bytes=150)
        assert len(wal.segments()) >= 3
        middle = wal.segments()[1]
        wal.close()
        bit_flip(middle, offset=-3)
        wal = WriteAheadLog(tmp_path)
        recovered = wal.replay(0)
        assert recovered == pts[: len(recovered)]
        assert wal.segments() == [s for s in wal.segments() if s.exists()]
        # Appending continues right after the clean prefix.
        new = points(1, start=len(recovered))[0]
        assert wal.append(new) == len(recovered)
        wal.commit()
        assert reopen(wal).replay(0) == pts[: len(recovered)] + [new]

    def test_power_loss_keeps_only_synced_bytes(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="every_n", fsync_every=8)
        pts = points(20)
        for p in pts:
            wal.append(p)
            wal.commit()
        lost = power_loss(wal)
        assert lost > 0
        wal = WriteAheadLog(tmp_path)
        assert wal.replay(0) == pts[:16]  # fsyncs at 8 and 16

    def test_power_loss_under_always_loses_nothing(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="always")
        pts = points(20)
        for p in pts:
            wal.append(p)
            wal.commit()
        assert power_loss(wal) == 0
        assert WriteAheadLog(tmp_path).replay(0) == pts


class TestCompaction:
    def test_covered_segments_are_deleted(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=150)
        pts = points(40)
        for p in pts:
            wal.append(p)
        wal.commit()
        before = len(wal.segments())
        removed = wal.compact(upto_seq=30)
        assert removed > 0
        assert len(wal.segments()) == before - removed
        # Everything at or past the checkpoint offset is still replayable.
        assert wal.replay(30) == pts[30:]
        # The first surviving segment still holds record 29's successor
        # range start <= 30.
        assert all(
            int(p.stem.split("-")[1]) <= 30 or True for p in wal.segments()
        )

    def test_active_segment_never_deleted(self, tmp_path):
        wal = WriteAheadLog(tmp_path)  # everything in one segment
        for p in points(10):
            wal.append(p)
        wal.commit()
        assert wal.compact(upto_seq=10**9) == 0
        assert len(wal.segments()) == 1

    def test_compaction_survives_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=150)
        pts = points(40)
        for p in pts:
            wal.append(p)
        wal.commit()
        wal.compact(upto_seq=25)
        wal = reopen(wal, segment_bytes=150)
        assert wal.next_seq == 40
        assert wal.replay(25) == pts[25:]


class TestDiskFull:
    def test_enospc_refuses_the_item_and_rolls_back(self, tmp_path):
        fault = DiskFull(after_bytes=250)
        wal = WriteAheadLog(tmp_path, fault=fault)
        pts = points(20)
        ok = 0
        for p in pts:
            try:
                wal.append(p)
                ok += 1
            except WalError:
                break
        assert 0 < ok < len(pts)
        assert wal.next_seq == ok  # the failed item got no sequence number
        wal.commit()
        # The file tail stays frame-aligned: recovery sees a clean log.
        assert reopen(wal).replay(0) == pts[:ok]

    def test_appends_resume_after_space_frees(self, tmp_path):
        fault = DiskFull(after_bytes=250)
        wal = WriteAheadLog(tmp_path, fault=fault)
        pts = points(20)
        ok = 0
        for p in pts:
            try:
                wal.append(p)
                ok += 1
            except WalError:
                break
        fault.free()
        assert wal.append(pts[ok]) == ok
        wal.commit()
        assert reopen(wal).replay(0) == pts[: ok + 1]


@settings(max_examples=60, deadline=None)
@given(
    n_points=st.integers(min_value=1, max_value=25),
    damage=st.one_of(
        st.tuples(st.just("truncate"), st.integers(min_value=0, max_value=400)),
        st.tuples(st.just("flip"), st.integers(min_value=0, max_value=399)),
    ),
)
def test_any_tail_damage_recovers_to_clean_prefix(tmp_path_factory, n_points, damage):
    """Property: arbitrary byte-level truncation or corruption of the tail
    segment recovers to a prefix of the appended sequence — never garbage,
    never a gap, and appends continue from the recovered end."""
    directory = tmp_path_factory.mktemp("wal")
    wal = WriteAheadLog(directory, segment_bytes=10**9)  # single segment
    pts = points(n_points)
    for p in pts:
        wal.append(p)
    wal.close()
    tail = directory / "wal-000000000000.seg"
    size = os.path.getsize(tail)
    kind, arg = damage
    if kind == "truncate":
        with open(tail, "r+b") as handle:
            handle.truncate(min(arg, size))
    else:
        bit_flip(tail, offset=arg % size)

    recovered = WriteAheadLog(directory)
    replayed = recovered.replay(0)
    assert replayed == pts[: len(replayed)]
    new_point = points(1, start=len(replayed))[0]
    assert recovered.append(new_point) == len(replayed)
    recovered.commit()
    recovered.close()
    assert WriteAheadLog(directory).replay(0) == pts[: len(replayed)] + [new_point]
