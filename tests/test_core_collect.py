"""Unit tests for the COLLECT step's bookkeeping (Algorithm 1)."""

import pytest

from repro.common.config import ClusteringParams
from repro.common.errors import StreamOrderError
from repro.common.points import StreamPoint
from repro.core.collect import collect
from repro.core.state import WindowState
from repro.index.rtree import RTree


def fresh(eps=1.0, tau=3):
    return WindowState(ClusteringParams(eps, tau)), RTree()


def sp(pid, *coords):
    return StreamPoint(pid, tuple(float(c) for c in coords), float(pid))


class TestInsertions:
    def test_n_eps_counts_self(self):
        state, index = fresh()
        collect(state, index, [sp(1, 0, 0)], ())
        assert state.records[1].n_eps == 1

    def test_n_eps_symmetric(self):
        state, index = fresh()
        collect(state, index, [sp(1, 0, 0), sp(2, 0.5, 0), sp(3, 5, 5)], ())
        assert state.records[1].n_eps == 2
        assert state.records[2].n_eps == 2
        assert state.records[3].n_eps == 1

    def test_neo_cores_identified(self):
        state, index = fresh(tau=3)
        result = collect(
            state, index, [sp(1, 0, 0), sp(2, 0.5, 0), sp(3, 0.25, 0.4)], ()
        )
        assert sorted(result.neo_cores) == [1, 2, 3]
        assert result.ex_cores == []

    def test_below_tau_no_neo_cores(self):
        state, index = fresh(tau=3)
        result = collect(state, index, [sp(1, 0, 0), sp(2, 0.5, 0)], ())
        assert result.neo_cores == []

    def test_duplicate_insert_rejected(self):
        state, index = fresh()
        collect(state, index, [sp(1, 0, 0)], ())
        with pytest.raises(StreamOrderError):
            collect(state, index, [sp(1, 1, 1)], ())

    def test_c_core_initialised_from_old_cores(self):
        state, index = fresh(tau=3)
        disc_setup = [sp(i, 0.1 * i, 0) for i in range(3)]
        result = collect(state, index, disc_setup, ())
        # Promote was_core as DISC's finalizer would.
        for pid in result.neo_cores:
            state.records[pid].was_core = True
        collect(state, index, [sp(10, 0.15, 0.1)], ())
        assert state.records[10].c_core == 3
        assert state.records[10].anchor in {0, 1, 2}


class TestDeletions:
    def setup_window(self, tau=3):
        state, index = fresh(tau=tau)
        points = [sp(i, 0.3 * i, 0) for i in range(5)]
        result = collect(state, index, points, ())
        for pid in result.neo_cores:
            state.records[pid].was_core = True
        return state, index

    def test_counts_decrease(self):
        state, index = self.setup_window()
        before = state.records[1].n_eps
        collect(state, index, (), [sp(0, 0, 0)])
        assert state.records[1].n_eps == before - 1

    def test_deleted_record_marked(self):
        state, index = self.setup_window()
        result = collect(state, index, (), [sp(0, 0, 0)])
        assert state.records[0].deleted
        assert state.records[0].n_eps == 0
        assert result.deleted_ids == [0]

    def test_exiting_core_lands_in_c_out_and_stays_indexed(self):
        state, index = self.setup_window()
        assert state.records[2].was_core
        result = collect(state, index, (), [sp(2, 0.6, 0)])
        assert result.c_out == [2]
        assert 2 in index  # lingers until CLUSTER finishes

    def test_exiting_non_core_leaves_index(self):
        state, index = fresh(tau=3)
        collect(state, index, [sp(1, 0, 0), sp(2, 5, 5)], ())
        result = collect(state, index, (), [sp(2, 5, 5)])
        assert result.c_out == []
        assert 2 not in index

    def test_unknown_delete_rejected(self):
        state, index = self.setup_window()
        with pytest.raises(StreamOrderError):
            collect(state, index, (), [sp(99, 0, 0)])

    def test_double_delete_rejected(self):
        state, index = self.setup_window()
        collect(state, index, (), [sp(0, 0, 0)])
        with pytest.raises(StreamOrderError):
            collect(state, index, (), [sp(0, 0, 0)])

    def test_demoted_survivor_is_ex_core(self):
        # 0-1-2 all cores (tau=3, mutual neighbours); removing 0 demotes 1
        # only if 1 drops below tau.
        state, index = fresh(tau=3)
        pts = [sp(0, 0, 0), sp(1, 0.5, 0), sp(2, 1.0, 0)]
        result = collect(state, index, pts, ())
        for pid in result.neo_cores:
            state.records[pid].was_core = True
        result = collect(state, index, (), [sp(2, 1.0, 0)])
        # 1 had neighbours {0,1,2}; now {0,1} -> below tau: ex-core.
        assert 1 in result.ex_cores
        assert 2 in result.ex_cores  # exited as a core
        assert 2 in result.c_out


class TestChurn:
    def test_simultaneous_in_and_out_cancel(self):
        state, index = fresh(tau=2)
        first = collect(state, index, [sp(0, 0, 0), sp(1, 0.4, 0)], ())
        for pid in first.neo_cores:
            state.records[pid].was_core = True
        # 1 leaves but 2 arrives at nearly the same spot: 0 stays core.
        result = collect(
            state, index, [sp(2, 0.45, 0)], [sp(1, 0.4, 0)]
        )
        assert 0 not in result.ex_cores
        assert state.records[0].n_eps == 2
        # 2 is a brand-new core.
        assert 2 in result.neo_cores

    def test_ex_cores_include_c_out(self):
        state, index = fresh(tau=2)
        first = collect(state, index, [sp(0, 0, 0), sp(1, 0.4, 0)], ())
        for pid in first.neo_cores:
            state.records[pid].was_core = True
        result = collect(state, index, (), [sp(0, 0, 0)])
        assert set(result.ex_cores) == {0, 1}
        assert result.c_out == [0]
