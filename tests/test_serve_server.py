"""End-to-end TCP tests: real sockets, JSON-lines frames, error envelopes."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import __version__
from repro.api import cluster_stream
from repro.common.config import WindowSpec
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.server import run_server
from repro.serve.service import ClusterService

from .conftest import clustered_stream

CONFIG = {"eps": 0.8, "tau": 4, "window": 120, "stride": 30}


async def start_test_server(service):
    """Run the server on an ephemeral port; return (task, stop_event, port)."""
    ready, stop = asyncio.Event(), asyncio.Event()
    task = asyncio.create_task(
        run_server(service, "127.0.0.1", 0, ready=ready, stop=stop)
    )
    await asyncio.wait_for(ready.wait(), timeout=5)
    return task, stop, service.port


async def stop_test_server(task, stop):
    stop.set()
    await asyncio.wait_for(task, timeout=10)


def serve_scenario(coro_factory, *, service=None):
    """Boot a server, run the scenario coroutine against it, tear down."""

    async def runner():
        svc = service or ClusterService()
        task, stop, port = await start_test_server(svc)
        try:
            return await coro_factory(port)
        finally:
            await stop_test_server(task, stop)

    return asyncio.run(runner())


class TestLifecycle:
    def test_full_cycle_matches_offline(self, tmp_path):
        """OPEN → INGEST → DRAIN → SNAPSHOT equals api.cluster_stream."""
        points = clustered_stream(21, 300)

        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                opened = await client.open_session("t1", CONFIG)
                assert opened["version"] == __version__
                assert opened["stride"] == -1
                for i in range(0, len(points), 50):
                    await client.ingest(
                        "t1", points[i : i + 50]
                    )
                await client.drain("t1", flush_tail=True)
                snapshot = await client.snapshot("t1")
                stats = await client.stats("t1")
                await client.close_session("t1")
                return snapshot, stats

        snapshot, stats = serve_scenario(scenario)
        offline = list(
            cluster_stream(points, WindowSpec(window=120, stride=30), eps=0.8, tau=4)
        )
        expected = offline[-1][0].labels
        assert snapshot["labels"] == {str(pid): cid for pid, cid in expected.items()}
        assert stats["ingested"] == 300
        assert stats["version"] == __version__

    def test_queries_answer_from_live_views(self):
        points = clustered_stream(22, 240)

        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                await client.open_session("t1", CONFIG)
                await client.ingest("t1", list(points))
                await client.drain("t1", flush_tail=True)
                snapshot = await client.snapshot("t1")
                pid, label = next(iter(snapshot["labels"].items()))
                by_pid = await client.query_pid("t1", int(pid))
                by_coords = await client.query_coords("t1", (0.0, 0.0))
                return snapshot, by_pid, label, by_coords

        snapshot, by_pid, label, by_coords = serve_scenario(scenario)
        assert by_pid["label"] == label
        assert by_pid["tracked"] is True
        assert by_coords["stride"] == snapshot["stride"]
        assert "label" in by_coords and "nearest_core" in by_coords

    def test_two_connections_share_one_tenant(self):
        """A second client may query a tenant the first one feeds."""
        points = clustered_stream(23, 240)

        async def scenario(port):
            feeder = await ServeClient.connect("127.0.0.1", port)
            reader = await ServeClient.connect("127.0.0.1", port)
            try:
                await feeder.open_session("shared", CONFIG)
                await feeder.ingest("shared", list(points))
                await feeder.drain("shared", flush_tail=True)
                snapshot = await reader.snapshot("shared")
                return snapshot
            finally:
                await feeder.close()
                await reader.close()

        snapshot = serve_scenario(scenario)
        assert snapshot["stride"] == 240 // 30 - 1
        assert snapshot["num_points"] > 0

    def test_multi_tenant_isolation(self):
        streams = {
            "t1": clustered_stream(24, 150),
            "t2": clustered_stream(25, 210),
        }

        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                for name, stream in streams.items():
                    await client.open_session(name, CONFIG)
                    await client.ingest(name, list(stream))
                    await client.drain(name, flush_tail=False)
                return {
                    name: await client.stats(name) for name in streams
                }, await client.stats()

        per_tenant, server_stats = serve_scenario(scenario)
        assert per_tenant["t1"]["ingested"] == 150
        assert per_tenant["t2"]["ingested"] == 210
        assert server_stats["sessions"] == ["t1", "t2"]
        assert server_stats["ingested"] == 360


class TestErrorEnvelopes:
    def test_unknown_session(self):
        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                with pytest.raises(ServeClientError) as err:
                    await client.snapshot("ghost")
                return err.value.code

        assert serve_scenario(scenario) == "no-such-session"

    def test_unknown_op_and_bad_json_keep_the_connection(self):
        async def scenario(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(b'{"op": "FROBNICATE", "id": 1}\n')
                await writer.drain()
                first = json.loads(await reader.readline())
                writer.write(b"{this is not json\n")
                await writer.drain()
                second = json.loads(await reader.readline())
                # Connection must still work after both failures.
                writer.write(b'{"op": "STATS", "id": 2}\n')
                await writer.drain()
                third = json.loads(await reader.readline())
                return first, second, third
            finally:
                writer.close()
                await writer.wait_closed()

        first, second, third = serve_scenario(scenario)
        assert first["ok"] is False and first["error"]["code"] == "unknown-op"
        assert first["id"] == 1
        assert second["ok"] is False and second["error"]["code"] == "bad-frame"
        assert third["ok"] is True and third["version"] == __version__

    def test_conflicting_open_over_the_wire(self):
        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                await client.open_session("t1", CONFIG)
                # Same config: idempotent reattach.
                again = await client.open_session("t1", CONFIG)
                assert again["ok"] is True
                # Different config: refused.
                with pytest.raises(ServeClientError) as err:
                    await client.open_session("t1", dict(CONFIG, eps=9.9))
                return err.value.code

        assert serve_scenario(scenario) == "session-exists"

    def test_bad_config_over_the_wire(self):
        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                with pytest.raises(ServeClientError) as err:
                    await client.open_session("t1", {"eps": -1.0})
                return err.value.code

        assert serve_scenario(scenario) == "bad-request"

    def test_ingest_into_draining_session(self):
        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                await client.open_session("t1", CONFIG)
                await client.drain("t1")
                with pytest.raises(ServeClientError) as err:
                    await client.ingest("t1", [[1, [0.0, 0.0], 0.0]])
                return err.value.code

        assert serve_scenario(scenario) == "draining"

    def test_strict_session_failure_is_reported(self):
        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                await client.open_session(
                    "t1", dict(CONFIG, on_malformed="strict")
                )
                with pytest.raises(ServeClientError) as err:
                    # A malformed row under `strict` kills the writer; the
                    # INGEST response must carry session-failed, and so must
                    # every later write.
                    await client.request(
                        {"op": "INGEST", "session": "t1", "points": ["garbage"]}
                    )
                first = err.value.code
                with pytest.raises(ServeClientError) as err:
                    await client.ingest("t1", [[1, [0.0], 0.0]])
                return first, err.value.code

        first, second = serve_scenario(scenario)
        assert first == "session-failed"
        assert second == "session-failed"

    def test_query_needs_pid_or_coords(self):
        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                await client.open_session("t1", CONFIG)
                response = await client.request(
                    {"op": "QUERY", "session": "t1"}, check=False
                )
                return response

        response = serve_scenario(scenario)
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-request"


class TestGracefulShutdown:
    def test_stop_drains_and_checkpoints_every_tenant(self, tmp_path):
        points = clustered_stream(26, 240)

        async def runner():
            service = ClusterService(data_dir=tmp_path)
            task, stop, port = await start_test_server(service)
            async with await ServeClient.connect("127.0.0.1", port) as client:
                await client.open_session("t1", CONFIG)
                await client.ingest("t1", list(points))
            await stop_test_server(task, stop)

        asyncio.run(runner())
        # Shutdown drained the queue and wrote a final checkpoint covering
        # every ingested point.
        checkpoints = list((tmp_path / "t1" / "ckpt").glob("checkpoint-*.json"))
        assert checkpoints
        newest = max(
            checkpoints, key=lambda p: int(p.stem.split("-")[1])
        )
        envelope = json.loads(newest.read_text())
        assert envelope["payload"]["stats"]["points_seen"] == 240
