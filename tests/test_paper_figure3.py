"""The paper's Figure 3 / Examples 1-2 scenario, encoded geometrically.

Construction (eps = 1.0, tau = 4; the paper's figure with its exact sets,
adapted to explicit coordinates — adjacency verified numerically below):

- an *ex-core chain* on y=0: B, D, P2, F, K at unit spacing;
- a *minimal-bonding chain* on y=0.9: A, C, E, G, H at unit spacing, each
  vertically adjacent to the ex-core below (A~B, C~D, E~P2, G~F, H~K);
- borders P1 (adjacent to B only) and P3 (adjacent to K only), plus helper
  borders A_h, H_h giving the chain ends their fourth neighbour and E_h
  keeping E at core density when P2 exits.

When P1, P3 and P2 exit together:

- B and K lose their border neighbour, D and F lose core P2: all four are
  demoted — together with exited P2 that is exactly five ex-cores;
- they form ONE retro-reachability class (B~D~P2~F~K at unit spacing), so
  DISC computes R^- with exactly five range searches and runs exactly one
  connectivity check (Theorem 1's consolidation — IncDBSCAN would run one
  per deletion);
- the minimal bonding cores are {A, C, E, G, H} — E qualifies through the
  *deleted* ex-core P2, exercising the rule that exited ex-cores stay in the
  index until CLUSTER finishes;
- M^- is density-connected (the chain), so the cluster SHRINKS: no split,
  same cluster id, demoted ex-cores become borders of it.
"""

import math

import pytest

from repro.baselines.dbscan import SlidingDBSCAN
from repro.common.points import StreamPoint
from repro.common.snapshot import Category
from repro.core.disc import DISC
from repro.core.events import EvolutionKind
from repro.metrics.compare import assert_equivalent

EPS = 1.0
TAU = 4

POSITIONS = {
    # ex-core chain
    "B": (0.0, 0.0),
    "D": (1.0, 0.0),
    "P2": (2.0, 0.0),
    "F": (3.0, 0.0),
    "K": (4.0, 0.0),
    # minimal bonding chain (cores in both windows)
    "A": (0.0, 0.9),
    "C": (1.0, 0.9),
    "E": (2.0, 0.9),
    "G": (3.0, 0.9),
    "H": (4.0, 0.9),
    # exiting borders
    "P1": (-0.45, -0.6),
    "P3": (4.45, -0.6),
    # helper borders completing the chain ends' neighbourhoods, plus E_h
    # keeping E at core density once its neighbour P2 exits
    "A_h": (-0.7, 1.3),
    "H_h": (4.7, 1.3),
    "E_h": (2.0, 1.9),
}
PIDS = {name: i for i, name in enumerate(POSITIONS)}
EXITING = ("P1", "P3", "P2")
EXPECTED_EX_CORES = {"B", "D", "F", "K", "P2"}
EXPECTED_BONDING = {"A", "C", "E", "G", "H"}


def point(name):
    return StreamPoint(PIDS[name], POSITIONS[name], 0.0)


def window_points(exclude=()):
    return [point(name) for name in POSITIONS if name not in exclude]


def adjacency(name):
    mine = POSITIONS[name]
    return {
        other
        for other, coords in POSITIONS.items()
        if other != name and math.dist(mine, coords) <= EPS
    }


class TestGeometryMatchesTheStory:
    """Numeric verification that the layout encodes the intended figure."""

    def test_exiting_borders_have_one_core_neighbour(self):
        assert adjacency("P1") == {"B"}
        assert adjacency("P3") == {"K"}

    def test_ex_chain_neighbourhoods(self):
        assert adjacency("B") == {"P1", "D", "A"}
        assert adjacency("D") == {"B", "P2", "C"}
        assert adjacency("P2") == {"D", "F", "E"}
        assert adjacency("F") == {"P2", "K", "G"}
        assert adjacency("K") == {"F", "P3", "H"}

    def test_bonding_chain_neighbourhoods(self):
        assert adjacency("A") == {"A_h", "C", "B"}
        assert adjacency("C") == {"A", "E", "D"}
        assert adjacency("E") == {"C", "G", "P2", "E_h"}
        assert adjacency("G") == {"E", "H", "F"}
        assert adjacency("H") == {"G", "H_h", "K"}

    def test_initial_categories(self):
        disc = DISC(EPS, TAU)
        disc.advance(window_points(), ())
        snapshot = disc.snapshot()
        for name in EXPECTED_EX_CORES | EXPECTED_BONDING:
            assert snapshot.category_of(PIDS[name]) is Category.CORE, name
        for name in ("P1", "P3", "A_h", "H_h", "E_h"):
            assert snapshot.category_of(PIDS[name]) is Category.BORDER, name
        assert snapshot.num_clusters == 1


class TestFigure3Stride:
    def run_stride(self, **disc_kwargs):
        disc = DISC(EPS, TAU, **disc_kwargs)
        disc.advance(window_points(), ())
        before = disc.stats.snapshot()
        summary = disc.advance((), [point(name) for name in EXITING])
        searches = disc.stats.range_searches - before.range_searches
        return disc, summary, searches

    def test_five_ex_cores_one_class(self):
        _, summary, _ = self.run_stride()
        assert summary.num_ex_cores == 5
        assert summary.num_neo_cores == 0
        # One retro class -> exactly one evolution event.
        assert len(summary.events) == 1

    def test_shrink_not_split(self):
        disc, summary, _ = self.run_stride()
        assert summary.events[0].kind is EvolutionKind.SHRINK
        assert disc.snapshot().num_clusters == 1

    def test_cluster_id_is_preserved(self):
        disc = DISC(EPS, TAU)
        disc.advance(window_points(), ())
        cid_before = disc.labels()[PIDS["E"]]
        disc.advance((), [point(name) for name in EXITING])
        assert disc.labels()[PIDS["E"]] == cid_before

    def test_demoted_ex_cores_become_borders(self):
        disc, _, _ = self.run_stride()
        snapshot = disc.snapshot()
        for name in ("B", "D", "F", "K"):
            assert snapshot.category_of(PIDS[name]) is Category.BORDER, name
        for name in EXPECTED_BONDING:
            assert snapshot.category_of(PIDS[name]) is Category.CORE, name

    def test_search_count_arithmetic(self):
        """Example 2's accounting, adapted to this geometry.

        COLLECT spends one search per exiting point (3). The retro phase
        spends exactly one search per ex-core (5) — the consolidation step.
        The single MS-BFS over the five bonding cores spends at most five
        expansions, and no anchor repairs are needed. DBSCAN's rule (one
        search per window point, Example 1) would already spend 14.
        """
        _, _, searches = self.run_stride()
        assert 3 + 5 <= searches <= 3 + 5 + 5
        assert searches < len(POSITIONS)

    @pytest.mark.parametrize(
        "multi_starter,epoch", [(True, True), (True, False),
                                (False, True), (False, False)]
    )
    def test_exactness_in_all_configurations(self, multi_starter, epoch):
        disc, _, _ = self.run_stride(
            multi_starter=multi_starter, epoch_probing=epoch
        )
        reference = SlidingDBSCAN(EPS, TAU)
        remaining = window_points(exclude=EXITING)
        reference.advance(remaining, ())
        coords = {p.pid: p.coords for p in remaining}
        assert_equivalent(
            disc.snapshot(), reference.snapshot(), coords, disc.params
        )


class TestReverseStride:
    """Re-inserting the exited points mirrors the story with neo-cores."""

    def test_reinsertion_expands_back(self):
        disc = DISC(EPS, TAU)
        disc.advance(window_points(), ())
        cid_before = disc.labels()[PIDS["E"]]
        disc.advance((), [point(name) for name in EXITING])
        summary = disc.advance([point(name) for name in EXITING], ())
        # B, D, F, K regain core status; P2 becomes a core again: all five
        # are neo-cores in one nascent class extending the old cluster.
        assert summary.num_neo_cores == 5
        assert len(summary.events) == 1
        assert summary.events[0].kind is EvolutionKind.EXPAND
        assert disc.snapshot().num_clusters == 1
        assert disc.labels()[PIDS["E"]] == cid_before
        assert disc.labels()[PIDS["B"]] == cid_before

    def test_roundtrip_restores_categories(self):
        disc = DISC(EPS, TAU)
        disc.advance(window_points(), ())
        original = {
            pid: disc.snapshot().category_of(pid) for pid in PIDS.values()
        }
        disc.advance((), [point(name) for name in EXITING])
        disc.advance([point(name) for name in EXITING], ())
        snapshot = disc.snapshot()
        assert {
            pid: snapshot.category_of(pid) for pid in PIDS.values()
        } == original
