"""Unit tests for MBR arithmetic."""

import pytest

from repro.index import geometry as geo


class TestRectBasics:
    def test_point_rect(self):
        rect = geo.point_rect((1.0, 2.0))
        assert rect == ((1.0, 2.0), (1.0, 2.0))
        assert geo.area(rect) == 0.0

    def test_combine(self):
        a = ((0.0, 0.0), (1.0, 1.0))
        b = ((2.0, -1.0), (3.0, 0.5))
        assert geo.combine(a, b) == ((0.0, -1.0), (3.0, 1.0))

    def test_combine_contained(self):
        outer = ((0.0, 0.0), (10.0, 10.0))
        inner = ((1.0, 1.0), (2.0, 2.0))
        assert geo.combine(outer, inner) == outer

    def test_extend(self):
        rect = ((0.0, 0.0), (1.0, 1.0))
        assert geo.extend(rect, (5.0, -2.0)) == ((0.0, -2.0), (5.0, 1.0))

    def test_area(self):
        assert geo.area(((0.0, 0.0), (2.0, 3.0))) == 6.0

    def test_area_3d(self):
        assert geo.area(((0.0, 0.0, 0.0), (2.0, 2.0, 2.0))) == 8.0

    def test_enlargement(self):
        rect = ((0.0, 0.0), (1.0, 1.0))
        other = ((2.0, 0.0), (3.0, 1.0))
        # Combined covers x 0..3, y 0..1 -> area 3; original 1 -> growth 2.
        assert geo.enlargement(rect, other) == pytest.approx(2.0)

    def test_enlargement_zero_when_contained(self):
        rect = ((0.0, 0.0), (4.0, 4.0))
        inner = ((1.0, 1.0), (2.0, 2.0))
        assert geo.enlargement(rect, inner) == 0.0


class TestMindist:
    def test_inside_is_zero(self):
        rect = ((0.0, 0.0), (2.0, 2.0))
        assert geo.mindist_sq(rect, (1.0, 1.0)) == 0.0

    def test_boundary_is_zero(self):
        rect = ((0.0, 0.0), (2.0, 2.0))
        assert geo.mindist_sq(rect, (2.0, 1.0)) == 0.0

    def test_axis_distance(self):
        rect = ((0.0, 0.0), (2.0, 2.0))
        assert geo.mindist_sq(rect, (5.0, 1.0)) == 9.0

    def test_corner_distance(self):
        rect = ((0.0, 0.0), (2.0, 2.0))
        assert geo.mindist_sq(rect, (5.0, 6.0)) == 9.0 + 16.0

    def test_contains_point(self):
        rect = ((0.0, 0.0), (2.0, 2.0))
        assert geo.contains_point(rect, (0.0, 2.0))
        assert not geo.contains_point(rect, (-0.1, 1.0))
