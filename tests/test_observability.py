"""The stride-trace layer: off-by-default, counters, sinks, schema, wiring.

Covers the contract the benches and the CLI build on: a DISC without a
tracer emits nothing and clusters identically; a DISC with one emits a
schema-valid record per advance whose index deltas sum to the backend's
total :class:`~repro.index.stats.IndexStats` delta (the Figure 7 source of
truth) and whose MS-BFS / epoch counters reflect the ablation flags (the
Figure 8 source of truth).
"""

import json

import pytest

from repro.common.config import WindowSpec
from repro.common.errors import ConfigurationError
from repro.core.disc import DISC
from repro.observability import (
    COUNTERS,
    PHASES,
    InMemorySink,
    JsonlTraceWriter,
    PrometheusTextfileExporter,
    StrideTrace,
    TraceAggregate,
    TraceSchemaError,
    Tracer,
    percentile,
    validate_trace_file,
    validate_trace_record,
)
from repro.window.sliding import materialize_slides
from tests.conftest import clustered_stream


def traced_run(seed=1, n=240, spec=WindowSpec(80, 20), **disc_kwargs):
    """Drive a traced DISC over a blob stream; return (disc, tracer, sink)."""
    sink = InMemorySink()
    tracer = Tracer(sink)
    disc = DISC(0.7, 4, tracer=tracer, **disc_kwargs)
    for delta_in, delta_out in materialize_slides(
        clustered_stream(seed, n), spec
    ):
        disc.advance(delta_in, delta_out)
    return disc, tracer, sink


class TestPercentile:
    def test_single_value(self):
        assert percentile([3.0], 0) == 3.0
        assert percentile([3.0], 50) == 3.0
        assert percentile([3.0], 95) == 3.0
        assert percentile([3.0], 100) == 3.0

    def test_two_values_interpolate(self):
        # p50 of two samples is their midpoint, p95 is 95% of the way up —
        # not simply the max, which is what nearest-rank degenerated to.
        assert percentile([10.0, 20.0], 0) == 10.0
        assert percentile([10.0, 20.0], 50) == 15.0
        assert percentile([10.0, 20.0], 95) == pytest.approx(19.5)
        assert percentile([10.0, 20.0], 100) == 20.0

    def test_interpolated_ranks(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 95) == pytest.approx(95.05)
        assert percentile(values, 100) == 100

    def test_p95_on_tiny_sample_is_not_the_max(self):
        # The loadgen regression: with < 20 strides, nearest-rank p95 was
        # always the maximum, so one outlier stride defined the report.
        values = [1.0] * 9 + [100.0]
        assert percentile(values, 95) < 100.0
        assert percentile(values, 95) > 1.0
        assert percentile(values, 50) == 1.0

    def test_matches_numpy_linear_method(self):
        values = [2.0, 4.0, 8.0, 16.0]
        # numpy.percentile(values, q) reference values (linear method).
        assert percentile(values, 25) == pytest.approx(3.5)
        assert percentile(values, 75) == pytest.approx(10.0)

    def test_input_order_irrelevant(self):
        assert percentile([5.0, 1.0, 3.0], 50) == 3.0


class TestStrideTrace:
    def test_fresh_record_is_schema_valid(self):
        trace = StrideTrace(0)
        validate_trace_record(trace.as_dict())

    def test_counters_start_at_zero(self):
        trace = StrideTrace(7)
        assert trace.stride == 7
        for name in COUNTERS:
            assert getattr(trace, name) == 0
        assert set(trace.phases) == set(PHASES)

    def test_repr_mentions_stride(self):
        assert "stride=4" in repr(StrideTrace(4))


class TestOffByDefault:
    def test_disc_has_no_tracer_unless_given(self):
        assert DISC(0.7, 4).tracer is None

    def test_traced_and_untraced_cluster_identically(self):
        spec = WindowSpec(80, 20)
        plain = DISC(0.7, 4)
        for delta_in, delta_out in materialize_slides(
            clustered_stream(1, 240), spec
        ):
            plain.advance(delta_in, delta_out)
        traced, _, _ = traced_run(seed=1, n=240, spec=spec)
        assert traced.snapshot().labels == plain.snapshot().labels


class TestDiscTracing:
    def test_one_record_per_advance_strides_increasing(self):
        _, tracer, sink = traced_run()
        assert tracer.aggregate.strides == len(sink.records)
        assert [t.stride for t in sink.records] == list(
            range(len(sink.records))
        )
        assert len(sink.records) > 3

    def test_stream_counters_match_the_stream(self):
        spec = WindowSpec(80, 20)
        _, _, sink = traced_run(spec=spec)
        slides = materialize_slides(clustered_stream(1, 240), spec)
        assert [t.num_inserted for t in sink.records] == [
            len(delta_in) for delta_in, _ in slides
        ]
        assert [t.num_deleted for t in sink.records] == [
            len(delta_out) for _, delta_out in slides
        ]

    def test_per_stride_index_deltas_sum_to_total(self):
        """Figure 7 invariant: the trace alone reproduces the index totals."""
        sink = InMemorySink()
        tracer = Tracer(sink)
        disc = DISC(0.7, 4, tracer=tracer)
        before = disc.index.stats.snapshot()
        for delta_in, delta_out in materialize_slides(
            clustered_stream(2, 240), WindowSpec(80, 20)
        ):
            disc.advance(delta_in, delta_out)
        total = (disc.index.stats.snapshot() - before).as_dict()
        summed = {name: 0 for name in total}
        for trace in sink.records:
            for name, value in trace.index.as_dict().items():
                summed[name] += value
        assert summed == total
        assert summed["range_searches"] > 0

    def test_phase_timings_partition_elapsed(self):
        _, _, sink = traced_run()
        for trace in sink.records:
            assert all(v >= 0.0 for v in trace.phases.values())
            assert sum(trace.phases.values()) <= trace.elapsed_s + 1e-6

    def test_cluster_activity_is_counted(self):
        _, tracer, _ = traced_run()
        totals = tracer.aggregate.counters
        assert totals["collect_touched"] > 0
        assert totals["ex_cores"] > 0  # cores left the window
        assert totals["neo_cores"] > 0
        assert totals["retro_classes"] > 0
        assert totals["nascent_classes"] > 0
        assert totals["connectivity_checks"] > 0
        assert totals["msbfs_expansions"] > 0

    def test_theorem1_skips_counted_per_class(self):
        _, tracer, sink = traced_run()
        # Per stride, skips = sum over retro classes of (len(class) - 1), so
        # they can never exceed the stride's ex-cores minus its classes.
        for trace in sink.records:
            assert (
                trace.theorem1_skips
                <= max(0, trace.ex_cores - trace.retro_classes)
                or trace.retro_classes == 0
            )
        assert tracer.aggregate.counters["theorem1_skips"] >= 0

    def test_epoch_prunes_follow_the_ablation_flag(self):
        """Figure 8 invariant: the epoch counter tracks the knob."""
        _, tracer_on, _ = traced_run(seed=3, epoch_probing=True)
        _, tracer_off, _ = traced_run(seed=3, epoch_probing=False)
        assert tracer_on.aggregate.index.epoch_prunes > 0
        assert tracer_off.aggregate.index.epoch_prunes == 0

    def test_events_counted_by_kind(self):
        _, tracer, _ = traced_run()
        events = tracer.aggregate.events
        assert events, "a 240-point blob stream must produce evolution events"
        assert all(count > 0 for count in events.values())
        assert "emerge" in events


class TestAggregate:
    def test_empty_aggregate_reports_gracefully(self):
        agg = TraceAggregate()
        assert agg.report() == "trace: no strides recorded"
        summary = agg.latency_summary()
        assert summary["mean_stride_s"] == 0.0

    def test_as_dict_and_report_after_a_run(self):
        _, tracer, _ = traced_run()
        payload = tracer.aggregate.as_dict()
        assert payload["strides"] == tracer.aggregate.strides
        assert payload["p50_stride_s"] <= payload["p95_stride_s"]
        text = tracer.report()
        assert "strides" in text
        assert "ms-bfs:" in text
        assert "index:" in text

    def test_report_merges_runtime_stats(self):
        from repro.runtime.stats import RuntimeStats

        _, tracer, _ = traced_run()
        stats = RuntimeStats()
        stats.points_seen = 240
        merged = tracer.report(stats)
        assert merged.splitlines()[0].startswith("input: 240 seen")
        assert "trace:" in merged


class TestJsonlSink:
    def test_round_trip_through_the_validator(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = InMemorySink()
        tracer = Tracer(JsonlTraceWriter(path), sink)
        disc = DISC(0.7, 4, tracer=tracer)
        for delta_in, delta_out in materialize_slides(
            clustered_stream(4, 200), WindowSpec(80, 20)
        ):
            disc.advance(delta_in, delta_out)
        tracer.close()
        assert validate_trace_file(path) == len(sink.records)
        lines = path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == [
            t.as_dict() for t in sink.records
        ]

    def test_lines_are_flushed_per_stride(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlTraceWriter(path))
        trace = tracer.begin()
        tracer.emit(trace)
        # Readable before close — a crashed run keeps completed strides.
        assert validate_trace_file(path) == 1
        tracer.close()

    def test_parent_directory_is_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        writer = JsonlTraceWriter(path)
        writer.close()
        assert path.exists()


class TestSchemaValidation:
    def valid(self):
        return StrideTrace(0).as_dict()

    def test_missing_key_rejected(self):
        record = self.valid()
        del record["counters"]
        with pytest.raises(TraceSchemaError, match="missing keys"):
            validate_trace_record(record)

    def test_unknown_key_rejected(self):
        record = self.valid()
        record["extra"] = 1
        with pytest.raises(TraceSchemaError, match="unknown keys"):
            validate_trace_record(record)

    def test_negative_counter_rejected(self):
        record = self.valid()
        record["counters"]["ex_cores"] = -1
        with pytest.raises(TraceSchemaError, match="counters.ex_cores"):
            validate_trace_record(record)

    def test_bool_is_not_an_integer(self):
        record = self.valid()
        record["counters"]["ex_cores"] = True
        with pytest.raises(TraceSchemaError):
            validate_trace_record(record)

    def test_float_counter_rejected(self):
        record = self.valid()
        record["counters"]["neo_cores"] = 1.5
        with pytest.raises(TraceSchemaError):
            validate_trace_record(record)

    def test_unknown_phase_rejected(self):
        record = self.valid()
        record["phases"]["warmup"] = 0.1
        with pytest.raises(TraceSchemaError, match="unknown keys"):
            validate_trace_record(record)

    def test_negative_elapsed_rejected(self):
        record = self.valid()
        record["elapsed_s"] = -0.1
        with pytest.raises(TraceSchemaError, match="elapsed_s"):
            validate_trace_record(record)

    def test_event_counts_must_be_non_negative_ints(self):
        record = self.valid()
        record["events"] = {"merge": -2}
        with pytest.raises(TraceSchemaError, match="events.merge"):
            validate_trace_record(record)

    def test_file_with_invalid_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(self.valid()) + "\n{not json\n")
        with pytest.raises(TraceSchemaError, match="not valid JSON"):
            validate_trace_file(path)

    def test_file_with_non_increasing_strides(self, tmp_path):
        path = tmp_path / "dup.jsonl"
        record = json.dumps(self.valid())
        path.write_text(record + "\n" + record + "\n")
        with pytest.raises(TraceSchemaError, match="not increasing"):
            validate_trace_file(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text("\n" + json.dumps(self.valid()) + "\n\n")
        assert validate_trace_file(path) == 1


class TestPrometheusExporter:
    def test_exposition_format(self, tmp_path):
        path = tmp_path / "disc.prom"
        tracer = Tracer(PrometheusTextfileExporter(path))
        disc = DISC(0.7, 4, tracer=tracer)
        for delta_in, delta_out in materialize_slides(
            clustered_stream(5, 200), WindowSpec(80, 20)
        ):
            disc.advance(delta_in, delta_out)
        tracer.close()
        text = path.read_text()
        strides = tracer.aggregate.strides
        assert f"disc_strides_total {strides}" in text
        assert "# TYPE disc_strides_total counter" in text
        for name in PHASES:
            assert f'disc_phase_seconds_total{{phase="{name}"}}' in text
        for name in COUNTERS:
            assert f'disc_counter_total{{counter="{name}"}}' in text
        assert 'disc_index_total{stat="range_searches"}' in text
        assert 'disc_index_total{stat="epoch_prunes"}' in text
        # Every non-comment line is "name{labels} value".
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)
            assert name_part.startswith("disc_")
        # No torn temp file left behind.
        assert not (tmp_path / "disc.prom.tmp").exists()

    def test_throttled_rewrite(self, tmp_path):
        path = tmp_path / "disc.prom"
        exporter = PrometheusTextfileExporter(path, every=3)
        tracer = Tracer(exporter)
        tracer.emit(tracer.begin())
        tracer.emit(tracer.begin())
        assert not path.exists()  # below the throttle
        tracer.emit(tracer.begin())
        assert "disc_strides_total 3" in path.read_text()
        tracer.emit(tracer.begin())
        tracer.close()  # final totals land even off-cadence
        assert "disc_strides_total 4" in path.read_text()

    def test_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            PrometheusTextfileExporter(tmp_path / "x.prom", every=0)

    def test_render_without_records(self, tmp_path):
        exporter = PrometheusTextfileExporter(tmp_path / "x.prom")
        assert "disc_strides_total 0" in exporter.render()


class TestApiWiring:
    def test_cluster_stream_drives_the_tracer(self):
        from repro.api import cluster_stream

        tracer = Tracer(InMemorySink())
        results = list(
            cluster_stream(
                clustered_stream(6, 200),
                WindowSpec(80, 40),
                eps=0.7,
                tau=4,
                tracer=tracer,
            )
        )
        assert tracer.aggregate.strides == len(results)

    def test_tracer_with_custom_clusterer_rejected(self):
        from repro.api import cluster_stream
        from repro.baselines.dbscan import SlidingDBSCAN

        with pytest.raises(ConfigurationError):
            list(
                cluster_stream(
                    clustered_stream(6, 200),
                    WindowSpec(80, 40),
                    eps=0.7,
                    tau=4,
                    clusterer=SlidingDBSCAN(0.7, 4),
                    tracer=Tracer(),
                )
            )

    def test_tracer_alone_keeps_the_plain_path(self):
        """A tracer must not silently opt the run into the resilient runtime."""
        from repro.api import cluster_stream

        tracer = Tracer()
        results = list(
            cluster_stream(
                clustered_stream(7, 160),
                WindowSpec(80, 40),
                eps=0.7,
                tau=4,
                tracer=tracer,
            )
        )
        assert results and tracer.aggregate.strides == len(results)


class TestSupervisorWiring:
    def test_supervised_run_traces_every_stride(self, tmp_path):
        from repro.runtime.supervisor import Supervisor

        tracer = Tracer(InMemorySink())
        supervisor = Supervisor(
            0.7,
            4,
            WindowSpec(80, 40),
            store=str(tmp_path / "ckpt"),
            checkpoint_every=2,
            tracer=tracer,
        )
        results = list(supervisor.run(clustered_stream(8, 200)))
        assert tracer.aggregate.strides == len(results)
        assert supervisor.stats.strides == len(results)

    def test_resume_reattaches_the_tracer(self, tmp_path):
        from repro.runtime.supervisor import Supervisor

        store = str(tmp_path / "ckpt")
        stream = clustered_stream(9, 240)
        first = Supervisor(
            0.7, 4, WindowSpec(80, 40), store=store, checkpoint_every=1
        )
        run = first.run(stream)
        for _ in range(3):
            next(run)
        run.close()  # die mid-run; checkpoints exist

        tracer = Tracer(InMemorySink())
        second = Supervisor(
            0.7,
            4,
            WindowSpec(80, 40),
            store=store,
            checkpoint_every=1,
            tracer=tracer,
        )
        results = list(second.run(stream, resume=True))
        assert second.clusterer.tracer is tracer
        assert tracer.aggregate.strides == len(results)
        assert results  # the resumed run made progress


class TestBenchIntegration:
    def test_measure_method_reads_counters_from_the_trace_layer(self):
        from repro.bench.harness import measure_method

        spec = WindowSpec(80, 20)
        stream = clustered_stream(10, 400)
        disc = DISC(0.7, 4)
        result = measure_method(disc, stream, spec, n_measured=4)
        assert result["n_measured"] == 4
        assert result["p50_stride_s"] <= result["p95_stride_s"]
        assert result["counters"]["msbfs_expansions"] >= 0
        assert set(result["counters"]) == set(COUNTERS)
        assert result["index"]["range_searches"] > 0
        assert disc.tracer is None  # restored after measurement

    def test_measure_method_on_untraceable_baseline(self):
        from repro.baselines.dbscan import SlidingDBSCAN
        from repro.bench.harness import measure_method

        spec = WindowSpec(80, 20)
        stream = clustered_stream(11, 400)
        result = measure_method(SlidingDBSCAN(0.7, 4), stream, spec, n_measured=3)
        assert result["counters"] == {}
        assert result["range_searches"] > 0
