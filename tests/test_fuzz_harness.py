"""Harness end-to-end: determinism, shrinking, case files, CLI exit codes.

The acceptance bar from the issue: with the classify tie-break bug
re-introduced, ``fuzz_seed`` must *find* it, *shrink* the failing stream to
a handful of points, and write a case file that replays clean once the fix
is back — the exact workflow a real finding goes through.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.cli import EXIT_FUZZ, main
from repro.fuzz import FuzzReport, fuzz_seed, replay_case, run_fuzz
from repro.fuzz.harness import check_scenario
from repro.fuzz.scenarios import generate_scenario, load_case
from repro.fuzz.shrink import shrink
from repro.index.registry import available_indexes
from repro.serve.session import SessionView

from .test_fuzz_oracles import order_dependent_classify

FAST = dict(backends=["grid"], oracles=["equivalence", "classify"])


class TestDeterminism:
    def test_fuzz_seed_render_is_bit_reproducible(self):
        a = fuzz_seed(7, **FAST)
        b = fuzz_seed(7, **FAST)
        assert a.render() == b.render()
        assert a.as_dict() == b.as_dict()

    def test_cli_runs_are_byte_identical(self, tmp_path, capsys):
        argv = ["fuzz", "--seed", "7", "--backends", "grid",
                "--oracles", "equivalence"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first


class TestCheckScenario:
    def test_counts_checks_across_the_matrix(self):
        scenario = generate_scenario(7)
        failures, checks = check_scenario(
            scenario, backends=["grid", "linear"],
            oracles=["equivalence", "classify"],
        )
        assert failures == []
        assert checks == 4

    def test_unknown_oracle_is_rejected(self):
        with pytest.raises(KeyError, match="unknown oracle"):
            check_scenario(generate_scenario(1), oracles=["nonsense"])

    def test_defaults_cover_every_backend(self):
        scenario = generate_scenario(7)
        _, checks = check_scenario(scenario, oracles=["classify"])
        assert checks == len(available_indexes())


class TestAcceptance:
    """Re-introduce the classify bug; the harness must catch and shrink it."""

    def test_bug_is_found_shrunk_and_archived(self, tmp_path, monkeypatch):
        with monkeypatch.context() as m:
            m.setattr(SessionView, "classify", order_dependent_classify)
            report = fuzz_seed(
                42, backends=["grid"], oracles=["classify"],
                out_dir=tmp_path,
            )
        assert not report.ok
        assert all(f.oracle == "classify" for f in report.failures)
        assert report.cases, "a shrunk case file must be written"

        for path in report.cases:
            scenario, meta = load_case(path)
            # The issue's bar: the minimized stream is tiny.
            assert len(scenario.points) <= 20
            assert meta["oracle"] == "classify"
            assert meta["backend"] == "grid"
            assert meta["original_points"] > len(scenario.points)

        # With the fix back in place every archived case replays clean —
        # exactly how the committed corpus guards the regression.
        for path in report.cases:
            assert replay_case(path).ok

        # And the buggy tree keeps failing the replay: the case really
        # does pin the bug, not some shrinking artifact.
        with monkeypatch.context() as m:
            m.setattr(SessionView, "classify", order_dependent_classify)
            assert not replay_case(report.cases[0]).ok

    def test_shrinking_is_monotone_and_preserves_failure(self, monkeypatch):
        scenario = generate_scenario(42000)  # seed-42.0's sub-seed

        def loses_point_89(candidate):
            return not any(p.pid == 89 for p in candidate.points)

        # Predicate: "fails" while pid 89 is *absent* — inverted on
        # purpose so the minimum is empty-of-89, trivially checkable.
        shrunk = shrink(
            scenario.with_points([p for p in scenario.points if p.pid != 89]),
            loses_point_89,
        )
        assert loses_point_89(shrunk)
        assert len(shrunk.points) <= 1

    def test_shrink_treats_new_crashes_as_not_failing(self):
        scenario = generate_scenario(3)
        calls = {"n": 0}

        def flaky(candidate):
            calls["n"] += 1
            if len(candidate.points) < len(scenario.points) // 2:
                raise RuntimeError("different bug")
            return True

        shrunk = shrink(scenario, flaky)
        # Never minimized past the crash threshold.
        assert len(shrunk.points) >= len(scenario.points) // 2
        assert calls["n"] > 0


class TestReports:
    def test_merge_accumulates(self):
        a = fuzz_seed(7, **FAST)
        b = fuzz_seed(8, **FAST)
        merged = FuzzReport()
        merged.merge(a)
        merged.merge(b)
        assert merged.seeds == [7, 8]
        assert merged.checks == a.checks + b.checks
        assert merged.scenarios == a.scenarios + b.scenarios

    def test_run_fuzz_sweeps_seeds(self):
        report = run_fuzz([7, 8], **FAST)
        assert report.seeds == [7, 8]
        assert report.ok
        assert report.render().endswith("0 failure(s)")

    def test_as_dict_is_json_serializable(self):
        report = fuzz_seed(7, **FAST)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["ok"] is True
        assert payload["seeds"] == [7]


class TestCli:
    def test_exactly_one_mode_required(self, capsys):
        assert main(["fuzz"]) == 1
        assert "exactly one" in capsys.readouterr().err

    def test_fuzz_exit_code_on_finding(self, tmp_path, monkeypatch, capsys):
        with monkeypatch.context() as m:
            m.setattr(SessionView, "classify", order_dependent_classify)
            code = main(
                ["fuzz", "--seed", "42", "--backends", "grid",
                 "--oracles", "classify", "--out", str(tmp_path),
                 "--json", str(tmp_path / "report.json")]
            )
        assert code == EXIT_FUZZ
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "shrunk" in out
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["ok"] is False
        assert payload["failures"]

    def test_replay_mode_via_cli(self, tmp_path, monkeypatch, capsys):
        with monkeypatch.context() as m:
            m.setattr(SessionView, "classify", order_dependent_classify)
            report = fuzz_seed(
                42, backends=["grid"], oracles=["classify"],
                out_dir=tmp_path,
            )
        case = report.cases[0]
        assert main(["fuzz", "--replay", case]) == 0
        assert "ok" in capsys.readouterr().out

    def test_unknown_oracle_is_a_usage_error(self, capsys):
        code = main(["fuzz", "--seed", "1", "--oracles", "bogus"])
        assert code == 1
        assert "fuzz error" in capsys.readouterr().err
