"""Tests: a restored DISC continues the stream with identical results."""

import json

import pytest

from repro.baselines.dbscan import SlidingDBSCAN
from repro.common.config import WindowSpec
from repro.core.checkpoint import (
    CheckpointError,
    dumps,
    from_checkpoint,
    loads,
    to_checkpoint,
)
from repro.core.disc import DISC
from repro.index.registry import available_indexes
from repro.metrics.compare import assert_equivalent
from repro.window.sliding import materialize_slides
from tests.conftest import clustered_stream


def run_slides(method, slides):
    for delta_in, delta_out in slides:
        method.advance(delta_in, delta_out)


def legacy_payload(disc, version=2):
    """Rewrite a v3 column checkpoint into the v1/v2 per-record shape."""
    payload = to_checkpoint(disc)
    cols = payload.pop("columns")
    payload["records"] = [
        {
            "pid": cols["pid"][i],
            "coords": cols["coords"][i],
            "time": cols["time"][i],
            "n_eps": cols["n_eps"][i],
            "c_core": cols["c_core"][i],
            "was_core": bool(cols["flags"][i] & 1),
            "cid": None if cols["cid"][i] == -1 else cols["cid"][i],
            "anchor": None if cols["anchor"][i] == -1 else cols["anchor"][i],
        }
        for i in range(len(cols["pid"]))
    ]
    payload["version"] = version
    if version == 1:
        del payload["index"]  # pre-registry checkpoints had no backend name
    return payload


class TestRoundTrip:
    def test_snapshot_identical_after_restore(self):
        disc = DISC(0.7, 4)
        points = clustered_stream(1, 150)
        disc.advance(points, ())
        restored = from_checkpoint(to_checkpoint(disc))
        assert restored.labels() == disc.labels()
        original = disc.snapshot()
        copy = restored.snapshot()
        assert original.categories == copy.categories

    def test_json_roundtrip(self):
        disc = DISC(0.7, 4)
        disc.advance(clustered_stream(2, 100), ())
        restored = loads(dumps(disc))
        assert restored.labels() == disc.labels()

    def test_configuration_preserved(self):
        disc = DISC(0.9, 5, multi_starter=False, epoch_probing=False)
        disc.advance(clustered_stream(3, 60), ())
        restored = from_checkpoint(to_checkpoint(disc))
        assert restored.params.eps == 0.9
        assert restored.params.tau == 5
        assert restored.multi_starter is False
        assert restored.epoch_probing is False

    def test_continuation_matches_uninterrupted_run(self):
        spec = WindowSpec(window=120, stride=30)
        points = clustered_stream(4, 420)
        slides = materialize_slides(points, spec)

        uninterrupted = DISC(0.7, 4)
        run_slides(uninterrupted, slides)

        first_half = DISC(0.7, 4)
        run_slides(first_half, slides[:7])
        resumed = loads(dumps(first_half))
        run_slides(resumed, slides[7:])

        window = points[-120:]
        coords = {p.pid: p.coords for p in window}
        assert_equivalent(
            resumed.snapshot(),
            uninterrupted.snapshot(),
            coords,
            resumed.params,
        )
        # Stronger than equivalence: identical resolved labels.
        assert resumed.labels() == uninterrupted.labels()

    def test_restored_instance_is_exact_vs_dbscan(self):
        spec = WindowSpec(window=100, stride=25)
        points = clustered_stream(5, 300)
        slides = materialize_slides(points, spec)
        disc = DISC(0.7, 4)
        reference = SlidingDBSCAN(0.7, 4)
        window = []
        for i, (delta_in, delta_out) in enumerate(slides):
            if i == 6:
                disc = loads(dumps(disc))  # crash/restore mid-stream
            disc.advance(delta_in, delta_out)
            reference.advance(delta_in, delta_out)
            out_ids = {p.pid for p in delta_out}
            window = [p for p in window if p.pid not in out_ids] + list(delta_in)
            coords = {p.pid: p.coords for p in window}
            assert_equivalent(
                disc.snapshot(), reference.snapshot(), coords, disc.params
            )


class TestBackendRestore:
    @pytest.mark.parametrize("index", available_indexes())
    def test_backend_survives_round_trip(self, index):
        """The payload names its backend; restore rebuilds the same one."""
        spec = WindowSpec(window=100, stride=25)
        points = clustered_stream(7, 300)
        slides = materialize_slides(points, spec)
        disc = DISC(0.7, 4, index=index)
        run_slides(disc, slides[:6])

        payload = to_checkpoint(disc)
        assert payload["index"] == index
        restored = from_checkpoint(payload)
        assert restored.params.index == index
        assert restored.labels() == disc.labels()

        # The restored instance must *continue* identically, not just match
        # at the restore point — the index was rebuilt via bulk load.
        run_slides(disc, slides[6:])
        run_slides(restored, slides[6:])
        assert restored.labels() == disc.labels()

    def test_version1_payload_restores_on_default_backend(self):
        """Pre-registry checkpoints carry no backend name; still restorable."""
        disc = DISC(0.7, 4)
        disc.advance(clustered_stream(8, 120), ())
        restored = from_checkpoint(legacy_payload(disc, version=1))
        assert restored.labels() == disc.labels()


class TestFormatVersions:
    """v1/v2 object payloads must restore byte-identically to v3 columns."""

    @pytest.mark.parametrize("version", [1, 2])
    def test_legacy_payload_restores_byte_identical(self, version):
        spec = WindowSpec(window=120, stride=30)
        points = clustered_stream(11, 300)
        slides = materialize_slides(points, spec)
        disc = DISC(0.7, 4)
        run_slides(disc, slides[:6])

        v3 = to_checkpoint(disc)
        restored = from_checkpoint(legacy_payload(disc, version=version))
        assert restored.labels() == disc.labels()
        # Re-checkpointing the legacy restore reproduces the v3 payload
        # byte for byte (modulo the index name a v1 payload cannot carry).
        re_emitted = to_checkpoint(restored)
        if version == 1:
            re_emitted["index"] = v3["index"]
        assert json.dumps(re_emitted, sort_keys=True) == json.dumps(
            v3, sort_keys=True
        )
        # And the restored instance continues the stream identically.
        run_slides(disc, slides[6:])
        run_slides(restored, slides[6:])
        assert restored.labels() == disc.labels()

    @pytest.mark.parametrize("store", ["columnar", "object"])
    def test_restore_onto_either_layout(self, store):
        disc = DISC(0.7, 4)
        disc.advance(clustered_stream(12, 150), ())
        payload = to_checkpoint(disc)
        restored = from_checkpoint(payload, store=store)
        assert restored.state.store_kind == store
        assert restored.labels() == disc.labels()
        assert json.dumps(to_checkpoint(restored), sort_keys=True) == json.dumps(
            payload, sort_keys=True
        )

    def test_object_layout_emits_identical_v3_payload(self):
        spec = WindowSpec(window=100, stride=25)
        points = clustered_stream(13, 250)
        slides = materialize_slides(points, spec)
        columnar = DISC(0.7, 4)
        legacy = DISC(0.7, 4, store="object")
        run_slides(columnar, slides[:7])
        run_slides(legacy, slides[:7])
        assert json.dumps(to_checkpoint(columnar), sort_keys=True) == json.dumps(
            to_checkpoint(legacy), sort_keys=True
        )


class TestErrors:
    def test_bad_version(self):
        with pytest.raises(CheckpointError, match="unsupported checkpoint version"):
            from_checkpoint({"version": 99})

    def test_missing_fields(self):
        with pytest.raises(CheckpointError, match="missing required keys"):
            from_checkpoint({"version": 1, "eps": 1.0})

    def test_invalid_json(self):
        with pytest.raises(CheckpointError):
            loads("{oops")

    def test_columns_must_be_an_object(self):
        disc = DISC(0.5, 3)
        payload = to_checkpoint(disc)
        payload["columns"] = ["not", "an", "object"]
        with pytest.raises(CheckpointError, match="must be an object"):
            from_checkpoint(payload)

    def test_legacy_records_must_be_a_list(self):
        disc = DISC(0.5, 3)
        payload = legacy_payload(disc)
        payload["records"] = {"not": "a list"}
        with pytest.raises(CheckpointError, match="must be a list"):
            from_checkpoint(payload)

    def test_column_missing(self):
        disc = DISC(0.5, 3)
        disc.advance(clustered_stream(6, 30), ())
        payload = to_checkpoint(disc)
        del payload["columns"]["n_eps"]
        with pytest.raises(CheckpointError, match="columns are missing"):
            from_checkpoint(payload)

    def test_column_lengths_must_agree(self):
        disc = DISC(0.5, 3)
        disc.advance(clustered_stream(6, 30), ())
        payload = to_checkpoint(disc)
        payload["columns"]["n_eps"] = payload["columns"]["n_eps"][:-1]
        with pytest.raises(CheckpointError, match="mismatched lengths"):
            from_checkpoint(payload)

    def test_legacy_record_missing_keys(self):
        disc = DISC(0.5, 3)
        disc.advance(clustered_stream(6, 30), ())
        payload = legacy_payload(disc)
        del payload["records"][0]["n_eps"]
        with pytest.raises(CheckpointError, match="record 0 is missing"):
            from_checkpoint(payload)

    def test_inconsistent_record_dims(self):
        disc = DISC(0.5, 3)
        disc.advance(clustered_stream(6, 30), ())
        payload = to_checkpoint(disc)
        payload["columns"]["coords"][1] = [1.0, 2.0, 3.0]
        with pytest.raises(CheckpointError, match="dimensional"):
            from_checkpoint(payload)

    def test_invalid_flags(self):
        disc = DISC(0.5, 3)
        disc.advance(clustered_stream(6, 30), ())
        payload = to_checkpoint(disc)
        payload["columns"]["flags"][0] = 2  # the DELETED bit never persists
        with pytest.raises(CheckpointError, match="invalid flags"):
            from_checkpoint(payload)

    def test_index_must_be_a_name(self):
        disc = DISC(0.5, 3)
        payload = to_checkpoint(disc)
        payload["index"] = 42
        with pytest.raises(CheckpointError, match="backend name"):
            from_checkpoint(payload)

    def test_validation_happens_before_construction(self):
        """A bad payload must fail fast, not half-build a DISC."""
        disc = DISC(0.5, 3)
        disc.advance(clustered_stream(6, 30), ())
        payload = to_checkpoint(disc)
        payload["columns"]["coords"][2] = []
        with pytest.raises(CheckpointError, match="invalid coords"):
            from_checkpoint(payload)

    def test_empty_window_checkpoint(self):
        disc = DISC(0.5, 3)
        restored = loads(dumps(disc))
        assert len(restored) == 0
        restored.advance(clustered_stream(6, 40), ())
        assert restored.snapshot().num_clusters >= 1
