"""Tenant-session semantics: backpressure, equivalence, drain, failure.

The acceptance bar: under *every* backpressure policy, a served session's
per-stride labels are byte-identical to ``api.cluster_stream`` run over the
same post-admission point sequence (the session journal).
"""

from __future__ import annotations

import asyncio
import itertools

import pytest

from repro.api import cluster_stream
from repro.common.config import WindowSpec
from repro.common.snapshot import Clustering
from repro.datasets.io import MalformedRecord
from repro.query.archive import SnapshotArchive
from repro.query.journal import EvolutionJournal
from repro.serve import ServeError, SessionConfig, TenantSession
from repro.serve.session import SessionView

from .conftest import clustered_stream

EPS, TAU = 0.8, 4


def make_config(**overrides) -> SessionConfig:
    base = dict(eps=EPS, tau=TAU, window=120, stride=30)
    base.update(overrides)
    return SessionConfig(**base)


def record_views(session: TenantSession) -> list:
    """Capture every published view, in publication order."""
    views = []
    original = session._publish

    def capture():
        original()
        views.append(session.view)

    session._publish = capture
    return views


def offline_label_history(points, config: SessionConfig) -> list[dict]:
    spec = WindowSpec(window=config.window, stride=config.stride)
    return [
        dict(snapshot.labels)
        for snapshot, _ in cluster_stream(
            points, spec, eps=config.eps, tau=config.tau
        )
    ]


async def drive_session(config, points, *, batch=17, drain=True, flush_tail=True):
    """Offer ``points`` to a fresh session in batches; return the evidence."""
    session = TenantSession("t", config, journal=[])
    views = record_views(session)
    session.start()
    outcomes = []
    for i in range(0, len(points), batch):
        outcomes.append(await session.offer(points[i : i + batch]))
    if drain:
        await session.drain(flush_tail=flush_tail)
    await session.close()
    return session, views, outcomes


class TestPolicyEquivalence:
    """Served labels == offline labels on the post-admission sequence."""

    def check_policy(self, policy, queue_limit=2048, batch=17):
        points = clustered_stream(11, 450)
        config = make_config(backpressure=policy, queue_limit=queue_limit)
        session, views, _ = asyncio.run(
            drive_session(config, points, batch=batch)
        )
        # Everything the writer consumed, in order — under `block` that is
        # the whole stream; under shed/reject a subsequence.
        journal = session.journal
        assert journal, "writer consumed nothing"
        served = [dict(v.clustering.labels) for v in views]
        assert served == offline_label_history(journal, config)
        return session, journal, points

    def test_block_policy_is_lossless_and_exact(self):
        session, journal, points = self.check_policy("block")
        assert journal == points  # block never drops
        assert session.shed == session.rejected == 0

    def test_shed_oldest_policy_is_exact_on_survivors(self):
        # A tiny queue and large bursts force shedding: put_nowait never
        # yields to the writer inside a burst, so the queue overflows.
        session, journal, points = self.check_policy(
            "shed-oldest", queue_limit=8, batch=64
        )
        assert session.shed > 0
        assert len(journal) + session.shed == len(points)

    def test_reject_policy_is_exact_on_survivors(self):
        session, journal, points = self.check_policy(
            "reject", queue_limit=8, batch=64
        )
        assert session.rejected > 0
        assert len(journal) + session.rejected == len(points)

    def test_admission_outcomes_add_up(self):
        points = clustered_stream(12, 300)
        config = make_config(backpressure="reject", queue_limit=16)
        session, _, outcomes = asyncio.run(
            drive_session(config, points, batch=40)
        )
        accepted = sum(o["accepted"] for o in outcomes)
        rejected = sum(o["rejected"] for o in outcomes)
        assert accepted + rejected == len(points) == session.received
        assert session.ingested == accepted  # drained queue: all consumed


class TestViews:
    def test_initial_view_is_empty(self):
        session = TenantSession("t", make_config())
        assert session.view.stride == -1
        assert session.view.clustering.num_points == 0
        assert session.view.classify((0.0, 0.0))["label"] == -1

    def test_views_are_published_per_stride(self):
        points = clustered_stream(13, 300)
        config = make_config()
        _, views, _ = asyncio.run(drive_session(config, points))
        assert [v.stride for v in views] == list(range(len(views)))
        assert len(views) == 300 // config.stride

    def test_view_membership_and_classify_agree_with_snapshot(self):
        points = clustered_stream(14, 240)
        config = make_config()
        session, views, _ = asyncio.run(drive_session(config, points))
        view = views[-1]
        clustering = view.clustering
        for pid, cid in clustering.labels.items():
            assert view.membership(pid)["label"] == cid
        # Every core classifies to its own cluster (distance 0).
        for pid, coords, label in view.cores:
            result = view.classify(coords)
            assert result["label"] == label
            assert result["distance"] == 0.0

    def test_classify_out_of_range_is_noise(self):
        points = clustered_stream(15, 240)
        _, views, _ = asyncio.run(drive_session(make_config(), points))
        result = views[-1].classify((1e6, 1e6))
        assert result["label"] == -1
        assert result["nearest_core"] is None


def make_view(cores, eps=1.5) -> SessionView:
    return SessionView(0, Clustering({}, {}), eps, tuple(cores))


class TestClassifyTieBreak:
    """Regression: classify() must not depend on core iteration order.

    Pre-fix, an exact-distance tie went to whichever core the tuple
    happened to list first — and the tuple's order tracked the clusterer's
    internal iteration order, so two equivalent states could answer the
    same probe differently. The contract now: nearest core wins; exact
    ties break to the lowest cluster label, then the lowest core pid.
    """

    TIED = [(7, (0.0, 0.0), 5), (2, (2.0, 0.0), 3)]  # probe (1,0): both at 1.0

    def test_exact_tie_breaks_to_lowest_label_in_any_order(self):
        # Fails pre-fix: the given order answered label 5, reversed
        # answered label 3.
        for order in itertools.permutations(self.TIED):
            answer = make_view(order).classify((1.0, 0.0))
            assert answer["label"] == 3
            assert answer["nearest_core"] == 2
            assert answer["distance"] == 1.0

    def test_label_tie_breaks_to_lowest_pid(self):
        cores = [(9, (0.0, 0.0), 4), (4, (2.0, 0.0), 4)]
        for order in itertools.permutations(cores):
            answer = make_view(order).classify((1.0, 0.0))
            assert answer["nearest_core"] == 4

    def test_distance_still_dominates_the_tie_break(self):
        # A strictly nearer core beats any label/pid preference.
        cores = [(1, (0.0, 0.0), 1), (2, (1.25, 0.0), 9)]
        answer = make_view(cores).classify((1.0, 0.0))
        assert answer["label"] == 9
        assert answer["nearest_core"] == 2

    def test_order_invariance_under_many_permutations(self):
        cores = [
            (11, (0.0, 0.0), 2),
            (5, (2.0, 0.0), 8),
            (3, (1.0, 1.0), 8),
            (8, (1.0, -1.0), 2),
        ]
        probes = [(1.0, 0.0), (0.5, 0.5), (1.0, 2.0), (9.0, 9.0)]
        for probe in probes:
            answers = {
                tuple(sorted(make_view(order).classify(probe).items()))
                for order in itertools.permutations(cores)
            }
            assert len(answers) == 1, f"probe {probe} is order-dependent"


class TestJournalRetention:
    """Regression: retention GC vs archive cadence (``_compact_journal``).

    Pre-fix, a retention cut with no archive snapshot at-or-before it
    clamped to 0 — the journal never shrank — silently. The contract now:
    compact to the newest *answerable* stride, and when that lags the
    retention cut, say why in STATS (``journal.floor_pinned``).
    """

    def drive(self, tmp_path, *, retention, archive_every, n=300):
        async def scenario():
            evjournal = EvolutionJournal(
                tmp_path / "evj", segment_bytes=1
            )
            archive = SnapshotArchive(
                tmp_path / "arch", every=archive_every, journal=evjournal
            )
            config = make_config(
                journal=True,
                journal_retention=retention,
                archive_every=archive_every,
                checkpoint_every=2,
            )
            session = TenantSession(
                "t",
                config,
                store=str(tmp_path / "ckpt"),
                evjournal=evjournal,
                archive=archive,
            )
            session.start()
            await session.offer(clustered_stream(21, n))
            await session.drain(flush_tail=True)
            await session.close()
            return session, evjournal, archive

        return asyncio.run(scenario())

    def test_fine_cadence_advances_the_floor_unpinned(self, tmp_path):
        # Snapshot cadence (2) <= retention (3): there is always a
        # snapshot at or before the cut, so the floor tracks retention.
        session, evjournal, archive = self.drive(
            tmp_path, retention=3, archive_every=2
        )
        assert session.failed is None
        assert evjournal.floor > 0
        assert session.journal_floor_pinned is None
        assert "floor_pinned" not in session.stats()["journal"]
        # Everything retained is still answerable.
        for stride in range(evjournal.floor, evjournal.head - 1):
            assert archive.materialize(stride) is not None

    def test_coarse_cadence_pins_the_floor_and_says_why(self, tmp_path):
        # Snapshot cadence (8) > retention (2): the cut outruns the
        # newest snapshot, so the floor holds at snapshot+1 — but it
        # must still advance past 0, and STATS must explain the lag.
        # 420 points = 14 strides: the final cut (>= 11) is well past the
        # newest snapshot (8), so the pin is visible in the end state.
        session, evjournal, archive = self.drive(
            tmp_path, retention=2, archive_every=8, n=420
        )
        assert session.failed is None
        assert evjournal.floor > 0  # pre-fix: stuck at 0 forever
        snap = max(archive.strides())
        assert evjournal.floor <= snap + 1
        reason = session.stats()["journal"]["floor_pinned"]
        assert "archive cadence 8" in reason
        assert "retention 2" in reason
        # The floor's stride is answerable: snapshot + delta replay.
        assert archive.materialize(evjournal.floor) is not None

    def test_replay_only_archive_never_compacts_but_reports(self, tmp_path):
        # archive_every=0: AS_OF replays from stride 0, so no prefix is
        # ever cuttable. Retention must not break time travel — and must
        # not be silent about it either.
        session, evjournal, archive = self.drive(
            tmp_path, retention=2, archive_every=0
        )
        assert session.failed is None
        assert evjournal.floor == 0
        reason = session.stats()["journal"]["floor_pinned"]
        assert "replay-only" in reason
        for stride in range(evjournal.head - 1):
            assert archive.materialize(stride) is not None

    def test_no_retention_means_no_gc_and_no_pin(self, tmp_path):
        session, evjournal, _ = self.drive(
            tmp_path, retention=0, archive_every=2
        )
        assert evjournal.floor == 0
        assert session.journal_floor_pinned is None


class TestDrain:
    def test_drain_without_tail_flush_keeps_partial_batch(self):
        points = clustered_stream(16, 310)  # 10 full strides + 10 pending
        config = make_config()
        session, views, _ = asyncio.run(
            drive_session(config, points, flush_tail=False)
        )
        assert views[-1].stride == 9  # the pending 10 points closed no stride
        assert session.ingested == 310

    def test_drain_with_tail_flush_matches_end_of_stream(self):
        points = clustered_stream(16, 310)
        config = make_config()
        session, views, _ = asyncio.run(
            drive_session(config, points, flush_tail=True)
        )
        assert views[-1].stride == 10  # tail stride closed
        assert [dict(v.clustering.labels) for v in views] == (
            offline_label_history(points, config)
        )

    def test_ingest_after_drain_is_rejected(self):
        async def scenario():
            session = TenantSession("t", make_config())
            session.start()
            await session.offer(clustered_stream(17, 60))
            await session.drain()
            outcome = await session.offer(clustered_stream(17, 30, start_id=60))
            await session.close()
            return session, outcome

        session, outcome = asyncio.run(scenario())
        assert outcome["accepted"] == 0
        assert outcome["rejected"] == 30
        assert session.drained


class TestFailure:
    def test_strict_policy_fault_fails_the_session(self):
        async def scenario():
            session = TenantSession("t", make_config(on_malformed="strict"))
            session.start()
            bad = MalformedRecord(0, "garbage", "unparsable")
            await session.offer([bad])
            await session.drain()  # must not hang on a dead writer
            await session.close()
            return session

        session = asyncio.run(scenario())
        assert session.failed is not None
        with pytest.raises(ServeError) as err:
            session.require_healthy()
        assert err.value.code == "session-failed"

    def test_skip_policy_survives_malformed_items(self):
        async def scenario():
            session = TenantSession(
                "t", make_config(on_malformed="skip"), journal=[]
            )
            session.start()
            stream = list(clustered_stream(18, 120))
            stream.insert(40, MalformedRecord(40, "garbage", "unparsable"))
            await session.offer(stream)
            await session.drain(flush_tail=True)
            await session.close()
            return session

        session = asyncio.run(scenario())
        assert session.failed is None
        assert session.supervisor.stats.points_dead_lettered == 1
        # The journal holds the raw consumed sequence including the bad
        # record; the offline run under the same policy must agree.
        config = make_config(on_malformed="skip")
        spec = WindowSpec(window=config.window, stride=config.stride)
        offline = [
            dict(snapshot.labels)
            for snapshot, _ in cluster_stream(
                session.journal, spec, eps=EPS, tau=TAU, on_malformed="skip"
            )
        ]
        assert dict(session.view.clustering.labels) == offline[-1]

    def test_stats_shape(self):
        points = clustered_stream(19, 240)
        config = make_config(backpressure="reject")
        session, _, _ = asyncio.run(drive_session(config, points))
        stats = session.stats()
        assert stats["session"] == "t"
        assert stats["stride"] == session.view.stride
        assert stats["backpressure"] == "reject"
        assert stats["runtime"]["strides"] == session.view.stride + 1
        assert stats["config"] == config.as_dict()
