"""Tenant-session semantics: backpressure, equivalence, drain, failure.

The acceptance bar: under *every* backpressure policy, a served session's
per-stride labels are byte-identical to ``api.cluster_stream`` run over the
same post-admission point sequence (the session journal).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import cluster_stream
from repro.common.config import WindowSpec
from repro.datasets.io import MalformedRecord
from repro.serve import ServeError, SessionConfig, TenantSession

from .conftest import clustered_stream

EPS, TAU = 0.8, 4


def make_config(**overrides) -> SessionConfig:
    base = dict(eps=EPS, tau=TAU, window=120, stride=30)
    base.update(overrides)
    return SessionConfig(**base)


def record_views(session: TenantSession) -> list:
    """Capture every published view, in publication order."""
    views = []
    original = session._publish

    def capture():
        original()
        views.append(session.view)

    session._publish = capture
    return views


def offline_label_history(points, config: SessionConfig) -> list[dict]:
    spec = WindowSpec(window=config.window, stride=config.stride)
    return [
        dict(snapshot.labels)
        for snapshot, _ in cluster_stream(
            points, spec, eps=config.eps, tau=config.tau
        )
    ]


async def drive_session(config, points, *, batch=17, drain=True, flush_tail=True):
    """Offer ``points`` to a fresh session in batches; return the evidence."""
    session = TenantSession("t", config, journal=[])
    views = record_views(session)
    session.start()
    outcomes = []
    for i in range(0, len(points), batch):
        outcomes.append(await session.offer(points[i : i + batch]))
    if drain:
        await session.drain(flush_tail=flush_tail)
    await session.close()
    return session, views, outcomes


class TestPolicyEquivalence:
    """Served labels == offline labels on the post-admission sequence."""

    def check_policy(self, policy, queue_limit=2048, batch=17):
        points = clustered_stream(11, 450)
        config = make_config(backpressure=policy, queue_limit=queue_limit)
        session, views, _ = asyncio.run(
            drive_session(config, points, batch=batch)
        )
        # Everything the writer consumed, in order — under `block` that is
        # the whole stream; under shed/reject a subsequence.
        journal = session.journal
        assert journal, "writer consumed nothing"
        served = [dict(v.clustering.labels) for v in views]
        assert served == offline_label_history(journal, config)
        return session, journal, points

    def test_block_policy_is_lossless_and_exact(self):
        session, journal, points = self.check_policy("block")
        assert journal == points  # block never drops
        assert session.shed == session.rejected == 0

    def test_shed_oldest_policy_is_exact_on_survivors(self):
        # A tiny queue and large bursts force shedding: put_nowait never
        # yields to the writer inside a burst, so the queue overflows.
        session, journal, points = self.check_policy(
            "shed-oldest", queue_limit=8, batch=64
        )
        assert session.shed > 0
        assert len(journal) + session.shed == len(points)

    def test_reject_policy_is_exact_on_survivors(self):
        session, journal, points = self.check_policy(
            "reject", queue_limit=8, batch=64
        )
        assert session.rejected > 0
        assert len(journal) + session.rejected == len(points)

    def test_admission_outcomes_add_up(self):
        points = clustered_stream(12, 300)
        config = make_config(backpressure="reject", queue_limit=16)
        session, _, outcomes = asyncio.run(
            drive_session(config, points, batch=40)
        )
        accepted = sum(o["accepted"] for o in outcomes)
        rejected = sum(o["rejected"] for o in outcomes)
        assert accepted + rejected == len(points) == session.received
        assert session.ingested == accepted  # drained queue: all consumed


class TestViews:
    def test_initial_view_is_empty(self):
        session = TenantSession("t", make_config())
        assert session.view.stride == -1
        assert session.view.clustering.num_points == 0
        assert session.view.classify((0.0, 0.0))["label"] == -1

    def test_views_are_published_per_stride(self):
        points = clustered_stream(13, 300)
        config = make_config()
        _, views, _ = asyncio.run(drive_session(config, points))
        assert [v.stride for v in views] == list(range(len(views)))
        assert len(views) == 300 // config.stride

    def test_view_membership_and_classify_agree_with_snapshot(self):
        points = clustered_stream(14, 240)
        config = make_config()
        session, views, _ = asyncio.run(drive_session(config, points))
        view = views[-1]
        clustering = view.clustering
        for pid, cid in clustering.labels.items():
            assert view.membership(pid)["label"] == cid
        # Every core classifies to its own cluster (distance 0).
        for pid, coords, label in view.cores:
            result = view.classify(coords)
            assert result["label"] == label
            assert result["distance"] == 0.0

    def test_classify_out_of_range_is_noise(self):
        points = clustered_stream(15, 240)
        _, views, _ = asyncio.run(drive_session(make_config(), points))
        result = views[-1].classify((1e6, 1e6))
        assert result["label"] == -1
        assert result["nearest_core"] is None


class TestDrain:
    def test_drain_without_tail_flush_keeps_partial_batch(self):
        points = clustered_stream(16, 310)  # 10 full strides + 10 pending
        config = make_config()
        session, views, _ = asyncio.run(
            drive_session(config, points, flush_tail=False)
        )
        assert views[-1].stride == 9  # the pending 10 points closed no stride
        assert session.ingested == 310

    def test_drain_with_tail_flush_matches_end_of_stream(self):
        points = clustered_stream(16, 310)
        config = make_config()
        session, views, _ = asyncio.run(
            drive_session(config, points, flush_tail=True)
        )
        assert views[-1].stride == 10  # tail stride closed
        assert [dict(v.clustering.labels) for v in views] == (
            offline_label_history(points, config)
        )

    def test_ingest_after_drain_is_rejected(self):
        async def scenario():
            session = TenantSession("t", make_config())
            session.start()
            await session.offer(clustered_stream(17, 60))
            await session.drain()
            outcome = await session.offer(clustered_stream(17, 30, start_id=60))
            await session.close()
            return session, outcome

        session, outcome = asyncio.run(scenario())
        assert outcome["accepted"] == 0
        assert outcome["rejected"] == 30
        assert session.drained


class TestFailure:
    def test_strict_policy_fault_fails_the_session(self):
        async def scenario():
            session = TenantSession("t", make_config(on_malformed="strict"))
            session.start()
            bad = MalformedRecord(0, "garbage", "unparsable")
            await session.offer([bad])
            await session.drain()  # must not hang on a dead writer
            await session.close()
            return session

        session = asyncio.run(scenario())
        assert session.failed is not None
        with pytest.raises(ServeError) as err:
            session.require_healthy()
        assert err.value.code == "session-failed"

    def test_skip_policy_survives_malformed_items(self):
        async def scenario():
            session = TenantSession(
                "t", make_config(on_malformed="skip"), journal=[]
            )
            session.start()
            stream = list(clustered_stream(18, 120))
            stream.insert(40, MalformedRecord(40, "garbage", "unparsable"))
            await session.offer(stream)
            await session.drain(flush_tail=True)
            await session.close()
            return session

        session = asyncio.run(scenario())
        assert session.failed is None
        assert session.supervisor.stats.points_dead_lettered == 1
        # The journal holds the raw consumed sequence including the bad
        # record; the offline run under the same policy must agree.
        config = make_config(on_malformed="skip")
        spec = WindowSpec(window=config.window, stride=config.stride)
        offline = [
            dict(snapshot.labels)
            for snapshot, _ in cluster_stream(
                session.journal, spec, eps=EPS, tau=TAU, on_malformed="skip"
            )
        ]
        assert dict(session.view.clustering.labels) == offline[-1]

    def test_stats_shape(self):
        points = clustered_stream(19, 240)
        config = make_config(backpressure="reject")
        session, _, _ = asyncio.run(drive_session(config, points))
        stats = session.stats()
        assert stats["session"] == "t"
        assert stats["stride"] == session.view.stride
        assert stats["backpressure"] == "reject"
        assert stats["runtime"]["strides"] == session.view.stride + 1
        assert stats["config"] == config.as_dict()
