"""Smoke tests: every example script runs end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args, timeout=180):
    path = os.path.join(EXAMPLES_DIR, name)
    result = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "clusters" in out
    assert "final clusters" in out


def test_traffic_monitoring():
    out = run_example("traffic_monitoring.py", "3000")
    assert "congested segments" in out
    assert "heaviest congestion" in out


def test_earthquake_monitoring():
    out = run_example("earthquake_monitoring.py", "2500")
    assert "seismic zones" in out
    assert "magnitude" in out


def test_method_comparison():
    out = run_example("method_comparison.py", "400", "40")
    assert "DISC" in out
    assert "DBSTREAM" in out
    # Exact methods must report identical high ARI on the same stream.
    lines = [l for l in out.splitlines() if l.startswith(("DISC", "IncDBSCAN"))]
    aris = [float(l.split()[-2]) for l in lines]
    assert len(set(aris)) == 1


def test_community_tracking():
    out = run_example("community_tracking.py", "1500")
    assert "tracked" in out
    assert "community" in out


def test_network_anomalies():
    out = run_example("network_anomalies.py", "2500")
    assert "precision" in out
    assert "recall" in out


@pytest.mark.parametrize(
    "name", ["quickstart.py", "traffic_monitoring.py",
             "earthquake_monitoring.py", "method_comparison.py",
             "community_tracking.py"]
)
def test_examples_exist(name):
    assert os.path.exists(os.path.join(EXAMPLES_DIR, name))
