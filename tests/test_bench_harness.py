"""Unit tests for the benchmark harness and reporting helpers."""

import pytest

from repro.bench.harness import (
    default_measured_strides,
    measure_method,
    prefill,
    steady_slides,
    window_ari,
)
from repro.bench.reporting import Table
from repro.common.config import WindowSpec
from repro.common.points import make_points
from repro.core.disc import DISC
from tests.conftest import clustered_stream


class TestSteadySlides:
    def test_shapes(self):
        spec = WindowSpec(window=20, stride=5)
        points = make_points([(float(i), 0.0) for i in range(40)])
        window, slides = steady_slides(points, spec, 3)
        assert len(window) == 20
        assert len(slides) == 3
        for delta_in, delta_out in slides:
            assert len(delta_in) == len(delta_out) == 5

    def test_fifo_consistency(self):
        spec = WindowSpec(window=20, stride=5)
        points = make_points([(float(i), 0.0) for i in range(40)])
        _, slides = steady_slides(points, spec, 2)
        assert [p.pid for p in slides[0][1]] == [0, 1, 2, 3, 4]
        assert [p.pid for p in slides[0][0]] == [20, 21, 22, 23, 24]

    def test_too_short_stream_rejected(self):
        spec = WindowSpec(window=20, stride=5)
        points = make_points([(float(i), 0.0) for i in range(22)])
        with pytest.raises(ValueError):
            steady_slides(points, spec, 3)

    def test_default_measured_strides_bounds(self):
        assert default_measured_strides(WindowSpec(1000, 1)) == 12
        assert default_measured_strides(WindowSpec(100, 50)) == 3
        assert default_measured_strides(WindowSpec(100, 10)) == 5


class TestMeasureMethod:
    def test_result_fields(self):
        spec = WindowSpec(window=60, stride=15)
        points = clustered_stream(1, 200)
        result = measure_method(DISC(0.7, 4), points, spec, n_measured=4)
        assert result["mean_stride_s"] > 0
        assert result["per_point_s"] == pytest.approx(
            result["mean_stride_s"] / 15
        )
        assert result["range_searches"] > 0
        assert result["n_measured"] == 4

    def test_prefill_produces_full_window(self):
        spec = WindowSpec(window=60, stride=15)
        points = clustered_stream(2, 100)
        disc = DISC(0.7, 4)
        prefill(disc, points[:60], spec)
        assert len(disc) == 60

    def test_window_ari_perfect_on_self(self):
        spec = WindowSpec(window=60, stride=15)
        points = clustered_stream(3, 60)
        disc = DISC(0.7, 4)
        disc.advance(points, ())
        pids = [p.pid for p in points]
        truth = {pid: disc.snapshot().label_of(pid) for pid in pids}
        assert window_ari(disc, truth, pids) == 1.0


class TestTable:
    def test_alignment_and_caption(self):
        table = Table("My caption", ["col", "value"])
        table.add("row-one", 1.23456)
        table.add("r2", 42)
        text = table.to_text()
        lines = text.splitlines()
        assert lines[0] == "My caption"
        assert "col" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "1.235" in text  # float formatting to 4 significant digits
        assert "42" in text

    def test_str(self):
        table = Table("cap", ["a"])
        table.add("x")
        assert str(table) == table.to_text()

    def test_write_result(self, tmp_path, monkeypatch):
        import repro.bench.reporting as reporting

        monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path))
        path = reporting.write_result("unit", "hello", echo=False)
        with open(path) as handle:
            assert handle.read() == "hello\n"
