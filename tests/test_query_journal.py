"""Evolution-journal unit tests: records, idempotence, recovery, limits.

The journal reuses the WAL's segmented CRC32-framed storage engine, so the
contract mirrors ``test_runtime_wal.py``: any tail damage recovers to a
clean contiguous prefix. On top of that sit the CDC-specific guarantees —
records are pure functions of the stride inputs (byte-identical across
live / replay / offline builders), ``publish`` is idempotent across
crash-replay, and every record fits one transport frame.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.limits import (
    MAX_FRAME_BYTES,
    MAX_JOURNAL_RECORD_BYTES,
    PUSH_ENVELOPE_BYTES,
)
from repro.common.snapshot import Category, Clustering
from repro.core.events import EvolutionEvent, EvolutionKind, StrideSummary
from repro.query.journal import (
    JOURNAL_FIELDS,
    EvolutionJournal,
    JournalError,
    JournalStats,
    apply_record,
    encode_record,
    stride_record,
)
from repro.runtime.chaos import bit_flip
from repro.runtime.wal import WalError
from repro.serve import protocol


def clustering(members: dict[int, tuple[int, str]]) -> Clustering:
    """Build a Clustering from ``{pid: (label, category_name)}``."""
    labels = {pid: label for pid, (label, _) in members.items()}
    categories = {pid: Category(cat) for pid, (_, cat) in members.items()}
    return Clustering(labels, categories)


def summary(**kwargs) -> StrideSummary:
    return StrideSummary(**kwargs)


def record_at(journal: EvolutionJournal, stride: int, **extra) -> dict:
    """A small well-formed record for ``stride`` (storage-level tests)."""
    base = {
        "stride": stride,
        "time": float(stride),
        "events": [],
        "counts": {"ex_cores": 0, "neo_cores": 0, "inserted": 1, "deleted": 0},
        "clusters": 0,
        "add": {str(stride): [0, "core"]},
        "expire": [],
        "change": {},
    }
    base.update(extra)
    return base


class TestStrideRecord:
    def test_membership_delta_against_previous(self):
        prev = clustering({1: (0, "core"), 2: (0, "border"), 3: (-1, "noise")})
        now = clustering({2: (1, "core"), 3: (-1, "noise"), 4: (1, "border")})
        record = stride_record(5, prev, now, summary(), time=12.5)
        assert record["stride"] == 5
        assert record["time"] == 12.5
        assert record["add"] == {"4": [1, "border"]}
        assert record["expire"] == [1]
        assert record["change"] == {"2": [1, "core"]}  # label AND cat moved

    def test_category_change_alone_is_reported(self):
        prev = clustering({1: (0, "core"), 2: (0, "border")})
        now = clustering({1: (0, "core"), 2: (0, "core")})
        record = stride_record(0, prev, now, summary())
        assert record["change"] == {"2": [0, "core"]}
        assert record["add"] == {} and record["expire"] == []

    def test_none_prev_means_everything_is_added(self):
        now = clustering({7: (0, "core"), 9: (-1, "noise")})
        record = stride_record(0, None, now, summary())
        assert record["add"] == {"7": [0, "core"], "9": [-1, "noise"]}
        assert record["expire"] == [] and record["change"] == {}

    def test_events_and_counts_serialize(self):
        events = [
            EvolutionEvent(EvolutionKind.MERGE, (3, 5), 102),
            EvolutionEvent(EvolutionKind.DISSIPATE, (), None),
        ]
        record = stride_record(
            2,
            None,
            clustering({}),
            summary(events=events, num_ex_cores=1, num_neo_cores=2,
                    num_inserted=8, num_deleted=8),
        )
        assert record["events"] == [["merge", [3, 5], 102], ["dissipate", [], None]]
        assert record["counts"] == {
            "ex_cores": 1, "neo_cores": 2, "inserted": 8, "deleted": 8,
        }

    def test_encoding_is_canonical_and_deterministic(self):
        prev = clustering({1: (0, "core")})
        now = clustering({1: (0, "core"), 2: (0, "border")})
        a = encode_record(stride_record(3, prev, now, summary(), time=1.0))
        b = encode_record(stride_record(3, prev, now, summary(), time=1.0))
        assert a == b
        assert json.loads(a) == json.loads(b)
        # sorted keys, compact separators: canonical for byte comparisons
        assert a == json.dumps(
            json.loads(a), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def test_apply_record_round_trips_the_delta(self):
        prev = clustering({1: (0, "core"), 2: (0, "border"), 3: (-1, "noise")})
        now = clustering({2: (1, "core"), 3: (1, "border"), 4: (1, "core")})
        record = stride_record(1, prev, now, summary())
        state = {1: [0, "core"], 2: [0, "border"], 3: [-1, "noise"]}
        apply_record(state, record)
        assert state == {2: [1, "core"], 3: [1, "border"], 4: [1, "core"]}


class TestPublish:
    def test_sequences_are_stride_indices(self, tmp_path):
        journal = EvolutionJournal(tmp_path)
        assert journal.publish(record_at(journal, 0)) == 0
        assert journal.publish(record_at(journal, 1)) == 1
        assert journal.head == 2
        assert journal.floor == 0

    def test_republish_is_idempotent(self, tmp_path):
        journal = EvolutionJournal(tmp_path)
        journal.publish(record_at(journal, 0))
        journal.publish(record_at(journal, 1))
        # Crash-replay re-derives stride 0 and 1; both are skipped.
        assert journal.publish(record_at(journal, 0)) is None
        assert journal.publish(record_at(journal, 1)) is None
        assert journal.head == 2
        assert journal.stats.appends == 2

    def test_gap_is_a_bug_and_raises(self, tmp_path):
        journal = EvolutionJournal(tmp_path)
        journal.publish(record_at(journal, 0))
        with pytest.raises(JournalError, match="gap"):
            journal.publish(record_at(journal, 5))

    def test_mislabeled_record_raises(self, tmp_path):
        journal = EvolutionJournal(tmp_path)
        with pytest.raises(JournalError):
            journal.append({"stride": 9, "add": {}})  # append at seq 0

    def test_survives_reopen(self, tmp_path):
        journal = EvolutionJournal(tmp_path)
        for s in range(5):
            journal.publish(record_at(journal, s))
        journal.close()
        reopened = EvolutionJournal(tmp_path)
        assert reopened.head == 5
        assert [r["stride"] for r in reopened.read(0)] == [0, 1, 2, 3, 4]


class TestRead:
    def test_range_and_limit(self, tmp_path):
        journal = EvolutionJournal(tmp_path)
        for s in range(10):
            journal.publish(record_at(journal, s))
        assert [r["stride"] for r in journal.read(3, 7)] == [3, 4, 5, 6]
        assert [r["stride"] for r in journal.read(0, limit=4)] == [0, 1, 2, 3]
        assert journal.stats.reads == 8

    def test_compaction_moves_the_floor(self, tmp_path):
        journal = EvolutionJournal(tmp_path, segment_bytes=1)  # 1 record/segment
        for s in range(6):
            journal.publish(record_at(journal, s))
        removed = journal.compact(4)
        assert removed > 0
        assert journal.stats.compacted_segments == removed
        assert journal.floor > 0
        remaining = [r["stride"] for r in journal.read(0)]
        assert remaining == list(range(journal.floor, 6))


class TestFrameCeiling:
    """Satellite: journal records must fit the serve transport frame."""

    def test_limit_constants_are_consistent(self):
        # A record + its push envelope must fit one protocol frame.
        assert MAX_JOURNAL_RECORD_BYTES + PUSH_ENVELOPE_BYTES <= MAX_FRAME_BYTES
        assert protocol.MAX_FRAME_BYTES == MAX_FRAME_BYTES
        assert EvolutionJournal.max_record_bytes == MAX_JOURNAL_RECORD_BYTES

    def test_oversized_record_is_rejected_at_append(self, tmp_path):
        journal = EvolutionJournal(tmp_path)
        blob = "x" * MAX_JOURNAL_RECORD_BYTES
        with pytest.raises(WalError, match="ceiling"):
            journal.publish(record_at(journal, 0, add={"0": [0, blob]}))
        # The journal stays clean and appendable after the rejection.
        assert journal.publish(record_at(journal, 0)) == 0

    def test_every_journaled_record_ships_in_one_push_frame(self, tmp_path):
        journal = EvolutionJournal(tmp_path)
        big = {str(pid): [pid, "core"] for pid in range(2000)}
        journal.publish(record_at(journal, 0, add=big))
        [record] = journal.read(0)
        frame = protocol.encode_frame(
            {"push": "event", "session": "tenant-with-a-long-name", "record": record}
        )
        assert len(frame) <= MAX_FRAME_BYTES


class TestStats:
    def test_fields_match_schema_tuple(self):
        assert set(JournalStats().as_dict()) == set(JOURNAL_FIELDS)

    def test_counters_accumulate(self, tmp_path):
        journal = EvolutionJournal(tmp_path, fsync="always")
        journal.publish(record_at(journal, 0))
        journal.commit()
        stats = journal.stats.as_dict()
        assert stats["appends"] == 1
        assert stats["fsyncs"] >= 1
        assert stats["bytes"] > 0


@settings(max_examples=50, deadline=None)
@given(
    n_records=st.integers(min_value=1, max_value=20),
    damage=st.one_of(
        st.tuples(st.just("truncate"), st.integers(min_value=0, max_value=600)),
        st.tuples(st.just("flip"), st.integers(min_value=0, max_value=599)),
    ),
)
def test_any_tail_damage_recovers_to_clean_prefix(tmp_path_factory, n_records, damage):
    """Property: arbitrary byte damage to the journal's tail segment
    recovers the longest clean contiguous prefix of strides — never garbage,
    never a gap — and publishing continues from the recovered head."""
    directory = tmp_path_factory.mktemp("evj")
    journal = EvolutionJournal(directory, segment_bytes=10**9)  # single segment
    for s in range(n_records):
        journal.publish(record_at(journal, s))
    journal.close()
    tail = directory / "evj-000000000000.seg"
    size = os.path.getsize(tail)
    kind, arg = damage
    if kind == "truncate":
        with open(tail, "r+b") as handle:
            handle.truncate(min(arg, size))
    else:
        bit_flip(tail, offset=arg % size)

    recovered = EvolutionJournal(directory)
    replayed = recovered.read(0)
    assert [r["stride"] for r in replayed] == list(range(len(replayed)))
    assert all(
        encode_record(r) == encode_record(record_at(recovered, r["stride"]))
        for r in replayed
    )
    # The pipeline re-derives the lost strides; publish resumes cleanly.
    next_stride = recovered.head
    assert recovered.publish(record_at(recovered, next_stride)) == next_stride
    recovered.commit()
    recovered.close()
    assert EvolutionJournal(directory).head == next_stride + 1
