"""Unit tests for the grid index (and the linear oracle's own contract)."""

import math
import random

import pytest

from repro.common.errors import IndexError_
from repro.index.grid import GridIndex
from repro.index.linear import LinearScanIndex


class TestGridConstruction:
    def test_cell_side(self):
        grid = GridIndex(eps=2.0, dim=4)
        assert grid.side == pytest.approx(1.0)

    def test_bad_eps(self):
        with pytest.raises(IndexError_):
            GridIndex(eps=0.0, dim=2)

    def test_bad_dim(self):
        with pytest.raises(IndexError_):
            GridIndex(eps=1.0, dim=0)

    def test_same_cell_points_within_eps(self):
        # The defining grid property: any two points sharing a cell are
        # within eps of each other.
        grid = GridIndex(eps=1.0, dim=3)
        corner_to_corner = math.sqrt(3) * grid.side
        assert corner_to_corner <= 1.0 + 1e-9


class TestGridOperations:
    def test_insert_delete_roundtrip(self):
        grid = GridIndex(eps=1.0, dim=2)
        grid.insert(1, (0.2, 0.2))
        assert 1 in grid
        assert grid.coords_of(1) == (0.2, 0.2)
        grid.delete(1)
        assert 1 not in grid
        assert len(grid) == 0

    def test_duplicate_insert_rejected(self):
        grid = GridIndex(eps=1.0, dim=2)
        grid.insert(1, (0.0, 0.0))
        with pytest.raises(IndexError_):
            grid.insert(1, (0.0, 0.0))

    def test_delete_unknown_rejected(self):
        with pytest.raises(IndexError_):
            GridIndex(eps=1.0, dim=2).delete(7)

    def test_empty_cells_are_dropped(self):
        grid = GridIndex(eps=1.0, dim=2)
        grid.insert(1, (0.0, 0.0))
        key = grid.cell_of((0.0, 0.0))
        assert grid.cell_points(key)
        grid.delete(1)
        assert grid.cell_points(key) == {}
        assert grid.occupied_cells() == []


class TestGridBall:
    @pytest.mark.parametrize("dim", [1, 2, 3, 4])
    def test_matches_linear_scan(self, dim):
        grid = GridIndex(eps=1.0, dim=dim)
        oracle = LinearScanIndex()
        rng = random.Random(dim)
        for pid in range(300):
            coords = tuple(rng.uniform(-5, 5) for _ in range(dim))
            grid.insert(pid, coords)
            oracle.insert(pid, coords)
        for _ in range(60):
            center = tuple(rng.uniform(-5, 5) for _ in range(dim))
            radius = rng.uniform(0.05, 1.0)
            got = sorted(p for p, _ in grid.ball(center, radius))
            want = sorted(p for p, _ in oracle.ball(center, radius))
            assert got == want

    def test_negative_coordinates(self):
        grid = GridIndex(eps=1.0, dim=2)
        grid.insert(1, (-3.7, -2.1))
        assert [p for p, _ in grid.ball((-3.5, -2.0), 0.5)] == [1]

    def test_radius_beyond_eps_rejected(self):
        grid = GridIndex(eps=1.0, dim=2)
        with pytest.raises(IndexError_):
            grid.ball((0.0, 0.0), 2.0)

    def test_neighbour_cells_cover_eps(self):
        grid = GridIndex(eps=1.0, dim=2)
        rng = random.Random(3)
        for pid in range(200):
            grid.insert(pid, (rng.uniform(0, 4), rng.uniform(0, 4)))
        # Every point within eps of a probe must live in a stencil cell.
        for _ in range(40):
            center = (rng.uniform(0, 4), rng.uniform(0, 4))
            stencil = set(grid.neighbour_cells(grid.cell_of(center)))
            for pid, coords in grid.ball(center, 1.0):
                assert grid.cell_of(coords) in stencil


class TestLinearScan:
    def test_mark_unknown_rejected(self):
        with pytest.raises(IndexError_):
            LinearScanIndex().mark(1, 1)

    def test_check_invariants(self):
        index = LinearScanIndex()
        index.insert(1, (0.0,))
        index.check_invariants()

    def test_items(self):
        index = LinearScanIndex()
        index.insert(1, (0.0, 1.0))
        index.insert(2, (2.0, 3.0))
        assert sorted(index.items()) == [(1, (0.0, 1.0)), (2, (2.0, 3.0))]

    def test_stats_track_operations(self):
        index = LinearScanIndex()
        index.insert(1, (0.0,))
        index.ball((0.0,), 1.0)
        index.delete(1)
        assert index.stats.inserts == 1
        assert index.stats.range_searches == 1
        assert index.stats.deletes == 1
