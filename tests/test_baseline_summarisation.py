"""Behavioural tests for the summarisation baselines (DBSTREAM, EDMStream).

These methods are approximate, so tests pin behaviour, not exact labels:
well-separated blobs must come out as separate clusters, decay must forget
stale regions, and insertion must stay cheap.
"""

from repro.baselines.dbstream import DBStream
from repro.baselines.edmstream import EDMStream
from repro.common.points import StreamPoint
from repro.metrics.ari import adjusted_rand_index
from tests.conftest import clustered_stream


def blob_points(centers, per_blob, spread=0.15, start_id=0, seed=0):
    import random

    rng = random.Random(seed)
    points = []
    pid = start_id
    truth = {}
    for label, (cx, cy) in enumerate(centers):
        for _ in range(per_blob):
            coords = (cx + rng.gauss(0, spread), cy + rng.gauss(0, spread))
            points.append(StreamPoint(pid, coords, float(pid)))
            truth[pid] = label
            pid += 1
    rng.shuffle(points)
    return points, truth


class TestDBStream:
    def test_separates_far_blobs(self):
        points, truth = blob_points([(0, 0), (10, 10), (20, 0)], 80)
        method = DBStream(radius=1.0, dim=2, fade=0.0005)
        method.advance(points, ())
        snapshot = method.snapshot()
        pids = [p.pid for p in points]
        ari = adjusted_rand_index(
            [truth[p] for p in pids], snapshot.label_array(pids)
        )
        assert ari > 0.9

    def test_micro_clusters_bounded(self):
        points, _ = blob_points([(0, 0)], 300)
        method = DBStream(radius=1.0, dim=2)
        method.advance(points, ())
        # One tight blob must be summarised by a handful of micro-clusters.
        assert method.num_micro_clusters() < 30

    def test_cleanup_forgets_stale_regions(self):
        early, _ = blob_points([(0, 0)], 150, seed=1)
        late, _ = blob_points([(50, 50)], 3000, start_id=1000, seed=2)
        method = DBStream(radius=1.0, dim=2, fade=0.01, gap=200)
        method.advance(early, ())
        count_after_early = method.num_micro_clusters()
        method.advance(late, ())
        centers = [mc.center for mc in method._mcs.values()]
        stale = [c for c in centers if c[0] < 25.0]
        assert len(stale) < count_after_early

    def test_departures_only_affect_labelling_window(self):
        points, _ = blob_points([(0, 0)], 50)
        method = DBStream(radius=1.0, dim=2)
        method.advance(points, ())
        method.advance((), points[:25])
        assert len(method) == 25

    def test_shared_density_connects_adjacent_mcs(self):
        # A dense bar spanning several MC radii must come out as ONE cluster.
        points = [
            StreamPoint(i, (0.05 * i, 0.0), float(i)) for i in range(400)
        ]
        method = DBStream(radius=1.0, dim=2, fade=0.0005, alpha=0.1)
        method.advance(points, ())
        snapshot = method.snapshot()
        assert snapshot.num_clusters == 1


class TestEDMStream:
    def test_separates_far_blobs(self):
        points, truth = blob_points([(0, 0), (10, 10), (20, 0)], 80)
        method = EDMStream(radius=1.0, dim=2, fade=0.0005, separation=4.0)
        method.advance(points, ())
        snapshot = method.snapshot()
        pids = [p.pid for p in points]
        ari = adjusted_rand_index(
            [truth[p] for p in pids], snapshot.label_array(pids)
        )
        assert ari > 0.9

    def test_cells_bounded(self):
        points, _ = blob_points([(0, 0)], 300)
        method = EDMStream(radius=1.0, dim=2)
        method.advance(points, ())
        assert method.num_cells() < 30

    def test_dependency_tree_has_one_root_per_blob(self):
        points, _ = blob_points([(0, 0), (30, 30)], 120)
        method = EDMStream(radius=1.0, dim=2, fade=0.0005, separation=5.0)
        method.advance(points, ())
        assignment = method.dependency_tree()
        roots = {cid for cid in assignment.values()}
        assert len(roots) == 2

    def test_sparse_cells_are_outliers(self):
        lone = [StreamPoint(0, (100.0, 100.0), 0.0)]
        points, _ = blob_points([(0, 0)], 100)
        method = EDMStream(radius=1.0, dim=2, fade=0.0005, min_density=2.0)
        method.advance(points + lone, ())
        snapshot = method.snapshot()
        assert snapshot.label_of(0) == snapshot.NOISE_ID

    def test_insertion_faster_than_exact(self):
        # Structural, not a timing assertion: EDMStream touches only its
        # cell summaries on insert, so the number of cells it keeps is far
        # below the window size.
        points = clustered_stream(9, 500)
        method = EDMStream(radius=0.7, dim=2)
        method.advance(points, ())
        assert method.num_cells() < len(points) / 3
