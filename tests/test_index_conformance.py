"""Conformance suite: every registered backend honours the NeighborIndex contract.

One parametrized battery runs against every name in the registry, so a new
backend registered via ``register_index`` is automatically held to the same
contract: agreement with a brute-force oracle on ball/count_ball, correct
delete-then-query behaviour, epoch-probing semantics (native or through the
:class:`~repro.index.epochs.EpochAdapter`), and a batched query layer whose
results are identical — bit for bit — to per-point loops.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.common.errors import IndexError_
from repro.index import (
    EpochAdapter,
    NeighborIndex,
    available_indexes,
    make_index,
    with_epochs,
)

EPS = 0.75
DIM = 2
BACKENDS = available_indexes()


def make_backend(name: str) -> NeighborIndex:
    return make_index(name, eps=EPS, dim=DIM)


def cloud(n: int, seed: int, dim: int = DIM) -> list[tuple[int, tuple[float, ...]]]:
    rng = random.Random(seed)
    return [
        (pid, tuple(rng.uniform(0.0, 6.0) for _ in range(dim)))
        for pid in range(n)
    ]


def oracle_ball(points, center, radius):
    return sorted(
        pid for pid, coords in points if math.dist(coords, center) <= radius
    )


@pytest.fixture(params=BACKENDS)
def backend(request):
    index = make_backend(request.param)
    yield index
    index.check_invariants()


def test_registry_is_complete():
    assert set(BACKENDS) >= {"grid", "linear", "rtree", "vectorgrid"}


class TestBallAgainstOracle:
    def test_ball_matches_linear_oracle(self, backend):
        points = cloud(180, seed=1)
        for pid, coords in points:
            backend.insert(pid, coords)
        rng = random.Random(2)
        for radius in (EPS, EPS / 3, 0.0):
            for _ in range(25):
                center = (rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0))
                got = sorted(pid for pid, _ in backend.ball(center, radius))
                assert got == oracle_ball(points, center, radius)

    def test_count_ball_matches_ball(self, backend):
        points = cloud(150, seed=3)
        for pid, coords in points:
            backend.insert(pid, coords)
        rng = random.Random(4)
        for _ in range(40):
            center = (rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0))
            assert backend.count_ball(center, EPS) == len(backend.ball(center, EPS))

    def test_ball_returns_indexed_coords(self, backend):
        points = cloud(60, seed=5)
        for pid, coords in points:
            backend.insert(pid, coords)
        lookup = dict(points)
        for pid, coords in backend.ball(points[0][1], EPS):
            assert coords == lookup[pid]


class TestMutation:
    def test_delete_then_query(self, backend):
        points = cloud(120, seed=6)
        for pid, coords in points:
            backend.insert(pid, coords)
        removed = [pid for pid, _ in points[::3]]
        for pid in removed:
            backend.delete(pid)
        survivors = [item for item in points if item[0] not in set(removed)]
        assert len(backend) == len(survivors)
        rng = random.Random(7)
        for _ in range(20):
            center = (rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0))
            got = sorted(pid for pid, _ in backend.ball(center, EPS))
            assert got == oracle_ball(survivors, center, EPS)
        for pid in removed:
            assert pid not in backend
            with pytest.raises(IndexError_):
                backend.delete(pid)

    def test_duplicate_insert_rejected(self, backend):
        backend.insert(1, (0.0, 0.0))
        with pytest.raises(IndexError_):
            backend.insert(1, (1.0, 1.0))

    def test_items_round_trip(self, backend):
        points = cloud(50, seed=8)
        for pid, coords in points:
            backend.insert(pid, coords)
        assert sorted(backend.items()) == sorted(points)
        for pid, coords in points[:10]:
            assert backend.coords_of(pid) == coords


class TestBatchedLayer:
    """The batched API must be indistinguishable from per-point loops."""

    def test_insert_many_equals_looped_inserts(self, backend_name_pair):
        batched, looped = backend_name_pair
        points = cloud(200, seed=9)
        batched.insert_many(points)
        for pid, coords in points:
            looped.insert(pid, coords)
        rng = random.Random(10)
        for _ in range(25):
            center = (rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0))
            assert sorted(batched.ball(center, EPS)) == sorted(
                looped.ball(center, EPS)
            )

    def test_delete_many_equals_looped_deletes(self, backend_name_pair):
        batched, looped = backend_name_pair
        points = cloud(150, seed=11)
        batched.insert_many(points)
        looped.insert_many(points)
        doomed = [pid for pid, _ in points[::4]]
        batched.delete_many(doomed)
        for pid in doomed:
            looped.delete(pid)
        assert sorted(batched.items()) == sorted(looped.items())

    def test_ball_many_identical_to_looped_balls(self, backend):
        points = cloud(160, seed=12)
        backend.insert_many(points)
        rng = random.Random(13)
        centers = [
            (rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0)) for _ in range(30)
        ]
        batched = backend.ball_many(centers, EPS)
        looped = [backend.ball(center, EPS) for center in centers]
        assert batched == looped  # same points, same order, bit-identical

    def test_count_ball_many_bit_identical(self, backend):
        points = cloud(220, seed=14)
        backend.insert_many(points)
        rng = random.Random(15)
        # Centers on indexed points maximise boundary cases (dist == radius).
        centers = [coords for _, coords in points[::5]] + [
            (rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0)) for _ in range(20)
        ]
        batched = backend.count_ball_many(centers, EPS)
        looped = [backend.count_ball(center, EPS) for center in centers]
        assert batched == looped

    def test_batched_calls_on_empty_index(self, backend):
        assert backend.ball_many([(0.0, 0.0)], EPS) == [[]]
        assert backend.count_ball_many([(0.0, 0.0)], EPS) == [0]
        assert backend.ball_many([], EPS) == []
        assert backend.count_ball_many([], EPS) == []


@pytest.fixture(params=BACKENDS)
def backend_name_pair(request):
    """Two fresh instances of the same backend, for batched-vs-looped tests."""
    return make_backend(request.param), make_backend(request.param)


class TestEpochProbing:
    """Epoch semantics must hold on every backend, native or adapted."""

    @pytest.fixture(params=BACKENDS)
    def epoch_backend(self, request):
        index = with_epochs(make_backend(request.param))
        points = cloud(90, seed=16)
        index.insert_many(points)
        return index, points

    def test_with_epochs_wraps_only_when_needed(self):
        for name in BACKENDS:
            raw = make_backend(name)
            wrapped = with_epochs(raw)
            assert wrapped.supports_epochs
            if raw.supports_epochs:
                assert wrapped is raw
            else:
                assert isinstance(wrapped, EpochAdapter)
                assert wrapped.inner is raw

    def test_first_probe_equals_plain_ball(self, epoch_backend):
        index, points = epoch_backend
        tick = index.new_tick()
        center = points[0][1]
        unvisited = sorted(pid for pid, _ in index.ball_unvisited(center, EPS, tick))
        assert unvisited == sorted(pid for pid, _ in index.ball(center, EPS))

    def test_visited_points_are_not_returned_again(self, epoch_backend):
        index, points = epoch_backend
        tick = index.new_tick()
        center = points[0][1]
        first = index.ball_unvisited(center, EPS, tick)
        assert index.ball_unvisited(center, EPS, tick) == []
        # Overlapping probe: only points outside the first ball may show up.
        seen = {pid for pid, _ in first}
        other = index.ball_unvisited(points[1][1], EPS, tick)
        assert not seen & {pid for pid, _ in other}

    def test_should_mark_defers_marking(self, epoch_backend):
        index, points = epoch_backend
        tick = index.new_tick()
        center = points[0][1]
        first = index.ball_unvisited(center, EPS, tick, lambda pid: False)
        second = index.ball_unvisited(center, EPS, tick, lambda pid: False)
        assert sorted(first) == sorted(second)  # nothing was marked
        for pid, _ in first:
            index.mark(pid, tick)
        assert index.ball_unvisited(center, EPS, tick) == []

    def test_new_tick_resets_visibility(self, epoch_backend):
        index, points = epoch_backend
        center = points[0][1]
        tick = index.new_tick()
        index.ball_unvisited(center, EPS, tick)
        fresh = index.new_tick()
        assert fresh > tick
        unvisited = sorted(pid for pid, _ in index.ball_unvisited(center, EPS, fresh))
        assert unvisited == sorted(pid for pid, _ in index.ball(center, EPS))

    def test_mark_unknown_pid_rejected(self, epoch_backend):
        index, _ = epoch_backend
        tick = index.new_tick()
        with pytest.raises(IndexError_):
            index.mark(10_000, tick)

    def test_inserted_point_starts_unvisited(self, epoch_backend):
        index, points = epoch_backend
        tick = index.new_tick()
        center = points[0][1]
        index.ball_unvisited(center, EPS, tick)
        index.insert(9_999, center)
        late = index.ball_unvisited(center, EPS, tick)
        assert [pid for pid, _ in late] == [9_999]

    def test_adapter_keeps_vectorized_batches(self):
        wrapped = with_epochs(make_backend("vectorgrid"))
        assert isinstance(wrapped, EpochAdapter)
        points = cloud(80, seed=17)
        wrapped.insert_many(points)
        centers = [coords for _, coords in points[::3]]
        assert wrapped.count_ball_many(centers, EPS) == [
            wrapped.count_ball(center, EPS) for center in centers
        ]


class TestStats:
    def test_range_searches_counted_per_center(self, backend):
        points = cloud(40, seed=18)
        backend.insert_many(points)
        before = backend.stats.range_searches
        centers = [coords for _, coords in points[:7]]
        backend.ball_many(centers, EPS)
        backend.count_ball_many(centers, EPS)
        assert backend.stats.range_searches == before + 14

    def test_every_backend_counts_search_work(self, backend):
        """ball on a non-empty index must move all three search counters."""
        points = cloud(60, seed=19)
        backend.insert_many(points)
        before = backend.stats.snapshot()
        for _, coords in points[:5]:
            backend.ball(coords, EPS)
        delta = backend.stats.snapshot() - before
        assert delta.range_searches == 5
        # The search visited *some* structure and scanned *some* entries —
        # a backend that reports zero work for a hit-producing search is
        # not instrumented.
        assert delta.nodes_accessed > 0
        assert delta.entries_scanned > 0

    def test_inserts_and_deletes_counted(self, backend):
        points = cloud(30, seed=20)
        backend.insert_many(points)
        assert backend.stats.inserts == 30
        backend.delete_many([pid for pid, _ in points[:10]])
        assert backend.stats.deletes == 10

    def test_snapshot_sub_round_trip(self, backend):
        from repro.index.stats import FIELDS, IndexStats

        points = cloud(50, seed=21)
        backend.insert_many(points)
        before = backend.stats.snapshot()
        backend.ball(points[0][1], EPS)
        backend.delete(points[0][0])
        after = backend.stats.snapshot()
        delta = after - before
        assert isinstance(delta, IndexStats)
        # snapshot is an independent copy: mutating the live stats must not
        # retro-change it.
        backend.ball(points[1][1], EPS)
        assert after.range_searches == before.range_searches + 1
        # before + delta == after, field by field (epoch_prunes included).
        for name in FIELDS:
            assert getattr(before, name) + getattr(delta, name) == getattr(
                after, name
            )
        assert set(delta.as_dict()) == set(FIELDS)

    def test_epoch_prunes_counted_on_every_backend(self, backend):
        """Probing the same ball twice in one tick prunes on the second."""
        index = with_epochs(backend)
        points = cloud(40, seed=22)
        index.insert_many(points)
        stats = backend.stats  # adapter shares the inner backend's stats
        tick = index.new_tick()
        center = points[0][1]
        first = index.ball_unvisited(center, EPS, tick)
        assert len(first) > 1
        before = stats.epoch_prunes
        index.ball_unvisited(center, EPS, tick)
        assert stats.epoch_prunes >= before + len(first)
