"""Unit tests for every dataset simulator and the registry."""

import pytest

from repro.datasets import (
    DATASETS,
    blob_stream,
    covid_stream,
    dtg_stream,
    geolife_stream,
    iris_stream,
    load_dataset,
    maze_stream,
    uniform_noise,
)
from repro.datasets.synthetic import drifting_blob_stream, two_ring_stream


GENERATORS = {
    "dtg": (dtg_stream, 2),
    "geolife": (geolife_stream, 3),
    "covid": (covid_stream, 2),
    "iris": (iris_stream, 4),
}


class TestGeneratorContracts:
    @pytest.mark.parametrize("name", list(GENERATORS))
    def test_determinism(self, name):
        generator, _ = GENERATORS[name]
        a = generator(200, seed=5)
        b = generator(200, seed=5)
        assert a == b

    @pytest.mark.parametrize("name", list(GENERATORS))
    def test_seeds_differ(self, name):
        generator, _ = GENERATORS[name]
        assert generator(100, seed=1) != generator(100, seed=2)

    @pytest.mark.parametrize("name", list(GENERATORS))
    def test_dimensions(self, name):
        generator, dim = GENERATORS[name]
        points = generator(50, seed=0)
        assert all(len(p.coords) == dim for p in points)

    @pytest.mark.parametrize("name", list(GENERATORS))
    def test_ids_and_times_monotone(self, name):
        generator, _ = GENERATORS[name]
        points = generator(100, seed=0)
        pids = [p.pid for p in points]
        assert pids == sorted(pids)
        times = [p.time for p in points]
        assert times == sorted(times)

    @pytest.mark.parametrize("name", list(GENERATORS))
    def test_start_id_offset(self, name):
        generator, _ = GENERATORS[name]
        points = generator(10, seed=0, start_id=500)
        assert points[0].pid == 500


class TestMaze:
    def test_truth_labels_cover_stream(self):
        points, truth = maze_stream(500, seed=0)
        assert set(truth) == {p.pid for p in points}

    def test_hundred_trajectories(self):
        _, truth = maze_stream(1000, seed=0)
        assert len(set(truth.values())) == 100

    def test_round_robin_emission(self):
        points, truth = maze_stream(250, seed=0, n_seeds=5)
        labels = [truth[p.pid] for p in points[:10]]
        assert labels == [0, 1, 2, 3, 4, 0, 1, 2, 3, 4]

    def test_consecutive_steps_are_close(self):
        points, truth = maze_stream(400, seed=1, n_seeds=4, step=0.35, jitter=0.05)
        by_walker = {}
        for p in points:
            by_walker.setdefault(truth[p.pid], []).append(p.coords)
        for coords in by_walker.values():
            for a, b in zip(coords, coords[1:]):
                dist = ((a[0] - b[0]) ** 2 + (a[1] - b[1]) ** 2) ** 0.5
                assert dist < 1.0

    def test_walkers_stay_near_arena(self):
        points, _ = maze_stream(2000, seed=2, extent=50.0)
        for p in points:
            assert -1.0 <= p.coords[0] <= 51.0
            assert -1.0 <= p.coords[1] <= 51.0


class TestDTGStructure:
    def test_points_lie_on_roads(self):
        # With zero jitter, one coordinate of every record must be a
        # multiple of the road gap.
        points = dtg_stream(300, seed=0, gps_jitter=0.0)
        on_road = 0
        for p in points:
            x, y = p.coords
            if min(abs(x / 0.5 - round(x / 0.5)), abs(y / 0.5 - round(y / 0.5))) < 1e-9:
                on_road += 1
        assert on_road == len(points)

    def test_congestion_makes_hotspots(self):
        points = dtg_stream(2000, seed=0)
        from collections import Counter

        cells = Counter(
            (round(p.coords[0] * 2), round(p.coords[1] * 2)) for p in points
        )
        top = cells.most_common(1)[0][1]
        assert top > 5 * (len(points) / len(cells))


class TestOtherSims:
    def test_geolife_altitude_squashed(self):
        points = geolife_stream(500, seed=0)
        altitudes = [p.coords[2] for p in points]
        assert max(altitudes) <= 0.0031
        assert min(altitudes) >= 0.0

    def test_covid_bounds(self):
        points = covid_stream(500, seed=0)
        for p in points:
            assert -62.0 <= p.coords[0] <= 72.0

    def test_iris_magnitude_scaled(self):
        points = iris_stream(500, seed=0)
        magnitudes = [p.coords[3] for p in points]
        assert min(magnitudes) >= 20.0 - 1e-9
        assert max(magnitudes) <= 95.0

    def test_iris_depth_non_negative(self):
        points = iris_stream(500, seed=0)
        assert all(p.coords[2] >= 0.0 for p in points)


class TestSynthetic:
    def test_blob_stream_dims(self):
        points = blob_stream(100, [(0.0, 0.0, 0.0)], seed=0)
        assert all(len(p.coords) == 3 for p in points)

    def test_uniform_noise_bounds(self):
        points = uniform_noise(100, dim=2, bounds=(2.0, 3.0), seed=0)
        for p in points:
            assert all(2.0 <= c <= 3.0 for c in p.coords)

    def test_drifting_blobs_deterministic(self):
        assert drifting_blob_stream(100, seed=4) == drifting_blob_stream(100, seed=4)

    def test_two_rings_radii(self):
        points = two_ring_stream(400, seed=0)
        for p in points:
            radius = (p.coords[0] ** 2 + p.coords[1] ** 2) ** 0.5
            assert 1.0 < radius < 6.0


class TestRegistry:
    def test_all_entries_load(self):
        for key, info in DATASETS.items():
            points = info.load(50, seed=0)
            assert len(points) == 50
            assert all(len(p.coords) == info.dim for p in points)

    def test_load_dataset_case_insensitive(self):
        assert load_dataset("DTG", 10) == load_dataset("dtg", 10)

    def test_registry_parameters_sane(self):
        for info in DATASETS.values():
            assert info.eps > 0
            assert info.tau >= 1
            assert info.window > 0
