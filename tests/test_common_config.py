"""Unit tests for configuration dataclasses."""

import pytest

from repro.common.config import ClusteringParams, WindowSpec
from repro.common.errors import ConfigurationError


class TestClusteringParams:
    def test_valid(self):
        params = ClusteringParams(eps=0.5, tau=4)
        assert params.eps == 0.5
        assert params.tau == 4

    def test_eps_sq(self):
        assert ClusteringParams(eps=3.0, tau=1).eps_sq == 9.0

    @pytest.mark.parametrize("eps", [0.0, -1.0])
    def test_bad_eps(self, eps):
        with pytest.raises(ConfigurationError):
            ClusteringParams(eps=eps, tau=4)

    @pytest.mark.parametrize("tau", [0, -3])
    def test_bad_tau(self, tau):
        with pytest.raises(ConfigurationError):
            ClusteringParams(eps=1.0, tau=tau)

    def test_frozen(self):
        params = ClusteringParams(eps=1.0, tau=2)
        with pytest.raises(AttributeError):
            params.eps = 2.0

    def test_tau_of_one_allowed(self):
        assert ClusteringParams(eps=1.0, tau=1).tau == 1


class TestWindowSpec:
    def test_valid(self):
        spec = WindowSpec(window=100, stride=10)
        assert spec.strides_per_window == 10
        assert spec.stride_ratio == 0.1

    def test_stride_equal_to_window(self):
        spec = WindowSpec(window=50, stride=50)
        assert spec.strides_per_window == 1
        assert spec.stride_ratio == 1.0

    def test_stride_larger_than_window_rejected(self):
        with pytest.raises(ConfigurationError):
            WindowSpec(window=10, stride=11)

    @pytest.mark.parametrize("window,stride", [(0, 1), (-5, 1), (10, 0), (10, -2)])
    def test_non_positive_rejected(self, window, stride):
        with pytest.raises(ConfigurationError):
            WindowSpec(window=window, stride=stride)

    def test_non_divisible_strides_per_window_floors(self):
        assert WindowSpec(window=100, stride=30).strides_per_window == 3
