"""End-to-end tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import main
from repro.datasets.io import read_stream


@pytest.fixture
def maze_csv(tmp_path):
    path = str(tmp_path / "maze.csv")
    code = main(
        ["generate", "--dataset", "maze", "--n", "600", "--output", path]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_generates_stream(self, maze_csv):
        points = list(read_stream(maze_csv))
        assert len(points) == 600
        assert len(points[0].coords) == 2

    def test_seed_determinism(self, tmp_path, capsys):
        a = str(tmp_path / "a.csv")
        b = str(tmp_path / "b.csv")
        main(["generate", "--dataset", "iris", "--n", "50", "--output", a,
              "--seed", "3"])
        main(["generate", "--dataset", "iris", "--n", "50", "--output", b,
              "--seed", "3"])
        assert list(read_stream(a)) == list(read_stream(b))

    def test_jsonl_output(self, tmp_path):
        path = str(tmp_path / "covid.jsonl")
        main(["generate", "--dataset", "covid", "--n", "40", "--output", path])
        assert len(list(read_stream(path))) == 40


class TestCluster:
    @pytest.mark.parametrize("method", ["disc", "dbscan", "extran", "rho2"])
    def test_methods_run(self, maze_csv, tmp_path, capsys, method):
        labels = str(tmp_path / "labels.csv")
        code = main(
            [
                "cluster", "--input", maze_csv, "--method", method,
                "--eps", "0.8", "--tau", "4",
                "--window", "300", "--stride", "60",
                "--output", labels,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "clusters" in out
        with open(labels) as handle:
            assert len(handle.read().splitlines()) == 301  # header + window

    def test_events_logged(self, maze_csv, capsys):
        code = main(
            [
                "cluster", "--input", maze_csv, "--method", "disc",
                "--eps", "0.8", "--tau", "4",
                "--window", "300", "--stride", "60", "--events",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "emerge" in out

    def test_empty_input_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.csv"
        path.write_text("")
        code = main(
            [
                "cluster", "--input", str(path), "--eps", "1", "--tau", "2",
                "--window", "10", "--stride", "5",
            ]
        )
        assert code == 1


class TestResilientCluster:
    BASE = ["cluster", "--eps", "0.8", "--tau", "4",
            "--window", "300", "--stride", "60"]

    @pytest.mark.chaos
    def test_kill_resume_round_trip_is_byte_identical(
        self, maze_csv, tmp_path, capsys
    ):
        ck = str(tmp_path / "ckpt")
        reference = str(tmp_path / "reference.csv")
        resumed = str(tmp_path / "resumed.csv")

        code = main(self.BASE + ["--input", maze_csv, "--output", reference])
        assert code == 0

        code = main(
            self.BASE
            + ["--input", maze_csv, "--checkpoint-dir", ck,
               "--checkpoint-every", "2", "--chaos-kill-at", "5"]
        )
        assert code == 3  # EXIT_CHAOS: the drill crashed as planned
        err = capsys.readouterr().err
        assert "killed" in err

        code = main(
            self.BASE
            + ["--input", maze_csv, "--checkpoint-dir", ck, "--resume",
               "--output", resumed]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed 1x" in out
        with open(reference) as a, open(resumed) as b:
            assert a.read() == b.read()

    def test_skip_policy_with_dead_letter(self, maze_csv, tmp_path, capsys):
        dirty = str(tmp_path / "dirty.csv")
        with open(maze_csv) as src, open(dirty, "w") as dst:
            for i, line in enumerate(src):
                dst.write(line)
                if i == 100:
                    dst.write("garbage,row\n")
        dead = str(tmp_path / "dead.jsonl")
        code = main(
            self.BASE
            + ["--input", dirty, "--on-malformed", "skip",
               "--dead-letter", dead]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 dead-lettered" in out
        assert "unparsable=1" in out
        with open(dead) as handle:
            assert "garbage" in handle.read()

    def test_checkpointing_requires_disc(self, maze_csv, tmp_path, capsys):
        code = main(
            self.BASE
            + ["--input", maze_csv, "--method", "dbscan",
               "--checkpoint-dir", str(tmp_path / "ck")]
        )
        assert code == 1
        assert "--method disc" in capsys.readouterr().err

    def test_resume_requires_checkpoint_dir(self, maze_csv, capsys):
        code = main(self.BASE + ["--input", maze_csv, "--resume"])
        assert code == 1
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_resume_with_empty_store_fails_cleanly(
        self, maze_csv, tmp_path, capsys
    ):
        code = main(
            self.BASE
            + ["--input", maze_csv, "--checkpoint-dir",
               str(tmp_path / "never-written"), "--resume"]
        )
        assert code == 2
        assert "nothing to resume" in capsys.readouterr().err


class TestEstimate:
    def test_suggests_parameters(self, maze_csv, capsys):
        code = main(["estimate", "--input", maze_csv, "--k", "4",
                     "--sample", "400"])
        assert code == 0
        out = capsys.readouterr().out
        assert "suggested eps" in out
        assert "suggested tau" in out

    def test_too_few_points(self, tmp_path, capsys):
        path = tmp_path / "tiny.csv"
        path.write_text("1.0,2.0\n3.0,4.0\n")
        code = main(["estimate", "--input", str(path), "--k", "4"])
        assert code == 1


class TestCompare:
    def test_all_methods_reported(self, maze_csv, capsys):
        code = main(
            [
                "compare", "--input", maze_csv, "--eps", "0.8", "--tau", "4",
                "--window", "300", "--stride", "60",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("DISC", "IncDBSCAN", "EXTRA-N", "DBSCAN",
                     "rho2-DBSCAN", "DBSTREAM", "EDMSTREAM"):
            assert name in out


class TestObservabilityFlags:
    BASE = ["cluster", "--eps", "0.8", "--tau", "4",
            "--window", "300", "--stride", "60"]

    def test_trace_and_metrics_round_trip(self, maze_csv, tmp_path, capsys):
        from repro.observability import validate_trace_file

        trace = str(tmp_path / "trace.jsonl")
        prom = str(tmp_path / "disc.prom")
        code = main(
            self.BASE
            + ["--input", maze_csv, "--trace", trace, "--metrics-out", prom]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace:" in out  # end-of-run operator report
        assert "index:" in out
        strides = validate_trace_file(trace)  # schema-valid JSONL
        assert strides == 10  # 600 points / 60-point strides, fill included
        text = open(prom).read()
        assert f"disc_strides_total {strides}" in text
        assert 'disc_counter_total{counter="msbfs_expansions"}' in text

    def test_trace_requires_disc(self, maze_csv, tmp_path, capsys):
        code = main(
            self.BASE
            + ["--input", maze_csv, "--method", "dbscan",
               "--trace", str(tmp_path / "t.jsonl")]
        )
        assert code == 1
        assert "--method disc" in capsys.readouterr().err

    def test_trace_with_resilient_runtime(self, maze_csv, tmp_path, capsys):
        from repro.observability import validate_trace_file

        trace = str(tmp_path / "trace.jsonl")
        code = main(
            self.BASE
            + ["--input", maze_csv, "--checkpoint-dir",
               str(tmp_path / "ckpt"), "--trace", trace]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "input:" in out  # runtime block ...
        assert "trace:" in out  # ... merged with the trace block
        assert validate_trace_file(trace) == 10
