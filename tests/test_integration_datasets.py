"""Integration: DISC vs DBSCAN on every dataset simulator, plus events flow.

These runs use each simulator's registry thresholds on small windows, so the
exactness contract is exercised on realistic geometry (road grids, fault
arcs, trajectory tangles) rather than only on synthetic blobs.
"""

import pytest

from repro.baselines.dbscan import SlidingDBSCAN
from repro.common.config import WindowSpec
from repro.core.disc import DISC
from repro.core.events import EvolutionKind
from repro.datasets.maze import maze_stream
from repro.datasets.registry import DATASETS
from repro.metrics.ari import adjusted_rand_index
from repro.metrics.compare import assert_equivalent
from repro.window.sliding import materialize_slides


@pytest.mark.parametrize("key", ["dtg", "geolife", "covid", "iris", "maze"])
def test_disc_equals_dbscan_on_simulator(key):
    info = DATASETS[key]
    spec = WindowSpec(window=300, stride=60)
    points = info.load(600, seed=3)
    disc = DISC(info.eps, info.tau)
    reference = SlidingDBSCAN(info.eps, info.tau)
    window = []
    for delta_in, delta_out in materialize_slides(points, spec):
        disc.advance(delta_in, delta_out)
        reference.advance(delta_in, delta_out)
        out_ids = {p.pid for p in delta_out}
        window = [p for p in window if p.pid not in out_ids] + list(delta_in)
        coords = {p.pid: p.coords for p in window}
        assert_equivalent(
            disc.snapshot(), reference.snapshot(), coords, disc.params
        )


def test_maze_quality_is_high():
    points, truth = maze_stream(1500, seed=1)
    info = DATASETS["maze"]
    disc = DISC(info.eps, info.tau)
    disc.advance(points, ())
    pids = [p.pid for p in points]
    ari = adjusted_rand_index(
        [truth[p] for p in pids], disc.snapshot().label_array(pids)
    )
    assert ari > 0.85


def test_evolution_events_flow_on_drifting_data():
    from repro.datasets.synthetic import drifting_blob_stream

    spec = WindowSpec(window=200, stride=40)
    points = drifting_blob_stream(800, seed=2, drift=0.02)
    disc = DISC(0.7, 4)
    kinds = set()
    for delta_in, delta_out in materialize_slides(points, spec):
        summary = disc.advance(delta_in, delta_out)
        kinds |= {event.kind for event in summary.events}
    # A drifting stream must exhibit births and growth at minimum.
    assert EvolutionKind.EMERGE in kinds
    assert EvolutionKind.EXPAND in kinds or EvolutionKind.MERGE in kinds


def test_incdbscan_matches_disc_on_dtg():
    from repro.baselines.incdbscan import IncrementalDBSCAN

    info = DATASETS["dtg"]
    spec = WindowSpec(window=250, stride=50)
    points = info.load(500, seed=9)
    disc = DISC(info.eps, info.tau)
    inc = IncrementalDBSCAN(info.eps, info.tau)
    window = []
    for delta_in, delta_out in materialize_slides(points, spec):
        disc.advance(delta_in, delta_out)
        inc.advance(delta_in, delta_out)
        out_ids = {p.pid for p in delta_out}
        window = [p for p in window if p.pid not in out_ids] + list(delta_in)
        coords = {p.pid: p.coords for p in window}
        assert_equivalent(disc.snapshot(), inc.snapshot(), coords, disc.params)


def test_search_counts_ordering_on_geolife():
    """Fig. 7's ordering (DISC <= IncDBSCAN < DBSCAN) on a small workload."""
    from repro.baselines.incdbscan import IncrementalDBSCAN
    from repro.bench.harness import measure_method

    info = DATASETS["geolife"]
    spec = WindowSpec(window=300, stride=30)
    points = info.load(800, seed=4)
    disc = measure_method(DISC(info.eps, info.tau), points, spec, n_measured=5)
    inc = measure_method(
        IncrementalDBSCAN(info.eps, info.tau), points, spec, n_measured=5
    )
    assert disc["range_searches"] <= inc["range_searches"]
    assert disc["range_searches"] < spec.window  # DBSCAN's budget
