"""Unit tests for EXTRA-N's predicted-view machinery."""

import pytest

from repro.baselines.dbscan import SlidingDBSCAN
from repro.baselines.extran import ExtraN
from repro.common.config import WindowSpec
from repro.common.errors import ConfigurationError, StreamOrderError
from repro.common.points import StreamPoint
from repro.metrics.compare import assert_equivalent
from repro.window.sliding import materialize_slides
from tests.conftest import clustered_stream


def sp(pid, x, y=0.0):
    return StreamPoint(pid, (float(x), float(y)), float(pid))


class TestConstruction:
    def test_stride_must_divide_window(self):
        with pytest.raises(ConfigurationError):
            ExtraN(0.5, 3, WindowSpec(window=100, stride=30))

    def test_valid_spec(self):
        method = ExtraN(0.5, 3, WindowSpec(window=100, stride=25))
        assert method.params.tau == 3


class TestNoDeletionSearches:
    def test_expiry_is_search_free(self):
        spec = WindowSpec(window=40, stride=10)
        method = ExtraN(0.7, 3, spec)
        points = clustered_stream(1, 80)
        slides = materialize_slides(points, spec)
        for delta_in, delta_out in slides[:4]:
            method.advance(delta_in, delta_out)
        searches_before = method.stats.range_searches
        delta_in, delta_out = slides[4]
        method.advance(delta_in, delta_out)
        # Exactly one range search per *arriving* point, none for expiry.
        assert (
            method.stats.range_searches - searches_before == len(delta_in)
        )

    def test_early_expiry_stays_correct(self):
        # Points may leave before their predicted slide (e.g. a trailing
        # partial stride); counts follow the actual departures.
        spec = WindowSpec(window=40, stride=10)
        method = ExtraN(0.7, 3, spec)
        reference = SlidingDBSCAN(0.7, 3)
        points = clustered_stream(2, 40)
        method.advance(points[:10], ())
        reference.advance(points[:10], ())
        method.advance(points[10:20], points[:10])
        reference.advance(points[10:20], points[:10])
        coords = {p.pid: p.coords for p in points[10:20]}
        assert_equivalent(
            method.snapshot(), reference.snapshot(), coords, method.params
        )

    def test_unknown_delete_rejected(self):
        spec = WindowSpec(window=40, stride=10)
        method = ExtraN(0.7, 3, spec)
        with pytest.raises(StreamOrderError):
            method.advance((), [sp(7, 0.0)])


class TestBookkeeping:
    def test_memory_cells_grow_with_density(self):
        spec = WindowSpec(window=40, stride=10)
        sparse = ExtraN(0.7, 3, spec)
        dense = ExtraN(0.7, 3, spec)
        sparse.advance([sp(i, 10.0 * i) for i in range(10)], ())
        dense.advance([sp(i, 0.1 * i) for i in range(10)], ())
        assert dense.memory_cells() > sparse.memory_cells()

    def test_neighbour_counts_match_reality(self):
        spec = WindowSpec(window=30, stride=10)
        method = ExtraN(0.7, 3, spec)
        points = clustered_stream(3, 60)
        reference = SlidingDBSCAN(0.7, 3)
        window = []
        for delta_in, delta_out in materialize_slides(points, spec):
            method.advance(delta_in, delta_out)
            reference.advance(delta_in, delta_out)
            out_ids = {p.pid for p in delta_out}
            window = [p for p in window if p.pid not in out_ids] + list(delta_in)
            coords = {p.pid: p.coords for p in window}
            assert_equivalent(
                method.snapshot(), reference.snapshot(), coords, method.params
            )

    def test_len_tracks_window(self):
        spec = WindowSpec(window=20, stride=10)
        method = ExtraN(0.7, 3, spec)
        points = clustered_stream(4, 40)
        for delta_in, delta_out in materialize_slides(points, spec):
            method.advance(delta_in, delta_out)
        assert len(method) == 20

    def test_prefill_matches_slide_by_slide(self):
        spec = WindowSpec(window=40, stride=10)
        points = clustered_stream(5, 60)
        stepped = ExtraN(0.7, 3, spec)
        for delta_in, delta_out in materialize_slides(points[:40], spec):
            stepped.advance(delta_in, delta_out)
        filled = ExtraN(0.7, 3, spec)
        filled.prefill([points[i : i + 10] for i in range(0, 40, 10)])
        coords = {p.pid: p.coords for p in points[:40]}
        assert_equivalent(
            filled.snapshot(), stepped.snapshot(), coords, filled.params
        )
        # And both continue identically afterwards.
        delta_in, delta_out = points[40:50], points[:10]
        stepped.advance(delta_in, delta_out)
        filled.advance(delta_in, delta_out)
        coords = {p.pid: p.coords for p in points[10:50]}
        assert_equivalent(
            filled.snapshot(), stepped.snapshot(), coords, filled.params
        )
