"""Deep scenario tests: borders, anchors, and time-based windows.

These exercise the label-maintenance corners of Section V — borders whose
anchor core leaves or is demoted, borders adjacent to two clusters during a
split, noise/border flapping — always validated against from-scratch DBSCAN.
"""

import pytest

from repro.baselines.dbscan import SlidingDBSCAN
from repro.common.config import WindowSpec
from repro.common.points import StreamPoint
from repro.common.snapshot import Category
from repro.core.disc import DISC
from repro.metrics.compare import assert_equivalent
from repro.window.sliding import SlidingWindow


def sp(pid, x, y=0.0):
    return StreamPoint(pid, (float(x), float(y)), float(pid))


def verify(disc, window_points):
    reference = SlidingDBSCAN(disc.params.eps, disc.params.tau)
    reference.advance(window_points, ())
    coords = {p.pid: p.coords for p in window_points}
    assert_equivalent(disc.snapshot(), reference.snapshot(), coords, disc.params)


class TestBorderAnchors:
    def test_border_survives_anchor_exit(self):
        # Border 50 anchored to core 2; core 2 leaves but core 1 remains in
        # range: 50 must stay a border via the repair path.
        disc = DISC(0.5, 3)
        cores = [sp(0, 0.0), sp(1, 0.4), sp(2, 0.8), sp(3, 1.2)]
        border = sp(50, 1.1, 0.45)  # within eps of 2 and 3 only
        window = cores + [border]
        disc.advance(window, ())
        assert disc.snapshot().category_of(50) is Category.BORDER
        disc.advance((), [cores[2]])
        remaining = [p for p in window if p.pid != 2]
        verify(disc, remaining)

    def test_border_becomes_noise_when_all_cores_go(self):
        disc = DISC(0.5, 3)
        cores = [sp(0, 0.0), sp(1, 0.4), sp(2, 0.8)]
        border = sp(50, 1.2)
        disc.advance(cores + [border], ())
        assert disc.snapshot().category_of(50) is Category.BORDER
        disc.advance((), cores)
        assert disc.snapshot().category_of(50) is Category.NOISE

    def test_noise_to_border_to_core(self):
        disc = DISC(0.5, 3)
        lone = sp(0, 0.0)
        disc.advance([lone], ())
        assert disc.snapshot().category_of(0) is Category.NOISE
        disc.advance([sp(1, 0.3), sp(2, 0.9)], ())
        # 1 has neighbours {0,1,2}? dist(1,2)=0.6 > 0.5 -> {0,1}: not core.
        assert disc.snapshot().category_of(0) is Category.NOISE
        disc.advance([sp(3, 0.15, 0.3)], ())
        verify(disc, [lone, sp(1, 0.3), sp(2, 0.9), sp(3, 0.15, 0.3)])

    def test_border_between_split_fragments_keeps_valid_anchor(self):
        # A border equidistant from both halves of a splitting cluster must
        # end up in ONE of them, validly.
        disc = DISC(0.5, 3)
        left = [sp(i, 0.4 * i) for i in range(4)]  # 0 .. 1.2
        bridge = [sp(100, 1.65), sp(101, 2.1)]
        right = [sp(200 + i, 2.55 + 0.4 * i) for i in range(4)]
        middle_border = sp(300, 1.875, 0.4)
        window = left + bridge + right + [middle_border]
        disc.advance(window, ())
        assert disc.snapshot().num_clusters == 1
        disc.advance((), bridge)
        remaining = left + right + [middle_border]
        verify(disc, remaining)

    def test_demoted_core_becomes_border(self):
        disc = DISC(0.5, 3)
        chain = [sp(i, 0.4 * i) for i in range(5)]
        disc.advance(chain, ())
        assert disc.snapshot().category_of(2) is Category.CORE
        # Remove both ends; 2 drops below tau but stays near core 1? After
        # removing 0 and 4: points 1,2,3 with mutual dists 0.4: all have
        # n=3 -> still cores. Remove 3 as well -> 1,2 have n=2: no cores.
        disc.advance((), [chain[0], chain[4], chain[3]])
        verify(disc, chain[1:3])


class TestFlapping:
    def test_repeated_insert_delete_cycles(self):
        disc = DISC(0.5, 3)
        stable = [sp(i, 0.4 * i) for i in range(5)]
        disc.advance(stable, ())
        flapper = sp(99, 1.0, 0.45)
        for _ in range(5):
            disc.advance([flapper], ())
            verify(disc, stable + [flapper])
            disc.advance((), [flapper])
            verify(disc, stable)

    def test_cluster_rebuilds_after_total_churn(self):
        disc = DISC(0.5, 3)
        first = [sp(i, 0.4 * i) for i in range(6)]
        disc.advance(first, ())
        label_before = disc.snapshot().num_clusters
        second = [sp(100 + i, 0.4 * i) for i in range(6)]
        disc.advance(second, first)
        assert disc.snapshot().num_clusters == label_before == 1
        verify(disc, second)


class TestTimeBasedIntegration:
    def test_disc_under_time_based_window(self):
        # Bursty timestamps: the count per stride varies, DISC must not care.
        import random

        rng = random.Random(3)
        points = []
        t = 0.0
        for i in range(300):
            t += rng.expovariate(2.0)
            if rng.random() < 0.75:
                cx = rng.choice([0.0, 4.0])
                coords = (cx + rng.gauss(0, 0.4), rng.gauss(0, 0.4))
            else:
                coords = (rng.uniform(-2, 6), rng.uniform(-3, 3))
            points.append(StreamPoint(i, coords, t))
        spec = WindowSpec(window=40, stride=10)  # durations, not counts
        disc = DISC(0.6, 4)
        reference = SlidingDBSCAN(0.6, 4)
        window = []
        for delta_in, delta_out in SlidingWindow(spec, time_based=True).slides(
            points
        ):
            disc.advance(delta_in, delta_out)
            reference.advance(delta_in, delta_out)
            out_ids = {p.pid for p in delta_out}
            window = [p for p in window if p.pid not in out_ids] + list(delta_in)
            coords = {p.pid: p.coords for p in window}
            assert_equivalent(
                disc.snapshot(), reference.snapshot(), coords, disc.params
            )

    def test_quiet_period_expires_everything(self):
        spec = WindowSpec(window=10, stride=5)
        points = [sp(0, 0.0), sp(1, 0.2), sp(2, 0.4)]
        points = [StreamPoint(p.pid, p.coords, 0.5) for p in points]
        late = StreamPoint(9, (5.0, 5.0), 100.0)
        disc = DISC(0.5, 3)
        for delta_in, delta_out in SlidingWindow(spec, time_based=True).slides(
            points + [late]
        ):
            disc.advance(delta_in, delta_out)
        assert len(disc) == 1
        assert disc.snapshot().category_of(9) is Category.NOISE
