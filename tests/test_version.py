"""Single-sourced version: pyproject, the package, the CLI, the exporters."""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

import repro
from repro._version import _from_pyproject, resolve_version

REPO_ROOT = Path(__file__).resolve().parent.parent
VERSION_RE = re.compile(r"^\d+\.\d+(\.\d+)?")


def pyproject_version() -> str:
    text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    return re.search(r'^version\s*=\s*"([^"]+)"', text, re.MULTILINE).group(1)


class TestSingleSource:
    def test_package_version_matches_pyproject(self):
        assert repro.__version__ == pyproject_version()

    def test_version_looks_like_a_version(self):
        assert VERSION_RE.match(repro.__version__)

    def test_pyproject_fallback_parser(self):
        assert _from_pyproject() == pyproject_version()

    def test_resolve_version_never_empty(self):
        assert resolve_version()


class TestSurfaces:
    def test_cli_version_flag(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0
        assert repro.__version__ in result.stdout

    def test_prometheus_exporter_emits_build_info(self, tmp_path):
        from repro.observability import PrometheusTextfileExporter
        from repro.observability.trace import StrideTrace

        exporter = PrometheusTextfileExporter(tmp_path / "out.prom")
        exporter.emit(StrideTrace(stride=0))
        exporter.close()
        text = (tmp_path / "out.prom").read_text()
        assert f'disc_build_info{{version="{repro.__version__}"}} 1' in text

    def test_serve_stats_frame_carries_version(self):
        import asyncio

        from repro.serve.server import dispatch
        from repro.serve.service import ClusterService

        async def scenario():
            return await dispatch(ClusterService(), {"op": "STATS", "id": 1})

        response = asyncio.run(scenario())
        assert response["ok"] is True
        assert response["version"] == repro.__version__
