"""Snapshot-archive unit tests: materialization, AS_OF, corruption.

The archive's contract: for any retained stride, nearest-snapshot +
journal-delta replay reconstructs exactly the membership the pipeline had
when that stride closed. The tests drive a real DISC pipeline, track the
ground-truth membership per stride, and compare every materialization
against it — under several snapshot cadences, including none at all.
"""

from __future__ import annotations

import json

import pytest

from repro.api import cluster_stream
from repro.common.config import WindowSpec
from repro.common.snapshot import Clustering
from repro.query.archive import ArchiveError, SnapshotArchive, stride_at_time
from repro.query.journal import EvolutionJournal, stride_record

from .conftest import clustered_stream

EPS, TAU = 0.8, 4
WINDOW, STRIDE = 120, 30


def pipeline_history(points, *, journal_dir, every, archive_dir):
    """Run DISC offline, journaling every stride; return ground truth.

    Returns ``(journal, archive, states)`` where ``states[s]`` is the
    membership ``{pid: [label, cat]}`` at stride ``s``.
    """
    journal = EvolutionJournal(journal_dir)
    archive = SnapshotArchive(archive_dir, every=every, journal=journal)
    last = {"time": None}

    def tracked():
        for p in points:
            last["time"] = p.time
            yield p

    spec = WindowSpec(window=WINDOW, stride=STRIDE)
    prev = None
    states = []
    for s, (clustering, summary) in enumerate(
        cluster_stream(tracked(), spec, eps=EPS, tau=TAU)
    ):
        journal.publish(
            stride_record(s, prev, clustering, summary, time=last["time"])
        )
        archive.maybe_snapshot(s, clustering)
        prev = clustering
        states.append(
            {
                pid: [clustering.labels.get(pid, Clustering.NOISE_ID), cat.value]
                for pid, cat in clustering.categories.items()
            }
        )
    journal.commit()
    return journal, archive, states


@pytest.fixture(scope="module")
def history(tmp_path_factory):
    root = tmp_path_factory.mktemp("archive-history")
    points = clustered_stream(33, 360)
    return pipeline_history(
        points, journal_dir=root / "evj", every=4, archive_dir=root / "arch"
    )


class TestMaterialize:
    def test_every_stride_matches_ground_truth(self, history):
        journal, archive, states = history
        assert len(states) == 360 // STRIDE
        assert archive.strides() == [0, 4, 8]
        for s, expected in enumerate(states[:-1]):
            assert archive.materialize(s) == expected, f"stride {s} diverged"

    def test_newest_closed_stride_is_not_answerable(self, history):
        journal, archive, states = history
        # AS_OF serves *past* strides; the newest is the live view's job.
        with pytest.raises(ArchiveError, match="ahead of the journal head"):
            archive.materialize(len(states))

    def test_without_snapshots_replays_from_empty(self, tmp_path):
        points = clustered_stream(34, 240)
        journal, archive, states = pipeline_history(
            points,
            journal_dir=tmp_path / "evj",
            every=0,  # no snapshots at all: pure delta replay from stride 0
            archive_dir=tmp_path / "arch",
        )
        assert archive.strides() == []
        for s, expected in enumerate(states[:-1]):
            assert archive.materialize(s) == expected

    def test_compaction_keeps_snapshot_answerable_strides(self, tmp_path):
        points = clustered_stream(35, 360)
        journal, archive, states = pipeline_history(
            points,
            journal_dir=tmp_path / "evj",
            every=4,
            archive_dir=tmp_path / "arch",
        )
        # Cut history below stride 4 (the second snapshot covers 4+).
        journal.compact(4)
        assert journal.floor <= 4
        for s in range(4, len(states) - 1):
            assert archive.materialize(s) == states[s]
        # A stride below every snapshot AND below the floor is refused —
        # unless the floor is still 0 (nothing was actually cut).
        if journal.floor > 0:
            orphan = journal.floor - 1
            if archive.latest_at_or_before(orphan) is None:
                with pytest.raises(ArchiveError):
                    archive.materialize(orphan)


class TestAsOf:
    def test_as_of_stride_payload(self, history):
        journal, archive, states = history
        payload = archive.as_of(stride=5)
        assert payload["stride"] == 5
        assert payload["num_points"] == len(states[5])
        assert payload["labels"] == {
            str(pid): lab for pid, (lab, _) in states[5].items()
        }
        assert payload["categories"] == {
            str(pid): cat for pid, (_, cat) in states[5].items()
        }
        core_labels = {
            lab for lab, cat in states[5].values() if cat == "core"
        }
        assert payload["num_clusters"] == len(core_labels)

    def test_as_of_time_resolves_to_stride(self, history):
        journal, archive, states = history
        records = journal.read(0)
        # Exactly at a stride's closing stamp -> that stride.
        r = records[3]
        assert stride_at_time(journal, r["time"]) == r["stride"]
        assert archive.as_of(time=r["time"])["stride"] == r["stride"]
        # Between two stamps -> the earlier stride.
        mid = (records[3]["time"] + records[4]["time"]) / 2.0
        if records[3]["time"] < mid < records[4]["time"]:
            assert archive.as_of(time=mid)["stride"] == 3

    def test_time_before_history_errors(self, history):
        journal, archive, states = history
        first = journal.read(0, 1)[0]["time"]
        with pytest.raises(ArchiveError, match="no retained stride"):
            archive.as_of(time=first - 1e6)

    def test_exactly_one_selector_required(self, history):
        journal, archive, _ = history
        with pytest.raises(ArchiveError, match="exactly one"):
            archive.as_of()
        with pytest.raises(ArchiveError, match="exactly one"):
            archive.as_of(stride=1, time=1.0)


class TestStrideAtTimeBoundaries:
    """The at-or-before contract of time-travel resolution, edge by edge.

    ``stride_at_time`` answers "what did the pipeline know at time t":
    the *newest* retained stride whose closing stamp is ``<= t``. These
    tests pin the boundaries — exact hit, duplicate stamps, midpoints,
    pre-floor times, unstamped records — on a hand-built journal where
    every stamp is chosen, not emergent.
    """

    @staticmethod
    def journal_with_stamps(tmp_path, stamps):
        journal = EvolutionJournal(tmp_path / "stamps")
        for stride, stamp in enumerate(stamps):
            journal.publish({"stride": stride, "time": stamp})
        journal.commit()
        return journal

    def test_exact_stamp_resolves_to_that_stride(self, tmp_path):
        journal = self.journal_with_stamps(tmp_path, [10.0, 20.0, 30.0])
        assert stride_at_time(journal, 10.0) == 0
        assert stride_at_time(journal, 20.0) == 1
        assert stride_at_time(journal, 30.0) == 2

    def test_between_stamps_resolves_to_the_earlier_stride(self, tmp_path):
        journal = self.journal_with_stamps(tmp_path, [10.0, 20.0, 30.0])
        assert stride_at_time(journal, 19.999) == 0
        assert stride_at_time(journal, 20.001) == 1
        assert stride_at_time(journal, 1e9) == 2  # far future: newest

    def test_duplicate_stamps_resolve_to_the_newest_stride(self, tmp_path):
        # Strides 1 and 2 closed at the same instant (e.g. a burst of
        # identical timestamps under a time-based window): AS_OF must
        # answer with the newest knowledge at that instant.
        journal = self.journal_with_stamps(tmp_path, [10.0, 20.0, 20.0, 30.0])
        assert stride_at_time(journal, 20.0) == 2
        assert stride_at_time(journal, 25.0) == 2

    def test_time_before_every_stamp_is_none(self, tmp_path):
        journal = self.journal_with_stamps(tmp_path, [10.0, 20.0])
        assert stride_at_time(journal, 9.999) is None

    def test_unstamped_records_are_skipped(self, tmp_path):
        journal = self.journal_with_stamps(tmp_path, [10.0, None, 30.0])
        # Stride 1 carries no stamp: it is invisible to time resolution,
        # not a barrier to it.
        assert stride_at_time(journal, 15.0) == 0
        assert stride_at_time(journal, 30.0) == 2

    def test_compaction_moves_the_answerable_floor(self, tmp_path):
        # One record per segment (segment_bytes=1) so compaction really
        # drops strides 0 and 1 instead of keeping their shared segment.
        journal = EvolutionJournal(tmp_path / "stamps", segment_bytes=1)
        for stride, stamp in enumerate([10.0, 20.0, 30.0, 40.0]):
            journal.publish({"stride": stride, "time": stamp})
        journal.commit()
        journal.compact(2)
        assert journal.floor == 2
        # Times at or past the floor's stamp still resolve…
        assert stride_at_time(journal, 30.0) == 2
        assert stride_at_time(journal, 45.0) == 3
        # …but a time covered only by compacted strides predates retained
        # history now: None, never a stale (dropped) stride index.
        assert stride_at_time(journal, 15.0) is None

    def test_as_of_time_at_exact_and_duplicate_stamps(self, history):
        journal, archive, states = history
        records = journal.read(0)
        # Every retained record's exact stamp answers with that stride (or
        # the newest stride sharing the stamp).
        for record in records[:-1]:
            stamp = record["time"]
            newest = max(
                r["stride"] for r in records if r["time"] == stamp
            )
            if newest < len(states) - 1:
                assert archive.as_of(time=stamp)["stride"] == newest


class TestCorruption:
    def test_crc_mismatch_is_detected(self, tmp_path):
        points = clustered_stream(36, 240)
        journal, archive, states = pipeline_history(
            points,
            journal_dir=tmp_path / "evj",
            every=4,
            archive_dir=tmp_path / "arch",
        )
        path = archive.directory / "snap-0000000004.json"
        envelope = json.loads(path.read_text())
        envelope["payload"]["label"][0] += 1  # silent bitrot
        path.write_text(json.dumps(envelope, sort_keys=True))
        with pytest.raises(ArchiveError, match="CRC"):
            archive.load(4)

    def test_missing_snapshot_errors(self, tmp_path):
        archive = SnapshotArchive(tmp_path / "arch")
        with pytest.raises(ArchiveError, match="no snapshot"):
            archive.load(7)

    def test_reopen_rediscovers_snapshots(self, tmp_path):
        points = clustered_stream(37, 240)
        journal, archive, states = pipeline_history(
            points,
            journal_dir=tmp_path / "evj",
            every=4,
            archive_dir=tmp_path / "arch",
        )
        reopened = SnapshotArchive(
            tmp_path / "arch", every=4, journal=journal
        )
        assert reopened.strides() == archive.strides()
        assert reopened.materialize(5) == states[5]
