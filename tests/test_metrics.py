"""Unit tests for ARI and the equivalence checker."""

import pytest

from repro.common.config import ClusteringParams
from repro.common.snapshot import Category, Clustering
from repro.metrics.ari import adjusted_rand_index
from repro.metrics.compare import EquivalenceError, assert_equivalent, equivalent


class TestARI:
    def test_identical_partitions(self):
        assert adjusted_rand_index([0, 0, 1, 1], [0, 0, 1, 1]) == 1.0

    def test_renamed_partitions(self):
        assert adjusted_rand_index([0, 0, 1, 1], [5, 5, 2, 2]) == 1.0

    def test_hand_computed_value(self):
        # Classic example: ARI([0,0,1,1], [0,1,1,1]).
        # Contingency: rows {0:(1,1)}, {1:(0,2)}; sum_cells = C(2,2)=1;
        # rows C(2,2)+C(2,2)=2; cols C(1,2)=0 + C(3,2)=3 -> 3.
        # expected = 2*3/C(4,2)=1; max=(2+3)/2=2.5 -> (1-1)/(2.5-1)=0.
        assert adjusted_rand_index([0, 0, 1, 1], [0, 1, 1, 1]) == pytest.approx(
            0.0
        )

    def test_known_positive_value(self):
        truth = [0, 0, 0, 1, 1, 1]
        pred = [0, 0, 1, 1, 1, 1]
        value = adjusted_rand_index(truth, pred)
        assert 0.0 < value < 1.0
        # By hand: sum_cells=4, rows=6, cols=7, pairs=15 ->
        # (4 - 2.8) / (6.5 - 2.8) = 1.2 / 3.7.
        assert value == pytest.approx(1.2 / 3.7, abs=1e-9)

    def test_symmetric(self):
        a = [0, 0, 1, 1, 2, 2, 2]
        b = [0, 1, 1, 2, 2, 0, 0]
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a)
        )

    def test_worse_than_random_is_negative(self):
        truth = [0, 1, 0, 1]
        pred = [0, 0, 1, 1]
        assert adjusted_rand_index(truth, pred) < 0.5

    def test_empty(self):
        assert adjusted_rand_index([], []) == 1.0

    def test_single_point(self):
        assert adjusted_rand_index([3], [9]) == 1.0

    def test_all_singletons_match(self):
        assert adjusted_rand_index([0, 1, 2], [5, 6, 7]) == 1.0

    def test_degenerate_mismatch(self):
        # One big cluster vs all singletons: conventional score 0.
        assert adjusted_rand_index([0, 0, 0], [0, 1, 2]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            adjusted_rand_index([0, 1], [0])


def make_clustering(assignment):
    """assignment: pid -> (category, cid or None)."""
    labels = {}
    categories = {}
    for pid, (category, cid) in assignment.items():
        categories[pid] = category
        if cid is not None:
            labels[pid] = cid
    return Clustering(labels, categories)


PARAMS = ClusteringParams(eps=1.0, tau=2)
POINTS = {
    1: (0.0, 0.0),
    2: (0.5, 0.0),
    3: (10.0, 0.0),
    4: (10.5, 0.0),
    5: (50.0, 50.0),
}


def two_cluster_snapshot(cid_a=7, cid_b=8):
    return make_clustering(
        {
            1: (Category.CORE, cid_a),
            2: (Category.CORE, cid_a),
            3: (Category.CORE, cid_b),
            4: (Category.CORE, cid_b),
            5: (Category.NOISE, None),
        }
    )


class TestEquivalence:
    def test_identical(self):
        assert_equivalent(
            two_cluster_snapshot(), two_cluster_snapshot(), POINTS, PARAMS
        )

    def test_renamed_cids_ok(self):
        assert_equivalent(
            two_cluster_snapshot(), two_cluster_snapshot(100, 200), POINTS, PARAMS
        )

    def test_category_mismatch_detected(self):
        other = make_clustering(
            {
                1: (Category.CORE, 7),
                2: (Category.CORE, 7),
                3: (Category.CORE, 8),
                4: (Category.CORE, 8),
                5: (Category.BORDER, 8),
            }
        )
        with pytest.raises(EquivalenceError, match="category mismatch"):
            assert_equivalent(two_cluster_snapshot(), other, POINTS, PARAMS)

    def test_point_set_mismatch_detected(self):
        other = make_clustering(
            {1: (Category.CORE, 7), 2: (Category.CORE, 7)}
        )
        with pytest.raises(EquivalenceError, match="point sets differ"):
            assert_equivalent(two_cluster_snapshot(), other, POINTS, PARAMS)

    def test_merged_clusters_detected(self):
        merged = make_clustering(
            {
                1: (Category.CORE, 7),
                2: (Category.CORE, 7),
                3: (Category.CORE, 7),
                4: (Category.CORE, 7),
                5: (Category.NOISE, None),
            }
        )
        with pytest.raises(EquivalenceError):
            assert_equivalent(two_cluster_snapshot(), merged, POINTS, PARAMS)

    def test_border_must_be_adjacent_to_its_cluster(self):
        points = dict(POINTS)
        points[6] = (1.0, 0.0)  # adjacent to cluster A only
        good = make_clustering(
            {
                1: (Category.CORE, 7),
                2: (Category.CORE, 7),
                3: (Category.CORE, 8),
                4: (Category.CORE, 8),
                5: (Category.NOISE, None),
                6: (Category.BORDER, 7),
            }
        )
        bad = make_clustering(
            {
                1: (Category.CORE, 7),
                2: (Category.CORE, 7),
                3: (Category.CORE, 8),
                4: (Category.CORE, 8),
                5: (Category.NOISE, None),
                6: (Category.BORDER, 8),  # not adjacent to cluster B!
            }
        )
        assert_equivalent(good, good, points, PARAMS)
        with pytest.raises(EquivalenceError):
            assert_equivalent(bad, good, points, PARAMS)
        with pytest.raises(EquivalenceError):
            assert_equivalent(good, bad, points, PARAMS)

    def test_ambiguous_border_either_way_ok(self):
        # Border 6 sits within eps of cores in both clusters.
        points = {
            1: (0.0, 0.0),
            2: (0.5, 0.0),
            3: (1.8, 0.0),
            4: (2.3, 0.0),
            6: (1.15, 0.0),
        }
        base = {
            1: (Category.CORE, 7),
            2: (Category.CORE, 7),
            3: (Category.CORE, 8),
            4: (Category.CORE, 8),
        }
        params = ClusteringParams(eps=0.7, tau=2)
        to_a = make_clustering({**base, 6: (Category.BORDER, 7)})
        to_b = make_clustering({**base, 6: (Category.BORDER, 8)})
        assert equivalent(to_a, to_b, points, params)
        assert equivalent(to_b, to_a, points, params)

    def test_boolean_form(self):
        assert equivalent(
            two_cluster_snapshot(), two_cluster_snapshot(1, 2), POINTS, PARAMS
        )
        merged = make_clustering(
            {pid: (Category.CORE, 7) for pid in (1, 2, 3, 4)}
            | {5: (Category.NOISE, None)}
        )
        assert not equivalent(two_cluster_snapshot(), merged, POINTS, PARAMS)
