"""Unit tests for the Clustering snapshot type and distance helpers."""

import math

import pytest

from repro.common.distance import squared_distance, within_eps
from repro.common.points import StreamPoint, make_points
from repro.common.snapshot import Category, Clustering


class TestDistance:
    def test_squared_distance(self):
        assert squared_distance((0.0, 0.0), (3.0, 4.0)) == 25.0

    def test_zero_distance(self):
        assert squared_distance((1.5, 2.5), (1.5, 2.5)) == 0.0

    def test_within_eps_inclusive(self):
        assert within_eps((0.0,), (1.0,), 1.0)

    def test_outside_eps(self):
        assert not within_eps((0.0, 0.0), (1.0, 1.0), 1.0)

    def test_matches_math_dist(self):
        a, b = (0.3, -1.2, 5.0), (2.2, 0.1, -3.3)
        assert squared_distance(a, b) == pytest.approx(math.dist(a, b) ** 2)


class TestStreamPoint:
    def test_fields(self):
        sp = StreamPoint(3, (1.0, 2.0), 7.5)
        assert sp.pid == 3
        assert sp.coords == (1.0, 2.0)
        assert sp.time == 7.5

    def test_make_points(self):
        pts = make_points([(0.0, 0.0), (1.0, 1.0)], start_id=10, start_time=5.0)
        assert [p.pid for p in pts] == [10, 11]
        assert pts[1].time == 6.0


def sample_clustering() -> Clustering:
    labels = {1: 100, 2: 100, 3: 200, 4: 200, 5: 200}
    categories = {
        1: Category.CORE,
        2: Category.BORDER,
        3: Category.CORE,
        4: Category.CORE,
        5: Category.BORDER,
        6: Category.NOISE,
    }
    return Clustering(labels, categories)


class TestClustering:
    def test_label_of(self):
        snap = sample_clustering()
        assert snap.label_of(1) == 100
        assert snap.label_of(6) == Clustering.NOISE_ID
        assert snap.label_of(999) == Clustering.NOISE_ID

    def test_category_of(self):
        snap = sample_clustering()
        assert snap.category_of(2) is Category.BORDER
        assert snap.category_of(999) is Category.NOISE

    def test_clusters(self):
        clusters = sample_clustering().clusters()
        assert clusters == {100: {1, 2}, 200: {3, 4, 5}}

    def test_core_clusters_exclude_borders(self):
        cores = sample_clustering().core_clusters()
        assert cores == {100: frozenset({1}), 200: frozenset({3, 4})}

    def test_num_clusters(self):
        assert sample_clustering().num_clusters == 2

    def test_counts(self):
        snap = sample_clustering()
        assert snap.count(Category.CORE) == 3
        assert snap.count(Category.BORDER) == 2
        assert snap.count(Category.NOISE) == 1
        assert snap.num_points == 6

    def test_label_array_order(self):
        snap = sample_clustering()
        assert snap.label_array([6, 1, 3]) == [Clustering.NOISE_ID, 100, 200]

    def test_noise_labels_dropped(self):
        snap = Clustering({7: Clustering.NOISE_ID}, {7: Category.NOISE})
        assert snap.label_of(7) == Clustering.NOISE_ID
        assert not snap.labels

    def test_repr_mentions_counts(self):
        text = repr(sample_clustering())
        assert "clusters=2" in text
        assert "points=6" in text
