"""MS-BFS connectivity checks against networkx ground truth.

The core contract: for any seed set of cores, the number of connected
components reported (and the membership of fully traversed components) must
match the actual core graph — under every combination of the multi-starter
and epoch-probing flags.
"""

import math
import random

import networkx as nx
import pytest

from repro.common.config import ClusteringParams
from repro.common.points import StreamPoint
from repro.core.collect import collect
from repro.core.msbfs import check_connectivity
from repro.core.state import WindowState
from repro.index.rtree import RTree

FLAG_GRID = [
    (True, True),
    (True, False),
    (False, True),
    (False, False),
]


def build_state(points, eps, tau):
    """Load points into a WindowState + RTree via the COLLECT machinery."""
    params = ClusteringParams(eps, tau)
    state = WindowState(params)
    index = RTree()
    stream = [StreamPoint(pid, coords, float(pid)) for pid, coords in points]
    collect(state, index, stream, ())
    return state, index


def core_graph(points, eps, tau):
    """The reference core graph as a networkx object."""
    graph = nx.Graph()
    counts = {
        pid: sum(
            1
            for _, other in points
            if sum((a - b) ** 2 for a, b in zip(coords, other)) <= eps * eps
        )
        for pid, coords in points
    }
    cores = {pid for pid, n in counts.items() if n >= tau}
    graph.add_nodes_from(cores)
    coords_of = dict(points)
    for pid in cores:
        for qid in cores:
            if pid < qid:
                dist_sq = sum(
                    (a - b) ** 2 for a, b in zip(coords_of[pid], coords_of[qid])
                )
                if dist_sq <= eps * eps:
                    graph.add_edge(pid, qid)
    return graph, cores


def random_points(seed, n, span=6.0):
    rng = random.Random(seed)
    return [
        (i, (rng.uniform(0, span), rng.uniform(0, span))) for i in range(n)
    ]


class TestConnectivity:
    @pytest.mark.parametrize("multi_starter,epoch", FLAG_GRID)
    def test_empty_seed_set(self, multi_starter, epoch):
        state, index = build_state(random_points(0, 30), 1.0, 3)
        result = check_connectivity(
            index, state, [], multi_starter=multi_starter, epoch_probing=epoch
        )
        assert result.num_components == 0
        assert result.connected

    @pytest.mark.parametrize("multi_starter,epoch", FLAG_GRID)
    def test_single_seed(self, multi_starter, epoch):
        points = [(0, (0.0, 0.0)), (1, (0.5, 0.0)), (2, (1.0, 0.0))]
        state, index = build_state(points, 0.6, 2)
        result = check_connectivity(
            index, state, [0], multi_starter=multi_starter, epoch_probing=epoch
        )
        assert result.num_components == 1

    @pytest.mark.parametrize("multi_starter,epoch", FLAG_GRID)
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx(self, multi_starter, epoch, seed):
        points = random_points(seed, 60)
        eps, tau = 0.9, 3
        state, index = build_state(points, eps, tau)
        graph, cores = core_graph(points, eps, tau)
        if len(cores) < 4:
            pytest.skip("degenerate instance")
        rng = random.Random(seed + 100)
        seeds = rng.sample(sorted(cores), min(6, len(cores)))
        result = check_connectivity(
            index,
            state,
            seeds,
            multi_starter=multi_starter,
            epoch_probing=epoch,
        )
        want = len({frozenset(nx.node_connected_component(graph, s)) for s in seeds})
        assert result.num_components == want

    @pytest.mark.parametrize("multi_starter,epoch", FLAG_GRID)
    def test_two_far_components(self, multi_starter, epoch):
        left = [(i, (0.1 * i, 0.0)) for i in range(10)]
        right = [(100 + i, (100.0 + 0.1 * i, 0.0)) for i in range(10)]
        state, index = build_state(left + right, 0.5, 3)
        result = check_connectivity(
            index,
            state,
            [0, 100],
            multi_starter=multi_starter,
            epoch_probing=epoch,
        )
        assert result.num_components == 2
        # One side was exhausted; the other is the surviving search.
        exhausted_members = {pid for comp in result.exhausted for pid in comp}
        survivor_members = set(result.survivor)
        all_cores = {pid for pid, _ in left + right if state.is_core(state.records[pid])}
        assert exhausted_members <= all_cores
        assert survivor_members <= all_cores
        assert not (exhausted_members & survivor_members)

    @pytest.mark.parametrize("multi_starter,epoch", FLAG_GRID)
    def test_exhausted_components_are_complete(self, multi_starter, epoch):
        # Three well-separated chains; seeds in all three.
        chains = []
        for c, offset in enumerate((0.0, 50.0, 100.0)):
            chains.extend(
                (c * 100 + i, (offset + 0.3 * i, 0.0)) for i in range(8)
            )
        eps, tau = 0.5, 2
        state, index = build_state(chains, eps, tau)
        graph, cores = core_graph(chains, eps, tau)
        result = check_connectivity(
            index,
            state,
            [0, 100, 200],
            multi_starter=multi_starter,
            epoch_probing=epoch,
        )
        assert result.num_components == 3
        for component in result.exhausted:
            want = nx.node_connected_component(graph, component[0])
            assert set(component) == set(want)

    def test_on_border_sees_non_cores(self):
        # A core chain with one dangling border point.
        points = [(0, (0.0, 0.0)), (1, (0.4, 0.0)), (2, (0.8, 0.0)),
                  (3, (0.8, 0.45))]
        state, index = build_state(points, 0.5, 3)
        assert not state.is_core(state.records[3])
        touched = []
        check_connectivity(
            index,
            state,
            [0, 2],
            on_border=lambda border, core: touched.append((border, core)),
        )
        assert any(border == 3 for border, _ in touched)

    @pytest.mark.parametrize("multi_starter,epoch", FLAG_GRID)
    def test_duplicate_seeds_collapse(self, multi_starter, epoch):
        points = [(i, (0.3 * i, 0.0)) for i in range(10)]
        state, index = build_state(points, 0.5, 2)
        result = check_connectivity(
            index,
            state,
            [0, 0, 5, 5],
            multi_starter=multi_starter,
            epoch_probing=epoch,
        )
        assert result.num_components == 1


class TestCollectComponent:
    def test_full_component_membership(self):
        from repro.core.msbfs import collect_component

        points = [(i, (0.3 * i, 0.0)) for i in range(10)]
        points += [(100 + i, (50.0 + 0.3 * i, 0.0)) for i in range(5)]
        state, index = build_state(points, 0.5, 2)
        component = collect_component(index, state, 0)
        assert sorted(component) == list(range(10))

    def test_on_border_callback(self):
        from repro.core.msbfs import collect_component

        points = [(0, (0.0, 0.0)), (1, (0.4, 0.0)), (2, (0.8, 0.0)),
                  (3, (0.8, 0.45))]
        state, index = build_state(points, 0.5, 3)
        touched = []
        collect_component(
            index, state, 1, on_border=lambda b, c: touched.append(b)
        )
        assert 3 in touched

    def test_conflict_path_is_exercised_by_multiclass_split(self):
        # White-box: the end-of-stride claim settlement must actually run a
        # disambiguating connectivity check on the canonical two-cuts
        # instance (and report the extra split it finds).
        import repro.core.cluster as cluster_mod
        from repro.common.points import StreamPoint
        from repro.core.disc import DISC

        calls = []
        original = cluster_mod._settle_claims

        def spy(*args, **kwargs):
            result = original(*args, **kwargs)
            calls.append(result)
            return result

        cluster_mod._settle_claims = spy
        try:
            pts = [StreamPoint(i, (i * 0.9, 0.0), 0.0) for i in range(8)]
            disc = DISC(1.0, 2)
            disc.advance(pts, ())
            disc.advance((), [pts[2], pts[5]])
        finally:
            cluster_mod._settle_claims = original
        # Settlement runs once per stride; whether it must intervene depends
        # on which fragments the per-class checks happened to exhaust. The
        # hard guarantee — three distinct ids — is asserted either way.
        assert calls, "claim settlement never ran"
        assert disc.snapshot().num_clusters == 3
        assert len(set(disc.labels().values())) == 3

    def test_settle_claims_relabels_contested_id(self):
        # Direct unit test of the conflict branch: two far-apart components
        # both claiming cluster id 7 must end up with distinct ids.
        from repro.core.cluster import _settle_claims

        points = [(i, (0.3 * i, 0.0)) for i in range(6)]
        points += [(100 + i, (50.0 + 0.3 * i, 0.0)) for i in range(6)]
        state, index = build_state(points, 0.5, 2)
        for rec in state.records.values():
            rec.cid = 7
            rec.was_core = True
        kept = {7: [0, 100]}
        events = _settle_claims(
            state,
            index,
            kept,
            {7},
            multi_starter=True,
            epoch_probing=True,
            on_border=None,
        )
        assert len(events) == 1
        left = state.cids.find(state.records[0].cid)
        right = state.cids.find(state.records[100].cid)
        assert left != right

    def test_settle_claims_keeps_connected_claimants(self):
        from repro.core.cluster import _settle_claims

        points = [(i, (0.3 * i, 0.0)) for i in range(12)]
        state, index = build_state(points, 0.5, 2)
        for rec in state.records.values():
            rec.cid = 7
            rec.was_core = True
        kept = {7: [0, 11]}
        events = _settle_claims(
            state,
            index,
            kept,
            {7},
            multi_starter=True,
            epoch_probing=True,
            on_border=None,
        )
        assert events == []
        assert state.cids.find(state.records[0].cid) == state.cids.find(
            state.records[11].cid
        )


class TestExhaustedGroupRevival:
    """Regression: contact with an already-exhausted group must revive it.

    With ``multi_starter=False`` the classic arm runs each seed's BFS to
    exhaustion before the next one starts.  A later seed whose expansion
    touches a core owned by an exhausted group used to pick that dead root
    as the union winner and crash on its already-deleted queue (KeyError).
    The fix keeps exhausted groups addressable and revives one on contact.
    """

    # Component X: a core chain.  Pid 3 sits within eps of X's edge but is
    # not core itself (n_eps = 2 < tau), so as a *seed* it starts its own
    # group which only discovers X after X's group has been exhausted.
    # Component Y is far away and supplies the surviving group.
    POINTS = [
        (0, (0.0, 0.0)),
        (1, (0.25, 0.0)),
        (2, (0.5, 0.0)),
        (3, (0.95, 0.0)),
        (100, (50.0, 0.0)),
        (101, (50.25, 0.0)),
        (102, (50.5, 0.0)),
    ]
    SEEDS = [0, 3, 100, 102]

    def _check(self, epoch):
        state, index = build_state(self.POINTS, 0.5, 3)
        return check_connectivity(
            index, state, self.SEEDS, multi_starter=False, epoch_probing=epoch
        )

    @pytest.mark.parametrize("epoch", [True, False])
    def test_late_contact_with_exhausted_group_does_not_crash(self, epoch):
        result = self._check(epoch)  # pre-fix: KeyError when epoch is off
        assert sorted(result.survivor) == [100, 101, 102]
        exhausted = {pid for comp in result.exhausted for pid in comp}
        assert {0, 1, 2} <= exhausted
        assert result.num_components == len(result.exhausted) + 1

    def test_revived_component_is_complete(self):
        # With epoch probing off, pid 3's expansion re-discovers X's cores,
        # so its group merges back into the revived X component.
        result = self._check(epoch=False)
        assert result.num_components == 2
        assert [sorted(comp) for comp in result.exhausted] == [[0, 1, 2, 3]]

    def test_epoch_probing_filters_the_late_contact(self):
        # With epoch probing on, X's cores were already visited when pid 3
        # expands, so the late group exhausts alone instead of merging.
        result = self._check(epoch=True)
        assert result.num_components == 3


class TestAdversarialMergeOrders:
    """Randomised seed orders (cores and non-cores) never crash either arm.

    Stress for the rotation-starvation guard and the exhausted-group
    revival path: many seeds per component, shuffled so that merges hit
    groups in unpredictable states, over chain / grid / ring geometries.
    """

    @staticmethod
    def geometries():
        chain = [(i, (i * 0.4, 0.0)) for i in range(12)]
        grid = [
            (r * 5 + c, (c * 0.45, r * 0.45))
            for r in range(5)
            for c in range(5)
        ]
        ring = [
            (i, (3.0 + 2.0 * math.cos(i * 0.5236),
                 3.0 + 2.0 * math.sin(i * 0.5236)))
            for i in range(12)
        ]
        two_blobs = chain + [(100 + i, (20.0 + i * 0.4, 0.0)) for i in range(8)]
        return [chain, grid, ring, two_blobs]

    @pytest.mark.parametrize("multi_starter,epoch", FLAG_GRID)
    def test_shuffled_mixed_seeds_never_crash(self, multi_starter, epoch):
        for geom_id, points in enumerate(self.geometries()):
            graph, cores = core_graph(points, 0.5, 3)
            for trial in range(12):
                rng = random.Random(1000 * geom_id + trial)
                pool = [pid for pid, _ in points]
                k = rng.randint(2, min(8, len(pool)))
                seeds = rng.sample(pool, k)
                rng.shuffle(seeds)
                state, index = build_state(points, 0.5, 3)
                result = check_connectivity(
                    index,
                    state,
                    seeds,
                    multi_starter=multi_starter,
                    epoch_probing=epoch,
                )
                assert result.num_components == len(result.exhausted) + 1
                # Exhausted components and the survivor partition what was
                # reached: no pid appears twice.
                reached = list(result.survivor)
                for comp in result.exhausted:
                    reached.extend(comp)
                assert len(reached) == len(set(reached))

    @pytest.mark.parametrize("multi_starter,epoch", FLAG_GRID)
    def test_core_only_shuffles_match_networkx(self, multi_starter, epoch):
        for geom_id, points in enumerate(self.geometries()):
            graph, cores = core_graph(points, 0.5, 3)
            if not cores:
                continue
            for trial in range(8):
                rng = random.Random(7000 + 1000 * geom_id + trial)
                k = rng.randint(1, min(8, len(cores)))
                seeds = rng.sample(sorted(cores), k)
                rng.shuffle(seeds)
                expected = {
                    frozenset(nx.node_connected_component(graph, s))
                    for s in seeds
                }
                state, index = build_state(points, 0.5, 3)
                result = check_connectivity(
                    index,
                    state,
                    seeds,
                    multi_starter=multi_starter,
                    epoch_probing=epoch,
                )
                assert result.num_components == len(expected)
