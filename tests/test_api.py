"""Tests for the high-level convenience API (including its doctests)."""

import doctest

import repro.api
from repro.api import cluster_static, cluster_stream
from repro.common.config import WindowSpec
from repro.core.disc import DISC
from repro.datasets.synthetic import blob_stream
from tests.conftest import clustered_stream


def test_doctests_pass():
    results = doctest.testmod(repro.api)
    assert results.failed == 0
    assert results.attempted >= 2


class TestClusterStream:
    def test_yields_per_stride(self):
        stream = clustered_stream(1, 200)
        results = list(
            cluster_stream(stream, WindowSpec(100, 50), eps=0.7, tau=4)
        )
        assert len(results) == 4
        snapshot, summary = results[-1]
        assert snapshot.num_points == 100
        assert summary.num_inserted == 50

    def test_custom_clusterer(self):
        from repro.baselines.dbscan import SlidingDBSCAN

        stream = clustered_stream(2, 120)
        results = list(
            cluster_stream(
                stream,
                WindowSpec(60, 30),
                eps=0.0,  # ignored
                tau=0,  # ignored
                clusterer=SlidingDBSCAN(0.7, 4),
            )
        )
        assert len(results) == 4

    def test_matches_manual_loop(self):
        stream = clustered_stream(3, 200)
        spec = WindowSpec(80, 40)
        auto = list(cluster_stream(stream, spec, eps=0.7, tau=4))
        manual = DISC(0.7, 4)
        from repro.window.sliding import materialize_slides

        for delta_in, delta_out in materialize_slides(stream, spec):
            manual.advance(delta_in, delta_out)
        assert auto[-1][0].labels == manual.snapshot().labels

    def test_time_based(self):
        from repro.common.points import StreamPoint

        points = [
            StreamPoint(i, (0.1 * i, 0.0), float(i) * 2.0) for i in range(30)
        ]
        results = list(
            cluster_stream(
                points, WindowSpec(20, 10), eps=0.5, tau=3, time_based=True
            )
        )
        assert results  # durations, several strides emitted


class TestClusterStatic:
    def test_two_blobs(self):
        snap = cluster_static(
            blob_stream(200, [(0.0, 0.0), (6.0, 6.0)], seed=3), 0.8, 4
        )
        assert snap.num_clusters == 2

    def test_accepts_generator(self):
        snap = cluster_static(
            iter(blob_stream(100, [(0.0, 0.0)], seed=4)), 0.8, 4
        )
        assert snap.num_clusters == 1
