"""The load generator's latency accounting: no coordinated omission.

Regression background: ``run_loadgen`` used to issue its QUERY probes
inline on the ingest task and time them with ``perf_counter`` around the
await. Under load that commits the classic coordinated-omission sin twice
over: a slow query stalls the ingest pacing loop (understating the reported
ingest rate), and the probes that *should* have been sent during the stall
are simply never sent (understating query p95 exactly when the server is
slow). The probes now run on their own task and their own connection
against a fixed intended-time schedule.
"""

from __future__ import annotations

import asyncio

import pytest

import repro.serve.server as server_mod
from repro.serve import SessionConfig
from repro.serve.loadgen import probe_interval_s, run_loadgen
from repro.serve.server import run_server
from repro.serve.service import ClusterService

CONFIG = SessionConfig(eps=0.8, tau=4, window=40, stride=10, checkpoint_every=4)


class TestProbeSchedule:
    def test_interval_matches_the_old_per_batch_cadence(self):
        # Two probes every query_every batches' worth of intended time.
        assert probe_interval_s(1000.0, 50, 2) == pytest.approx(0.05)
        assert probe_interval_s(500.0, 20, 1) == pytest.approx(0.02)

    def test_unpaced_runs_fall_back_to_a_fixed_cadence(self):
        assert probe_interval_s(0.0, 50, 3) == pytest.approx(0.03)
        assert probe_interval_s(0.0, 50, 0) == pytest.approx(0.01)


class TestCoordinatedOmission:
    def test_slow_queries_stall_neither_pacing_nor_the_percentiles(
        self, monkeypatch
    ):
        """Serve QUERYs artificially slowly and drive a paced ingest.

        Pre-fix this test fails on both assertions at once: with probes
        inline, ten batches x two queries x 50 ms stretch the ingest loop
        past a second (the intended schedule is ~0.1 s), while each probe
        measures only its own await (~50 ms), so the reported p95 never
        shows the backlog. Post-fix, ingest finishes on schedule and the
        percentiles — measured against the intended send times — surface
        the slow server instead of hiding it.
        """
        QUERY_DELAY = 0.05
        real_dispatch = server_mod.dispatch

        async def slow_dispatch(service, frame):
            if frame.get("op") == "QUERY":
                await asyncio.sleep(QUERY_DELAY)
            return await real_dispatch(service, frame)

        monkeypatch.setattr(server_mod, "dispatch", slow_dispatch)

        async def run():
            service = ClusterService()
            ready, stop = asyncio.Event(), asyncio.Event()
            task = asyncio.create_task(
                run_server(service, "127.0.0.1", 0, ready=ready, stop=stop)
            )
            await ready.wait()
            try:
                return await run_loadgen(
                    "127.0.0.1",
                    service.port,
                    tenants=1,
                    points_per_tenant=200,
                    dataset="maze",
                    config=CONFIG,
                    rate=2000.0,
                    batch=20,
                    query_every=1,
                    flush_tail=False,
                    seed=5,
                )
            finally:
                stop.set()
                await task

        report = asyncio.run(run())
        detail = report["tenants_detail"][0]
        assert report["accepted_total"] == 200
        # Ingest pacing is probe-independent: 200 points at 2000/s is an
        # intended 0.1 s. Pre-fix the inline probes (>= 10 batches x 2
        # queries x 50 ms) pushed this past a full second.
        assert detail["ingest_seconds"] < 0.6, (
            f"slow queries stalled the ingest loop: "
            f"{detail['ingest_seconds']:.2f}s for an intended ~0.1s"
        )
        # At least two probes fired and the backlog is visible: probe k is
        # measured from its intended send time, so with a 5 ms schedule
        # against 50 ms responses the p95 exceeds a single response time.
        assert report["queries_total"] >= 2
        assert report["query_p95_ms"] > QUERY_DELAY * 1000 * 1.2, (
            f"p95 {report['query_p95_ms']:.1f}ms hides the query backlog "
            f"(single response {QUERY_DELAY * 1000:.0f}ms)"
        )

    def test_unpaced_run_still_reports_and_matches_counts(self):
        """Flat-out mode keeps working with the probe task running."""

        async def run():
            service = ClusterService()
            ready, stop = asyncio.Event(), asyncio.Event()
            task = asyncio.create_task(
                run_server(service, "127.0.0.1", 0, ready=ready, stop=stop)
            )
            await ready.wait()
            try:
                return await run_loadgen(
                    "127.0.0.1",
                    service.port,
                    tenants=2,
                    points_per_tenant=120,
                    dataset="maze",
                    config=CONFIG,
                    rate=0.0,
                    batch=30,
                    query_every=1,
                    flush_tail=True,
                    seed=9,
                )
            finally:
                stop.set()
                await task

        report = asyncio.run(run())
        assert report["accepted_total"] == 240
        assert report["shed_total"] == 0 and report["rejected_total"] == 0
        for detail in report["tenants_detail"]:
            assert detail["ingested"] == 120
        # Probe latencies are non-negative even when measured against the
        # intended schedule (a probe is never sent before its slot).
        assert report["query_p50_ms"] >= 0.0
