"""Unit tests for the columnar PointStore arena and its record façade."""

import numpy as np
import pytest

from repro.core.state import PointRecord, WindowState
from repro.core.store import (
    COUNTER_FIELDS,
    DELETED,
    NO_ID,
    SLAB_SLOTS,
    WAS_CORE,
    PointStore,
    RecordMap,
    RecordView,
)
from repro.common.config import ClusteringParams


def fill(store, n, start=0):
    pids = list(range(start, start + n))
    coords = [(float(p), 0.0) for p in pids]
    times = [float(p) for p in pids]
    return store.bulk_insert(pids, coords, times)


class TestSlabGrowth:
    def test_first_insert_allocates_one_slab(self):
        store = PointStore()
        fill(store, 1)
        assert store.capacity == SLAB_SLOTS
        assert store.slabs == 1
        store.check_invariants()

    def test_growth_is_in_whole_slabs(self):
        store = PointStore()
        fill(store, 3 * SLAB_SLOTS + 5)
        assert store.capacity % SLAB_SLOTS == 0
        assert store.capacity >= 3 * SLAB_SLOTS + 5
        assert len(store) == 3 * SLAB_SLOTS + 5
        store.check_invariants()

    def test_growth_preserves_existing_rows(self):
        store = PointStore()
        fill(store, 10)
        store.n_eps[store.slot_of(3)] = 7
        store.cid[store.slot_of(4)] = 42
        fill(store, 2 * SLAB_SLOTS, start=10)  # forces reallocation
        assert int(store.n_eps[store.slot_of(3)]) == 7
        assert int(store.cid[store.slot_of(4)]) == 42
        assert store.view(5).coords == (5.0, 0.0)
        store.check_invariants()

    def test_steady_state_never_grows(self):
        store = PointStore()
        fill(store, 100)
        cap = store.capacity
        for round_ in range(1, 20):
            store.free(range((round_ - 1) * 100, round_ * 100))
            fill(store, 100, start=round_ * 100)
        assert store.capacity == cap
        store.check_invariants()


class TestFreeListRecycling:
    def test_freed_slots_are_reused(self):
        store = PointStore()
        fill(store, 8)
        freed = {store.slot_of(p) for p in (2, 5)}
        store.free([2, 5])
        new_slots = set(fill(store, 2, start=100).tolist())
        assert new_slots == freed
        assert store.recycled_total == 2
        store.check_invariants()

    def test_fresh_rows_are_reset_after_recycling(self):
        store = PointStore()
        fill(store, 4)
        view = store.view(1)
        view.n_eps = 9
        view.cid = 3
        view.anchor = 0
        view.was_core = True
        store.free([1])
        fill(store, 1, start=50)
        rec = store.view(50)
        assert (rec.n_eps, rec.c_core, rec.cid, rec.anchor) == (1, 0, None, None)
        assert not rec.was_core and not rec.deleted

    def test_counters_shape(self):
        store = PointStore()
        fill(store, 6)
        store.free([0])
        counters = store.counters()
        assert tuple(counters) == COUNTER_FIELDS
        assert counters["slots"] == 5
        assert counters["free"] == 1
        assert counters["capacity"] == SLAB_SLOTS
        assert counters["slabs"] == 1
        assert counters["high_water"] == 6
        assert 0.0 <= counters["occupancy"] <= 1.0
        assert store.nbytes() > 0


class TestSlotStability:
    def test_pid_slot_mapping_survives_other_expiries(self):
        """A resident point's slot never moves, whatever happens around it."""
        store = PointStore()
        fill(store, 50)
        pinned = {p: store.slot_of(p) for p in (10, 25, 49)}
        store.free([p for p in range(50) if p not in pinned])
        fill(store, 47, start=1000)  # recycle every freed slot
        for pid, slot in pinned.items():
            assert store.slot_of(pid) == slot
            assert store.view(pid).pid == pid
        store.check_invariants()

    def test_insertion_order_iteration(self):
        store = PointStore()
        fill(store, 5)
        store.free([1, 3])
        fill(store, 2, start=7)
        assert list(store.iter_pids()) == [0, 2, 4, 7, 8]
        assert store.pid[store.live_slots()].tolist() == [0, 2, 4, 7, 8]

    def test_mark_deleted_keeps_rows_resident(self):
        store = PointStore()
        slots = fill(store, 3)
        store.mark_deleted(slots[:1])
        assert 0 in store
        assert store.view(0).deleted
        assert int(store.n_eps[slots[0]]) == 0
        assert bool(store.flags[slots[0]] & DELETED)


class TestRecordFacade:
    def test_view_roundtrips_every_field(self):
        store = PointStore()
        fill(store, 1)
        rec = store.view(0)
        rec.n_eps, rec.c_core, rec.cid, rec.anchor = 5, 2, 11, 0
        rec.was_core = True
        assert (rec.n_eps, rec.c_core, rec.cid, rec.anchor) == (5, 2, 11, 0)
        rec.cid = None
        rec.anchor = None
        assert rec.cid is None and rec.anchor is None
        assert int(store.cid[store.slot_of(0)]) == NO_ID

    def test_record_map_is_a_mapping(self):
        store = PointStore()
        fill(store, 3)
        records = RecordMap(store)
        assert len(records) == 3
        assert 1 in records and 9 not in records
        assert records.get(9) is None
        assert [pid for pid, _ in records.items()] == [0, 1, 2]
        assert [rec.pid for rec in records.values()] == [0, 1, 2]
        del records[1]
        assert len(records) == 2

    def test_window_state_layouts(self):
        params = ClusteringParams(eps=0.5, tau=3)
        columnar = WindowState(params)
        assert columnar.store_kind == "columnar"
        assert isinstance(columnar.records, RecordMap)
        assert columnar.columnar() is columnar.store
        legacy = WindowState(params, store="object")
        assert legacy.store_kind == "object"
        assert legacy.columnar() is None
        with pytest.raises(ValueError):
            WindowState(params, store="mystery")

    def test_columnar_guard_detects_replaced_records(self):
        """Tests that swap in a plain dict must fall back to generic paths."""
        state = WindowState(ClusteringParams(eps=0.5, tau=3))
        state.records = {}
        assert state.columnar() is None

    def test_reprs_expose_anchor_and_time(self):
        """Regression: both record reprs must show anchor and time."""
        store = PointStore()
        fill(store, 1)
        view = store.view(0)
        view.anchor = 7
        text = repr(view)
        assert "anchor=7" in text and "time=0.0" in text
        rec = PointRecord(1, (0.0, 0.0), 2.5)
        rec.anchor = 7
        text = repr(rec)
        assert "anchor=7" in text and "time=2.5" in text


class TestInvariants:
    def test_flags_stay_a_bitfield(self):
        store = PointStore()
        slots = fill(store, 2)
        store.flags[slots[0]] |= WAS_CORE
        store.mark_deleted(slots[:1])
        assert bool(store.flags[slots[0]] & WAS_CORE)
        view = store.view(0)
        view.deleted = False
        assert view.was_core and not view.deleted

    def test_slots_of_batches(self):
        store = PointStore()
        fill(store, 6)
        got = store.slots_of([4, 0, 2])
        assert got.dtype == np.int64
        assert got.tolist() == [store.slot_of(4), store.slot_of(0), store.slot_of(2)]
        with pytest.raises(KeyError):
            store.slots_of([99])
