"""Scenario generator determinism and case-file round-trips.

The whole fuzz subsystem rests on one invariant: a scenario is a pure
function of its integer seed. Same seed, same Python build → identical
points, probes, and parameters, so any failure is replayable from the seed
alone. These tests pin that, plus the JSONL case format tier-1 replays.
"""

from __future__ import annotations

import pytest

from repro.fuzz.scenarios import (
    CASE_FORMAT,
    FEATURES,
    CaseError,
    Scenario,
    generate_scenario,
    load_case,
    save_case,
    scenarios_from_seed,
)

SEEDS = [0, 1, 42, 2**31 - 1]


class TestDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_same_scenario(self, seed):
        a = generate_scenario(seed)
        b = generate_scenario(seed)
        assert a.points == b.points
        assert a.probes == b.probes
        assert (a.eps, a.tau, a.window, a.stride, a.time_based) == (
            b.eps,
            b.tau,
            b.window,
            b.stride,
            b.time_based,
        )
        assert a.features == b.features

    def test_different_seeds_differ(self):
        streams = {tuple(generate_scenario(s).points) for s in range(8)}
        assert len(streams) > 1

    def test_scenarios_from_seed_derives_distinct_named_scenarios(self):
        batch = scenarios_from_seed(5, 3)
        assert [s.name for s in batch] == ["seed-5.0", "seed-5.1", "seed-5.2"]
        assert len({tuple(s.points) for s in batch}) == 3
        # Re-derivation is stable too.
        again = scenarios_from_seed(5, 3)
        assert [s.points for s in again] == [s.points for s in batch]


class TestStreamShape:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_stream_is_well_formed(self, seed):
        scenario = generate_scenario(seed)
        assert scenario.points, "empty stream fuzzes nothing"
        assert scenario.probes
        times = [p.time for p in scenario.points]
        assert times == sorted(times), "stream must be time-ordered"
        pids = [p.pid for p in scenario.points]
        assert len(pids) == len(set(pids)) or "pid_reuse" in scenario.features
        assert scenario.window % scenario.stride == 0
        assert set(scenario.features) <= set(FEATURES)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_coordinates_snap_to_quarter_grid(self, seed):
        # 0.25 multiples are exact binary floats: distances computed from
        # them are exact, so "at exactly eps" probes really are at eps.
        for point in generate_scenario(seed).points:
            for value in point.coords:
                assert value * 4 == int(value * 4)

    def test_with_points_replaces_only_the_stream(self):
        scenario = generate_scenario(3)
        halved = scenario.with_points(scenario.points[::2])
        assert len(halved.points) == (len(scenario.points) + 1) // 2
        assert halved.eps == scenario.eps
        assert halved.probes == scenario.probes
        assert isinstance(halved, Scenario)

    def test_describe_mentions_the_knobs(self):
        text = generate_scenario(9).describe()
        assert "eps=" in text
        assert "tau=" in text
        assert "window=" in text


class TestCaseFiles:
    def test_round_trip_preserves_everything(self, tmp_path):
        scenario = generate_scenario(42)
        meta = {"oracle": "classify", "backend": "grid", "detail": "x"}
        path = save_case(tmp_path / "case.jsonl", scenario, meta=meta)
        loaded, loaded_meta = load_case(path)
        assert loaded.points == scenario.points
        assert loaded.probes == scenario.probes
        assert loaded.name == scenario.name
        assert loaded.seed == scenario.seed
        assert (loaded.eps, loaded.tau, loaded.window, loaded.stride) == (
            scenario.eps,
            scenario.tau,
            scenario.window,
            scenario.stride,
        )
        assert loaded.time_based == scenario.time_based
        assert loaded_meta == meta

    def test_save_is_byte_stable(self, tmp_path):
        scenario = generate_scenario(7)
        a = save_case(tmp_path / "a.jsonl", scenario, meta={"k": 1})
        b = save_case(tmp_path / "b.jsonl", scenario, meta={"k": 1})
        assert a.read_bytes() == b.read_bytes()

    def test_header_declares_the_format_version(self, tmp_path):
        path = save_case(tmp_path / "c.jsonl", generate_scenario(1))
        header = path.read_text().splitlines()[0]
        assert f'"case": {CASE_FORMAT}'.replace(" ", "") in header.replace(
            " ", ""
        )

    def test_malformed_cases_raise_case_error(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(CaseError):
            load_case(empty)

        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("not json\n")
        with pytest.raises(CaseError):
            load_case(garbage)

        wrong = tmp_path / "wrong.jsonl"
        wrong.write_text('{"case": 999, "name": "x"}\n')
        with pytest.raises(CaseError):
            load_case(wrong)
