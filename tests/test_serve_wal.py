"""Exactly-once ingest: WAL-backed sessions, kill drills, supervision.

Two contracts are proven here, in-process (the subprocess TCP variant lives
in ``test_serve_recovery.py`` and the CI ``wal-smoke`` job):

1. **Durability** — with ``wal_fsync="always"`` under the ``block`` policy,
   a simulated kill -9 + power cut after *any* acknowledged point loses
   zero acknowledged points: the resumed session's replay offset covers
   every ack, and its per-stride labels are byte-identical to an offline
   ``cluster_stream`` over the same stream.
2. **Self-healing** — an unexpected writer crash isolates the tenant,
   leaves co-resident tenants untouched, and the service restarts it from
   checkpoint + WAL (restart budget, exponential backoff, degraded STATS).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import cluster_stream
from repro.common.config import WindowSpec
from repro.common.errors import ConfigurationError
from repro.observability import InMemorySink, Tracer, validate_trace_record
from repro.observability.sinks import PrometheusTextfileExporter
from repro.runtime.chaos import DiskFull, power_loss
from repro.runtime.wal import WriteAheadLog
from repro.serve import ClusterService, ServeError, SessionConfig, TenantSession

from .conftest import clustered_stream

EPS, TAU = 0.8, 4
WINDOW, STRIDE = 40, 10
N_POINTS = 90  # 9 full strides


def make_config(**overrides) -> SessionConfig:
    base = dict(
        eps=EPS,
        tau=TAU,
        window=WINDOW,
        stride=STRIDE,
        checkpoint_every=2,
        wal=True,
    )
    base.update(overrides)
    return SessionConfig(**base)


def make_wal(tmp_path, config: SessionConfig) -> WriteAheadLog:
    return WriteAheadLog(
        tmp_path / "wal",
        fsync=config.wal_fsync,
        fsync_every=config.wal_fsync_every,
        fsync_interval_s=config.wal_fsync_interval_s,
        segment_bytes=config.wal_segment_bytes,
    )


def offline_history(points, config: SessionConfig) -> list[dict]:
    spec = WindowSpec(window=config.window, stride=config.stride)
    return [
        dict(snapshot.labels)
        for snapshot, _ in cluster_stream(
            points, spec, eps=config.eps, tau=config.tau
        )
    ]


class TestConfig:
    def test_wal_requires_block_policy(self):
        for policy in ("shed-oldest", "reject"):
            with pytest.raises(ConfigurationError, match="block"):
                make_config(backpressure=policy)

    def test_wal_fields_round_trip(self):
        config = make_config(
            wal_fsync="every_n", wal_fsync_every=7, wal_segment_bytes=512
        )
        assert SessionConfig.from_dict(config.as_dict()) == config

    def test_bad_fsync_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="fsync"):
            make_config(wal_fsync="yolo")

    def test_wal_tenant_needs_data_dir(self):
        async def run():
            service = ClusterService(data_dir=None)
            with pytest.raises(ServeError, match="data-dir"):
                service.open("t", make_config())

        asyncio.run(run())


async def _life1(tmp_path, points, cut, config):
    """Feed ``cut`` points one ack at a time, then die without any grace."""
    wal = make_wal(tmp_path, config)
    session = TenantSession(
        "t", config, store=str(tmp_path / "ckpt"), wal=wal
    )
    session.start(resume="auto")
    for i, point in enumerate(points[:cut]):
        result = await session.offer([point])
        assert result["accepted"] == 1
        if i % 7 == 6:
            # Give the writer a scheduling slot so strides advance and
            # checkpoints (and WAL compaction) interleave with ingest —
            # the drill then dies with arbitrary checkpoint/queue overlap.
            await asyncio.sleep(0)
    # kill -9: cancel the writer mid-flight, zero cleanup, no drain.
    session._writer.cancel()
    try:
        await session._writer
    except asyncio.CancelledError:
        pass
    return wal


async def _life2(tmp_path, points, config):
    """Resume, re-send the stream from the start, drain with tail flush."""
    wal = make_wal(tmp_path, config)
    session = TenantSession(
        "t", config, store=str(tmp_path / "ckpt"), wal=wal
    )
    views = []
    original = session._publish

    def capture():
        original()
        views.append(session.view)

    session._publish = capture
    offset = session.start(resume="auto")
    for i in range(0, len(points), 30):
        await session.offer(points[i : i + 30])
    await session.drain(flush_tail=True)
    await session.close()
    wal.close()
    return session, offset, views


def run_kill_drill(tmp_path, points, cut, config, history):
    wal = asyncio.run(_life1(tmp_path, points, cut, config))
    power_loss(wal)  # drop every byte the OS never fsynced
    session, offset, views = asyncio.run(_life2(tmp_path, points, config))
    # Every life-2 view must match the offline run at its stride — the
    # recovered state is byte-identical, not merely similar.
    for view in views:
        if view.stride >= 0:
            assert dict(view.clustering.labels) == history[view.stride], (
                f"cut={cut}: stride {view.stride} diverged after resume"
            )
    assert views[-1].stride == len(history) - 1, f"cut={cut}: wrong stride count"
    return session, offset


class TestKillAtEveryRecord:
    """The acceptance drill: die after every single acknowledged point."""

    @pytest.mark.chaos
    def test_fsync_always_never_loses_an_ack(self, tmp_path):
        points = clustered_stream(21, N_POINTS)
        config = make_config(wal_fsync="always")
        history = offline_history(points, config)
        for cut in range(1, N_POINTS + 1):
            directory = tmp_path / f"cut-{cut}"
            _, offset = run_kill_drill(tmp_path=directory, points=points,
                                       cut=cut, config=config, history=history)
            # ACK => durable: the resumed state covers every acknowledged
            # point, so the producer's re-send is swallowed entirely.
            assert offset == cut, (
                f"cut={cut}: resumed replay offset {offset} lost "
                f"{cut - offset} acknowledged point(s)"
            )

    @pytest.mark.chaos
    @pytest.mark.parametrize("fsync,kwargs", [
        ("every_n", {"wal_fsync_every": 5}),
        ("interval", {"wal_fsync_interval_s": 0.0}),
    ])
    def test_weaker_policies_still_recover_exactly(self, tmp_path, fsync, kwargs):
        """every_n / interval may lose un-fsynced acks to a power cut, but
        the recovered prefix is always clean and the re-sent stream
        converges to the byte-identical offline result."""
        points = clustered_stream(22, N_POINTS)
        config = make_config(wal_fsync=fsync, **kwargs)
        history = offline_history(points, config)
        for cut in range(1, N_POINTS + 1):
            directory = tmp_path / f"cut-{cut}"
            _, offset = run_kill_drill(tmp_path=directory, points=points,
                                       cut=cut, config=config, history=history)
            assert 0 <= offset <= cut  # never invents points it was not sent


class TestAckDurability:
    def test_offer_commits_before_returning(self, tmp_path):
        """The moment offer() returns, every accepted point must already be
        on durable storage (fsync=always): power-cut and read it back."""
        points = clustered_stream(23, 25)

        async def run():
            config = make_config(wal_fsync="always")
            wal = make_wal(tmp_path, config)
            session = TenantSession("t", config, store=str(tmp_path / "ckpt"), wal=wal)
            session.start()
            await session.offer(points)
            session._writer.cancel()
            try:
                await session._writer
            except asyncio.CancelledError:
                pass
            return wal

        wal = asyncio.run(run())
        power_loss(wal)
        recovered = make_wal(tmp_path, make_config())
        assert recovered.replay(0) == list(points)

    def test_disk_full_rejects_instead_of_lying(self, tmp_path):
        points = clustered_stream(24, 60)

        async def run():
            config = make_config()
            wal = make_wal(tmp_path, config)
            wal.fault = DiskFull(after_bytes=800)
            session = TenantSession("t", config, store=str(tmp_path / "ckpt"), wal=wal)
            session.start()
            result = await session.offer(points)
            # Some points fit, the rest were refused — but never acked-then-lost.
            assert result["accepted"] + result["rejected"] == len(points)
            assert result["rejected"] > 0
            assert "wal_error" in result
            assert session.wal_error is not None
            # The session is degraded, not dead: queries still work and the
            # disk filling up did not corrupt the journal.
            session.require_healthy()
            stats = session.stats()
            assert stats["wal"]["appends"] == result["accepted"]
            # Space frees up: ingest resumes on the same log.
            wal.fault.free()
            more = await session.offer(points[:5])
            assert more["accepted"] == 5
            await session.drain()
            await session.close()

        asyncio.run(run())

    def test_replayed_items_not_rejournaled(self, tmp_path):
        points = clustered_stream(25, N_POINTS)
        config = make_config()

        async def life(resend):
            wal = make_wal(tmp_path, config)
            session = TenantSession("t", config, store=str(tmp_path / "ckpt"), wal=wal)
            session.start(resume="auto")
            if resend:
                await session.offer(points)
            await session.drain()
            await session.close()
            wal.close()
            return session, wal

        session, wal = asyncio.run(life(resend=True))
        appends_before = wal.stats.appends
        assert appends_before == N_POINTS
        # Second life: the full re-send is swallowed as replayed prefix and
        # must not be journaled again.
        session2, wal2 = asyncio.run(life(resend=True))
        assert session2.skipped_replay == N_POINTS
        assert wal2.stats.appends == 0


class TestSupervision:
    @staticmethod
    def crash_writer(session):
        """Arrange for the next fed item to explode with a non-ReproError."""

        def boom(item):
            raise RuntimeError("segfault du jour")

        session.supervisor.feed = boom

    @staticmethod
    async def wait_restarted(service, name, crashed, timeout=5.0):
        deadline = asyncio.get_running_loop().time() + timeout
        while asyncio.get_running_loop().time() < deadline:
            current = service.sessions.get(name)
            if current is not None and current is not crashed and current.failed is None:
                return current
            await asyncio.sleep(0.01)
        raise AssertionError(f"tenant {name} was never restarted")

    def test_crash_restarts_without_disturbing_other_tenants(self, tmp_path):
        points = clustered_stream(26, N_POINTS)
        config = make_config()

        async def run():
            service = ClusterService(
                data_dir=tmp_path, restart_budget=3, restart_backoff_s=0.01
            )
            a = service.open("a", config)
            b = service.open("b", config)
            await a.offer(points[:40])
            await b.offer(points[:40])
            await asyncio.sleep(0.05)  # let both writers catch up

            self.crash_writer(a)
            await a.offer(points[40:45])
            await asyncio.sleep(0.02)  # writer dies on the poisoned feed
            assert a.failed is not None and "crashed" in a.failed
            with pytest.raises(ServeError, match="failed"):
                a.require_healthy()

            # Isolation: tenant b never notices.
            assert b.failed is None
            result = await b.offer(points[40:45])
            assert result["accepted"] == 5

            # Degraded in STATS while down, then self-healed.
            assert service.stats()["degraded"].get("a") in ("restarting", None)
            healed = await self.wait_restarted(service, "a", a)
            assert healed.restarts == 1
            assert service.stats()["degraded"] == {}
            assert service.stats()["tenant_restarts"] == 1

            # The restarted tenant recovered every acknowledged point (the
            # crashed batch included — it was journaled before the ack) and
            # keeps ingesting *new* points without the client re-sending.
            result = await healed.offer(points[45:])
            assert result["accepted"] == len(points) - 45
            await service.drain("a", flush_tail=True)
            labels = {
                str(pid): cid
                for pid, cid in healed.view.clustering.labels.items()
            }
            await service.drain("b")
            await service.shutdown()
            return labels

        labels = asyncio.run(run())
        offline = offline_history(points, config)[-1]
        assert labels == {str(pid): cid for pid, cid in offline.items()}

    def test_restart_budget_opens_the_circuit(self, tmp_path):
        points = clustered_stream(27, 50)
        config = make_config()

        async def run():
            service = ClusterService(
                data_dir=tmp_path, restart_budget=2, restart_backoff_s=0.005
            )
            session = service.open("t", config)
            crashed = session
            for crash in range(3):
                self.crash_writer(crashed)
                await crashed.offer(points[crash : crash + 1])
                await asyncio.sleep(0.01)
                if crash < 2:
                    crashed = await self.wait_restarted(service, "t", crashed)
                    assert crashed.restarts == crash + 1
            # Third crash exhausts the budget: circuit opens, stays failed.
            await asyncio.sleep(0.1)
            assert service.degraded.get("t") == "circuit-open"
            final = service.sessions["t"]
            assert final.failed is not None
            with pytest.raises(ServeError, match="failed"):
                final.require_healthy()
            assert service.stats()["tenant_restarts"] == 2
            await service.close("t")

        asyncio.run(run())

    def test_restart_budget_decays_after_healthy_interval(self, tmp_path):
        """A tenant that crashes rarely must keep healing forever.

        Regression: ``_watch`` incremented ``_restart_counts`` on every
        restart and never reset it, so the budget was a *lifetime* cap — a
        tenant crashing once a day tripped a ``restart_budget=2`` breaker
        on its third crash ever, despite every restart having succeeded.
        The budget now covers one unhealthy window: a replacement that
        stays healthy for ``restart_reset_s`` earns the full budget back.
        Pre-fix, the third widely-spaced crash below goes circuit-open and
        this test fails."""
        points = clustered_stream(31, 60)
        config = make_config()

        async def run():
            service = ClusterService(
                data_dir=tmp_path,
                restart_budget=2,
                restart_backoff_s=0.005,
                restart_reset_s=0.05,
            )
            session = service.open("t", config)
            for crash in range(4):
                self.crash_writer(session)
                await session.offer(points[crash : crash + 1])
                await asyncio.sleep(0.01)
                session = await self.wait_restarted(service, "t", session)
                # Outlive restart_reset_s: the budget window closes.
                await asyncio.sleep(0.15)
            assert service.degraded == {}
            session.require_healthy()
            # The decay resets the breaker, not the books: lifetime restart
            # counts keep accumulating in STATS.
            assert service.stats()["tenant_restarts"] == 4
            assert session.restarts == 4
            await service.shutdown()

        asyncio.run(run())

    def test_wal_less_tenant_still_restarts_from_checkpoint(self, tmp_path):
        """Supervision works without a WAL too — the restart recovers the
        checkpointed prefix (weaker: un-checkpointed acks are lost)."""
        points = clustered_stream(28, 60)
        config = make_config(wal=False)

        async def run():
            service = ClusterService(
                data_dir=tmp_path, restart_budget=1, restart_backoff_s=0.005
            )
            session = service.open("t", config)
            await session.offer(points[:50])
            await asyncio.sleep(0.05)
            self.crash_writer(session)
            await session.offer(points[50:51])
            await asyncio.sleep(0.01)
            healed = await self.wait_restarted(service, "t", session)
            assert healed.wal is None
            assert healed.supervisor.stride > 0  # restored, not fresh
            await service.shutdown()

        asyncio.run(run())


class TestShedCrashConsistency:
    """Shed-oldest vs. the WAL: shed points must never be resurrected.

    ``offer`` journals-then-enqueues, and shed-oldest drops *queued* items
    — items that were already journaled and acknowledged. A post-crash WAL
    replay would re-feed them, making the restarted tenant process points
    the pre-crash pipeline never saw (label divergence from a never-crashed
    run). The combination is therefore rejected outright — at the config
    level (``SessionConfig``) *and* at the session level for directly
    injected WAL objects, which bypass the config flag — and the
    kill-after-shed drill proves checkpoint-only recovery stays consistent.
    """

    def test_wal_object_requires_block_policy_at_session_level(self, tmp_path):
        """Regression (fail-pre-fix): ``TenantSession`` accepted a ``wal``
        object alongside a shed-oldest config because the config-level
        check only guards the ``config.wal`` *flag*, not the injected
        object — exactly the resurrection hole described above."""
        config = make_config(wal=False, backpressure="shed-oldest")
        wal = make_wal(tmp_path, config)

        async def run():
            with pytest.raises(ConfigurationError, match="block"):
                TenantSession(
                    "t", config, store=str(tmp_path / "ckpt"), wal=wal
                )

        try:
            asyncio.run(run())
        finally:
            wal.close()

    @pytest.mark.chaos
    def test_kill_after_shed_recovers_consistent_labels(self, tmp_path):
        """Kill -9 a shed-oldest tenant *after* it shed points, resume from
        checkpoint, and prove the post-restart labels are byte-identical to
        an offline run over the post-admission sequence — i.e. nothing shed
        ever reappears in the pipeline."""
        points = clustered_stream(32, 150)
        # queue_limit is a stride multiple so the post-admission sequence
        # stays stride-aligned — cluster_stream flushes a partial tail at
        # end-of-stream, the drained session (flush_tail=False) does not.
        config = make_config(
            wal=False,
            backpressure="shed-oldest",
            queue_limit=20,
            checkpoint_every=1,
        )

        async def life1():
            session = TenantSession(
                "t", config, store=str(tmp_path / "ckpt"), journal=[]
            )
            session.start()
            # Flood the queue in one offer: shed-oldest admits without
            # yielding, so the writer sees none of it until we sleep.
            result = await session.offer(points[:120])
            assert result["shed"] > 0, "the drill needs actual sheds"
            while session._queue.qsize():
                await asyncio.sleep(0.005)
            await asyncio.sleep(0.02)  # trailing feed + checkpoint land
            fed = list(session.journal)
            # kill -9: cancel the writer mid-flight, zero cleanup.
            session._writer.cancel()
            try:
                await session._writer
            except asyncio.CancelledError:
                pass
            return fed, result["shed"]

        async def life2():
            session = TenantSession(
                "t", config, store=str(tmp_path / "ckpt"), journal=[]
            )
            views = []
            original = session._publish

            def capture():
                original()
                views.append(session.view)

            session._publish = capture
            # Supervised-restart semantics: the producer keeps sending only
            # new points, nothing is re-sent or swallowed.
            offset = session.start(resume="auto", swallow_prefix=False)
            await session.offer(points[120:])
            await session.drain(flush_tail=False)
            fed = list(session.journal)
            await session.close()
            return offset, fed, views

        fed1, shed = asyncio.run(life1())
        offset, fed2, views = asyncio.run(life2())
        assert shed > 0 and len(fed1) < 120  # sheds really thinned the feed
        assert 0 < offset <= len(fed1)  # checkpoint covers a fed prefix only
        # What the resumed pipeline is accountable for: the checkpointed
        # prefix of the post-admission sequence plus the new points.
        combined = fed1[:offset] + fed2
        history = offline_history(combined, config)
        for view in views:
            if view.stride >= 0:
                assert dict(view.clustering.labels) == history[view.stride], (
                    f"stride {view.stride}: resumed labels diverged — a shed "
                    "point was resurrected or the checkpoint lied"
                )
        assert views[-1].stride == len(history) - 1


class TestWalObservability:
    def test_trace_records_carry_schema_valid_wal_block(self, tmp_path):
        points = clustered_stream(29, N_POINTS)
        config = make_config()

        async def run():
            sink = InMemorySink()
            prom = PrometheusTextfileExporter(tmp_path / "t.prom")
            tracer = Tracer(sink, prom)
            wal = make_wal(tmp_path, config)
            session = TenantSession(
                "t", config, store=str(tmp_path / "ckpt"), wal=wal, tracer=tracer
            )
            session.start()
            await session.offer(points)
            await session.drain(flush_tail=True)
            await session.close()
            tracer.close()
            return sink, session

        sink, session = asyncio.run(run())
        assert sink.records, "no strides traced"
        for trace in sink.records:
            record = trace.as_dict()
            assert "wal" in record
            validate_trace_record(record)
        last = sink.records[-1].as_dict()["wal"]
        assert last["appends"] == N_POINTS
        assert last["fsyncs"] > 0
        text = (tmp_path / "t.prom").read_text()
        assert 'disc_wal_total{stat="appends"} 90' in text
        assert 'disc_wal_total{stat="tenant_restarts"} 0' in text
        # STATS surfaces the same counters.
        stats = session.stats()
        assert stats["wal"]["appends"] == N_POINTS
        assert stats["restarts"] == 0

    def test_compaction_bounds_segment_count(self, tmp_path):
        points = clustered_stream(30, 200)
        config = make_config(wal_segment_bytes=400, checkpoint_every=1)

        async def run():
            wal = make_wal(tmp_path, config)
            session = TenantSession(
                "t", config, store=str(tmp_path / "ckpt"), wal=wal
            )
            session.start()
            await session.offer(points)
            await session.drain()
            await session.close()
            return wal

        wal = asyncio.run(run())
        # Checkpoint-keyed compaction: everything the newest checkpoint
        # covers is garbage-collected; only the tail survives.
        live = wal.segments()
        assert len(live) <= 3, f"compaction left {len(live)} segments"
        first_live = int(live[0].stem.split("-")[1])
        offset = wal.stats.appends
        assert first_live <= offset
        wal.close()
