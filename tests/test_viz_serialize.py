"""Unit tests for terminal visualization and snapshot serialization."""

import pytest

from repro.common.points import StreamPoint
from repro.common.serialize import (
    SerializationError,
    clustering_from_dict,
    clustering_to_dict,
    dumps,
    loads,
)
from repro.common.snapshot import Category, Clustering
from repro.core.disc import DISC
from repro.viz import NOISE_GLYPH, render_clustering, render_comparison


def make_snapshot():
    disc = DISC(0.6, 3)
    left = [StreamPoint(i, (0.4 * i, 0.0), 0.0) for i in range(5)]
    right = [StreamPoint(100 + i, (10.0 + 0.4 * i, 5.0), 0.0) for i in range(5)]
    noise = [StreamPoint(999, (5.0, -5.0), 0.0)]
    disc.advance(left + right + noise, ())
    coords = {p.pid: p.coords for p in left + right + noise}
    return disc.snapshot(), coords


class TestRenderClustering:
    def test_dimensions(self):
        snapshot, coords = make_snapshot()
        text = render_clustering(snapshot, coords, width=40, height=10,
                                 legend=False)
        lines = text.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)

    def test_distinct_glyphs_per_cluster(self):
        snapshot, coords = make_snapshot()
        text = render_clustering(snapshot, coords, width=40, height=10,
                                 legend=False)
        used = {c for c in text if c not in (" ", "\n", NOISE_GLYPH)}
        assert len(used) == 2  # two clusters, two glyphs

    def test_noise_rendered_as_dot(self):
        snapshot, coords = make_snapshot()
        text = render_clustering(snapshot, coords, width=40, height=10,
                                 legend=False)
        assert NOISE_GLYPH in text

    def test_legend(self):
        snapshot, coords = make_snapshot()
        text = render_clustering(snapshot, coords, width=40, height=10)
        assert "clusters:" in text
        assert "noise(.)=1" in text

    def test_empty(self):
        empty = Clustering({}, {})
        assert "empty" in render_clustering(empty, {})

    def test_single_point(self):
        snapshot = Clustering({}, {1: Category.NOISE})
        text = render_clustering(snapshot, {1: (3.0, 4.0)}, width=10, height=4,
                                 legend=False)
        assert text.count(NOISE_GLYPH) == 1

    def test_axis_projection(self):
        # 3D points projected onto (0, 2).
        snapshot = Clustering({}, {1: Category.NOISE, 2: Category.NOISE})
        coords = {1: (0.0, 9.0, 0.0), 2: (1.0, 9.0, 1.0)}
        text = render_clustering(snapshot, coords, width=10, height=4,
                                 axes=(0, 2), legend=False)
        assert text.count(NOISE_GLYPH) == 2

    def test_comparison_stacks_methods(self):
        snapshot, coords = make_snapshot()
        text = render_comparison({"DISC": snapshot, "other": snapshot}, coords)
        assert "--- DISC" in text
        assert "--- other" in text


class TestSerialization:
    def test_roundtrip(self):
        snapshot, _ = make_snapshot()
        restored = loads(dumps(snapshot))
        assert restored.labels == snapshot.labels
        assert restored.categories == snapshot.categories

    def test_dict_roundtrip(self):
        snapshot, _ = make_snapshot()
        restored = clustering_from_dict(clustering_to_dict(snapshot))
        assert restored.core_clusters() == snapshot.core_clusters()

    def test_bad_version(self):
        with pytest.raises(SerializationError):
            clustering_from_dict({"version": 99, "labels": {}, "categories": {}})

    def test_missing_fields(self):
        with pytest.raises(SerializationError):
            clustering_from_dict({"version": 1})

    def test_bad_category_value(self):
        with pytest.raises(SerializationError):
            clustering_from_dict(
                {"version": 1, "labels": {}, "categories": {"1": "wat"}}
            )

    def test_invalid_json(self):
        with pytest.raises(SerializationError):
            loads("{not json")

    def test_stable_output(self):
        snapshot, _ = make_snapshot()
        assert dumps(snapshot) == dumps(snapshot)
