"""Unit tests for stream file I/O."""

import pytest

from repro.common.points import StreamPoint
from repro.common.snapshot import Category, Clustering
from repro.datasets.io import (
    StreamFormatError,
    read_stream,
    write_labels,
    write_stream,
)


def sample_points():
    return [
        StreamPoint(0, (1.0, 2.0), 0.0),
        StreamPoint(1, (3.5, -4.25), 1.0),
        StreamPoint(7, (0.0, 0.0), 5.5),
    ]


class TestRoundTrips:
    @pytest.mark.parametrize("ext", ["csv", "jsonl"])
    def test_roundtrip(self, tmp_path, ext):
        path = str(tmp_path / f"stream.{ext}")
        points = sample_points()
        assert write_stream(path, points) == 3
        assert list(read_stream(path)) == points

    def test_csv_header_recognised(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("pid,time,x0,x1\n5,2.5,1.0,2.0\n")
        [point] = read_stream(str(path))
        assert point == StreamPoint(5, (1.0, 2.0), 2.5)

    def test_csv_header_column_order_free(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("x,pid,y,time\n1.0,5,2.0,2.5\n")
        [point] = read_stream(str(path))
        assert point.pid == 5
        assert point.coords == (1.0, 2.0)
        assert point.time == 2.5

    def test_headerless_csv(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("1.0,2.0\n3.0,4.0\n")
        points = list(read_stream(str(path)))
        assert [p.pid for p in points] == [0, 1]
        assert points[1].coords == (3.0, 4.0)

    def test_jsonl_defaults(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"coords": [1.5, 2.5]}\n\n{"coords": [0, 0], "pid": 9}\n')
        points = list(read_stream(str(path)))
        assert points[0].pid == 0
        assert points[1].pid == 9

    def test_empty_csv(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("")
        assert list(read_stream(str(path))) == []


class TestErrors:
    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "s.parquet"
        path.write_text("x")
        with pytest.raises(StreamFormatError):
            list(read_stream(str(path)))

    def test_explicit_format_overrides_extension(self, tmp_path):
        path = tmp_path / "weird.dat"
        path.write_text("1.0,2.0\n")
        [point] = read_stream(str(path), fmt="csv")
        assert point.coords == (1.0, 2.0)

    def test_bad_csv_row(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("pid,x0\n1,not-a-number\n")
        with pytest.raises(StreamFormatError):
            list(read_stream(str(path)))

    def test_bad_jsonl(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text("{nope}\n")
        with pytest.raises(StreamFormatError):
            list(read_stream(str(path)))

    def test_jsonl_missing_coords(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"pid": 1}\n')
        with pytest.raises(StreamFormatError):
            list(read_stream(str(path)))

    def test_bad_write_format(self, tmp_path):
        with pytest.raises(StreamFormatError):
            write_stream(str(tmp_path / "x.csv"), sample_points(), fmt="xml")


class TestLabelOutput:
    def test_write_labels(self, tmp_path):
        clustering = Clustering(
            {1: 10, 2: 10},
            {1: Category.CORE, 2: Category.BORDER, 3: Category.NOISE},
        )
        path = str(tmp_path / "labels.csv")
        assert write_labels(path, clustering) == 3
        with open(path) as handle:
            lines = handle.read().splitlines()
        assert lines[0] == "pid,label,category"
        assert "1,10,core" in lines
        assert "3,-1,noise" in lines
