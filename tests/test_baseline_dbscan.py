"""Unit tests for static DBSCAN and its sliding wrapper."""

import pytest

from repro.baselines.dbscan import SlidingDBSCAN, dbscan_labels
from repro.common.config import ClusteringParams
from repro.common.errors import StreamOrderError
from repro.common.points import StreamPoint
from repro.common.snapshot import Category
from repro.index.linear import LinearScanIndex


def build_index(points):
    index = LinearScanIndex()
    for pid, coords in points.items():
        index.insert(pid, coords)
    return index


class TestDbscanLabels:
    def test_single_chain_cluster(self):
        points = {i: (0.4 * i, 0.0) for i in range(6)}
        labels, categories = dbscan_labels(
            build_index(points), points, ClusteringParams(0.5, 3)
        )
        assert len(set(labels.values())) == 1
        assert categories[2] is Category.CORE
        assert categories[0] is Category.BORDER  # endpoint: 2 neighbours < 3

    def test_noise_far_away(self):
        points = {0: (0.0, 0.0), 1: (100.0, 100.0)}
        labels, categories = dbscan_labels(
            build_index(points), points, ClusteringParams(1.0, 2)
        )
        assert labels == {}
        assert categories[0] is Category.NOISE
        assert categories[1] is Category.NOISE

    def test_two_clusters(self):
        points = {i: (0.4 * i, 0.0) for i in range(5)}
        points.update({10 + i: (50.0 + 0.4 * i, 0.0) for i in range(5)})
        labels, _ = dbscan_labels(
            build_index(points), points, ClusteringParams(0.5, 3)
        )
        assert len(set(labels.values())) == 2
        assert labels[0] != labels[12]

    def test_noise_reclaimed_as_border(self):
        # Point 0 is scanned first, looks like noise, then a later cluster
        # reaches it: it must end up a border, not noise.
        points = {0: (0.0, 0.0), 1: (0.4, 0.0), 2: (0.8, 0.0), 3: (1.2, 0.0)}
        labels, categories = dbscan_labels(
            build_index(points), points, ClusteringParams(0.5, 3)
        )
        assert categories[0] is Category.BORDER
        assert labels[0] == labels[1]

    def test_one_search_per_point(self):
        points = {i: (0.4 * i, 0.0) for i in range(10)}
        index = build_index(points)
        index.stats.reset()
        dbscan_labels(index, points, ClusteringParams(0.5, 3))
        assert index.stats.range_searches == len(points)

    def test_counts_include_self(self):
        # Exactly tau points all within eps: everyone is core.
        points = {0: (0.0, 0.0), 1: (0.1, 0.0), 2: (0.2, 0.0)}
        _, categories = dbscan_labels(
            build_index(points), points, ClusteringParams(0.5, 3)
        )
        assert all(c is Category.CORE for c in categories.values())


class TestSlidingWrapper:
    def test_advance_and_snapshot(self):
        method = SlidingDBSCAN(0.5, 3)
        pts = [StreamPoint(i, (0.4 * i, 0.0), float(i)) for i in range(6)]
        method.advance(pts, ())
        assert method.snapshot().num_clusters == 1
        assert len(method) == 6

    def test_delete_then_recluster(self):
        method = SlidingDBSCAN(0.5, 3)
        pts = [StreamPoint(i, (0.4 * i, 0.0), float(i)) for i in range(6)]
        method.advance(pts, ())
        method.advance((), pts[2:4])  # cut the chain in the middle
        assert method.snapshot().num_clusters == 0  # 2+2 points < tau each

    def test_bad_deltas_rejected(self):
        method = SlidingDBSCAN(0.5, 3)
        with pytest.raises(StreamOrderError):
            method.advance((), [StreamPoint(1, (0.0, 0.0), 0.0)])
        method.advance([StreamPoint(1, (0.0, 0.0), 0.0)], ())
        with pytest.raises(StreamOrderError):
            method.advance([StreamPoint(1, (0.0, 0.0), 0.0)], ())

    def test_labels_copy(self):
        method = SlidingDBSCAN(0.5, 3)
        pts = [StreamPoint(i, (0.4 * i, 0.0), float(i)) for i in range(6)]
        method.advance(pts, ())
        labels = method.labels()
        labels[999] = 0  # mutating the copy must not touch the method
        assert 999 not in method.labels()
