"""Unit tests for the cluster-id disjoint set."""

from repro.common.disjointset import DisjointSet


class TestDisjointSet:
    def test_make_returns_distinct_ids(self):
        ds = DisjointSet()
        ids = [ds.make() for _ in range(10)]
        assert len(set(ids)) == 10

    def test_fresh_ids_are_own_roots(self):
        ds = DisjointSet()
        a = ds.make()
        assert ds.find(a) == a

    def test_union_connects(self):
        ds = DisjointSet()
        a, b = ds.make(), ds.make()
        assert not ds.connected(a, b)
        root = ds.union(a, b)
        assert ds.connected(a, b)
        assert ds.find(a) == ds.find(b) == root

    def test_union_is_idempotent(self):
        ds = DisjointSet()
        a, b = ds.make(), ds.make()
        first = ds.union(a, b)
        second = ds.union(a, b)
        assert first == second

    def test_transitive_union(self):
        ds = DisjointSet()
        ids = [ds.make() for _ in range(5)]
        for left, right in zip(ids, ids[1:]):
            ds.union(left, right)
        roots = {ds.find(i) for i in ids}
        assert len(roots) == 1

    def test_find_registers_unknown_ids(self):
        ds = DisjointSet()
        assert ds.find(42) == 42
        # New ids minted afterwards must not collide with the adopted one.
        fresh = ds.make()
        assert fresh != 42

    def test_union_by_size_keeps_larger_root(self):
        ds = DisjointSet()
        ids = [ds.make() for _ in range(4)]
        big = ds.union(ids[0], ids[1])
        big = ds.union(big, ids[2])
        merged = ds.union(ids[3], big)
        assert merged == ds.find(big)

    def test_discard_only_removes_lone_roots(self):
        ds = DisjointSet()
        a, b = ds.make(), ds.make()
        ds.union(a, b)
        before = len(ds)
        ds.discard(ds.find(a))  # set has size 2: must refuse
        assert len(ds) == before
        lone = ds.make()
        ds.discard(lone)
        assert len(ds) == before

    def test_len_counts_known_ids(self):
        ds = DisjointSet()
        for _ in range(7):
            ds.make()
        assert len(ds) == 7

    def test_many_unions_path_compression(self):
        ds = DisjointSet()
        ids = [ds.make() for _ in range(200)]
        for left, right in zip(ids, ids[1:]):
            ds.union(left, right)
        root = ds.find(ids[0])
        assert all(ds.find(i) == root for i in ids)


class TestRetire:
    def test_retire_removes_whole_set(self):
        ds = DisjointSet()
        a, b, c = ds.make(), ds.make(), ds.make()
        ds.union(a, b)
        ds.retire(a)
        assert len(ds) == 1  # only c remains
        assert ds.find(c) == c

    def test_retire_accepts_any_member(self):
        ds = DisjointSet()
        ids = [ds.make() for _ in range(5)]
        for left, right in zip(ids, ids[1:]):
            ds.union(left, right)
        ds.retire(ids[3])  # not necessarily the root
        assert len(ds) == 0

    def test_retire_unknown_id_is_noop(self):
        ds = DisjointSet()
        ds.make()
        ds.retire(999)
        assert len(ds) == 1

    def test_retire_twice_is_noop(self):
        ds = DisjointSet()
        a, b = ds.make(), ds.make()
        ds.union(a, b)
        ds.retire(a)
        ds.retire(b)
        assert len(ds) == 0

    def test_retired_ids_can_be_readopted_by_find(self):
        ds = DisjointSet()
        a = ds.make()
        ds.retire(a)
        assert ds.find(a) == a  # re-registered as a fresh singleton
        assert len(ds) == 1

    def test_make_after_retire_never_reuses_ids(self):
        ds = DisjointSet()
        a = ds.make()
        ds.retire(a)
        assert ds.make() != a

    def test_invariants_through_mixed_workload(self):
        import random

        rng = random.Random(7)
        ds = DisjointSet()
        live = [ds.make() for _ in range(20)]
        for _ in range(300):
            op = rng.random()
            if op < 0.4 and len(live) >= 2:
                a, b = rng.sample(live, 2)
                ds.union(a, b)
            elif op < 0.6:
                live.append(ds.make())
            elif op < 0.8 and live:
                victim = rng.choice(live)
                root = ds.find(victim)
                live = [i for i in live if ds.find(i) != root]
                ds.retire(victim)
            elif live:
                ds.discard(rng.choice(live))
                live = [i for i in live if ds.find(i) in ds._parent or True]
            ds.check_invariants()

    def test_discard_keeps_member_lists_consistent(self):
        ds = DisjointSet()
        lone = ds.make()
        ds.discard(lone)
        ds.check_invariants()
        assert len(ds) == 0


class TestBoundedForest:
    def test_dissipation_retires_cluster_ids(self):
        """A stream of emerge/dissipate cycles must not grow the forest.

        Pre-fix, every dissipated cluster left its (possibly merged) ids in
        the forest forever: ``discard`` only reclaims singleton roots, and
        the ids of a cluster that ever absorbed another via MERGE stayed
        pinned until compaction. The run stays far below DISC's
        ``compact_every`` so any bound proven here comes from retirement
        alone.
        """
        from repro.common.points import StreamPoint
        from repro.core.disc import DISC

        disc = DISC(eps=1.0, tau=3)
        assert disc.compact_every > 100  # compaction must not interfere
        pid = 0
        sizes = []
        for cycle in range(100):
            # Two small blobs appear, bridge together (MERGE), then leave.
            blob_a = [
                StreamPoint(pid + i, (0.0 + 0.3 * i, 0.0), float(cycle))
                for i in range(4)
            ]
            blob_b = [
                StreamPoint(pid + 4 + i, (3.0 + 0.3 * i, 0.0), float(cycle))
                for i in range(4)
            ]
            disc.advance(blob_a, ())
            disc.advance(blob_b, ())
            bridge = [
                StreamPoint(pid + 8 + i, (1.2 + 0.4 * i, 0.0), float(cycle))
                for i in range(5)
            ]
            disc.advance(bridge, ())
            everyone = blob_a + blob_b + bridge
            disc.advance((), everyone)  # entire cluster dissipates
            pid += len(everyone)
            sizes.append(len(disc.state.cids))
        # The forest must stay bounded by a small constant, not grow with
        # the number of cycles.
        assert max(sizes[10:]) <= max(sizes[:10]) + 2, sizes
        disc.state.cids.check_invariants()
