"""Unit tests for the cluster-id disjoint set."""

from repro.common.disjointset import DisjointSet


class TestDisjointSet:
    def test_make_returns_distinct_ids(self):
        ds = DisjointSet()
        ids = [ds.make() for _ in range(10)]
        assert len(set(ids)) == 10

    def test_fresh_ids_are_own_roots(self):
        ds = DisjointSet()
        a = ds.make()
        assert ds.find(a) == a

    def test_union_connects(self):
        ds = DisjointSet()
        a, b = ds.make(), ds.make()
        assert not ds.connected(a, b)
        root = ds.union(a, b)
        assert ds.connected(a, b)
        assert ds.find(a) == ds.find(b) == root

    def test_union_is_idempotent(self):
        ds = DisjointSet()
        a, b = ds.make(), ds.make()
        first = ds.union(a, b)
        second = ds.union(a, b)
        assert first == second

    def test_transitive_union(self):
        ds = DisjointSet()
        ids = [ds.make() for _ in range(5)]
        for left, right in zip(ids, ids[1:]):
            ds.union(left, right)
        roots = {ds.find(i) for i in ids}
        assert len(roots) == 1

    def test_find_registers_unknown_ids(self):
        ds = DisjointSet()
        assert ds.find(42) == 42
        # New ids minted afterwards must not collide with the adopted one.
        fresh = ds.make()
        assert fresh != 42

    def test_union_by_size_keeps_larger_root(self):
        ds = DisjointSet()
        ids = [ds.make() for _ in range(4)]
        big = ds.union(ids[0], ids[1])
        big = ds.union(big, ids[2])
        merged = ds.union(ids[3], big)
        assert merged == ds.find(big)

    def test_discard_only_removes_lone_roots(self):
        ds = DisjointSet()
        a, b = ds.make(), ds.make()
        ds.union(a, b)
        before = len(ds)
        ds.discard(ds.find(a))  # set has size 2: must refuse
        assert len(ds) == before
        lone = ds.make()
        ds.discard(lone)
        assert len(ds) == before

    def test_len_counts_known_ids(self):
        ds = DisjointSet()
        for _ in range(7):
            ds.make()
        assert len(ds) == 7

    def test_many_unions_path_compression(self):
        ds = DisjointSet()
        ids = [ds.make() for _ in range(200)]
        for left, right in zip(ids, ids[1:]):
            ds.union(left, right)
        root = ds.find(ids[0])
        assert all(ds.find(i) == root for i in ids)
