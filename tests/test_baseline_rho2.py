"""Unit tests for dynamic rho-approximate DBSCAN.

The rho-approximation contract: pairs within eps must connect; pairs beyond
(1+rho)*eps must not; in between either answer is legal. With blob layouts
that avoid the grey zone entirely, rho2's output must match DBSCAN exactly.
"""

import pytest

from repro.baselines.dbscan import SlidingDBSCAN
from repro.baselines.rho2dbscan import RhoDoubleApproxDBSCAN
from repro.common.config import WindowSpec
from repro.common.errors import StreamOrderError
from repro.common.points import StreamPoint
from repro.metrics.ari import adjusted_rand_index
from repro.window.sliding import materialize_slides
from tests.conftest import clustered_stream


def sp(pid, x, y=0.0):
    return StreamPoint(pid, (float(x), float(y)), float(pid))


def compare_to_dbscan(points, eps, tau, rho):
    rho2 = RhoDoubleApproxDBSCAN(eps, tau, dim=2, rho=rho)
    dbscan = SlidingDBSCAN(eps, tau)
    rho2.advance(points, ())
    dbscan.advance(points, ())
    pids = [p.pid for p in points]
    return adjusted_rand_index(
        dbscan.snapshot().label_array(pids), rho2.snapshot().label_array(pids)
    )


class TestApproximationContract:
    def test_bad_rho_rejected(self):
        with pytest.raises(ValueError):
            RhoDoubleApproxDBSCAN(1.0, 3, dim=2, rho=0.0)

    def test_exact_on_separated_blobs(self):
        points = clustered_stream(1, 200, noise_fraction=0.1)
        assert compare_to_dbscan(points, 0.7, 4, rho=0.001) == 1.0

    def test_chain_connects_within_eps(self):
        points = [sp(i, 0.45 * i) for i in range(8)]
        rho2 = RhoDoubleApproxDBSCAN(0.5, 2, dim=2, rho=0.01)
        rho2.advance(points, ())
        assert rho2.snapshot().num_clusters == 1

    def test_never_connects_beyond_tolerance(self):
        # Two tight pairs separated by 2.0 > (1+rho)*eps = 1.01.
        points = [sp(0, 0.0), sp(1, 0.2), sp(10, 2.2), sp(11, 2.4)]
        rho2 = RhoDoubleApproxDBSCAN(1.0, 2, dim=2, rho=0.01)
        rho2.advance(points, ())
        labels = rho2.labels()
        assert labels[0] != labels[10]

    def test_grey_zone_may_connect(self):
        # Distance 1.05 with eps=1, rho=0.1: legal either way, but the
        # result must still be a valid clustering (both points core).
        points = [sp(0, 0.0), sp(1, 0.3), sp(10, 1.35), sp(11, 1.65)]
        rho2 = RhoDoubleApproxDBSCAN(1.0, 2, dim=2, rho=0.1)
        rho2.advance(points, ())
        assert rho2.snapshot().num_clusters in (1, 2)


class TestDynamicMaintenance:
    def test_incremental_matches_rebuild(self):
        spec = WindowSpec(window=100, stride=20)
        points = clustered_stream(5, 300)
        rho2 = RhoDoubleApproxDBSCAN(0.7, 4, dim=2, rho=0.05)
        for delta_in, delta_out in materialize_slides(points, spec):
            rho2.advance(delta_in, delta_out)
            incremental = rho2.snapshot()
            rho2._rebuild_components()
            reference = rho2.snapshot()
            pids = sorted(incremental.categories)
            assert (
                adjusted_rand_index(
                    incremental.label_array(pids), reference.label_array(pids)
                )
                == 1.0
            )

    def test_sliding_equivalence_to_dbscan(self):
        spec = WindowSpec(window=100, stride=25)
        points = clustered_stream(8, 300)
        rho2 = RhoDoubleApproxDBSCAN(0.7, 4, dim=2, rho=0.001)
        dbscan = SlidingDBSCAN(0.7, 4)
        window = []
        for delta_in, delta_out in materialize_slides(points, spec):
            rho2.advance(delta_in, delta_out)
            dbscan.advance(delta_in, delta_out)
            out_ids = {p.pid for p in delta_out}
            window = [p for p in window if p.pid not in out_ids] + list(delta_in)
            pids = [p.pid for p in window]
            ari = adjusted_rand_index(
                dbscan.snapshot().label_array(pids),
                rho2.snapshot().label_array(pids),
            )
            assert ari > 0.99

    def test_deletion_splits_cluster(self):
        chain = [sp(i, 0.45 * i) for i in range(9)]
        rho2 = RhoDoubleApproxDBSCAN(0.5, 2, dim=2, rho=0.01)
        rho2.advance(chain, ())
        assert rho2.snapshot().num_clusters == 1
        rho2.advance((), [chain[4]])
        assert rho2.snapshot().num_clusters == 2

    def test_stream_order_errors(self):
        rho2 = RhoDoubleApproxDBSCAN(1.0, 2, dim=2, rho=0.1)
        with pytest.raises(StreamOrderError):
            rho2.advance((), [sp(1, 0.0)])
        rho2.advance([sp(1, 0.0)], ())
        with pytest.raises(StreamOrderError):
            rho2.advance([sp(1, 0.0)], ())

    def test_len(self):
        rho2 = RhoDoubleApproxDBSCAN(1.0, 2, dim=2, rho=0.1)
        rho2.advance([sp(1, 0.0), sp(2, 5.0)], ())
        assert len(rho2) == 2
