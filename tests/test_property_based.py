"""Property-based tests (hypothesis) for the core invariants.

The flagship property is the paper's theorem, end to end: for *any* point
stream and *any* window/stride, DISC's clustering equals DBSCAN's. The
supporting properties pin the substrates: R-tree == linear scan, MS-BFS ==
graph components, ARI metamorphic laws, disjoint-set laws.
"""

import math
import random

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dbscan import SlidingDBSCAN
from repro.common.config import ClusteringParams, WindowSpec
from repro.common.disjointset import DisjointSet
from repro.common.points import StreamPoint
from repro.core.disc import DISC
from repro.index.linear import LinearScanIndex
from repro.index.rtree import RTree
from repro.metrics.ari import adjusted_rand_index
from repro.metrics.compare import assert_equivalent

coordinate = st.floats(
    min_value=-8.0, max_value=8.0, allow_nan=False, allow_infinity=False
)

point_list = st.lists(
    st.tuples(coordinate, coordinate), min_size=1, max_size=120
)


@st.composite
def stream_scenarios(draw):
    """A random stream plus window/stride/thresholds."""
    n = draw(st.integers(min_value=20, max_value=140))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    # Mix blobs and noise so cores, borders and noise all occur.
    centers = [
        (rng.uniform(-5, 5), rng.uniform(-5, 5))
        for _ in range(rng.randint(1, 4))
    ]
    points = []
    for i in range(n):
        if rng.random() < 0.25:
            coords = (rng.uniform(-6, 6), rng.uniform(-6, 6))
        else:
            cx, cy = rng.choice(centers)
            coords = (cx + rng.gauss(0, 0.6), cy + rng.gauss(0, 0.6))
        points.append(StreamPoint(i, coords, float(i)))
    window = draw(st.integers(min_value=10, max_value=60))
    stride = draw(st.integers(min_value=1, max_value=window))
    eps = draw(st.sampled_from([0.4, 0.7, 1.0, 1.5]))
    tau = draw(st.integers(min_value=1, max_value=6))
    return points, WindowSpec(window=window, stride=stride), eps, tau


class TestDiscEqualsDbscan:
    @settings(max_examples=25, deadline=None)
    @given(stream_scenarios())
    def test_every_stride_is_exact(self, scenario):
        points, spec, eps, tau = scenario
        disc = DISC(eps, tau)
        reference = SlidingDBSCAN(eps, tau)
        window = []
        from repro.window.sliding import SlidingWindow

        for delta_in, delta_out in SlidingWindow(spec).slides(points):
            disc.advance(delta_in, delta_out)
            reference.advance(delta_in, delta_out)
            out_ids = {p.pid for p in delta_out}
            window = [p for p in window if p.pid not in out_ids] + list(delta_in)
            coords = {p.pid: p.coords for p in window}
            assert_equivalent(
                disc.snapshot(), reference.snapshot(), coords, disc.params
            )


class TestRTreeOracle:
    @settings(max_examples=40, deadline=None)
    @given(point_list, st.tuples(coordinate, coordinate),
           st.floats(min_value=0.05, max_value=4.0))
    def test_ball_matches_linear(self, coords_list, center, radius):
        tree = RTree()
        oracle = LinearScanIndex()
        for pid, coords in enumerate(coords_list):
            tree.insert(pid, coords)
            oracle.insert(pid, coords)
        got = sorted(p for p, _ in tree.ball(center, radius))
        want = sorted(p for p, _ in oracle.ball(center, radius))
        assert got == want

    @settings(max_examples=25, deadline=None)
    @given(point_list, st.integers(min_value=0, max_value=999))
    def test_survives_random_deletions(self, coords_list, seed):
        rng = random.Random(seed)
        tree = RTree()
        oracle = LinearScanIndex()
        for pid, coords in enumerate(coords_list):
            tree.insert(pid, coords)
            oracle.insert(pid, coords)
        alive = list(range(len(coords_list)))
        rng.shuffle(alive)
        for pid in alive[: len(alive) // 2]:
            tree.delete(pid)
            oracle.delete(pid)
        tree.check_invariants()
        center = (rng.uniform(-8, 8), rng.uniform(-8, 8))
        got = sorted(p for p, _ in tree.ball(center, 1.5))
        want = sorted(p for p, _ in oracle.ball(center, 1.5))
        assert got == want

    @settings(max_examples=25, deadline=None)
    @given(point_list, st.integers(min_value=0, max_value=999))
    def test_epoch_probe_partitions_the_ball(self, coords_list, seed):
        # Repeated epoch probes at one tick return disjoint sets whose union
        # equals the plain ball results.
        rng = random.Random(seed)
        tree = RTree()
        for pid, coords in enumerate(coords_list):
            tree.insert(pid, coords)
        centers = [
            (rng.uniform(-8, 8), rng.uniform(-8, 8)) for _ in range(5)
        ]
        plain_union = set()
        for center in centers:
            plain_union |= {p for p, _ in tree.ball(center, 2.0)}
        tick = tree.new_tick()
        probe_union = set()
        for center in centers:
            got = {p for p, _ in tree.ball_unvisited(center, 2.0, tick)}
            assert not (got & probe_union), "epoch probe returned a repeat"
            probe_union |= got
        assert probe_union == plain_union


class TestMsBfsAgainstNetworkx:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=9999),
           st.booleans(), st.booleans())
    def test_component_count(self, seed, multi_starter, epoch):
        from repro.core.collect import collect
        from repro.core.msbfs import check_connectivity
        from repro.core.state import WindowState

        rng = random.Random(seed)
        points = [
            (i, (rng.uniform(0, 6), rng.uniform(0, 6))) for i in range(50)
        ]
        eps, tau = 0.9, 3
        state = WindowState(ClusteringParams(eps, tau))
        index = RTree()
        collect(
            state,
            index,
            [StreamPoint(pid, coords, 0.0) for pid, coords in points],
            (),
        )
        cores = [
            pid for pid, _ in points if state.records[pid].n_eps >= tau
        ]
        if len(cores) < 2:
            return
        graph = nx.Graph()
        graph.add_nodes_from(cores)
        coords_of = dict(points)
        for i, a in enumerate(cores):
            for b in cores[i + 1 :]:
                if math.dist(coords_of[a], coords_of[b]) <= eps:
                    graph.add_edge(a, b)
        seeds = rng.sample(cores, min(5, len(cores)))
        result = check_connectivity(
            index, state, seeds, multi_starter=multi_starter,
            epoch_probing=epoch,
        )
        want = len(
            {frozenset(nx.node_connected_component(graph, s)) for s in seeds}
        )
        assert result.num_components == want


labelings = st.lists(st.integers(min_value=0, max_value=5), min_size=2, max_size=40)


class TestAriProperties:
    @settings(max_examples=50, deadline=None)
    @given(labelings)
    def test_self_agreement(self, labels):
        assert adjusted_rand_index(labels, labels) == 1.0

    @settings(max_examples=50, deadline=None)
    @given(labelings, st.integers(min_value=0, max_value=999))
    def test_permutation_invariance(self, labels, seed):
        rng = random.Random(seed)
        names = list(set(labels))
        renamed = dict(zip(names, rng.sample(range(100, 100 + len(names)), len(names))))
        relabelled = [renamed[v] for v in labels]
        assert adjusted_rand_index(labels, relabelled) == 1.0

    @settings(max_examples=50, deadline=None)
    @given(labelings, labelings)
    def test_symmetry_and_range(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        forward = adjusted_rand_index(a, b)
        backward = adjusted_rand_index(b, a)
        assert forward == backward
        assert -1.0 <= forward <= 1.0


class TestDisjointSetProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=60))
    def test_matches_networkx_components(self, unions):
        ds = DisjointSet()
        graph = nx.Graph()
        graph.add_nodes_from(range(21))
        for a, b in unions:
            ds.union(a, b)
            graph.add_edge(a, b)
        for component in nx.connected_components(graph):
            members = sorted(component)
            root = ds.find(members[0])
            assert all(ds.find(m) == root for m in members)


class TestExtraNProperty:
    @settings(max_examples=12, deadline=None)
    @given(stream_scenarios())
    def test_extran_matches_dbscan(self, scenario):
        from repro.baselines.extran import ExtraN
        from repro.window.sliding import SlidingWindow

        points, spec, eps, tau = scenario
        if spec.window % spec.stride != 0:
            # EXTRA-N requires divisibility; snap the stride down.
            stride = spec.stride
            while spec.window % stride != 0:
                stride -= 1
            spec = WindowSpec(window=spec.window, stride=stride)
        extran = ExtraN(eps, tau, spec)
        reference = SlidingDBSCAN(eps, tau)
        window = []
        for delta_in, delta_out in SlidingWindow(spec).slides(points):
            extran.advance(delta_in, delta_out)
            reference.advance(delta_in, delta_out)
            out_ids = {p.pid for p in delta_out}
            window = [p for p in window if p.pid not in out_ids] + list(delta_in)
            coords = {p.pid: p.coords for p in window}
            assert_equivalent(
                extran.snapshot(), reference.snapshot(), coords, extran.params
            )


class TestRho2Contract:
    @settings(max_examples=12, deadline=None)
    @given(stream_scenarios(), st.sampled_from([0.001, 0.05, 0.2]))
    def test_core_partition_is_rho_valid(self, scenario, rho):
        """Every rho2 clustering must respect the approximation contract.

        Core pairs within eps must share a cluster; pairs farther than
        (1+rho)*eps must not be *directly* connected (they may still share a
        cluster through intermediate cores, so the check walks the cell
        graph implied by the labels: within one cluster, every core must
        have another core of the same cluster within (1+rho)*eps unless it
        is the cluster's only core).
        """
        from repro.baselines.rho2dbscan import RhoDoubleApproxDBSCAN
        from repro.window.sliding import SlidingWindow

        points, spec, eps, tau = scenario
        rho2 = RhoDoubleApproxDBSCAN(eps, tau, dim=2, rho=rho)
        window = []
        for delta_in, delta_out in SlidingWindow(spec).slides(points):
            rho2.advance(delta_in, delta_out)
            out_ids = {p.pid for p in delta_out}
            window = [p for p in window if p.pid not in out_ids] + list(delta_in)
        snapshot = rho2.snapshot()
        coords = {p.pid: p.coords for p in window}
        cores = [
            pid
            for pid, cat in snapshot.categories.items()
            if cat.value == "core"
        ]
        threshold = (1.0 + rho) * eps
        for i, a in enumerate(cores):
            for b in cores[i + 1 :]:
                d = math.dist(coords[a], coords[b])
                if d <= eps:
                    assert snapshot.label_of(a) == snapshot.label_of(b), (
                        f"cores {a},{b} within eps ({d:.3f}) split apart"
                    )
        # Connectivity granularity: each multi-core cluster is internally
        # (1+rho)eps-connected.
        clusters = snapshot.core_clusters()
        for members in clusters.values():
            members = sorted(members)
            if len(members) < 2:
                continue
            for pid in members:
                nearest = min(
                    math.dist(coords[pid], coords[q])
                    for q in members
                    if q != pid
                )
                assert nearest <= threshold + 1e-9, (
                    f"core {pid} isolated inside its cluster by {nearest:.3f}"
                )


class TestEpochProbingEffect:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=999))
    def test_epoch_probing_scans_fewer_entries(self, seed):
        """The Figure 8 mechanism: epoch probes prune already-visited work.

        Epoch filtering changes which neighbours a probe returns, which can
        reorder MS-BFS expansions, so a strict per-instance inequality does
        not hold; the property asserted is "never scans meaningfully more"
        (identical clustering results are asserted elsewhere).
        """
        rng = random.Random(seed)
        points = [
            StreamPoint(
                i,
                (rng.gauss(0, 1.0), rng.gauss(0, 1.0)),
                float(i),
            )
            for i in range(120)
        ]
        victims = rng.sample(points, 20)
        scanned = {}
        for epoch in (True, False):
            disc = DISC(0.6, 4, epoch_probing=epoch)
            disc.advance(points, ())
            before = disc.stats.entries_scanned
            disc.advance((), victims)
            scanned[epoch] = disc.stats.entries_scanned - before
        assert scanned[True] <= scanned[False] * 1.25 + 200
