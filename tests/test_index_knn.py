"""Unit tests for k-nearest-neighbour search on both indexes."""

import math
import random

import pytest

from repro.common.errors import IndexError_
from repro.index.linear import LinearScanIndex
from repro.index.rtree import RTree


def random_points(seed, n, dim=2):
    rng = random.Random(seed)
    return [
        (i, tuple(rng.uniform(0, 10) for _ in range(dim))) for i in range(n)
    ]


class TestNearest:
    def test_single_nearest(self):
        tree = RTree()
        tree.insert(1, (0.0, 0.0))
        tree.insert(2, (5.0, 5.0))
        [(pid, _)] = tree.nearest((0.2, 0.0), 1)
        assert pid == 1

    def test_order_is_nearest_first(self):
        tree = RTree()
        for pid, x in [(1, 0.0), (2, 1.0), (3, 2.0), (4, 3.0)]:
            tree.insert(pid, (x, 0.0))
        got = [pid for pid, _ in tree.nearest((0.1, 0.0), 3)]
        assert got == [1, 2, 3]

    def test_k_larger_than_index(self):
        tree = RTree()
        tree.insert(1, (0.0, 0.0))
        assert len(tree.nearest((0.0, 0.0), 10)) == 1

    def test_empty_tree(self):
        assert RTree().nearest((0.0, 0.0), 3) == []

    def test_bad_k(self):
        with pytest.raises(IndexError_):
            RTree().nearest((0.0, 0.0), 0)
        with pytest.raises(IndexError_):
            LinearScanIndex().nearest((0.0, 0.0), 0)

    @pytest.mark.parametrize("dim", [2, 3, 4])
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_linear_oracle(self, dim, seed):
        points = random_points(seed, 300, dim)
        tree = RTree.bulk_load(points)
        oracle = LinearScanIndex()
        for pid, coords in points:
            oracle.insert(pid, coords)
        rng = random.Random(seed + 77)
        for _ in range(25):
            center = tuple(rng.uniform(0, 10) for _ in range(dim))
            k = rng.randint(1, 15)
            got = tree.nearest(center, k)
            want = oracle.nearest(center, k)
            got_d = [math.dist(c, center) for _, c in got]
            want_d = [math.dist(c, center) for _, c in want]
            assert got_d == pytest.approx(want_d)

    def test_after_deletions(self):
        points = random_points(9, 200)
        tree = RTree()
        oracle = LinearScanIndex()
        for pid, coords in points:
            tree.insert(pid, coords)
            oracle.insert(pid, coords)
        for pid, _ in points[:100]:
            tree.delete(pid)
            oracle.delete(pid)
        center = (5.0, 5.0)
        got = {pid for pid, _ in tree.nearest(center, 5)}
        want = {pid for pid, _ in oracle.nearest(center, 5)}
        # Sets may differ on exact ties; distances must match.
        got_d = sorted(math.dist(c, center) for _, c in tree.nearest(center, 5))
        want_d = sorted(math.dist(c, center) for _, c in oracle.nearest(center, 5))
        assert got_d == pytest.approx(want_d)
        assert len(got) == len(want) == 5
