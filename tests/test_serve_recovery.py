"""The serving kill -9 drill: a real server process, really killed.

This is the subsystem's end-to-end durability proof, run against the actual
``python -m repro serve`` entry point over real TCP:

1. start a server, open durable tenants, feed ~60% of each stream;
2. ``SIGKILL`` the process — no drain, no atexit, nothing;
3. start a fresh server with ``--resume``, replay each stream **from the
   beginning** (the session swallows the checkpointed prefix itself);
4. drain with tail flush and compare the final snapshot against an
   uninterrupted offline ``api.cluster_stream`` run — byte identical.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.api import cluster_stream
from repro.common.config import WindowSpec
from repro.serve.client import ServeClient

from .conftest import clustered_stream

EPS, TAU = 0.8, 4
WINDOW, STRIDE = 120, 30
CONFIG = {
    "eps": EPS,
    "tau": TAU,
    "window": WINDOW,
    "stride": STRIDE,
    "backpressure": "block",  # the lossless policy: exact replay is defined
    "checkpoint_every": 2,
}
TENANTS = {
    "tenant-a": lambda: clustered_stream(41, 300),
    "tenant-b": lambda: clustered_stream(42, 300),
}
READY = re.compile(r"serve: listening on ([\d.]+):(\d+)")


def offline_final_labels(points):
    spec = WindowSpec(window=WINDOW, stride=STRIDE)
    last = None
    for snapshot, _ in cluster_stream(points, spec, eps=EPS, tau=TAU):
        last = snapshot
    return {str(pid): cid for pid, cid in last.labels.items()}


def start_server(data_dir, *, resume=False):
    """Launch ``python -m repro serve`` on a free port; return (proc, port)."""
    argv = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--host",
        "127.0.0.1",
        "--port",
        "0",
        "--data-dir",
        str(data_dir),
    ]
    if resume:
        argv.append("--resume")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC_DIR), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 15
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = READY.search(line)
        if match:
            return proc, int(match.group(2))
    proc.kill()
    raise RuntimeError("server never printed its ready line")


SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


async def feed(port, streams, *, upto=None, config=CONFIG):
    """Open every tenant and ingest its stream (or a prefix) over TCP."""
    async with await ServeClient.connect("127.0.0.1", port) as client:
        replay_offsets = {}
        for name, points in streams.items():
            opened = await client.open_session(name, config, resume="auto")
            replay_offsets[name] = opened["replay_offset"]
            cut = len(points) if upto is None else upto
            for i in range(0, cut, 50):
                await client.ingest(name, points[i : min(i + 50, cut)])
        return replay_offsets


async def drain_and_snapshot(port, names):
    async with await ServeClient.connect("127.0.0.1", port) as client:
        snapshots = {}
        for name in names:
            await client.drain(name, flush_tail=True)
            snapshots[name] = await client.snapshot(name)
        return snapshots


@pytest.mark.chaos
def test_sigkill_then_resume_matches_offline(tmp_path):
    streams = {name: make() for name, make in TENANTS.items()}
    cut = 180  # ~60% of each stream, deliberately not a checkpoint boundary

    # Life 1: feed a prefix, then die without any grace whatsoever.
    proc, port = start_server(tmp_path)
    try:
        asyncio.run(feed(port, streams, upto=cut))
        # Ask for stats so we know the queues have drained into checkpoints
        # at least up to the last periodic boundary before the kill.
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:
            proc.kill()

    # Life 2: resume everything, replay each stream from the beginning.
    proc, port = start_server(tmp_path, resume=True)
    try:
        offsets = asyncio.run(feed(port, streams))
        snapshots = asyncio.run(drain_and_snapshot(port, sorted(streams)))
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()

    for name, points in streams.items():
        # The resumed session swallowed a checkpointed prefix rather than
        # re-clustering it...
        assert 0 < offsets[name] <= cut, f"{name}: no state survived the kill"
        # ...and the final labels equal one uninterrupted offline run.
        assert snapshots[name]["labels"] == offline_final_labels(points), (
            f"{name}: served labels diverged from offline after kill/resume"
        )
        assert snapshots[name]["stride"] == 300 // STRIDE - 1  # exact strides


@pytest.mark.chaos
def test_sigkill_with_wal_loses_zero_acked_points(tmp_path):
    """The exactly-once drill: with ``--wal --wal-fsync always`` every
    ``INGEST`` ack is a durability receipt, so a SIGKILL at an arbitrary
    instant after the last ack loses *nothing* — the resumed replay offset
    equals exactly the number of acknowledged points, not merely the last
    checkpoint boundary."""
    wal_config = {**CONFIG, "wal": True, "wal_fsync": "always"}
    streams = {name: make() for name, make in TENANTS.items()}
    cut = 185  # not a checkpoint boundary, not even a stride boundary

    proc, port = start_server(tmp_path)
    try:
        # feed() returns only after every INGEST reply for the prefix —
        # all `cut` points are acknowledged, hence journaled and fsynced.
        asyncio.run(feed(port, streams, upto=cut, config=wal_config))
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:
            proc.kill()

    proc, port = start_server(tmp_path, resume=True)
    try:
        offsets = asyncio.run(feed(port, streams, config=wal_config))
        snapshots = asyncio.run(drain_and_snapshot(port, sorted(streams)))
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()

    for name, points in streams.items():
        # Zero acknowledged points lost: checkpoint + WAL tail covers the
        # acked prefix exactly.
        assert offsets[name] == cut, (
            f"{name}: replay offset {offsets[name]} != {cut} acked points — "
            f"{cut - offsets[name]} acknowledged point(s) lost to SIGKILL"
        )
        assert snapshots[name]["labels"] == offline_final_labels(points), (
            f"{name}: served labels diverged from offline after kill/resume"
        )


@pytest.mark.chaos
def test_sigkill_journal_loses_zero_observed_events(tmp_path):
    """The CDC durability drill: with ``journal_fsync=always`` every record a
    subscriber *observes* is already fsynced (commit-then-push), so a SIGKILL
    at an arbitrary instant loses none of them — the resumed journal replays
    the observed stream as a byte-identical prefix, and after a full re-feed
    the journal equals an uninterrupted offline run."""
    from repro.query.journal import encode_record

    from .test_serve_query import offline_records

    config = {
        **CONFIG,
        "wal": True,
        "wal_fsync": "always",
        "journal": True,
        "journal_fsync": "always",
        "archive_every": 4,
    }
    points = clustered_stream(44, 300)
    cut = 185  # not a stride boundary: strides keep closing after the acks

    async def feed_with_subscriber(port):
        """Ingest the prefix while a live subscriber collects pushed records.

        Returns the records the subscriber had observed once the journal head
        went quiet — every one of them was pushed *after* its fsync."""
        seen = []
        async with await ServeClient.connect("127.0.0.1", port) as client:
            await client.open_session("tenant-j", config, resume="auto")
            sub = await ServeClient.connect("127.0.0.1", port)

            async def collect():
                try:
                    async for frame in sub.pushes():
                        if frame["push"] != "event":
                            break
                        seen.append(frame["record"])
                except Exception:
                    pass  # the kill tears this socket down; that's the drill

            await sub.subscribe("tenant-j", cursor=0)
            task = asyncio.create_task(collect())
            try:
                for i in range(0, cut, 50):
                    await client.ingest("tenant-j", points[i : min(i + 50, cut)])
                # Wait until the journal head is stable and fully delivered.
                deadline = time.monotonic() + 15
                stable, head = 0, -1
                while stable < 3 and time.monotonic() < deadline:
                    payload = await client.stats("tenant-j")
                    new_head = payload["journal"]["head"]
                    if new_head == head and new_head > 0 and len(seen) >= new_head:
                        stable += 1
                    else:
                        stable = 0
                    head = new_head
                    await asyncio.sleep(0.05)
                assert stable >= 3, "journal head never settled before the kill"
            finally:
                task.cancel()
                await asyncio.gather(task, return_exceptions=True)
                await sub.close()
        return list(seen)

    # Life 1: ingest under a live subscription, then die without any grace.
    proc, port = start_server(tmp_path)
    try:
        observed = asyncio.run(feed_with_subscriber(port))
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert observed, "the drill needs at least one observed record"

    async def resume_and_read(port):
        async with await ServeClient.connect("127.0.0.1", port) as client:
            await client.open_session("tenant-j", config, resume="auto")
            # The recovered journal must already hold every observed record.
            recovered = (await client.events("tenant-j", 0))["events"]
            # Then re-feed the whole stream and read the full CDC history.
            for i in range(0, len(points), 50):
                await client.ingest("tenant-j", points[i : i + 50])
            await client.drain("tenant-j", flush_tail=True)
            full, cursor = [], 0
            while True:
                page = await client.events("tenant-j", cursor)
                full.extend(page["events"])
                if page["next_cursor"] >= page["head"]:
                    break
                cursor = page["next_cursor"]
            return recovered, full

    # Life 2: resume and check nothing observed was lost.
    proc, port = start_server(tmp_path, resume=True)
    try:
        recovered, full = asyncio.run(resume_and_read(port))
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()

    observed_bytes = [encode_record(r) for r in observed]
    assert [encode_record(r) for r in recovered[: len(observed)]] == (
        observed_bytes
    ), "an acked-and-pushed CDC record did not survive SIGKILL"
    # And the re-fed journal is byte-identical to an offline run end to end.
    assert [encode_record(r) for r in full] == [
        encode_record(r) for r in offline_records(points)
    ]


@pytest.mark.chaos
def test_graceful_sigterm_drains_to_resumable_state(tmp_path):
    """SIGTERM (not SIGKILL) mid-stream: the drain path itself must leave a
    checkpoint precise enough that a resumed server replays zero points."""
    points = clustered_stream(43, 290)  # 9 strides + 20 pending at the cut
    cut = 200

    proc, port = start_server(tmp_path)
    try:
        asyncio.run(feed(port, {"tenant-g": points}, upto=cut))
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=15)

    proc, port = start_server(tmp_path, resume=True)
    try:
        offsets = asyncio.run(feed(port, {"tenant-g": points}))
        snapshots = asyncio.run(drain_and_snapshot(port, ["tenant-g"]))
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()

    # The graceful drain checkpointed *everything* fed before the TERM —
    # mid-batch state included — so the replay offset is exactly the cut.
    assert offsets["tenant-g"] == cut
    assert snapshots["tenant-g"]["labels"] == offline_final_labels(points)
