"""Wire-level tests of the JSON-lines serving protocol."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.common.points import StreamPoint
from repro.datasets.io import MalformedRecord
from repro.serve import SessionConfig
from repro.serve.protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    OPS,
    ProtocolError,
    decode_frame,
    decode_point,
    decode_points,
    encode_frame,
    encode_point,
    error_response,
    ok_response,
)


class TestFrames:
    def test_round_trip(self):
        frame = {"op": "INGEST", "session": "t1", "points": [[1, [0.5, 1.5], 2.0]]}
        wire = encode_frame(frame)
        assert wire.endswith(b"\n")
        assert b"\n" not in wire[:-1]  # one frame per line, always
        assert decode_frame(wire) == frame

    def test_decode_rejects_non_json(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame(b"{not json}\n")
        assert err.value.code == "bad-frame"

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame(b"[1, 2, 3]\n")
        assert err.value.code == "bad-frame"

    def test_decode_rejects_oversized(self):
        line = b"x" * (MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError) as err:
            decode_frame(line)
        assert err.value.code == "bad-frame"

    def test_ok_envelope_echoes_id(self):
        response = ok_response("STATS", 42, sessions=[])
        assert response["ok"] is True
        assert response["op"] == "STATS"
        assert response["id"] == 42
        assert response["sessions"] == []

    def test_error_envelope_shape(self):
        response = error_response("no-such-session", "nope", 7)
        assert response["ok"] is False
        assert response["id"] == 7
        assert response["error"]["code"] == "no-such-session"
        assert response["error"]["message"] == "nope"
        assert response["error"]["code"] in ERROR_CODES

    def test_every_op_is_documented(self):
        assert OPS == (
            "OPEN",
            "INGEST",
            "QUERY",
            "SNAPSHOT",
            "EVENTS",
            "SUBSCRIBE",
            "STATS",
            "DRAIN",
            "CLOSE",
        )


class TestPoints:
    def test_point_round_trip(self):
        point = StreamPoint(17, (1.25, -3.5), 9.0)
        row = encode_point(point)
        assert json.loads(json.dumps(row)) == row  # JSON-safe
        assert decode_point(row, 0) == point

    def test_time_defaults_to_zero(self):
        assert decode_point([1, [2.0]], 0) == StreamPoint(1, (2.0,), 0.0)

    def test_malformed_row_becomes_record_not_error(self):
        # The input-fault policy, not the transport, decides malformed rows.
        decoded = decode_point(["x", [1.0], 0.0], 5)
        assert isinstance(decoded, MalformedRecord)
        assert decoded.line_no == 5

    def test_empty_coords_is_malformed(self):
        assert isinstance(decode_point([1, [], 0.0], 0), MalformedRecord)

    def test_non_finite_coords_pass_through_for_clamp_policy(self):
        # NaN coords must reach the guard so `clamp` can repair them.
        decoded = decode_point([1, [float("nan"), 1.0], 0.0], 0)
        assert isinstance(decoded, StreamPoint)

    def test_decode_points_preserves_order_and_seq(self):
        rows = [[1, [0.0], 0.0], "garbage", [2, [1.0], 1.0]]
        decoded = decode_points(rows, start_seq=10)
        assert decoded[0] == StreamPoint(1, (0.0,), 0.0)
        assert isinstance(decoded[1], MalformedRecord)
        assert decoded[1].line_no == 11
        assert decoded[2] == StreamPoint(2, (1.0,), 1.0)

    def test_decode_points_requires_list(self):
        with pytest.raises(ProtocolError) as err:
            decode_points("not-a-list")
        assert err.value.code == "bad-request"


class TestSessionConfig:
    def test_round_trip(self):
        config = SessionConfig(
            eps=0.8,
            tau=4,
            window=400,
            stride=100,
            index="grid",
            backpressure="shed-oldest",
            queue_limit=64,
            checkpoint_every=8,
        )
        assert SessionConfig.from_dict(config.as_dict()) == config

    def test_rejects_unknown_backpressure(self):
        with pytest.raises(ConfigurationError):
            SessionConfig(eps=1.0, tau=3, window=10, stride=5, backpressure="drop")

    def test_rejects_bad_queue_limit(self):
        with pytest.raises(ConfigurationError):
            SessionConfig(eps=1.0, tau=3, window=10, stride=5, queue_limit=0)

    def test_rejects_unknown_fault_policy(self):
        with pytest.raises(ConfigurationError):
            SessionConfig(eps=1.0, tau=3, window=10, stride=5, on_malformed="ignore")

    def test_from_dict_validates(self):
        with pytest.raises(ConfigurationError):
            SessionConfig.from_dict({"eps": 1.0})  # missing required fields
