"""Unit tests for the numpy-vectorized grid index."""

import random

import pytest

from repro.common.errors import IndexError_
from repro.index.linear import LinearScanIndex
from repro.index.vectorgrid import VectorGridIndex


class TestVectorGrid:
    def test_construction_validation(self):
        with pytest.raises(IndexError_):
            VectorGridIndex(eps=0.0, dim=2)
        with pytest.raises(IndexError_):
            VectorGridIndex(eps=1.0, dim=0)

    def test_insert_delete_roundtrip(self):
        grid = VectorGridIndex(eps=1.0, dim=2)
        grid.insert(1, (0.3, 0.4))
        assert 1 in grid
        assert grid.coords_of(1) == (0.3, 0.4)
        grid.delete(1)
        assert len(grid) == 0
        grid.check_invariants()

    def test_duplicate_and_unknown(self):
        grid = VectorGridIndex(eps=1.0, dim=2)
        grid.insert(1, (0.0, 0.0))
        with pytest.raises(IndexError_):
            grid.insert(1, (1.0, 1.0))
        with pytest.raises(IndexError_):
            grid.delete(2)

    def test_radius_cap(self):
        grid = VectorGridIndex(eps=1.0, dim=2)
        with pytest.raises(IndexError_):
            grid.ball((0.0, 0.0), 1.5)

    @pytest.mark.parametrize("dim", [1, 2, 3, 4])
    def test_matches_linear_scan(self, dim):
        grid = VectorGridIndex(eps=1.0, dim=dim)
        oracle = LinearScanIndex()
        rng = random.Random(dim * 7)
        for pid in range(400):
            coords = tuple(rng.uniform(-4, 4) for _ in range(dim))
            grid.insert(pid, coords)
            oracle.insert(pid, coords)
        for _ in range(50):
            center = tuple(rng.uniform(-4, 4) for _ in range(dim))
            radius = rng.uniform(0.1, 1.0)
            got = sorted(p for p, _ in grid.ball(center, radius))
            want = sorted(p for p, _ in oracle.ball(center, radius))
            assert got == want
        grid.check_invariants()

    def test_matrix_cache_invalidation(self):
        grid = VectorGridIndex(eps=1.0, dim=2)
        grid.insert(1, (0.1, 0.1))
        assert [p for p, _ in grid.ball((0.0, 0.0), 0.5)] == [1]
        grid.insert(2, (0.2, 0.1))  # same cell: cache must refresh
        assert sorted(p for p, _ in grid.ball((0.0, 0.0), 0.5)) == [1, 2]
        grid.delete(1)
        assert [p for p, _ in grid.ball((0.0, 0.0), 0.5)] == [2]
        grid.check_invariants()

    def test_churn_workload(self):
        grid = VectorGridIndex(eps=0.8, dim=2)
        oracle = LinearScanIndex()
        rng = random.Random(3)
        alive = []
        next_pid = 0
        for step in range(800):
            if alive and rng.random() < 0.45:
                pid = alive.pop(rng.randrange(len(alive)))
                grid.delete(pid)
                oracle.delete(pid)
            else:
                coords = (rng.uniform(0, 6), rng.uniform(0, 6))
                grid.insert(next_pid, coords)
                oracle.insert(next_pid, coords)
                alive.append(next_pid)
                next_pid += 1
            if step % 100 == 0:
                center = (rng.uniform(0, 6), rng.uniform(0, 6))
                got = sorted(p for p, _ in grid.ball(center, 0.8))
                want = sorted(p for p, _ in oracle.ball(center, 0.8))
                assert got == want
        grid.check_invariants()

    def test_disc_runs_on_vector_grid(self):
        from repro.baselines.dbscan import SlidingDBSCAN
        from repro.core.disc import DISC
        from repro.metrics.compare import assert_equivalent
        from tests.conftest import clustered_stream

        eps, tau = 0.7, 4
        disc = DISC(
            eps,
            tau,
            index_factory=lambda: VectorGridIndex(eps, 2),
            epoch_probing=False,
        )
        reference = SlidingDBSCAN(eps, tau)
        points = clustered_stream(33, 200)
        disc.advance(points, ())
        reference.advance(points, ())
        coords = {p.pid: p.coords for p in points}
        assert_equivalent(
            disc.snapshot(), reference.snapshot(), coords, disc.params
        )

    def test_items(self):
        grid = VectorGridIndex(eps=1.0, dim=2)
        grid.insert(1, (0.0, 0.0))
        grid.insert(2, (3.0, 3.0))
        assert sorted(grid.items()) == [(1, (0.0, 0.0)), (2, (3.0, 3.0))]

    def test_count_ball_matches_ball(self):
        grid = VectorGridIndex(eps=1.0, dim=3)
        rng = random.Random(5)
        for pid in range(500):
            grid.insert(pid, tuple(rng.uniform(0, 4) for _ in range(3)))
        for _ in range(40):
            center = tuple(rng.uniform(0, 4) for _ in range(3))
            radius = rng.uniform(0.1, 1.0)
            assert grid.count_ball(center, radius) == len(
                grid.ball(center, radius)
            )

    def test_count_ball_radius_cap(self):
        grid = VectorGridIndex(eps=1.0, dim=2)
        with pytest.raises(IndexError_):
            grid.count_ball((0.0, 0.0), 2.0)

    def test_count_ball_empty(self):
        grid = VectorGridIndex(eps=1.0, dim=2)
        assert grid.count_ball((0.0, 0.0), 1.0) == 0
