"""Unit and end-to-end tests for the input-fault policies."""

import json
import math

import pytest

from repro.api import cluster_stream
from repro.common.config import WindowSpec
from repro.common.errors import ConfigurationError, StreamOrderError
from repro.common.points import StreamPoint
from repro.core.disc import DISC
from repro.datasets.io import MalformedRecord, read_stream_lenient
from repro.runtime import (
    DeadLetterSink,
    FaultPolicy,
    InputGuard,
    MalformedPointError,
    RuntimeStats,
    bit_flip,
    read_dead_letters,
)

P = StreamPoint

GOOD = [P(0, (0.0, 0.0), 0.0), P(1, (1.0, 1.0), 1.0), P(2, (2.0, 2.0), 2.0)]
NAN = P(10, (float("nan"), 0.0), 3.0)
INF = P(11, (float("inf"), 0.0), 3.0)
BAD_DIM = P(12, (1.0, 2.0, 3.0), 3.0)
STALE = P(13, (0.5, 0.5), 0.5)  # timestamp behind the watermark
UNPARSABLE = MalformedRecord(42, "x,y,oops", "bad CSV row")


def guard(policy, **kwargs):
    return InputGuard(policy, RuntimeStats(), DeadLetterSink(), **kwargs)


class TestStrict:
    def test_good_points_pass_through(self):
        g = guard("strict")
        assert [g.admit(p) for p in GOOD] == GOOD
        assert g.stats.points_admitted == 3
        assert g.stats.points_seen == 3

    @pytest.mark.parametrize(
        "bad, fragment",
        [
            (NAN, "nan coord"),
            (INF, "inf coord"),
            (UNPARSABLE, "unparsable"),
        ],
    )
    def test_faults_raise_with_context(self, bad, fragment):
        g = guard("strict")
        with pytest.raises(MalformedPointError, match=fragment):
            g.admit(bad)

    def test_bad_dim_raises_after_dim_learned(self):
        g = guard("strict")
        g.admit(GOOD[0])
        with pytest.raises(MalformedPointError, match="2-dimensional"):
            g.admit(BAD_DIM)

    def test_out_of_order_raises_stream_order_error(self):
        g = guard("strict")
        for p in GOOD:
            g.admit(p)
        with pytest.raises(StreamOrderError) as excinfo:
            g.admit(STALE)
        message = str(excinfo.value)
        # The error must carry enough context to debug the source: the
        # point's id, its timestamp, and the watermark it fell behind.
        assert "13" in message
        assert "0.5" in message
        assert "2.0" in message
        assert "out of order" in message


class TestSkip:
    def test_faults_are_dead_lettered(self):
        g = guard("skip")
        for p in GOOD:
            g.admit(p)
        for bad in (NAN, INF, BAD_DIM, STALE, UNPARSABLE):
            assert g.admit(bad) is None
        assert g.stats.points_admitted == 3
        assert g.stats.points_dead_lettered == 5
        assert g.stats.faults == {
            "nan_coord": 1,
            "inf_coord": 1,
            "bad_dim": 1,
            "out_of_order": 1,
            "unparsable": 1,
        }
        reasons = [reason for reason, _ in g.dead_letter.entries]
        assert sorted(reasons) == [
            "bad_dim",
            "inf_coord",
            "nan_coord",
            "out_of_order",
            "unparsable",
        ]

    def test_filter_yields_only_admitted(self):
        g = guard("skip")
        out = list(g.filter([GOOD[0], NAN, GOOD[1], UNPARSABLE, GOOD[2]]))
        assert out == GOOD


class TestClamp:
    def test_inf_clamped_to_limit(self):
        g = guard("clamp", clamp_limit=1e6)
        point = g.admit(P(20, (float("inf"), float("-inf")), 0.0))
        assert point.coords == (1e6, -1e6)
        assert g.stats.points_clamped == 1
        assert g.stats.points_admitted == 1

    def test_out_of_order_lifted_to_watermark(self):
        g = guard("clamp")
        for p in GOOD:
            g.admit(p)
        point = g.admit(STALE)
        assert point.time == 2.0  # lifted, not reordered
        assert point.pid == STALE.pid
        assert g.stats.points_clamped == 1

    def test_nan_is_not_clampable(self):
        g = guard("clamp")
        assert g.admit(NAN) is None
        assert g.stats.points_dead_lettered == 1

    def test_bad_dim_is_not_clampable(self):
        g = guard("clamp")
        g.admit(GOOD[0])
        assert g.admit(BAD_DIM) is None


class TestDeadLetterSink:
    def test_jsonl_mirror(self, tmp_path):
        path = str(tmp_path / "dead.jsonl")
        sink = DeadLetterSink(path)
        g = InputGuard("skip", RuntimeStats(), sink)
        g.admit(NAN)
        g.admit(UNPARSABLE)
        sink.close()
        rows = [json.loads(line) for line in open(path)]
        assert rows[0]["reason"] == "nan_coord"
        assert rows[0]["pid"] == NAN.pid
        assert rows[1]["reason"] == "unparsable"
        assert rows[1]["line_no"] == 42
        assert len(sink) == 2

    def test_in_memory_by_default(self):
        sink = DeadLetterSink()
        sink.record("nan_coord", NAN)
        assert sink.entries == [("nan_coord", NAN)]


class TestGuardState:
    def test_round_trip(self):
        g = guard("strict")
        for p in GOOD:
            g.admit(p)
        fresh = guard("strict")
        fresh.restore_state(g.export_state())
        assert fresh.watermark == 2.0
        assert fresh.dim == 2
        with pytest.raises(StreamOrderError):
            fresh.admit(STALE)

    def test_policy_coercion(self):
        assert FaultPolicy.coerce("CLAMP") is FaultPolicy.CLAMP
        assert FaultPolicy.coerce(FaultPolicy.SKIP) is FaultPolicy.SKIP
        with pytest.raises(Exception, match="unknown fault policy"):
            FaultPolicy.coerce("lenient")


class TestLenientReaders:
    def test_csv_yields_malformed_records(self, tmp_path):
        path = tmp_path / "mixed.csv"
        path.write_text("0.0,0.0\n1.0,1.0\nnot,numbers\n2.0,2.0\n")
        items = list(read_stream_lenient(str(path)))
        bad = [item for item in items if isinstance(item, MalformedRecord)]
        good = [item for item in items if isinstance(item, StreamPoint)]
        assert len(bad) == 1 and len(good) == 3
        assert "not" in bad[0].raw

    def test_jsonl_yields_malformed_records(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            '{"pid": 0, "coords": [0.0, 0.0], "time": 0}\n'
            "{broken json\n"
            '{"pid": 1, "coords": [1.0, 1.0], "time": 1}\n'
        )
        items = list(read_stream_lenient(str(path)))
        assert sum(isinstance(i, MalformedRecord) for i in items) == 1
        assert sum(isinstance(i, StreamPoint) for i in items) == 2


class TestApiIntegration:
    def _dirty_stream(self):
        stream = []
        for i in range(120):
            stream.append(P(i, (float(i % 7), float(i % 5)), float(i)))
            if i == 60:
                stream.append(P(1000, (float("nan"), 0.0), float(i)))
        return stream

    def test_skip_policy_end_to_end(self):
        stats = RuntimeStats()
        results = list(
            cluster_stream(
                self._dirty_stream(),
                WindowSpec(40, 20),
                eps=1.5,
                tau=3,
                on_malformed="skip",
                stats=stats,
            )
        )
        assert results, "stream should produce strides"
        assert stats.points_seen == 121
        assert stats.points_admitted == 120
        assert stats.faults == {"nan_coord": 1}

    def test_strict_policy_raises_end_to_end(self):
        with pytest.raises(MalformedPointError):
            list(
                cluster_stream(
                    self._dirty_stream(),
                    WindowSpec(40, 20),
                    eps=1.5,
                    tau=3,
                    on_malformed="strict",
                )
            )

    def test_resilient_rejects_custom_clusterer(self):
        with pytest.raises(ConfigurationError, match="clusterer"):
            list(
                cluster_stream(
                    GOOD,
                    WindowSpec(2, 1),
                    eps=1.0,
                    tau=2,
                    clusterer=DISC(1.0, 2),
                    on_malformed="skip",
                )
            )

    def test_resilient_rejects_index_instance(self):
        with pytest.raises(ConfigurationError, match="registry index name"):
            list(
                cluster_stream(
                    GOOD,
                    WindowSpec(2, 1),
                    eps=1.0,
                    tau=2,
                    index=DISC(1.0, 2).index,
                    on_malformed="skip",
                )
            )

    def test_legacy_path_unchanged_without_options(self):
        plain = list(cluster_stream(GOOD, WindowSpec(2, 1), eps=1.0, tau=2))
        assert len(plain) == 3


class TestDeadLetterCrashSafety:
    def fill(self, tmp_path):
        path = tmp_path / "dead.jsonl"
        sink = DeadLetterSink(str(path))
        g = InputGuard("skip", RuntimeStats(), sink)
        for bad in (NAN, INF, UNPARSABLE):
            g.admit(bad)
        sink.close()
        return path

    def test_rows_carry_crc_and_read_back_clean(self, tmp_path):
        path = self.fill(tmp_path)
        rows = read_dead_letters(path)
        assert [row["reason"] for row in rows] == [
            "nan_coord", "inf_coord", "unparsable"
        ]
        assert all("crc32" in row for row in rows)

    def test_torn_final_line_is_cut(self, tmp_path):
        path = self.fill(tmp_path)
        size = path.stat().st_size
        with open(path, "r+b") as handle:  # crash mid-append: half a row
            handle.truncate(size - 7)
        rows = read_dead_letters(path)
        assert [row["reason"] for row in rows] == ["nan_coord", "inf_coord"]

    def test_bit_rot_is_caught_by_crc(self, tmp_path):
        path = self.fill(tmp_path)
        # Corrupt a byte inside the *first* row's payload: the CRC kills it,
        # and clean-prefix semantics cut everything after it too.
        bit_flip(path, offset=12)
        assert read_dead_letters(path) == []

    def test_close_fsyncs_the_mirror(self, tmp_path):
        path = tmp_path / "dead.jsonl"
        sink = DeadLetterSink(str(path))
        sink.record("nan_coord", NAN)
        sink.close()
        assert read_dead_letters(path)[0]["pid"] == NAN.pid
        sink.close()  # idempotent
