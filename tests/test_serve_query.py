"""End-to-end tests for the query subsystem behind the serve layer.

The acceptance bar has three legs:

1. **Byte-identity of the CDC stream.** The records a live ``SUBSCRIBE``
   pushes, the records an ``EVENTS`` replay from cursor 0 returns, and the
   records built offline from ``api.cluster_stream`` over the same points
   are byte-for-byte identical (canonical encoding) — across index
   backends.
2. **AS_OF equals the pipeline's past.** A time-travel query at stride S
   returns exactly the membership the pipeline had when stride S closed.
3. **Subscription semantics.** Resume-from-cursor, the stride consistency
   token, slow-consumer policies, and drain/close termination behave as
   documented in docs/serving.md.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import cluster_stream
from repro.common.config import WindowSpec
from repro.common.snapshot import Clustering
from repro.query.journal import encode_record, stride_record
from repro.serve import SessionConfig, TenantSession
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.service import ClusterService

from .conftest import clustered_stream
from .test_serve_server import serve_scenario

EPS, TAU = 0.8, 4
WINDOW, STRIDE = 120, 30


def journal_config(**overrides) -> dict:
    base = {
        "eps": EPS,
        "tau": TAU,
        "window": WINDOW,
        "stride": STRIDE,
        "journal": True,
        "archive_every": 3,
    }
    base.update(overrides)
    return base


def offline_records(points, *, index=None) -> list[dict]:
    """The ground-truth CDC stream of one tenant, built offline."""
    last = {"time": None}

    def tracked():
        for p in points:
            last["time"] = p.time
            yield p

    spec = WindowSpec(window=WINDOW, stride=STRIDE)
    prev = None
    records = []
    for s, (clustering, summary) in enumerate(
        cluster_stream(tracked(), spec, eps=EPS, tau=TAU, index=index)
    ):
        records.append(
            stride_record(s, prev, clustering, summary, time=last["time"])
        )
        prev = clustering
    return records


def offline_states(points) -> list[dict]:
    """Ground-truth membership ``{pid: (label, cat)}`` per stride."""
    spec = WindowSpec(window=WINDOW, stride=STRIDE)
    states = []
    for clustering, _ in cluster_stream(points, spec, eps=EPS, tau=TAU):
        states.append(
            {
                pid: (clustering.labels.get(pid, Clustering.NOISE_ID), cat.value)
                for pid, cat in clustering.categories.items()
            }
        )
    return states


async def subscribe_and_collect(port, name, *, cursor=0, ready=None):
    """A dedicated subscriber connection: collect records until the end."""
    client = await ServeClient.connect("127.0.0.1", port)
    try:
        reply = await client.subscribe(name, cursor=cursor)
        if ready is not None:
            ready.set()
        records = []
        end = None
        async for frame in client.pushes():
            if frame["push"] == "event":
                records.append(frame["record"])
            else:
                end = frame
        return reply, records, end
    finally:
        await client.close()


class TestByteIdentity:
    @pytest.mark.parametrize("index", ["grid", "rtree"])
    def test_live_subscribe_events_and_offline_agree(self, tmp_path, index):
        """Identity leg 1: live push == EVENTS replay == offline build."""
        points = clustered_stream(51, 330)
        config = journal_config(index=index)

        async def scenario(port):
            subscribed = asyncio.Event()
            async with await ServeClient.connect("127.0.0.1", port) as client:
                await client.open_session("t1", config)
                # Subscribe from 0 *before* any stride closes: the whole
                # stream arrives as live pushes, not journal backlog.
                collector = asyncio.create_task(
                    subscribe_and_collect(port, "t1", ready=subscribed)
                )
                await asyncio.wait_for(subscribed.wait(), timeout=5)
                for i in range(0, len(points), 40):
                    await client.ingest("t1", points[i : i + 40])
                await client.drain("t1", flush_tail=True)
                reply, live, end = await asyncio.wait_for(collector, timeout=10)
                pulled = await client.events("t1", cursor=0)
                return reply, live, end, pulled

        service = ClusterService(data_dir=tmp_path)
        reply, live, end, pulled = serve_scenario(
            lambda port: scenario(port), service=service
        )
        expected = offline_records(points, index=index)
        assert reply["cursor"] == 0

        as_bytes = lambda rs: [encode_record(r) for r in rs]  # noqa: E731
        assert as_bytes(live) == as_bytes(expected)
        assert as_bytes(pulled["events"]) == as_bytes(expected)
        assert pulled["head"] == len(expected)
        assert pulled["next_cursor"] == len(expected)
        assert end["reason"] == "drained"
        assert end["cursor"] == len(expected)

    def test_backends_produce_identical_journals(self, tmp_path):
        """Identity leg 2: the CDC stream is backend-invariant."""
        points = clustered_stream(52, 300)
        grid = offline_records(points, index="grid")
        rtree = offline_records(points, index="rtree")
        assert [encode_record(r) for r in grid] == [
            encode_record(r) for r in rtree
        ]

    def test_events_pagination(self, tmp_path):
        points = clustered_stream(53, 300)
        config = journal_config()

        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                await client.open_session("t1", config)
                for i in range(0, len(points), 40):
                    await client.ingest("t1", points[i : i + 40])
                await client.drain("t1", flush_tail=True)
                pages = []
                cursor = 0
                while True:
                    page = await client.events("t1", cursor=cursor, limit=3)
                    pages.append(page)
                    if not page["events"]:
                        break
                    cursor = page["next_cursor"]
                return pages

        pages = serve_scenario(scenario, service=ClusterService(data_dir=tmp_path))
        expected = offline_records(points)
        paged = [r for page in pages for r in page["events"]]
        assert [encode_record(r) for r in paged] == [
            encode_record(r) for r in expected
        ]
        assert all(len(p["events"]) <= 3 for p in pages)


class TestSubscribeSemantics:
    def test_resume_from_cursor_gets_backlog_then_live(self, tmp_path):
        """A subscriber arriving late replays [cursor, head) from the
        journal, then rides the live queue — no gap, no duplicate."""
        points = clustered_stream(54, 330)
        config = journal_config()
        half = 150

        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                await client.open_session("t1", config)
                for i in range(0, half, 30):
                    await client.ingest("t1", points[i : i + 30])
                # Strides exist now; subscribe from 2 (mid-backlog).
                subscribed = asyncio.Event()
                collector = asyncio.create_task(
                    subscribe_and_collect(port, "t1", cursor=2, ready=subscribed)
                )
                await asyncio.wait_for(subscribed.wait(), timeout=5)
                for i in range(half, len(points), 30):
                    await client.ingest("t1", points[i : i + 30])
                await client.drain("t1", flush_tail=True)
                return await asyncio.wait_for(collector, timeout=10)

        reply, records, end = serve_scenario(
            lambda p: scenario(p), service=ClusterService(data_dir=tmp_path)
        )
        expected = offline_records(points)
        assert reply["cursor"] == 2
        assert reply["head"] >= 2
        assert [encode_record(r) for r in records] == [
            encode_record(r) for r in expected[2:]
        ]
        assert end["cursor"] == len(expected)

    def test_subscribe_without_journal_is_bad_request(self, tmp_path):
        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                await client.open_session(
                    "t1", {"eps": EPS, "tau": TAU, "window": WINDOW, "stride": STRIDE}
                )
                with pytest.raises(ServeClientError) as err:
                    await client.subscribe("t1")
                return err.value.code

        assert serve_scenario(scenario) == "bad-request"

    def test_bad_policy_is_bad_request(self, tmp_path):
        config = journal_config()

        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                await client.open_session("t1", config)
                with pytest.raises(ServeClientError) as err:
                    await client.subscribe("t1", policy="teleport")
                return err.value.code

        code = serve_scenario(scenario, service=ClusterService(data_dir=tmp_path))
        assert code == "bad-request"

    def test_slow_consumer_disconnect_ends_with_resume_cursor(self, tmp_path):
        """Session-level: the ``disconnect`` policy cuts off a subscriber
        whose queue is full and hands it a terminal frame; the session's
        writer never stalls."""
        points = clustered_stream(55, 330)
        config = SessionConfig(**journal_config())

        async def run():
            session = TenantSession(
                "t",
                config,
                evjournal=_journal(tmp_path / "evj"),
                archive=None,
            )
            session.start()
            sub, cursor, head = session.subscribe(
                cursor=0, policy="disconnect", queue_limit=2
            )
            for i in range(0, len(points), 30):
                await session.offer(points[i : i + 30])
            await session.drain(flush_tail=True)
            await session.close()
            return sub

        sub = asyncio.run(run())
        assert sub.closed
        assert sub.reason == "slow-consumer"

    def test_block_policy_stalls_until_consumed(self, tmp_path):
        """Session-level: the ``block`` policy parks the writer on the full
        subscriber queue — consuming unblocks it and every record arrives."""
        points = clustered_stream(56, 330)
        config = SessionConfig(**journal_config())

        async def run():
            session = TenantSession(
                "t",
                config,
                evjournal=_journal(tmp_path / "evj"),
                archive=None,
            )
            session.start()
            sub, cursor, head = session.subscribe(
                cursor=0, policy="block", queue_limit=2
            )
            got = []

            async def consume():
                while True:
                    record = await sub.queue.get()
                    if record is None:
                        return
                    got.append(record)

            consumer = asyncio.create_task(consume())
            for i in range(0, len(points), 30):
                await session.offer(points[i : i + 30])
            await session.drain(flush_tail=True)
            await asyncio.wait_for(consumer, timeout=10)
            await session.close()
            return got

        got = asyncio.run(run())
        expected = offline_records(points)
        assert [encode_record(r) for r in got] == [
            encode_record(r) for r in expected
        ]


def _journal(directory):
    from repro.query.journal import EvolutionJournal

    return EvolutionJournal(directory)


class TestAsOf:
    def test_as_of_matches_pipeline_history(self, tmp_path):
        """AS_OF(stride) == the membership when that stride closed."""
        points = clustered_stream(57, 360)
        config = journal_config(archive_every=3)

        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                await client.open_session("t1", config)
                for i in range(0, len(points), 40):
                    await client.ingest("t1", points[i : i + 40])
                await client.drain("t1", flush_tail=True)
                answers = {}
                for s in range(360 // STRIDE - 1):
                    answers[s] = await client.query_as_of("t1", stride=s)
                return answers

        answers = serve_scenario(
            lambda p: scenario(p), service=ClusterService(data_dir=tmp_path)
        )
        states = offline_states(points)
        for s, payload in answers.items():
            expected_labels = {str(pid): lab for pid, (lab, _) in states[s].items()}
            expected_cats = {str(pid): cat for pid, (_, cat) in states[s].items()}
            assert payload["stride"] == s
            assert payload["labels"] == expected_labels, f"stride {s}"
            assert payload["categories"] == expected_cats, f"stride {s}"

    def test_as_of_time_and_pid_projection(self, tmp_path):
        points = clustered_stream(58, 300)
        config = journal_config()

        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                await client.open_session("t1", config)
                for i in range(0, len(points), 40):
                    await client.ingest("t1", points[i : i + 40])
                await client.drain("t1", flush_tail=True)
                events = await client.events("t1", cursor=0)
                stamp = events["events"][2]["time"]
                by_time = await client.query_as_of("t1", time=stamp)
                full = await client.query_as_of("t1", stride=2)
                pid = int(next(iter(full["categories"])))
                projected = await client.query_as_of("t1", stride=2, pid=pid)
                missing = await client.query_as_of("t1", stride=2, pid=10**9)
                return by_time, full, projected, missing, pid

        by_time, full, projected, missing, pid = serve_scenario(
            lambda p: scenario(p), service=ClusterService(data_dir=tmp_path)
        )
        assert by_time["stride"] == 2
        assert projected["stride"] == 2
        assert projected["present"] is True
        assert projected["label"] == full["labels"][str(pid)]
        assert projected["category"] == full["categories"][str(pid)]
        assert missing["present"] is False and missing["label"] is None

    def test_as_of_ahead_of_head_is_bad_request(self, tmp_path):
        points = clustered_stream(59, 240)
        config = journal_config()

        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                await client.open_session("t1", config)
                for i in range(0, len(points), 40):
                    await client.ingest("t1", points[i : i + 40])
                await client.drain("t1", flush_tail=True)
                with pytest.raises(ServeClientError) as err:
                    await client.query_as_of("t1", stride=10**6)
                return err.value.code

        code = serve_scenario(scenario, service=ClusterService(data_dir=tmp_path))
        assert code == "bad-request"


class TestConsistencyToken:
    def test_query_and_snapshot_carry_the_stride_token(self, tmp_path):
        """Satellite: every read-path response names the stride it reflects,
        and the token matches the journal head - 1 when the pipe is idle."""
        points = clustered_stream(60, 300)
        config = journal_config()

        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                await client.open_session("t1", config)
                for i in range(0, len(points), 40):
                    await client.ingest("t1", points[i : i + 40])
                await client.drain("t1", flush_tail=True)
                snapshot = await client.snapshot("t1")
                by_pid = await client.query_pid("t1", points[-1].pid)
                by_coords = await client.query_coords("t1", points[-1].coords)
                events = await client.events("t1", cursor=0)
                return snapshot, by_pid, by_coords, events

        snapshot, by_pid, by_coords, events = serve_scenario(
            lambda p: scenario(p), service=ClusterService(data_dir=tmp_path)
        )
        final = events["head"] - 1
        assert snapshot["stride"] == final
        assert by_pid["stride"] == final
        assert by_coords["stride"] == final


class TestJournalLifecycle:
    def test_journal_survives_close_and_resume(self, tmp_path):
        """CLOSE then re-OPEN with resume: the CDC history is still there
        and EVENTS picks up exactly where the journal head was."""
        points = clustered_stream(61, 300)
        config = journal_config()

        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                await client.open_session("t1", config)
                for i in range(0, len(points), 40):
                    await client.ingest("t1", points[i : i + 40])
                await client.drain("t1", flush_tail=True)
                before = await client.events("t1", cursor=0)
                await client.close_session("t1")
                await client.open_session("t1", config, resume=True)
                after = await client.events("t1", cursor=0)
                return before, after

        before, after = serve_scenario(
            lambda p: scenario(p), service=ClusterService(data_dir=tmp_path)
        )
        assert [encode_record(r) for r in after["events"]] == [
            encode_record(r) for r in before["events"]
        ]

    def test_stats_surface_journal_and_archive_counters(self, tmp_path):
        points = clustered_stream(62, 240)
        config = journal_config(archive_every=3)

        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                await client.open_session("t1", config)
                for i in range(0, len(points), 40):
                    await client.ingest("t1", points[i : i + 40])
                await client.drain("t1", flush_tail=True)
                return await client.stats("t1")

        stats = serve_scenario(
            lambda p: scenario(p), service=ClusterService(data_dir=tmp_path)
        )
        strides = 240 // STRIDE
        assert stats["journal"]["appends"] == strides
        assert stats["journal"]["head"] == strides
        assert stats["journal"]["floor"] == 0
        assert stats["journal"]["subscribers"] == 0
        assert stats.get("journal_error") is None  # only present on failure
        assert stats["archive"]["every"] == 3
        assert stats["archive"]["snapshots"] >= 2

    def test_journal_requires_data_dir(self):
        async def scenario(port):
            async with await ServeClient.connect("127.0.0.1", port) as client:
                with pytest.raises(ServeClientError) as err:
                    await client.open_session("t1", journal_config())
                return err.value.code

        assert serve_scenario(scenario) == "bad-request"
