"""The Supervisor's push-style API: begin/feed/finish and final_checkpoint.

The serving layer drives a Supervisor point by point from a queue, so the
push path must reproduce the pull path (:meth:`Supervisor.run`) exactly —
same strides, same snapshots, same checkpoint boundaries. ``final_checkpoint``
is the drain hook: it must capture mid-batch state such that a resumed run
replays zero points.
"""

from __future__ import annotations

import pytest

from repro.common.config import WindowSpec
from repro.common.errors import ConfigurationError
from repro.runtime.supervisor import Supervisor
from repro.runtime.store import CheckpointStore

from .conftest import clustered_stream

EPS, TAU = 0.8, 4
SPEC = WindowSpec(window=120, stride=30)


def label_history(results):
    return [dict(snapshot.labels) for snapshot, _ in results]


class TestPushPullEquivalence:
    def test_feed_finish_matches_run(self):
        points = clustered_stream(3, 400)
        pull = list(Supervisor(EPS, TAU, SPEC).run(points))

        push_sup = Supervisor(EPS, TAU, SPEC)
        push_sup.begin()
        push = []
        for point in points:
            push.extend(push_sup.feed(point))
        push.extend(push_sup.finish())

        assert label_history(push) == label_history(pull)
        assert [s.num_clusters for s, _ in push] == [
            s.num_clusters for s, _ in pull
        ]

    def test_push_checkpoints_at_same_boundaries(self, tmp_path):
        points = clustered_stream(4, 400)
        pull_sup = Supervisor(
            EPS, TAU, SPEC, store=str(tmp_path / "pull"), checkpoint_every=2
        )
        list(pull_sup.run(points))

        push_sup = Supervisor(
            EPS, TAU, SPEC, store=str(tmp_path / "push"), checkpoint_every=2
        )
        push_sup.begin()
        for point in points:
            push_sup.feed(point)
        push_sup.finish()

        assert (
            pull_sup.stats.checkpoints_written
            == push_sup.stats.checkpoints_written
        )
        pull_names = [p.name for p in CheckpointStore(tmp_path / "pull").checkpoints()]
        push_names = [p.name for p in CheckpointStore(tmp_path / "push").checkpoints()]
        assert pull_names == push_names

    def test_feed_before_begin_raises(self):
        supervisor = Supervisor(EPS, TAU, SPEC)
        with pytest.raises(ConfigurationError):
            supervisor.feed(clustered_stream(1, 1)[0])
        with pytest.raises(ConfigurationError):
            supervisor.finish()

    def test_begin_resume_returns_offset(self, tmp_path):
        points = clustered_stream(5, 300)
        first = Supervisor(
            EPS, TAU, SPEC, store=str(tmp_path), checkpoint_every=1
        )
        list(first.run(points))
        seen = first.stats.points_seen

        resumed = Supervisor(
            EPS, TAU, SPEC, store=str(tmp_path), checkpoint_every=1
        )
        assert resumed.begin(resume=True) == seen


class TestFinalCheckpoint:
    def test_without_store_is_noop(self):
        supervisor = Supervisor(EPS, TAU, SPEC)
        supervisor.begin()
        assert supervisor.final_checkpoint() is None

    def test_before_begin_is_noop(self, tmp_path):
        supervisor = Supervisor(EPS, TAU, SPEC, store=str(tmp_path))
        assert supervisor.final_checkpoint() is None

    def test_captures_mid_batch_state(self, tmp_path):
        """The drain hook persists a partially filled stride batch."""
        points = clustered_stream(6, 310)  # 310 = 10 full strides + 10 pending
        supervisor = Supervisor(
            EPS, TAU, SPEC, store=str(tmp_path), checkpoint_every=1000
        )
        supervisor.begin()
        for point in points:
            supervisor.feed(point)
        path = supervisor.final_checkpoint()
        assert path is not None and path.exists()
        assert supervisor.stats.points_seen == 310

    def test_drained_then_resumed_replays_zero_points(self, tmp_path):
        """The DRAIN-during-checkpoint ordering fix, by construction.

        A session drained via final_checkpoint() and then resumed must
        skip every point it already consumed — the checkpoint's
        stream_offset covers the full pre-drain stream, pending partial
        batch included — and continuing the stream afterwards must be
        byte-identical to one uninterrupted run.
        """
        points = clustered_stream(7, 500)
        cut = 310  # mid-batch: not a stride boundary

        # Uninterrupted reference run.
        reference = list(Supervisor(EPS, TAU, SPEC).run(points))

        # Phase 1: serve-then-drain.
        first = Supervisor(
            EPS, TAU, SPEC, store=str(tmp_path), checkpoint_every=7
        )
        first.begin()
        part_one = []
        for point in points[:cut]:
            part_one.extend(first.feed(point))
        assert first.final_checkpoint() is not None

        # Phase 2: resume; the offset must cover *everything* drained.
        second = Supervisor(
            EPS, TAU, SPEC, store=str(tmp_path), checkpoint_every=7
        )
        offset = second.begin(resume=True)
        assert offset == cut, "drained checkpoint must replay zero points"
        part_two = []
        for point in points[cut:]:
            part_two.extend(second.feed(point))
        part_two.extend(second.finish())

        assert label_history(part_one + part_two) == label_history(reference)
