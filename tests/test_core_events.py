"""Constructed scenarios for each of the six cluster-evolution events.

Geometry is laid out so each window advance triggers exactly the evolution
type under test; labels are cross-checked against from-scratch DBSCAN.
"""

import pytest

from repro.baselines.dbscan import SlidingDBSCAN
from repro.common.points import StreamPoint
from repro.core.disc import DISC
from repro.core.events import EvolutionEvent, EvolutionKind, StrideSummary
from repro.metrics.compare import assert_equivalent


def sp(pid, x, y):
    return StreamPoint(pid, (float(x), float(y)), float(pid))


def chain(start_id, x0, n, gap=0.4, y=0.0):
    return [sp(start_id + i, x0 + i * gap, y) for i in range(n)]


def verify_against_dbscan(disc, window_points):
    reference = SlidingDBSCAN(disc.params.eps, disc.params.tau)
    reference.advance(window_points, ())
    points = {p.pid: p.coords for p in window_points}
    assert_equivalent(disc.snapshot(), reference.snapshot(), points, disc.params)


class TestEmergence:
    def test_new_cluster_emerges(self):
        disc = DISC(eps=0.5, tau=3)
        summary = disc.advance(chain(0, 0.0, 5), ())
        assert summary.count(EvolutionKind.EMERGE) == 1
        assert disc.snapshot().num_clusters == 1

    def test_two_separate_emergences(self):
        disc = DISC(eps=0.5, tau=3)
        summary = disc.advance(chain(0, 0.0, 5) + chain(100, 50.0, 5), ())
        assert summary.count(EvolutionKind.EMERGE) == 2
        assert disc.snapshot().num_clusters == 2

    def test_noise_does_not_emerge(self):
        disc = DISC(eps=0.5, tau=3)
        summary = disc.advance([sp(0, 0, 0), sp(1, 10, 10)], ())
        assert summary.events == []
        assert disc.snapshot().num_clusters == 0


class TestExpansion:
    def test_cluster_grows(self):
        disc = DISC(eps=0.5, tau=3)
        disc.advance(chain(0, 0.0, 5), ())
        summary = disc.advance(chain(100, 2.0, 3), ())
        assert summary.count(EvolutionKind.EXPAND) == 1
        assert disc.snapshot().num_clusters == 1
        # The cluster id carried over: expansion, not emergence.
        assert summary.count(EvolutionKind.EMERGE) == 0


class TestMerge:
    def test_bridge_merges_two_clusters(self):
        disc = DISC(eps=0.5, tau=3)
        left = chain(0, 0.0, 5)  # spans x = 0 .. 1.6
        right = chain(100, 3.0, 5)  # spans x = 3.0 .. 4.6
        disc.advance(left + right, ())
        assert disc.snapshot().num_clusters == 2
        bridge = chain(200, 1.8, 3, gap=0.45)
        summary = disc.advance(bridge, ())
        assert summary.count(EvolutionKind.MERGE) == 1
        assert disc.snapshot().num_clusters == 1
        verify_against_dbscan(disc, left + right + bridge)

    def test_merge_unifies_labels(self):
        disc = DISC(eps=0.5, tau=3)
        left = chain(0, 0.0, 5)
        right = chain(100, 3.0, 5)
        disc.advance(left + right, ())
        disc.advance(chain(200, 1.8, 3, gap=0.45), ())
        labels = disc.labels()
        assert labels[0] == labels[104]


class TestSplit:
    def test_removing_bridge_splits(self):
        disc = DISC(eps=0.5, tau=3)
        bridge = chain(200, 1.8, 3, gap=0.45)
        left = chain(0, 0.0, 5)
        right = chain(100, 3.0, 5)
        disc.advance(left + right + bridge, ())
        assert disc.snapshot().num_clusters == 1
        summary = disc.advance((), bridge)
        assert summary.count(EvolutionKind.SPLIT) == 1
        assert disc.snapshot().num_clusters == 2
        verify_against_dbscan(disc, left + right)

    def test_split_labels_diverge(self):
        disc = DISC(eps=0.5, tau=3)
        bridge = chain(200, 1.8, 3, gap=0.45)
        left = chain(0, 0.0, 5)
        right = chain(100, 3.0, 5)
        disc.advance(left + right + bridge, ())
        disc.advance((), bridge)
        labels = disc.labels()
        assert labels[0] != labels[104]

    def test_three_way_split(self):
        disc = DISC(eps=0.5, tau=2)
        # Arms at x = 2.0-3.2, 6.0-7.2, 10.0-11.2; linker chains span the gaps.
        arms = [chain(100 * a, 2.0 + a * 4.0, 4) for a in range(3)]
        linkers = (
            chain(300, 3.65, 6, gap=0.45)  # joins arm0 to arm1
            + chain(400, 7.65, 6, gap=0.45)  # joins arm1 to arm2
        )
        window = [p for arm in arms for p in arm] + linkers
        disc.advance(window, ())
        assert disc.snapshot().num_clusters == 1
        summary = disc.advance((), linkers)
        split_events = [
            e for e in summary.events if e.kind is EvolutionKind.SPLIT
        ]
        assert split_events
        assert disc.snapshot().num_clusters == 3
        verify_against_dbscan(disc, [p for arm in arms for p in arm])


class TestShrinkAndDissipate:
    def test_shrink_keeps_cluster(self):
        disc = DISC(eps=0.5, tau=3)
        points = chain(0, 0.0, 8)
        disc.advance(points, ())
        old_label = disc.labels()[4]
        summary = disc.advance((), points[:2])
        assert summary.count(EvolutionKind.SHRINK) >= 1
        assert summary.count(EvolutionKind.SPLIT) == 0
        assert disc.snapshot().num_clusters == 1
        assert disc.labels()[4] == old_label

    def test_dissipation(self):
        disc = DISC(eps=0.5, tau=3)
        points = chain(0, 0.0, 5)
        disc.advance(points, ())
        summary = disc.advance((), points)
        assert summary.count(EvolutionKind.DISSIPATE) >= 1
        assert disc.snapshot().num_clusters == 0
        assert len(disc) == 0

    def test_partial_dissipation_to_noise(self):
        disc = DISC(eps=0.5, tau=3)
        points = chain(0, 0.0, 5)
        disc.advance(points, ())
        disc.advance((), points[1:])
        snapshot = disc.snapshot()
        assert snapshot.num_clusters == 0
        assert snapshot.label_of(0) == snapshot.NOISE_ID


class TestEventListCounts:
    """Regression: ``StrideSummary.count`` must not rescan the event list.

    It used to be O(n · kinds) per stride in the monitoring hot path; the
    tally now lives in ``EventList.kind_counts`` and every mutation path has
    to keep it exact.
    """

    @staticmethod
    def ev(kind, i=0):
        return EvolutionEvent(kind, (i,), i)

    def test_counts_track_every_mutation(self):
        from collections import Counter

        from repro.core.events import EventList

        merge, split = EvolutionKind.MERGE, EvolutionKind.SPLIT
        events = EventList([self.ev(merge, 1)])
        events.append(self.ev(split, 2))
        events.extend([self.ev(merge, 3), self.ev(merge, 4)])
        events += [self.ev(split, 5)]
        events.insert(0, self.ev(EvolutionKind.EMERGE, 6))
        events.remove(events[1])  # the original merge
        popped = events.pop()
        assert popped.kind is split
        events[0] = self.ev(split, 7)
        del events[1]
        assert events.kind_counts == Counter(e.kind for e in events)
        events.clear()
        assert events.kind_counts == Counter()

    def test_copy_recounts_independently(self):
        from repro.core.events import EventList

        events = EventList([self.ev(EvolutionKind.MERGE)])
        clone = events.copy()
        clone.append(self.ev(EvolutionKind.MERGE))
        assert events.kind_counts[EvolutionKind.MERGE] == 1
        assert clone.kind_counts[EvolutionKind.MERGE] == 2

    def test_count_does_not_rescan_the_list(self):
        """Each event's ``kind`` is read at insertion, never again per count."""

        class CountingEvent:
            def __init__(self, kind):
                self._kind = kind
                self.kind_reads = 0

            @property
            def kind(self):
                self.kind_reads += 1
                return self._kind

        probes = [CountingEvent(EvolutionKind.MERGE) for _ in range(5)]
        summary = StrideSummary(events=list(probes))
        baseline = [p.kind_reads for p in probes]
        for _ in range(100):
            for kind in EvolutionKind:
                summary.count(kind)
        assert [p.kind_reads for p in probes] == baseline
        assert summary.count(EvolutionKind.MERGE) == 5

    def test_plain_list_reassignment_still_counts(self):
        """A caller who reassigns ``events`` to a bare list loses the O(1)
        path but must keep getting correct answers."""
        summary = StrideSummary()
        summary.events = [
            self.ev(EvolutionKind.MERGE),
            self.ev(EvolutionKind.MERGE),
            self.ev(EvolutionKind.SPLIT),
        ]
        assert summary.count(EvolutionKind.MERGE) == 2
        assert summary.count(EvolutionKind.SPLIT) == 1
        assert summary.count(EvolutionKind.EMERGE) == 0

    def test_post_init_coerces_plain_lists(self):
        from repro.core.events import EventList

        summary = StrideSummary(events=[self.ev(EvolutionKind.EXPAND)])
        assert isinstance(summary.events, EventList)
        assert summary.count(EvolutionKind.EXPAND) == 1


class TestStrideSummary:
    def test_counts(self):
        summary = StrideSummary()
        assert summary.count(EvolutionKind.SPLIT) == 0

    def test_summary_fields(self):
        disc = DISC(eps=0.5, tau=3)
        summary = disc.advance(chain(0, 0.0, 5), ())
        assert summary.num_inserted == 5
        assert summary.num_deleted == 0
        # Chain endpoints have only two epsilon-neighbours (self + 1 < tau),
        # so they are borders: three interior points become neo-cores.
        assert summary.num_neo_cores == 3
        assert summary.num_ex_cores == 0

    def test_trigger_recorded(self):
        disc = DISC(eps=0.5, tau=3)
        summary = disc.advance(chain(0, 0.0, 5), ())
        event = summary.events[0]
        assert event.trigger in {0, 1, 2, 3, 4}
        assert event.cluster_ids
