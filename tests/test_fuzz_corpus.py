"""Tier-1 corpus replay: every committed case must stay green.

``tests/corpus/`` holds two kinds of JSONL case files (see
docs/testing.md):

- **shrunk findings** — minimized streams that once exposed a real bug
  (e.g. the ``classify`` tie-break); a clean replay proves the bug stays
  fixed;
- **anchors** — hand-picked generated scenarios pinned against one
  oracle × backend pair each, covering both window kinds and the
  adversarial stream features.

Adding a case is just dropping the file here — this test discovers them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz import replay_case
from repro.fuzz.scenarios import load_case

CORPUS = Path(__file__).parent / "corpus"
CASES = sorted(CORPUS.glob("*.jsonl"))


def case_id(path: Path) -> str:
    return path.stem.removeprefix("case-")


def test_corpus_is_not_empty():
    assert CASES, "tests/corpus/ must ship at least the shrunk findings"


@pytest.mark.parametrize("path", CASES, ids=case_id)
def test_case_replays_clean(path):
    report = replay_case(path)
    assert report.ok, "\n" + report.render()
    assert report.checks >= 1


@pytest.mark.parametrize("path", CASES, ids=case_id)
def test_case_records_its_oracle(path):
    scenario, meta = load_case(path)
    assert scenario.points
    assert meta.get("oracle"), "cases must pin the oracle that minted them"
    assert meta.get("backend")


def test_shrunk_findings_are_minimal():
    shrunk = [p for p in CASES if "-shrunk-" in p.name]
    assert shrunk, "the classify tie-break findings must stay committed"
    for path in shrunk:
        scenario, meta = load_case(path)
        assert len(scenario.points) <= 20
        assert meta["original_points"] > len(scenario.points)
