"""Oracle-matrix unit tests: clean streams pass, planted bugs are caught.

Each oracle is exercised twice: once over a generated scenario on a healthy
tree (no failures — the contract holds), and once against a deliberately
broken implementation (the failure is reported, with the oracle/backend/
stride triple the harness needs for shrinking). Plus the fault-point
enumeration the checkpoint oracle samples from.
"""

from __future__ import annotations

import math

import pytest

from repro.common.snapshot import Clustering
from repro.fuzz.oracles import (
    ORACLES,
    OracleFailure,
    _tie_runs,
    oracle_checkpoint,
    oracle_classify,
    oracle_equivalence,
    oracle_permutation,
    oracle_serve,
)
from repro.fuzz.scenarios import generate_scenario, scenarios_from_seed
from repro.runtime.chaos import enumerate_fault_points
from repro.serve.session import SessionView, squared_distance

BACKEND = "grid"


@pytest.fixture(scope="module")
def scenario():
    return generate_scenario(7)


class TestCleanScenarioPasses:
    """Seed 7 is a known-clean stream; every oracle must agree."""

    def test_equivalence(self, scenario):
        assert oracle_equivalence(scenario, BACKEND) == []

    def test_permutation(self, scenario):
        assert oracle_permutation(scenario, BACKEND) == []

    def test_classify(self, scenario):
        assert oracle_classify(scenario, BACKEND) == []

    def test_checkpoint(self, scenario):
        assert oracle_checkpoint(scenario, BACKEND) == []

    def test_serve(self, scenario):
        assert oracle_serve(scenario, BACKEND) == []

    def test_registry_is_complete(self):
        assert set(ORACLES) == {
            "equivalence",
            "permutation",
            "classify",
            "checkpoint",
            "serve",
        }


def order_dependent_classify(self, coords):
    """The pre-fix tie-break: strict ``<`` lets the first core seen win an
    exact-distance tie, so the answer depends on core iteration order."""
    best_pid = None
    best_label = Clustering.NOISE_ID
    best_sq = None
    eps_sq = self.eps * self.eps
    for pid, core_coords, label in self.cores:
        if len(core_coords) != len(coords):
            continue
        sq = squared_distance(coords, core_coords)
        if sq <= eps_sq and (best_sq is None or sq < best_sq):
            best_sq, best_pid, best_label = sq, pid, label
    return {
        "stride": self.stride,
        "label": best_label,
        "nearest_core": best_pid,
        "distance": None if best_sq is None else math.sqrt(best_sq),
    }


class TestPlantedBugsAreCaught:
    def test_classify_oracle_catches_order_dependent_tie_break(
        self, monkeypatch
    ):
        monkeypatch.setattr(
            SessionView, "classify", order_dependent_classify
        )
        hits = [
            failure
            for sc in scenarios_from_seed(42, 3)
            for failure in oracle_classify(sc, BACKEND)
        ]
        assert hits, "probes at exact midpoints must expose the tie-break"
        for failure in hits:
            assert failure.oracle == "classify"
            assert failure.backend == BACKEND
            assert failure.stride is not None
            assert "core-order-dependent" in failure.detail

    def test_equivalence_oracle_catches_skewed_reference(
        self, scenario, monkeypatch
    ):
        # Stand-in for a broken incremental path: make the two sides of
        # the differential disagree (reference clusters with tau+1) and
        # the oracle must report the first diverging stride.
        import repro.fuzz.oracles as oracles_mod
        from repro.baselines.dbscan import SlidingDBSCAN

        monkeypatch.setattr(
            oracles_mod,
            "SlidingDBSCAN",
            lambda eps, tau, index: SlidingDBSCAN(eps, tau + 1, index=index),
        )
        failures = oracle_equivalence(scenario, BACKEND)
        assert failures
        assert failures[0].oracle == "equivalence"
        assert failures[0].stride is not None

    def test_serve_oracle_catches_mismatched_session_params(
        self, scenario, monkeypatch
    ):
        # Force every served session to cluster with a different tau than
        # the offline reference: the final-view check must fire.
        from repro.serve import config as serve_config

        original = serve_config.SessionConfig.__post_init__

        def skewed(self):
            original(self)
            object.__setattr__(self, "tau", self.tau + 2)

        monkeypatch.setattr(
            serve_config.SessionConfig, "__post_init__", skewed
        )
        failures = oracle_serve(scenario, BACKEND)
        assert failures
        assert failures[0].oracle == "serve"

    def test_failure_describe_carries_the_coordinates(self):
        failure = OracleFailure("classify", "grid", 3, "probe went wrong")
        text = failure.describe()
        assert "classify" in text
        assert "grid" in text
        assert "stride 3" in text
        assert "probe went wrong" in text
        headless = OracleFailure("serve", "rtree", None, "boom")
        assert "stride" not in headless.describe()


class TestTieRuns:
    def test_time_based_runs_split_only_on_timestamp(self):
        scenario = generate_scenario(7)
        if not scenario.time_based:
            scenario = next(
                generate_scenario(s) for s in range(20)
                if generate_scenario(s).time_based
            )
        for run in _tie_runs(scenario):
            times = {scenario.points[i].time for i in run}
            assert len(times) == 1
            assert len(run) > 1

    def test_count_based_runs_respect_stride_blocks_and_tail_cut(self):
        scenario = next(
            generate_scenario(s)
            for s in range(20)
            if not generate_scenario(s).time_based
        )
        tail_cut = len(scenario.points) - scenario.window
        for run in _tie_runs(scenario):
            assert len({scenario.points[i].time for i in run}) == 1
            assert len({i // scenario.stride for i in run}) == 1
            assert len({i < tail_cut for i in run}) == 1


class TestEnumerateFaultPoints:
    def test_small_run_covers_every_boundary_and_checkpoint(self):
        points = enumerate_fault_points(5, 2)
        assert {"kill_before_stride": 1} in points
        assert {"kill_before_stride": 4} in points
        assert {"kill_after_checkpoint": 2} in points
        assert {"kill_after_checkpoint": 4} in points
        assert {"kill_before_stride": 0} not in points
        assert {"kill_before_stride": 5} not in points

    def test_no_strides_no_faults(self):
        assert enumerate_fault_points(0, 2) == []

    def test_checkpointing_disabled_skips_checkpoint_kills(self):
        points = enumerate_fault_points(4, 0)
        assert all("kill_after_checkpoint" not in p for p in points)
        assert len(points) == 3
