"""Store-layout equivalence: columnar and object runs are byte-identical.

The columnar :class:`~repro.core.store.PointStore` is only admissible if it
is *indistinguishable* from the classic per-record layout: same labels, same
categories, same checkpoint bytes, same algorithm counters, stride for
stride, on every registered index backend. These tests drive both layouts
through identical slide sequences and diff everything observable.
"""

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.api import cluster_stream
from repro.common.config import WindowSpec
from repro.common.points import StreamPoint
from repro.core.checkpoint import to_checkpoint
from repro.core.disc import DISC
from repro.datasets.maze import maze_stream
from repro.index.registry import available_indexes
from repro.observability.sinks import InMemorySink
from repro.observability.trace import Tracer
from repro.window.sliding import materialize_slides
from tests.conftest import clustered_stream


def run_both_layouts(points, spec, eps, tau, *, index=None, time_based=False):
    """Drive both layouts through one stream; return (per-stride, final) pairs."""
    outputs = {}
    for layout in ("columnar", "object"):
        sink = InMemorySink()
        disc = DISC(eps, tau, index=index, store=layout, tracer=Tracer(sink))
        strides = [
            (snap.labels, snap.categories)
            for snap, _ in cluster_stream(
                points, spec, eps, tau, clusterer=disc, time_based=time_based
            )
        ]
        outputs[layout] = (strides, disc, sink.records)
    return outputs["columnar"], outputs["object"]


def assert_run_identical(columnar, legacy):
    col_strides, col_disc, col_traces = columnar
    obj_strides, obj_disc, obj_traces = legacy
    assert col_strides == obj_strides  # labels AND categories, every stride
    # Checkpoint payloads must agree byte for byte.
    assert json.dumps(to_checkpoint(col_disc), sort_keys=True) == json.dumps(
        to_checkpoint(obj_disc), sort_keys=True
    )
    # Trace counters (algorithm activity and index-stats deltas) must agree —
    # the layouts may not even *probe* differently. Timings obviously differ;
    # the store gauges exist only on the columnar side.
    assert len(col_traces) == len(obj_traces)
    for a, b in zip(col_traces, obj_traces):
        da, db = a.as_dict(), b.as_dict()
        assert da["counters"] == db["counters"]
        assert da["index"] == db["index"]
        assert da["events"] == db["events"]
        assert da["stride"] == db["stride"]
        assert "store" in da and "store" not in db


class TestDatasets:
    @pytest.mark.parametrize("index", available_indexes())
    def test_synthetic_stream_identical_on_every_backend(self, index):
        points = clustered_stream(21, 360)
        spec = WindowSpec(window=120, stride=30)
        columnar, legacy = run_both_layouts(points, spec, 0.7, 4, index=index)
        assert_run_identical(columnar, legacy)

    def test_maze_stream_identical(self):
        points, _ = maze_stream(600, seed=3)
        spec = WindowSpec(window=200, stride=50)
        columnar, legacy = run_both_layouts(points, spec, 0.6, 4)
        assert_run_identical(columnar, legacy)

    def test_churn_with_noise_identical(self):
        rng = random.Random(9)
        points = []
        for i in range(400):
            if rng.random() < 0.3:
                coords = (rng.uniform(-2.0, 8.0), rng.uniform(-2.0, 8.0))
            else:
                cx = rng.choice([0.0, 3.0, 6.0])
                coords = (cx + rng.gauss(0, 0.4), rng.gauss(0, 0.4))
            points.append(StreamPoint(i, coords, float(i)))
        spec = WindowSpec(window=90, stride=18)
        columnar, legacy = run_both_layouts(points, spec, 0.55, 3)
        assert_run_identical(columnar, legacy)

    def test_time_based_window_identical(self):
        points = clustered_stream(22, 240)
        spec = WindowSpec(window=80.0, stride=20.0)
        columnar, legacy = run_both_layouts(
            points, spec, 0.7, 4, time_based=True
        )
        assert_run_identical(columnar, legacy)

    def test_ablation_arms_identical(self):
        """The equivalence holds with MS-BFS / epoch probing toggled off."""
        points = clustered_stream(23, 240)
        slides = materialize_slides(points, WindowSpec(window=100, stride=25))
        for multi_starter in (True, False):
            for epoch_probing in (True, False):
                pair = []
                for layout in ("columnar", "object"):
                    disc = DISC(
                        0.7,
                        4,
                        store=layout,
                        multi_starter=multi_starter,
                        epoch_probing=epoch_probing,
                    )
                    for delta_in, delta_out in slides:
                        disc.advance(delta_in, delta_out)
                    pair.append(disc)
                assert pair[0].labels() == pair[1].labels()
                assert (
                    pair[0].snapshot().categories == pair[1].snapshot().categories
                )


class TestProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=30, max_value=160),
        stride=st.integers(min_value=5, max_value=30),
        tau=st.integers(min_value=2, max_value=5),
    )
    def test_random_streams_identical(self, seed, n, stride, tau):
        """For any stream and windowing, both layouts agree exactly."""
        rng = random.Random(seed)
        points = [
            StreamPoint(
                i,
                (rng.uniform(-4.0, 4.0), rng.uniform(-4.0, 4.0)),
                float(i),
            )
            for i in range(n)
        ]
        window = stride * rng.randint(2, 4)
        spec = WindowSpec(window=window, stride=stride)
        eps = rng.choice([0.4, 0.7, 1.1])
        columnar, legacy = run_both_layouts(points, spec, eps, tau)
        assert_run_identical(columnar, legacy)
