"""Long-haul stress: sustained churn with periodic exactness audits.

A single DISC instance survives hundreds of strides of adversarial churn —
blobs drifting, appearing and vanishing, bulk departures — while staying
exact against from-scratch DBSCAN at every audit point and keeping its
internal bookkeeping (anchors, counts, index) consistent.
"""

import random

from repro.baselines.dbscan import SlidingDBSCAN
from repro.common.points import StreamPoint
from repro.common.snapshot import Category
from repro.core.disc import DISC
from repro.metrics.compare import assert_equivalent


def audit_internal_state(disc):
    """Bookkeeping invariants that must hold between strides."""
    state = disc.state
    for rec in state.live_records():
        category = state.category_of(rec)
        # n_eps is exact.
        true_n = len(disc.index.ball(rec.coords, disc.params.eps))
        assert rec.n_eps == true_n, f"n_eps drift for {rec.pid}"
        # c_core is exact.
        true_c = sum(
            1
            for qid, _ in disc.index.ball(rec.coords, disc.params.eps)
            if qid != rec.pid and state.is_core(state.records[qid])
        )
        assert rec.c_core == true_c, f"c_core drift for {rec.pid}"
        if category is Category.BORDER:
            anchor = state.records[rec.anchor]
            assert state.is_core(anchor)
    assert len(disc.index) == sum(1 for _ in state.live_records())


def test_sustained_churn_stays_exact():
    rng = random.Random(77)
    disc = DISC(0.7, 4)
    disc.compact_every = 37  # exercise compaction mid-run
    reference = SlidingDBSCAN(0.7, 4)
    alive: list[StreamPoint] = []
    next_pid = 0
    blob_centers = [[0.0, 0.0], [4.0, 0.0], [2.0, 3.5]]

    for stride in range(120):
        # Drift the blobs; occasionally teleport one (dissipation + birth).
        for center in blob_centers:
            center[0] += rng.gauss(0, 0.08)
            center[1] += rng.gauss(0, 0.08)
        if rng.random() < 0.05:
            idx = rng.randrange(len(blob_centers))
            blob_centers[idx] = [rng.uniform(-3, 7), rng.uniform(-3, 6)]

        batch = []
        batch_size = rng.choice([10, 25, 40])
        for _ in range(batch_size):
            if rng.random() < 0.15:
                coords = (rng.uniform(-4, 8), rng.uniform(-4, 7))
            else:
                cx, cy = rng.choice(blob_centers)
                coords = (cx + rng.gauss(0, 0.45), cy + rng.gauss(0, 0.45))
            batch.append(StreamPoint(next_pid, coords, float(next_pid)))
            next_pid += 1

        # Departures: usually FIFO, occasionally a bulk purge.
        if rng.random() < 0.1 and len(alive) > 80:
            n_out = rng.randrange(40, min(len(alive), 80))
        else:
            n_out = max(0, len(alive) + batch_size - 150)
            n_out = min(n_out, len(alive))
        delta_out = alive[:n_out]
        alive = alive[n_out:] + batch

        disc.advance(batch, delta_out)
        reference.advance(batch, delta_out)

        if stride % 10 == 0:
            coords = {p.pid: p.coords for p in alive}
            assert_equivalent(
                disc.snapshot(), reference.snapshot(), coords, disc.params
            )
        if stride % 40 == 0:
            audit_internal_state(disc)
            disc.index.check_invariants()

    # Final full audit.
    coords = {p.pid: p.coords for p in alive}
    assert_equivalent(
        disc.snapshot(), reference.snapshot(), coords, disc.params
    )
    audit_internal_state(disc)
