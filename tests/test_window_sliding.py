"""Unit tests for count- and time-based sliding windows and the driver."""

import pytest

from repro.common.config import WindowSpec
from repro.common.errors import StreamOrderError
from repro.common.points import StreamPoint, make_points
from repro.window.driver import drive, replay
from repro.window.sliding import SlidingWindow, materialize_slides


def seq_points(n, start=0):
    return make_points([(float(i), 0.0) for i in range(n)], start_id=start)


class TestCountBased:
    def test_slide_sizes(self):
        spec = WindowSpec(window=10, stride=5)
        slides = materialize_slides(seq_points(30), spec)
        assert len(slides) == 6
        assert all(len(delta_in) == 5 for delta_in, _ in slides)

    def test_window_fills_before_expiring(self):
        spec = WindowSpec(window=10, stride=5)
        slides = materialize_slides(seq_points(30), spec)
        outs = [len(delta_out) for _, delta_out in slides]
        assert outs == [0, 0, 5, 5, 5, 5]

    def test_fifo_expiry_order(self):
        spec = WindowSpec(window=10, stride=5)
        slides = materialize_slides(seq_points(20), spec)
        assert [sp.pid for sp in slides[2][1]] == [0, 1, 2, 3, 4]
        assert [sp.pid for sp in slides[3][1]] == [5, 6, 7, 8, 9]

    def test_window_size_invariant(self):
        spec = WindowSpec(window=12, stride=5)
        size = 0
        for delta_in, delta_out in materialize_slides(seq_points(60), spec):
            size += len(delta_in) - len(delta_out)
            assert size <= spec.window
        # Steady state keeps the window as full as the stride allows.
        assert spec.window - spec.stride < size <= spec.window

    def test_partial_final_stride(self):
        spec = WindowSpec(window=10, stride=4)
        slides = materialize_slides(seq_points(10), spec)
        assert [len(d) for d, _ in slides] == [4, 4, 2]

    def test_non_divisible_stride(self):
        spec = WindowSpec(window=10, stride=3)
        slides = materialize_slides(seq_points(30), spec)
        # After every slide the window holds at most 10 points.
        size = 0
        for delta_in, delta_out in slides:
            size += len(delta_in) - len(delta_out)
            assert size <= 10

    def test_stride_equals_window_is_tumbling(self):
        spec = WindowSpec(window=5, stride=5)
        slides = materialize_slides(seq_points(15), spec)
        assert [len(o) for _, o in slides] == [0, 5, 5]


class TestTimeBased:
    def make_timed(self, times, start=0):
        return [
            StreamPoint(start + i, (float(i), 0.0), t) for i, t in enumerate(times)
        ]

    def test_groups_by_time(self):
        spec = WindowSpec(window=10, stride=5)
        points = self.make_timed([0, 1, 2, 6, 7, 11, 12])
        slides = list(SlidingWindow(spec, time_based=True).slides(points))
        assert [len(d) for d, _ in slides] == [3, 2, 2]

    def test_expiry_by_duration(self):
        spec = WindowSpec(window=10, stride=5)
        points = self.make_timed([0, 1, 2, 6, 7, 11, 12, 16, 17])
        slides = list(SlidingWindow(spec, time_based=True).slides(points))
        # At boundary 15, points with time <= 5 have expired.
        expired = [sp.pid for _, out in slides for sp in out]
        assert 0 in expired and 1 in expired and 2 in expired

    def test_empty_strides_emitted(self):
        spec = WindowSpec(window=10, stride=5)
        points = self.make_timed([0, 1, 17])
        slides = list(SlidingWindow(spec, time_based=True).slides(points))
        # Quiet periods still advance the window (empty delta_in slides).
        assert any(len(d) == 0 for d, _ in slides)

    def test_out_of_order_rejected(self):
        spec = WindowSpec(window=10, stride=5)
        points = self.make_timed([5, 3])
        with pytest.raises(StreamOrderError):
            list(SlidingWindow(spec, time_based=True).slides(points))


class RecordingClusterer:
    name = "recorder"

    def __init__(self):
        self.calls = []

    def advance(self, delta_in, delta_out=()):
        self.calls.append((len(delta_in), len(delta_out)))
        return None


class TestDriver:
    def test_replay_measures_every_slide(self):
        spec = WindowSpec(window=10, stride=5)
        slides = materialize_slides(seq_points(30), spec)
        clusterer = RecordingClusterer()
        result = replay(clusterer, slides)
        assert result.method == "recorder"
        assert len(result.measurements) == 6
        assert clusterer.calls[0] == (5, 0)
        assert clusterer.calls[-1] == (5, 5)

    def test_window_size_tracked(self):
        spec = WindowSpec(window=10, stride=5)
        result = drive(RecordingClusterer(), seq_points(30), spec)
        assert [m.window_size for m in result.measurements] == [5, 10, 10, 10, 10, 10]

    def test_max_strides(self):
        spec = WindowSpec(window=10, stride=5)
        result = drive(RecordingClusterer(), seq_points(50), spec, max_strides=3)
        assert len(result.measurements) == 3

    def test_steady_drops_warmup(self):
        spec = WindowSpec(window=10, stride=5)
        result = drive(RecordingClusterer(), seq_points(30), spec)
        assert len(result.steady(warmup=2)) == 4
        assert result.mean_elapsed(warmup=2) >= 0.0

    def test_on_stride_observer(self):
        spec = WindowSpec(window=10, stride=5)
        seen = []
        drive(
            RecordingClusterer(),
            seq_points(20),
            spec,
            on_stride=lambda m, c: seen.append(m.index),
        )
        assert seen == [0, 1, 2, 3]
