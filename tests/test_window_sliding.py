"""Unit tests for count- and time-based sliding windows and the driver."""

import pytest

from repro.common.config import WindowSpec
from repro.common.errors import StreamOrderError
from repro.common.points import StreamPoint, make_points
from repro.window.driver import drive, replay
from repro.window.sliding import SlidingWindow, WindowCursor, materialize_slides


def seq_points(n, start=0):
    return make_points([(float(i), 0.0) for i in range(n)], start_id=start)


class TestCountBased:
    def test_slide_sizes(self):
        spec = WindowSpec(window=10, stride=5)
        slides = materialize_slides(seq_points(30), spec)
        assert len(slides) == 6
        assert all(len(delta_in) == 5 for delta_in, _ in slides)

    def test_window_fills_before_expiring(self):
        spec = WindowSpec(window=10, stride=5)
        slides = materialize_slides(seq_points(30), spec)
        outs = [len(delta_out) for _, delta_out in slides]
        assert outs == [0, 0, 5, 5, 5, 5]

    def test_fifo_expiry_order(self):
        spec = WindowSpec(window=10, stride=5)
        slides = materialize_slides(seq_points(20), spec)
        assert [sp.pid for sp in slides[2][1]] == [0, 1, 2, 3, 4]
        assert [sp.pid for sp in slides[3][1]] == [5, 6, 7, 8, 9]

    def test_window_size_invariant(self):
        spec = WindowSpec(window=12, stride=5)
        size = 0
        for delta_in, delta_out in materialize_slides(seq_points(60), spec):
            size += len(delta_in) - len(delta_out)
            assert size <= spec.window
        # Steady state keeps the window as full as the stride allows.
        assert spec.window - spec.stride < size <= spec.window

    def test_partial_final_stride(self):
        spec = WindowSpec(window=10, stride=4)
        slides = materialize_slides(seq_points(10), spec)
        assert [len(d) for d, _ in slides] == [4, 4, 2]

    def test_non_divisible_stride(self):
        spec = WindowSpec(window=10, stride=3)
        slides = materialize_slides(seq_points(30), spec)
        # After every slide the window holds at most 10 points.
        size = 0
        for delta_in, delta_out in slides:
            size += len(delta_in) - len(delta_out)
            assert size <= 10

    def test_stride_equals_window_is_tumbling(self):
        spec = WindowSpec(window=5, stride=5)
        slides = materialize_slides(seq_points(15), spec)
        assert [len(o) for _, o in slides] == [0, 5, 5]


class TestTimeBased:
    def make_timed(self, times, start=0):
        return [
            StreamPoint(start + i, (float(i), 0.0), t) for i, t in enumerate(times)
        ]

    def test_groups_by_time(self):
        spec = WindowSpec(window=10, stride=5)
        points = self.make_timed([0, 1, 2, 6, 7, 11, 12])
        slides = list(SlidingWindow(spec, time_based=True).slides(points))
        assert [len(d) for d, _ in slides] == [3, 2, 2]

    def test_expiry_by_duration(self):
        spec = WindowSpec(window=10, stride=5)
        points = self.make_timed([0, 1, 2, 6, 7, 11, 12, 16, 17])
        slides = list(SlidingWindow(spec, time_based=True).slides(points))
        # At boundary 15, points with time <= 5 have expired.
        expired = [sp.pid for _, out in slides for sp in out]
        assert 0 in expired and 1 in expired and 2 in expired

    def test_empty_strides_emitted(self):
        spec = WindowSpec(window=10, stride=5)
        points = self.make_timed([0, 1, 17])
        slides = list(SlidingWindow(spec, time_based=True).slides(points))
        # Quiet periods still advance the window (empty delta_in slides).
        assert any(len(d) == 0 for d, _ in slides)

    def test_out_of_order_rejected(self):
        spec = WindowSpec(window=10, stride=5)
        points = self.make_timed([5, 3])
        with pytest.raises(StreamOrderError):
            list(SlidingWindow(spec, time_based=True).slides(points))

    def test_out_of_order_error_names_the_culprit(self):
        spec = WindowSpec(window=10, stride=5)
        points = self.make_timed([5, 3], start=40)
        with pytest.raises(StreamOrderError) as excinfo:
            list(SlidingWindow(spec, time_based=True).slides(points))
        message = str(excinfo.value)
        assert "point 41" in message  # which point
        assert "3" in message  # its timestamp
        assert "watermark 5" in message  # what it fell behind


def timed_points(times, start=0):
    return [
        StreamPoint(start + i, (float(i), 0.0), t) for i, t in enumerate(times)
    ]


class TestWindowCursor:
    """Push-style cursor must match the pull-style generator exactly."""

    @pytest.mark.parametrize(
        "spec",
        [WindowSpec(10, 5), WindowSpec(10, 3), WindowSpec(5, 5)],
        ids=["even", "ragged", "tumbling"],
    )
    def test_count_based_equivalence(self, spec):
        points = seq_points(31)
        expected = materialize_slides(points, spec)
        cursor = WindowCursor(spec)
        got = []
        for p in points:
            got.extend(cursor.feed(p))
        tail = cursor.finish()
        if tail is not None:
            got.append(tail)
        assert got == expected

    def test_time_based_equivalence(self):
        spec = WindowSpec(window=10, stride=5)
        points = timed_points([0, 1, 2, 6, 7, 11, 12, 16, 17, 30, 31])
        expected = materialize_slides(points, spec, time_based=True)
        cursor = WindowCursor(spec, time_based=True)
        got = []
        for p in points:
            got.extend(cursor.feed(p))
        tail = cursor.finish()
        if tail is not None:
            got.append(tail)
        assert got == expected

    @pytest.mark.parametrize("time_based", [False, True], ids=["count", "time"])
    @pytest.mark.parametrize("cut", [0, 7, 13, 20])
    def test_state_round_trip_continues_identically(self, time_based, cut):
        spec = WindowSpec(window=10, stride=4) if not time_based else WindowSpec(12, 5)
        points = (
            seq_points(26)
            if not time_based
            else timed_points([0, 1, 3, 4, 6, 8, 9, 11, 13, 14, 16, 18, 20,
                               21, 23, 25, 26, 28, 30, 31, 33, 35, 36, 38,
                               40, 41])
        )
        reference = materialize_slides(points, spec, time_based)

        original = WindowCursor(spec, time_based)
        got = []
        for p in points[:cut]:
            got.extend(original.feed(p))
        resumed = WindowCursor.from_state(original.export_state())
        for p in points[cut:]:
            got.extend(resumed.feed(p))
        tail = resumed.finish()
        if tail is not None:
            got.append(tail)
        assert got == reference

    def test_export_state_is_json_safe(self):
        import json

        cursor = WindowCursor(WindowSpec(10, 4))
        for p in seq_points(6):
            cursor.feed(p)
        state = json.loads(json.dumps(cursor.export_state()))
        rebuilt = WindowCursor.from_state(state)
        assert rebuilt.window_contents == cursor.window_contents
        assert rebuilt.pending == cursor.pending

    def test_introspection_properties(self):
        cursor = WindowCursor(WindowSpec(10, 4))
        points = seq_points(6)
        for p in points:
            cursor.feed(p)
        assert cursor.window_contents == points[:4]
        assert cursor.pending == points[4:]
        assert cursor.watermark is None  # count-based: no time tracking


class RecordingClusterer:
    name = "recorder"

    def __init__(self):
        self.calls = []

    def advance(self, delta_in, delta_out=()):
        self.calls.append((len(delta_in), len(delta_out)))
        return None


class TestDriver:
    def test_replay_measures_every_slide(self):
        spec = WindowSpec(window=10, stride=5)
        slides = materialize_slides(seq_points(30), spec)
        clusterer = RecordingClusterer()
        result = replay(clusterer, slides)
        assert result.method == "recorder"
        assert len(result.measurements) == 6
        assert clusterer.calls[0] == (5, 0)
        assert clusterer.calls[-1] == (5, 5)

    def test_window_size_tracked(self):
        spec = WindowSpec(window=10, stride=5)
        result = drive(RecordingClusterer(), seq_points(30), spec)
        assert [m.window_size for m in result.measurements] == [5, 10, 10, 10, 10, 10]

    def test_max_strides(self):
        spec = WindowSpec(window=10, stride=5)
        result = drive(RecordingClusterer(), seq_points(50), spec, max_strides=3)
        assert len(result.measurements) == 3

    def test_steady_drops_warmup(self):
        spec = WindowSpec(window=10, stride=5)
        result = drive(RecordingClusterer(), seq_points(30), spec)
        assert len(result.steady(warmup=2)) == 4
        assert result.mean_elapsed(warmup=2) >= 0.0

    def test_on_stride_observer(self):
        spec = WindowSpec(window=10, stride=5)
        seen = []
        drive(
            RecordingClusterer(),
            seq_points(20),
            spec,
            on_stride=lambda m, c: seen.append(m.index),
        )
        assert seen == [0, 1, 2, 3]


class TestFeedMany:
    def test_matches_per_point_feed_count_based(self):
        spec = WindowSpec(window=10, stride=4)
        points = seq_points(37)
        one = WindowCursor(spec)
        per_point = []
        for p in points:
            per_point.extend(one.feed(p))
        many = WindowCursor(spec)
        batched = many.feed_many(points)
        assert batched == per_point
        assert many.pending == one.pending
        assert many.window_contents == one.window_contents
        assert many.finish() == one.finish()

    def test_matches_per_point_feed_time_based(self):
        spec = WindowSpec(window=6.0, stride=2.0)
        points = [
            StreamPoint(i, (float(i), 0.0), t)
            for i, t in enumerate([0.0, 0.5, 2.1, 2.2, 4.5, 7.0, 9.9])
        ]
        one = WindowCursor(spec, time_based=True)
        per_point = []
        for p in points:
            per_point.extend(one.feed(p))
        many = WindowCursor(spec, time_based=True)
        assert many.feed_many(points) == per_point
        assert many.watermark == one.watermark

    def test_split_batches_compose(self):
        spec = WindowSpec(window=8, stride=3)
        points = seq_points(25)
        whole = WindowCursor(spec).feed_many(points)
        split = WindowCursor(spec)
        got = split.feed_many(points[:7]) + split.feed_many(points[7:])
        assert got == whole

    def test_materialize_slides_unchanged(self):
        spec = WindowSpec(window=10, stride=4)
        points = seq_points(23)  # trailing partial stride included
        assert materialize_slides(points, spec) == list(
            SlidingWindow(spec).slides(points)
        )
