"""Regression: several retro classes carving ONE old cluster in one stride.

The paper's Lemma 2 / Theorem 1 reason about the fragments reachable from a
*single* retro-reachability class. When two far-apart deletions cut the same
cluster in the same stride, each class's minimal bonding cores see only the
fragments adjacent to *that* class — so the naive "the surviving search keeps
the old cluster id" rule can hand the same old id to two fragments that are
no longer connected (found by hypothesis; fixed with the per-stride kept-id
registry in ``repro.core.cluster``).

The minimal instance: a chain A1-A2-c1-B1-B2-c2-C1-C2 whose two cut points
c1, c2 are deleted together, fragmenting one cluster into three.
"""

import itertools

import pytest

from repro.baselines.dbscan import SlidingDBSCAN
from repro.common.points import StreamPoint
from repro.core.disc import DISC
from repro.core.events import EvolutionKind
from repro.metrics.compare import assert_equivalent

EPS = 1.0
TAU = 2
GAP = 0.9

NAMES = ["A1", "A2", "c1", "B1", "B2", "c2", "C1", "C2"]
POSITIONS = {name: (i * GAP, 0.0) for i, name in enumerate(NAMES)}
PIDS = {name: i for i, name in enumerate(NAMES)}


def point(name):
    return StreamPoint(PIDS[name], POSITIONS[name], 0.0)


def fragments_of(labels):
    groups = {}
    for name in NAMES:
        if name in ("c1", "c2"):
            continue
        groups.setdefault(labels[PIDS[name]], set()).add(name)
    return sorted(map(frozenset, groups.values()), key=sorted)


class TestTwoCutsOneCluster:
    @pytest.mark.parametrize(
        "multi_starter,epoch",
        list(itertools.product([True, False], repeat=2)),
    )
    def test_three_fragments_get_three_ids(self, multi_starter, epoch):
        disc = DISC(EPS, TAU, multi_starter=multi_starter, epoch_probing=epoch)
        disc.advance([point(n) for n in NAMES], ())
        assert disc.snapshot().num_clusters == 1
        summary = disc.advance((), [point("c1"), point("c2")])
        assert summary.count(EvolutionKind.SPLIT) == 2
        labels = disc.labels()
        assert fragments_of(labels) == [
            frozenset({"A1", "A2"}),
            frozenset({"B1", "B2"}),
            frozenset({"C1", "C2"}),
        ]
        # Three fragments, three DISTINCT ids — the regression.
        ids = {labels[PIDS[n]] for n in NAMES if n not in ("c1", "c2")}
        assert len(ids) == 3
        assert disc.snapshot().num_clusters == 3

    def test_exact_vs_dbscan(self):
        disc = DISC(EPS, TAU)
        disc.advance([point(n) for n in NAMES], ())
        disc.advance((), [point("c1"), point("c2")])
        reference = SlidingDBSCAN(EPS, TAU)
        remaining = [point(n) for n in NAMES if n not in ("c1", "c2")]
        reference.advance(remaining, ())
        coords = {p.pid: p.coords for p in remaining}
        assert_equivalent(
            disc.snapshot(), reference.snapshot(), coords, disc.params
        )

    def test_at_most_one_fragment_keeps_the_old_id(self):
        disc = DISC(EPS, TAU)
        disc.advance([point(n) for n in NAMES], ())
        old_cid = disc.labels()[PIDS["A1"]]
        disc.advance((), [point("c1"), point("c2")])
        labels = disc.labels()
        keepers = {
            frozenset(members)
            for cid, members in _group(labels).items()
            if cid == old_cid
        }
        assert len(keepers) <= 1

    def test_three_cuts_four_fragments(self):
        # One more cut than the minimal instance: chain of 11, cut thrice.
        names = [f"p{i}" for i in range(11)]
        pts = [StreamPoint(i, (i * GAP, 0.0), 0.0) for i in range(11)]
        cuts = [pts[2], pts[5], pts[8]]
        disc = DISC(EPS, TAU)
        disc.advance(pts, ())
        assert disc.snapshot().num_clusters == 1
        disc.advance((), cuts)
        assert disc.snapshot().num_clusters == 4
        labels = disc.labels()
        assert len(set(labels.values())) == 4
        _ = names


def _group(labels):
    groups = {}
    for pid, cid in labels.items():
        groups.setdefault(cid, []).append(pid)
    return groups
