"""Unit tests for IncDBSCAN's per-point update semantics."""

import pytest

from repro.baselines.dbscan import SlidingDBSCAN
from repro.baselines.incdbscan import IncrementalDBSCAN
from repro.common.errors import StreamOrderError
from repro.common.points import StreamPoint
from repro.core.disc import DISC
from repro.core.events import EvolutionKind
from repro.metrics.compare import assert_equivalent


def sp(pid, x, y=0.0):
    return StreamPoint(pid, (float(x), float(y)), float(pid))


def chain(start_id, x0, n, gap=0.4):
    return [sp(start_id + i, x0 + i * gap) for i in range(n)]


class TestCaseAnalysis:
    """Ester et al.'s insertion/deletion cases, one point at a time."""

    def test_noise_insertion(self):
        inc = IncrementalDBSCAN(0.5, 3)
        summary = inc.advance([sp(0, 0.0)], ())
        assert summary.events == []
        assert inc.snapshot().num_clusters == 0

    def test_creation_case(self):
        inc = IncrementalDBSCAN(0.5, 3)
        inc.advance([sp(0, 0.0), sp(1, 0.4)], ())
        assert inc.snapshot().num_clusters == 0
        summary = inc.advance([sp(2, 0.2)], ())  # third point makes cores
        assert summary.count(EvolutionKind.EMERGE) == 1
        assert inc.snapshot().num_clusters == 1

    def test_absorption_case(self):
        inc = IncrementalDBSCAN(0.5, 3)
        inc.advance(chain(0, 0.0, 5), ())
        summary = inc.advance([sp(100, 2.0)], ())
        assert summary.count(EvolutionKind.EXPAND) >= 1
        assert inc.snapshot().num_clusters == 1

    def test_merge_case(self):
        inc = IncrementalDBSCAN(0.5, 2)
        inc.advance(chain(0, 0.0, 3) + chain(100, 1.7, 3), ())
        assert inc.snapshot().num_clusters == 2
        summary = inc.advance([sp(200, 1.25)], ())
        assert summary.count(EvolutionKind.MERGE) == 1
        assert inc.snapshot().num_clusters == 1

    def test_deletion_split_case(self):
        inc = IncrementalDBSCAN(0.5, 2)
        window = chain(0, 0.0, 7)
        inc.advance(window, ())
        assert inc.snapshot().num_clusters == 1
        summary = inc.advance((), [window[3]])
        assert summary.count(EvolutionKind.SPLIT) == 1
        assert inc.snapshot().num_clusters == 2

    def test_deletion_to_dissipation(self):
        inc = IncrementalDBSCAN(0.5, 3)
        pts = chain(0, 0.0, 4)
        inc.advance(pts, ())
        inc.advance((), pts[:2])
        assert inc.snapshot().num_clusters == 0


class TestBatchDecomposition:
    def test_stride_equals_sequential_points(self):
        points = chain(0, 0.0, 6) + chain(100, 5.0, 6)
        batch = IncrementalDBSCAN(0.5, 3)
        batch.advance(points, ())
        sequential = IncrementalDBSCAN(0.5, 3)
        for p in points:
            sequential.advance([p], ())
        coords = {p.pid: p.coords for p in points}
        assert_equivalent(
            batch.snapshot(), sequential.snapshot(), coords, batch.params
        )

    def test_summary_aggregates_per_point_events(self):
        inc = IncrementalDBSCAN(0.5, 3)
        summary = inc.advance(chain(0, 0.0, 6) + chain(100, 50.0, 6), ())
        assert summary.num_inserted == 12
        assert summary.count(EvolutionKind.EMERGE) == 2

    def test_matches_dbscan_after_mixed_stride(self):
        inc = IncrementalDBSCAN(0.5, 3)
        reference = SlidingDBSCAN(0.5, 3)
        first = chain(0, 0.0, 8)
        inc.advance(first, ())
        reference.advance(first, ())
        second_in = chain(100, 1.0, 4, gap=0.3)
        second_out = first[:3]
        inc.advance(second_in, second_out)
        reference.advance(second_in, second_out)
        window = first[3:] + second_in
        coords = {p.pid: p.coords for p in window}
        assert_equivalent(
            inc.snapshot(), reference.snapshot(), coords, inc.params
        )

    def test_does_more_searches_than_disc(self):
        # The whole point of DISC: per-point processing repeats work that
        # per-stride consolidation does once.
        points = chain(0, 0.0, 30, gap=0.35)
        inc = IncrementalDBSCAN(0.5, 3)
        disc = DISC(0.5, 3)
        inc.advance(points, ())
        disc.advance(points, ())
        # Delete a contiguous run: each IncDBSCAN deletion re-checks
        # reachability; DISC consolidates them into one retro class.
        victims = points[10:20]
        inc_before = inc.stats.range_searches
        disc_before = disc.stats.range_searches
        inc.advance((), victims)
        disc.advance((), victims)
        assert (
            disc.stats.range_searches - disc_before
            <= inc.stats.range_searches - inc_before
        )

    def test_errors_propagate(self):
        inc = IncrementalDBSCAN(0.5, 3)
        with pytest.raises(StreamOrderError):
            inc.advance((), [sp(1, 0.0)])

    def test_len_and_labels(self):
        inc = IncrementalDBSCAN(0.5, 3)
        inc.advance(chain(0, 0.0, 5), ())
        assert len(inc) == 5
        assert set(inc.labels()) <= {0, 1, 2, 3, 4}
