"""Unit tests for the DISC facade and its window state."""

import pytest

from repro.common.config import ClusteringParams
from repro.common.errors import StreamOrderError
from repro.common.points import StreamPoint
from repro.common.snapshot import Category
from repro.core.disc import DISC
from repro.core.state import PointRecord, WindowState
from repro.index.linear import LinearScanIndex


def sp(pid, x, y):
    return StreamPoint(pid, (float(x), float(y)), float(pid))


def blob(start_id, cx, cy, n=6, gap=0.3):
    return [sp(start_id + i, cx + gap * (i % 3), cy + gap * (i // 3)) for i in range(n)]


class TestFacade:
    def test_len_tracks_window(self):
        disc = DISC(eps=1.0, tau=3)
        disc.advance(blob(0, 0, 0), ())
        assert len(disc) == 6
        disc.advance((), blob(0, 0, 0)[:2])
        assert len(disc) == 4

    def test_snapshot_and_labels_agree(self):
        disc = DISC(eps=1.0, tau=3)
        disc.advance(blob(0, 0, 0), ())
        snapshot = disc.snapshot()
        labels = disc.labels()
        for pid, cid in labels.items():
            assert snapshot.label_of(pid) == cid

    def test_repr(self):
        disc = DISC(eps=1.0, tau=3, multi_starter=False)
        assert "msbfs=False" in repr(disc)
        assert "eps=1.0" in repr(disc)

    def test_custom_index_factory(self):
        disc = DISC(eps=1.0, tau=3, index_factory=LinearScanIndex)
        disc.advance(blob(0, 0, 0), ())
        assert isinstance(disc.index, LinearScanIndex)
        assert disc.snapshot().num_clusters == 1

    def test_stats_exposed(self):
        disc = DISC(eps=1.0, tau=3)
        disc.advance(blob(0, 0, 0), ())
        assert disc.stats.range_searches > 0

    def test_invalid_params_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            DISC(eps=-1.0, tau=3)

    def test_empty_advance_is_noop(self):
        disc = DISC(eps=1.0, tau=3)
        disc.advance(blob(0, 0, 0), ())
        before = disc.labels()
        summary = disc.advance((), ())
        assert summary.events == []
        assert disc.labels() == before

    def test_delete_unknown_rejected(self):
        disc = DISC(eps=1.0, tau=3)
        with pytest.raises(StreamOrderError):
            disc.advance((), [sp(5, 0, 0)])

    def test_insert_duplicate_rejected(self):
        disc = DISC(eps=1.0, tau=3)
        disc.advance([sp(1, 0, 0)], ())
        with pytest.raises(StreamOrderError):
            disc.advance([sp(1, 2, 2)], ())

    def test_reinsert_after_delete_allowed(self):
        disc = DISC(eps=1.0, tau=3)
        disc.advance([sp(1, 0, 0)], ())
        disc.advance((), [sp(1, 0, 0)])
        disc.advance([sp(1, 2, 2)], ())
        assert len(disc) == 1

    def test_tau_one_all_points_are_singleton_cores(self):
        disc = DISC(eps=0.1, tau=1)
        disc.advance([sp(1, 0, 0), sp(2, 5, 5)], ())
        snapshot = disc.snapshot()
        assert snapshot.num_clusters == 2
        assert snapshot.count(Category.NOISE) == 0

    def test_high_dim_points(self):
        disc = DISC(eps=1.0, tau=2)
        pts = [
            StreamPoint(i, (0.1 * i, 0.0, 0.0, 0.0), float(i)) for i in range(5)
        ]
        disc.advance(pts, ())
        assert disc.snapshot().num_clusters == 1


class TestWindowState:
    def test_category_of(self):
        state = WindowState(ClusteringParams(1.0, 3))
        rec = PointRecord(1, (0.0, 0.0))
        rec.n_eps = 3
        assert state.category_of(rec) is Category.CORE
        rec.n_eps = 2
        rec.c_core = 1
        assert state.category_of(rec) is Category.BORDER
        rec.c_core = 0
        assert state.category_of(rec) is Category.NOISE
        rec.deleted = True
        assert state.category_of(rec) is Category.DELETED

    def test_get_unknown_raises(self):
        state = WindowState(ClusteringParams(1.0, 3))
        with pytest.raises(StreamOrderError):
            state.get(9)

    def test_live_records_skip_deleted(self):
        state = WindowState(ClusteringParams(1.0, 3))
        alive = PointRecord(1, (0.0, 0.0))
        gone = PointRecord(2, (1.0, 1.0))
        gone.deleted = True
        state.records = {1: alive, 2: gone}
        assert [r.pid for r in state.live_records()] == [1]


class TestBorderInvariants:
    def test_border_anchor_always_core(self):
        # Drive a few strides and check the internal anchor invariant.
        import random

        rng = random.Random(5)
        disc = DISC(eps=0.7, tau=4)
        alive = []
        next_pid = 0
        for _ in range(10):
            batch = []
            for _ in range(30):
                coords = (rng.gauss(0, 1.5), rng.gauss(0, 1.5))
                batch.append(StreamPoint(next_pid, coords, float(next_pid)))
                next_pid += 1
            out = alive[:10] if len(alive) > 60 else []
            alive = alive[len(out):] + batch
            disc.advance(batch, out)
            for rec in disc.state.live_records():
                category = disc.state.category_of(rec)
                if category is Category.BORDER:
                    anchor = disc.state.records[rec.anchor]
                    assert disc.state.is_core(anchor)
                    assert not anchor.deleted
                elif category is Category.CORE:
                    assert rec.cid is not None
