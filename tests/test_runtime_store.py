"""Unit tests for the durable checkpoint store (envelope, CRC, rotation)."""

import json

import pytest

from repro.core.checkpoint import CheckpointError
from repro.runtime import CheckpointStore, corrupt_checkpoint
from repro.runtime.store import STORE_FORMAT

PAYLOAD = {"stride": 7, "nested": {"values": [1.5, 2.25], "name": "run"}}


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path / "ck")


class TestSaveLoad:
    def test_round_trip(self, store):
        path = store.save(7, PAYLOAD)
        assert path.name == "checkpoint-0000000007.json"
        stride, payload = store.load(path)
        assert stride == 7
        assert payload == PAYLOAD

    def test_latest_picks_highest_stride(self, store):
        store.save(3, {"n": 3})
        store.save(12, {"n": 12})
        store.save(7, {"n": 7})
        stride, payload = store.latest()
        assert stride == 12
        assert payload == {"n": 12}

    def test_no_temp_files_left_behind(self, store):
        store.save(1, PAYLOAD)
        leftovers = [p for p in store.directory.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_latest_with_empty_store_raises(self, store):
        with pytest.raises(CheckpointError, match="nothing to resume"):
            store.latest()

    def test_creates_directory(self, tmp_path):
        nested = tmp_path / "a" / "b" / "c"
        CheckpointStore(nested).save(0, {})
        assert nested.is_dir()

    def test_foreign_files_ignored(self, store):
        store.save(2, PAYLOAD)
        (store.directory / "notes.txt").write_text("operator scribbles")
        (store.directory / "checkpoint-junk.json").write_text("{}")
        assert len(store.checkpoints()) == 1


class TestRotation:
    def test_keeps_newest_n(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        for stride in range(1, 8):
            store.save(stride, {"n": stride})
        names = [p.name for p in store.checkpoints()]
        assert names == [
            "checkpoint-0000000005.json",
            "checkpoint-0000000006.json",
            "checkpoint-0000000007.json",
        ]

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(CheckpointError, match="keep"):
            CheckpointStore(tmp_path, keep=0)


class TestValidation:
    def test_crc_catches_payload_rot(self, store):
        path = store.save(1, PAYLOAD)
        # Rot a digit inside the payload region so the JSON stays parseable.
        raw = path.read_text()
        target = raw.index('"values": [1.5')
        flipped = raw[: target + 12] + "9" + raw[target + 13 :]
        path.write_text(flipped)
        with pytest.raises(CheckpointError, match="integrity check"):
            store.load(path)

    def test_corrupt_checkpoint_helper_is_detected(self, store):
        path = store.save(1, PAYLOAD)
        corrupt_checkpoint(path)
        with pytest.raises(CheckpointError):
            store.load(path)

    def test_truncated_file(self, store):
        path = store.save(1, PAYLOAD)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(CheckpointError, match="not valid JSON"):
            store.load(path)

    def test_unknown_format_version(self, store):
        path = store.save(1, PAYLOAD)
        envelope = json.loads(path.read_text())
        envelope["format"] = STORE_FORMAT + 1
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="unsupported store format"):
            store.load(path)

    def test_missing_envelope_fields(self, store):
        path = store.save(1, PAYLOAD)
        envelope = json.loads(path.read_text())
        del envelope["crc32"]
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="crc32"):
            store.load(path)

    def test_non_object_envelope(self, store):
        path = store.directory / "checkpoint-0000000009.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CheckpointError, match="not an object"):
            store.load(path)


class TestOrphanSweep:
    def test_stale_tmp_files_swept_on_startup(self, tmp_path):
        directory = tmp_path / "ck"
        first = CheckpointStore(directory)
        first.save(5, PAYLOAD)
        # A crash between the tmp write and the durable rename strands the
        # tmp file; no later save or rotation would ever remove it.
        (directory / "checkpoint-0000000006.json.tmp").write_text("{half a")
        (directory / "checkpoint-0000000007.json.tmp").write_text("")
        store = CheckpointStore(directory)
        assert store.swept_orphans == 2
        assert list(directory.glob("*.tmp")) == []
        # Real checkpoints are untouched: the pre-crash state still loads.
        stride, payload = store.latest()
        assert stride == 5
        assert payload == PAYLOAD

    def test_fresh_store_sweeps_nothing(self, store):
        assert store.swept_orphans == 0
