"""Property test: DISC equals DBSCAN under *every* registered index backend.

The flagship theorem test in ``test_property_based.py`` runs DISC on its
default R-tree. This file re-asserts the same end-to-end contract
(``assert_equivalent``: identical core partition, valid border anchors) with
the substrate swapped out through the registry, on random streams, windows
and thresholds — so a backend can only be registered if DISC stays exact on
it, epoch probing included (native or through the EpochAdapter).
"""

import pytest
from hypothesis import given, settings

from repro.baselines.dbscan import SlidingDBSCAN
from repro.core.disc import DISC
from repro.index import available_indexes
from repro.metrics.compare import assert_equivalent
from repro.window.sliding import SlidingWindow

from tests.test_property_based import stream_scenarios


@pytest.mark.parametrize("backend", available_indexes())
class TestEveryBackendIsExact:
    @settings(max_examples=10, deadline=None)
    @given(scenario=stream_scenarios())
    def test_disc_equals_dbscan(self, backend, scenario):
        points, spec, eps, tau = scenario
        disc = DISC(eps, tau, index=backend)
        reference = SlidingDBSCAN(eps, tau)
        window = []
        for delta_in, delta_out in SlidingWindow(spec).slides(points):
            disc.advance(delta_in, delta_out)
            reference.advance(delta_in, delta_out)
            out_ids = {p.pid for p in delta_out}
            window = [p for p in window if p.pid not in out_ids] + list(delta_in)
            coords = {p.pid: p.coords for p in window}
            assert_equivalent(
                disc.snapshot(), reference.snapshot(), coords, disc.params
            )

    @settings(max_examples=6, deadline=None)
    @given(scenario=stream_scenarios())
    def test_exact_with_probing_knobs_off(self, backend, scenario):
        """The ablation knobs change work done, never the clustering."""
        points, spec, eps, tau = scenario
        disc = DISC(
            eps, tau, index=backend, multi_starter=False, epoch_probing=False
        )
        reference = SlidingDBSCAN(eps, tau)
        window = []
        for delta_in, delta_out in SlidingWindow(spec).slides(points):
            disc.advance(delta_in, delta_out)
            reference.advance(delta_in, delta_out)
            out_ids = {p.pid for p in delta_out}
            window = [p for p in window if p.pid not in out_ids] + list(delta_in)
            coords = {p.pid: p.coords for p in window}
            assert_equivalent(
                disc.snapshot(), reference.snapshot(), coords, disc.params
            )
