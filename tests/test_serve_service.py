"""ClusterService: tenant registry, durability layout, metrics sinks."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import ServeError, SessionConfig
from repro.serve.service import ClusterService

from .conftest import clustered_stream

CONFIG = SessionConfig(eps=0.8, tau=4, window=120, stride=30, checkpoint_every=2)


def run(coro):
    return asyncio.run(coro)


class TestRegistry:
    def test_open_get_close(self, tmp_path):
        async def scenario():
            service = ClusterService(data_dir=tmp_path)
            session = service.open("alpha", CONFIG)
            assert service.get("alpha") is session
            await service.close("alpha")
            with pytest.raises(ServeError) as err:
                service.get("alpha")
            assert err.value.code == "no-such-session"

        run(scenario())

    def test_reopen_same_config_is_idempotent(self, tmp_path):
        async def scenario():
            service = ClusterService(data_dir=tmp_path)
            first = service.open("alpha", CONFIG)
            assert service.open("alpha", CONFIG) is first  # reattach
            await service.shutdown()

        run(scenario())

    def test_reopen_conflicting_config_is_refused(self, tmp_path):
        async def scenario():
            service = ClusterService(data_dir=tmp_path)
            service.open("alpha", CONFIG)
            other = SessionConfig(eps=1.5, tau=3, window=60, stride=20)
            with pytest.raises(ServeError) as err:
                service.open("alpha", other)
            assert err.value.code == "session-exists"
            await service.shutdown()

        run(scenario())

    @pytest.mark.parametrize(
        "name", ["", ".hidden", "a/b", "a b", "-dash", "x" * 65, "é"]
    )
    def test_bad_names_are_refused(self, name, tmp_path):
        async def scenario():
            service = ClusterService(data_dir=tmp_path)
            with pytest.raises(ServeError) as err:
                service.open(name, CONFIG)
            assert err.value.code == "bad-request"

        run(scenario())

    def test_draining_service_refuses_opens(self, tmp_path):
        async def scenario():
            service = ClusterService(data_dir=tmp_path)
            service.open("alpha", CONFIG)
            await service.shutdown()
            with pytest.raises(ServeError) as err:
                service.open("beta", CONFIG)
            assert err.value.code == "draining"

        run(scenario())

    def test_stats_aggregates_across_tenants(self, tmp_path):
        async def scenario():
            service = ClusterService(data_dir=tmp_path)
            for name in ("alpha", "beta"):
                session = service.open(name, CONFIG)
                await session.offer(clustered_stream(1, 50))
            stats = service.stats()
            assert stats["sessions"] == ["alpha", "beta"]
            assert stats["received"] == 100
            assert "version" in stats
            await service.shutdown()

        run(scenario())


class TestDurability:
    def test_layout_and_metadata(self, tmp_path):
        async def scenario():
            service = ClusterService(data_dir=tmp_path)
            session = service.open("alpha", CONFIG)
            await session.offer(clustered_stream(2, 120))
            await service.shutdown(flush_tail=False)

        run(scenario())
        meta = json.loads((tmp_path / "alpha" / "session.json").read_text())
        assert SessionConfig.from_dict(meta["config"]) == CONFIG
        assert list((tmp_path / "alpha" / "ckpt").glob("checkpoint-*.json"))

    def test_resume_all_restores_every_tenant(self, tmp_path):
        points = {name: clustered_stream(i, 240) for i, name in enumerate(["a1", "a2"])}

        async def first_life():
            service = ClusterService(data_dir=tmp_path)
            for name, stream in points.items():
                session = service.open(name, CONFIG)
                await session.offer(stream)
            # Simulate a crash: drain queues so checkpoints exist, but do
            # not CLOSE (the dirs stay behind either way).
            await service.shutdown(flush_tail=False)

        async def second_life():
            service = ClusterService(data_dir=tmp_path)
            resumed = service.resume_all()
            assert resumed == ["a1", "a2"]
            offsets = {n: service.get(n).replay_offset for n in resumed}
            await service.shutdown()
            return offsets

        run(first_life())
        offsets = run(second_life())
        assert offsets == {"a1": 240, "a2": 240}

    def test_resume_all_without_data_dir_is_empty(self):
        async def scenario():
            return ClusterService().resume_all()

        assert run(scenario()) == []

    def test_ephemeral_service_writes_nothing(self, tmp_path):
        async def scenario():
            service = ClusterService()  # no data_dir
            session = service.open("alpha", CONFIG)
            await session.offer(clustered_stream(3, 120))
            report = await service.shutdown(flush_tail=False)
            assert report["alpha"]["checkpointed"] is False

        run(scenario())
        assert list(tmp_path.iterdir()) == []


class TestObservability:
    def test_metrics_and_trace_sinks_are_written(self, tmp_path):
        metrics_dir = tmp_path / "metrics"
        trace_dir = tmp_path / "trace"

        async def scenario():
            service = ClusterService(
                data_dir=tmp_path / "data",
                metrics_dir=metrics_dir,
                trace_dir=trace_dir,
            )
            session = service.open("alpha", CONFIG)
            await session.offer(clustered_stream(4, 120))
            stats = await asyncio.to_thread(session.stats)
            assert "trace" not in stats or True  # stats() works with a tracer
            await service.shutdown()

        run(scenario())
        prom = (metrics_dir / "alpha.prom").read_text()
        assert "disc_build_info" in prom
        trace_lines = (trace_dir / "alpha.jsonl").read_text().splitlines()
        assert len(trace_lines) == 4  # one record per stride (120/30)
        assert all(json.loads(line)["stride"] >= 0 for line in trace_lines)
