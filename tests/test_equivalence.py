"""The paper's central claim, end to end: DISC == DBSCAN, always.

Randomized sliding-window streams are replayed into DISC (in every
optimization configuration), IncDBSCAN and EXTRA-N; after every single
stride all four must be equivalent to from-scratch DBSCAN under the
contract of DESIGN.md §3.4.
"""

import pytest

from repro.baselines.dbscan import SlidingDBSCAN
from repro.baselines.extran import ExtraN
from repro.baselines.incdbscan import IncrementalDBSCAN
from repro.common.config import WindowSpec
from repro.core.disc import DISC
from repro.metrics.compare import assert_equivalent
from tests.conftest import clustered_stream, run_windowed


def check_stream(methods, reference, points, spec):
    def checker(window):
        coords = {p.pid: p.coords for p in window}
        ref_snapshot = reference.snapshot()
        for method in methods:
            assert_equivalent(
                method.snapshot(), ref_snapshot, coords, reference.params
            )

    run_windowed(list(methods) + [reference], points, spec, checker)


class TestDiscEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_streams(self, seed):
        spec = WindowSpec(window=120, stride=30)
        points = clustered_stream(seed, 420)
        check_stream(
            [DISC(0.7, 4)], SlidingDBSCAN(0.7, 4), points, spec
        )

    @pytest.mark.parametrize(
        "multi_starter,epoch", [(True, False), (False, True), (False, False)]
    )
    def test_ablation_configs_stay_exact(self, multi_starter, epoch):
        spec = WindowSpec(window=100, stride=20)
        points = clustered_stream(42, 300)
        disc = DISC(0.7, 4, multi_starter=multi_starter, epoch_probing=epoch)
        check_stream([disc], SlidingDBSCAN(0.7, 4), points, spec)

    @pytest.mark.parametrize("stride", [10, 25, 50, 100])
    def test_stride_sizes(self, stride):
        spec = WindowSpec(window=100, stride=stride)
        points = clustered_stream(7, 350)
        check_stream([DISC(0.7, 4)], SlidingDBSCAN(0.7, 4), points, spec)

    @pytest.mark.parametrize("eps,tau", [(0.4, 2), (0.9, 6), (1.5, 10)])
    def test_threshold_combinations(self, eps, tau):
        spec = WindowSpec(window=120, stride=40)
        points = clustered_stream(11, 360)
        check_stream([DISC(eps, tau)], SlidingDBSCAN(eps, tau), points, spec)

    def test_three_dimensional(self):
        spec = WindowSpec(window=100, stride=25)
        points = clustered_stream(3, 300, dim=3)
        check_stream([DISC(0.9, 4)], SlidingDBSCAN(0.9, 4), points, spec)

    def test_pure_noise(self):
        spec = WindowSpec(window=80, stride=20)
        points = clustered_stream(5, 240, noise_fraction=1.0)
        check_stream([DISC(0.3, 5)], SlidingDBSCAN(0.3, 5), points, spec)

    def test_single_dense_blob(self):
        spec = WindowSpec(window=80, stride=20)
        points = clustered_stream(
            6, 240, centers=((0.0, 0.0),), noise_fraction=0.0
        )
        check_stream([DISC(0.7, 4)], SlidingDBSCAN(0.7, 4), points, spec)


class TestIncDBSCANEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_streams(self, seed):
        spec = WindowSpec(window=100, stride=25)
        points = clustered_stream(seed + 50, 300)
        check_stream(
            [IncrementalDBSCAN(0.7, 4)], SlidingDBSCAN(0.7, 4), points, spec
        )

    def test_matches_disc_events_free(self):
        # IncDBSCAN and DISC share the exactness contract on the same stream.
        spec = WindowSpec(window=100, stride=25)
        points = clustered_stream(99, 300)
        check_stream(
            [IncrementalDBSCAN(0.7, 4), DISC(0.7, 4)],
            SlidingDBSCAN(0.7, 4),
            points,
            spec,
        )


class TestExtraNEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_streams(self, seed):
        spec = WindowSpec(window=100, stride=25)
        points = clustered_stream(seed + 80, 300)
        check_stream(
            [ExtraN(0.7, 4, spec)], SlidingDBSCAN(0.7, 4), points, spec
        )

    def test_small_stride(self):
        spec = WindowSpec(window=60, stride=5)
        points = clustered_stream(81, 180)
        check_stream(
            [ExtraN(0.7, 4, spec)], SlidingDBSCAN(0.7, 4), points, spec
        )
