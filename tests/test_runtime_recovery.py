"""The recovery contract: kill anywhere, resume, get identical results.

These tests prove the property the runtime package exists for — a
supervised run killed at *any* stride boundary and resumed from its store
produces a final snapshot byte-identical (via the sorted-keys JSON
serialization) to an uninterrupted run, on every registered index backend.
"""

import logging

import pytest

from repro.common.config import WindowSpec
from repro.common.errors import IndexError_
from repro.common.serialize import dumps
from repro.core.checkpoint import CheckpointError
from repro.core.checkpoint import dumps as disc_dumps
from repro.core.checkpoint import loads as disc_loads
from repro.core.disc import DISC
from repro.index.epochs import with_epochs
from repro.index.registry import available_indexes, make_index
from repro.metrics.compare import assert_equivalent
from repro.runtime import (
    ChaosKill,
    ChaosMonkey,
    CheckpointStore,
    FlakyIndex,
    RuntimeStats,
    Supervisor,
    check_state,
    corrupt_checkpoint,
)
from repro.runtime.chaos import RuntimeHooks
from repro.window.sliding import materialize_slides
from tests.conftest import clustered_stream

EPS, TAU = 0.7, 4
SPEC = WindowSpec(window=100, stride=40)


def shifted_stream(seed, n):
    """A second, differently-shaped dataset: tighter blobs, more noise."""
    return clustered_stream(
        seed,
        n,
        centers=((0.0, 0.0), (4.0, 4.0)),
        spread=0.35,
        noise_fraction=0.35,
    )


DATASETS = {
    "blobs4": lambda: clustered_stream(11, 260),
    "blobs2-noisy": lambda: shifted_stream(12, 260),
}


def run_to_end(supervisor, points, resume=False):
    last = None
    for snapshot, _ in supervisor.run(points, resume=resume):
        last = snapshot
    return last


@pytest.mark.chaos
@pytest.mark.parametrize("index", available_indexes())
@pytest.mark.parametrize("dataset", sorted(DATASETS))
class TestKillAnywhereResumeIdentical:
    def test_every_stride_boundary(self, tmp_path, index, dataset):
        points = DATASETS[dataset]()
        reference = run_to_end(Supervisor(EPS, TAU, SPEC, index=index), points)
        assert reference is not None
        expected = dumps(reference)
        n_strides = sum(1 for _ in Supervisor(EPS, TAU, SPEC, index=index).run(points))

        for kill_at in range(n_strides):
            store_dir = tmp_path / f"{index}-{kill_at}"
            killed = Supervisor(
                EPS,
                TAU,
                SPEC,
                store=str(store_dir),
                checkpoint_every=1,
                index=index,
                hooks=ChaosMonkey(kill_before_stride=kill_at),
            )
            with pytest.raises(ChaosKill):
                run_to_end(killed, points)

            resumed = Supervisor(
                EPS, TAU, SPEC, store=str(store_dir), checkpoint_every=1, index=index
            )
            final = run_to_end(resumed, points, resume="auto")
            assert dumps(final) == expected, (
                f"kill at stride {kill_at} on {index}/{dataset} diverged"
            )
            if kill_at > 0:
                assert resumed.stats.resumes == 1
                assert resumed.stats.resumed_at_stride == kill_at


@pytest.mark.chaos
class TestChaosVariants:
    def test_kill_after_checkpoint_is_recoverable(self, tmp_path):
        """The worst case: state persisted, progress lost right after."""
        points = clustered_stream(13, 220)
        expected = dumps(run_to_end(Supervisor(EPS, TAU, SPEC), points))

        store_dir = str(tmp_path / "ck")
        killed = Supervisor(
            EPS,
            TAU,
            SPEC,
            store=store_dir,
            checkpoint_every=2,
            hooks=ChaosMonkey(kill_after_checkpoint=2),
        )
        with pytest.raises(ChaosKill):
            run_to_end(killed, points)

        resumed = Supervisor(EPS, TAU, SPEC, store=store_dir, checkpoint_every=2)
        assert dumps(run_to_end(resumed, points, resume=True)) == expected

    def test_repeated_kills_then_final_resume(self, tmp_path):
        """Crash-loop drill: die at stride 1, 2, 3, ... then finish clean."""
        points = clustered_stream(14, 200)
        expected = dumps(run_to_end(Supervisor(EPS, TAU, SPEC), points))
        store_dir = str(tmp_path / "ck")
        for kill_at in (1, 2, 3, 4):
            supervisor = Supervisor(
                EPS,
                TAU,
                SPEC,
                store=store_dir,
                checkpoint_every=1,
                hooks=ChaosMonkey(kill_before_stride=kill_at),
            )
            with pytest.raises(ChaosKill):
                run_to_end(supervisor, points, resume="auto")
        survivor = Supervisor(EPS, TAU, SPEC, store=store_dir, checkpoint_every=1)
        assert dumps(run_to_end(survivor, points, resume=True)) == expected

    def test_resume_true_requires_a_checkpoint(self, tmp_path):
        supervisor = Supervisor(EPS, TAU, SPEC, store=str(tmp_path / "empty"))
        with pytest.raises(CheckpointError, match="nothing to resume"):
            run_to_end(supervisor, clustered_stream(15, 50), resume=True)

    def test_resume_auto_starts_fresh_without_checkpoint(self, tmp_path):
        points = clustered_stream(15, 120)
        expected = dumps(run_to_end(Supervisor(EPS, TAU, SPEC), points))
        supervisor = Supervisor(EPS, TAU, SPEC, store=str(tmp_path / "empty"))
        assert dumps(run_to_end(supervisor, points, resume="auto")) == expected
        assert supervisor.stats.resumes == 0


@pytest.mark.chaos
class TestCorruptedCheckpoints:
    def _store_with_checkpoints(self, tmp_path, points):
        store_dir = str(tmp_path / "ck")
        supervisor = Supervisor(
            EPS,
            TAU,
            SPEC,
            store=store_dir,
            checkpoint_every=1,
            hooks=ChaosMonkey(kill_before_stride=3),
        )
        with pytest.raises(ChaosKill):
            run_to_end(supervisor, points)
        return CheckpointStore(store_dir)

    def test_corrupted_latest_is_reported_not_restored(self, tmp_path):
        points = clustered_stream(16, 200)
        store = self._store_with_checkpoints(tmp_path, points)
        # Offset 10 is the first digit of the envelope's recorded crc32
        # (sorted keys put it first): the JSON stays parseable, the CRC
        # check must be what catches the rot.
        corrupt_checkpoint(store.checkpoints()[-1], offset=10)
        supervisor = Supervisor(EPS, TAU, SPEC, store=store)
        with pytest.raises(CheckpointError, match="integrity check"):
            run_to_end(supervisor, points, resume=True)

    def test_torn_write_is_reported_too(self, tmp_path):
        points = clustered_stream(16, 200)
        store = self._store_with_checkpoints(tmp_path, points)
        corrupt_checkpoint(store.checkpoints()[-1])  # structural byte
        supervisor = Supervisor(EPS, TAU, SPEC, store=store)
        with pytest.raises(CheckpointError):
            run_to_end(supervisor, points, resume=True)

    def test_operator_deletes_bad_checkpoint_then_resumes(self, tmp_path):
        """The documented remediation: remove the bad file, resume older."""
        points = clustered_stream(17, 200)
        expected = dumps(run_to_end(Supervisor(EPS, TAU, SPEC), points))
        store = self._store_with_checkpoints(tmp_path, points)
        bad = store.checkpoints()[-1]
        corrupt_checkpoint(bad)
        bad.unlink()
        supervisor = Supervisor(EPS, TAU, SPEC, store=store, checkpoint_every=1)
        assert dumps(run_to_end(supervisor, points, resume=True)) == expected


@pytest.mark.chaos
class TestFlakyIndex:
    def test_queries_fail_after_fuse(self):
        # The batched query layer serves a whole phase per invocation, so a
        # single advance only issues a couple of fused calls.
        flaky = FlakyIndex(make_index("grid", eps=EPS), fail_after=1)
        disc = DISC(EPS, TAU, index=flaky)
        with pytest.raises(IndexError_, match="chaos: index query"):
            disc.advance(clustered_stream(18, 150), ())
        assert flaky.queries == 2

    def test_recovery_from_index_failure_via_checkpoint(self):
        """Die mid-stride on a failing index, restore, finish identically."""
        points = clustered_stream(19, 200)
        slides = materialize_slides(points, SPEC)

        reference = DISC(EPS, TAU)
        for delta_in, delta_out in slides:
            reference.advance(delta_in, delta_out)

        disc = DISC(EPS, TAU)
        saved = disc_dumps(disc)
        crashed_at = None
        for i, (delta_in, delta_out) in enumerate(slides):
            if i == 2:
                # Substrate starts failing: queries die mid-stride. The
                # flaky wrapper is epoch-less, so re-wrap for probing.
                disc.index = with_epochs(FlakyIndex(disc.index, fail_after=3))
                try:
                    disc.advance(delta_in, delta_out)
                except IndexError_:
                    crashed_at = i
                    break
            disc.advance(delta_in, delta_out)
            saved = disc_dumps(disc)
        assert crashed_at == 2

        healthy = disc_loads(saved)  # last good checkpoint, healthy backend
        for delta_in, delta_out in slides[crashed_at:]:
            healthy.advance(delta_in, delta_out)
        assert healthy.labels() == reference.labels()


class _CorruptAt(RuntimeHooks):
    """Flip one cached neighbour count right before a chosen stride."""

    def __init__(self, supervisor_ref, stride):
        self.supervisor_ref = supervisor_ref
        self.stride = stride

    def before_stride(self, stride):
        if stride != self.stride:
            return
        disc = self.supervisor_ref[0].clusterer
        # Newest record that stays non-core even after the drift: it will
        # not expire this stride, and the nudge cannot flip its category
        # mid-advance — only the cached count goes stale.
        victims = [
            rec
            for rec in disc.state.records.values()
            if not rec.deleted and rec.n_eps < disc.params.tau - 1
        ]
        victim = max(victims, key=lambda rec: rec.pid)
        victim.n_eps += 1  # silent corruption: cached count drifts


class TestInvariantChecker:
    def test_clean_run_has_no_violations(self):
        disc = DISC(EPS, TAU)
        disc.advance(clustered_stream(20, 150), ())
        assert check_state(disc) == []

    def test_detects_neps_drift(self):
        disc = DISC(EPS, TAU)
        disc.advance(clustered_stream(20, 100), ())
        rec = next(r for r in disc.state.records.values() if not r.deleted)
        rec.n_eps += 3
        violations = check_state(disc)
        assert any("n_eps mismatch" in v for v in violations)

    def test_detects_dangling_anchor(self):
        disc = DISC(EPS, TAU)
        disc.advance(clustered_stream(21, 150), ())
        border = next(
            (
                r
                for r in disc.state.records.values()
                if not r.deleted and not disc.state.is_core(r) and r.c_core > 0
            ),
            None,
        )
        assert border is not None, "stream should produce at least one border"
        border.anchor = 10**9
        violations = check_state(disc)
        assert any("absent point" in v for v in violations)

    def test_supervisor_heals_by_rebuilding(self, caplog):
        points = clustered_stream(22, 220)
        reference = run_to_end(Supervisor(EPS, TAU, SPEC), points)

        holder = []
        stats = RuntimeStats()
        supervisor = Supervisor(
            EPS,
            TAU,
            SPEC,
            stats=stats,
            hooks=_CorruptAt(holder, stride=2),
            check_invariants=True,
        )
        holder.append(supervisor)
        with caplog.at_level(logging.WARNING, logger="repro.runtime"):
            final = run_to_end(supervisor, points)
        assert stats.invariant_failures == 1
        assert stats.rebuilds == 1
        assert any("invariant" in r.message for r in caplog.records)
        # Healed state is clean and clustering-equivalent to the reference
        # (cluster ids are re-minted by the rebuild, so compare structure).
        assert check_state(supervisor.clusterer) == []
        coords = {
            rec.pid: rec.coords
            for rec in supervisor.clusterer.state.records.values()
            if not rec.deleted
        }
        assert_equivalent(final, reference, coords, supervisor.clusterer.params)
