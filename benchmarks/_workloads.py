"""Shared workload construction for the figure benches.

Sizes are the paper's setup scaled to pure Python (DESIGN.md §5); set the
environment variable ``REPRO_BENCH_SCALE`` (e.g. ``0.5``) to shrink or grow
every window proportionally.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.common.config import WindowSpec
from repro.datasets.maze import maze_stream
from repro.datasets.registry import DATASETS

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

# The four real-dataset simulators of the baseline evaluation, in the
# paper's order.
DATASET_KEYS = ("dtg", "geolife", "covid", "iris")

# Paper Figure 4 x-axis: stride as a fraction of the window.
STRIDE_RATIOS = (0.001, 0.01, 0.05, 0.10, 0.25)


def scaled(n: int) -> int:
    """Apply the global bench scale, keeping values sane."""
    return max(40, int(n * SCALE))


def spec_for(window: int, ratio: float) -> WindowSpec:
    """Window spec at a stride ratio, snapped so stride divides window."""
    stride = max(1, int(round(window * ratio)))
    while window % stride != 0:
        stride -= 1
    return WindowSpec(window=window, stride=stride)


@lru_cache(maxsize=None)
def dataset_stream(key: str, n_points: int, seed: int = 0):
    """Deterministic, cached stream for a registry dataset."""
    return tuple(DATASETS[key].load(n_points, seed=seed))


@lru_cache(maxsize=None)
def maze_with_truth(n_points: int, seed: int = 0):
    """Deterministic, cached Maze stream plus ground-truth labels."""
    points, truth = maze_stream(n_points, seed=seed)
    return tuple(points), truth


def stream_length(spec: WindowSpec, n_measured: int) -> int:
    """Points needed for one prefill plus the measured strides."""
    return spec.window + n_measured * spec.stride
