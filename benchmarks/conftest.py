"""Pytest configuration for the figure benches."""

import os
import sys

# Make the sibling helper module (underscore-prefixed, not collected) importable
# regardless of the rootdir pytest was invoked from.
sys.path.insert(0, os.path.dirname(__file__))
