"""Tracing overhead: a traced DISC stride vs an untraced one.

The observability layer promises *zero overhead when off* (every
instrumentation site is one ``is not None`` test) and small overhead when
on (per-stride timestamps, one ``IndexStats`` snapshot pair, counter
increments, and sink writes). This bench quantifies both sides on the same
steady-state workload and records the result as JSON
(``benchmarks/results/BENCH_observability.json``) so CI can archive the
numbers next to the trace artifacts.

No hard latency assertion gates the overhead percentage — shared CI
runners jitter far more than the effect being measured; the JSON is the
durable record. Correctness (identical labels traced vs untraced) *is*
asserted.
"""

import json
import os
import time

from _workloads import dataset_stream, scaled, spec_for, stream_length

from repro.bench.harness import prefill, steady_slides
from repro.bench.reporting import RESULTS_DIR, write_result
from repro.core.disc import DISC
from repro.datasets.registry import DATASETS
from repro.observability import (
    JsonlTraceWriter,
    PrometheusTextfileExporter,
    Tracer,
    percentile,
)

N_MEASURED = 16


def _measure(traced: bool, tmp_dir: str):
    info = DATASETS["maze"]
    spec = spec_for(scaled(info.window), 0.05)
    points = list(dataset_stream("maze", stream_length(spec, N_MEASURED)))
    window_points, slides = steady_slides(points, spec, N_MEASURED)

    tracer = None
    if traced:
        tracer = Tracer(
            JsonlTraceWriter(os.path.join(tmp_dir, "trace.jsonl")),
            PrometheusTextfileExporter(os.path.join(tmp_dir, "disc.prom")),
        )
    disc = DISC(info.eps, info.tau, tracer=tracer)
    prefill(disc, window_points, spec)
    elapsed = []
    for delta_in, delta_out in slides:
        start = time.perf_counter()
        disc.advance(delta_in, delta_out)
        elapsed.append(time.perf_counter() - start)
    if tracer is not None:
        tracer.close()
    return {
        "mean_ms": sum(elapsed) / len(elapsed) * 1000,
        "p50_ms": percentile(elapsed, 50) * 1000,
        "p95_ms": percentile(elapsed, 95) * 1000,
        "labels": disc.snapshot().labels,
    }


def run_observability_overhead(tmp_dir: str):
    off = _measure(False, tmp_dir)
    on = _measure(True, tmp_dir)
    # Tracing must never change the clustering.
    assert on.pop("labels") == off.pop("labels")
    overhead_pct = (
        (on["mean_ms"] - off["mean_ms"]) / off["mean_ms"] * 100
        if off["mean_ms"] > 0
        else 0.0
    )
    payload = {
        "workload": "maze @ 5% stride",
        "n_measured": N_MEASURED,
        "untraced": off,
        "traced_jsonl_plus_prometheus": on,
        "overhead_pct": round(overhead_pct, 2),
    }
    path = os.path.join(os.path.abspath(RESULTS_DIR), "BENCH_observability.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload, path


def test_observability_overhead(benchmark, tmp_path):
    payload, path = benchmark.pedantic(
        run_observability_overhead, args=(str(tmp_path),), rounds=1, iterations=1
    )
    lines = [
        "Tracing overhead (maze @ 5% stride, JSONL + Prometheus sinks):",
        f"  untraced: mean {payload['untraced']['mean_ms']:.3f} ms/stride "
        f"(p95 {payload['untraced']['p95_ms']:.3f})",
        "  traced:   mean "
        f"{payload['traced_jsonl_plus_prometheus']['mean_ms']:.3f} ms/stride "
        f"(p95 {payload['traced_jsonl_plus_prometheus']['p95_ms']:.3f})",
        f"  overhead: {payload['overhead_pct']:+.1f}%",
        f"[json written to {path}]",
    ]
    write_result("observability_overhead", "\n".join(lines))


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        payload, path = run_observability_overhead(tmp)
    print(json.dumps(payload, indent=2))
    print(f"written to {path}")
