"""Figure 4 — relative speedup over DBSCAN with a varying size of stride.

For each dataset simulator and each stride-to-window ratio, the bench
measures steady-state per-stride latency of DISC, IncDBSCAN and EXTRA-N and
reports it as a speedup over from-scratch DBSCAN (whose per-stride cost is
stride-independent and therefore measured once per dataset).

Paper shape being reproduced: incremental methods beat DBSCAN for small
strides and the advantage grows as the stride shrinks; DISC is the best
exact method for strides <= 10% of the window; at a 25% stride incremental
maintenance no longer clearly pays.
"""

from _workloads import (
    DATASET_KEYS,
    STRIDE_RATIOS,
    dataset_stream,
    scaled,
    spec_for,
    stream_length,
)

from repro.baselines import ExtraN, IncrementalDBSCAN, SlidingDBSCAN
from repro.bench.harness import default_measured_strides, measure_method
from repro.bench.reporting import Table, write_result
from repro.core.disc import DISC
from repro.datasets.registry import DATASETS


def run_figure4():
    table = Table(
        "Figure 4: speedup over DBSCAN vs stride ratio (per-stride latency)",
        ["Dataset", "stride", "DBSCAN ms", "DISC x", "IncDBSCAN x", "EXTRA-N x"],
    )
    shape = {}
    for key in DATASET_KEYS:
        info = DATASETS[key]
        window = scaled(info.window)
        base_spec = spec_for(window, 0.05)
        points = list(
            dataset_stream(
                key, stream_length(base_spec, 60) + window
            )
        )
        dbscan = measure_method(
            SlidingDBSCAN(info.eps, info.tau), points, base_spec, n_measured=3
        )
        base_ms = dbscan["mean_stride_s"] * 1000
        shape[key] = {}
        for ratio in STRIDE_RATIOS:
            spec = spec_for(window, ratio)
            n_measured = default_measured_strides(spec)
            speedups = {}
            for name, method in (
                ("DISC", DISC(info.eps, info.tau)),
                ("IncDBSCAN", IncrementalDBSCAN(info.eps, info.tau)),
                ("EXTRA-N", ExtraN(info.eps, info.tau, spec)),
            ):
                result = measure_method(method, points, spec, n_measured)
                speedups[name] = dbscan["mean_stride_s"] / result["mean_stride_s"]
            table.add(
                info.name,
                f"{spec.stride} ({spec.stride_ratio:.1%})",
                f"{base_ms:.1f}",
                *(f"{speedups[n]:.2f}" for n in ("DISC", "IncDBSCAN", "EXTRA-N")),
            )
            shape[key][ratio] = speedups
    return table, shape


def test_fig4_stride_speedup(benchmark):
    table, shape = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    lines = [table.to_text(), ""]
    for key, by_ratio in shape.items():
        small = by_ratio[min(by_ratio)]
        lines.append(
            f"paper-shape {key}: at the smallest stride DISC speedup "
            f"{small['DISC']:.2f}x vs IncDBSCAN {small['IncDBSCAN']:.2f}x"
        )
    write_result("fig4_stride_speedup", "\n".join(lines))
    for key, by_ratio in shape.items():
        for ratio, speedups in by_ratio.items():
            if ratio <= 0.05:
                assert speedups["DISC"] > 1.0, (
                    f"{key}@{ratio}: DISC did not beat DBSCAN "
                    f"({speedups['DISC']:.2f}x)"
                )
        # DISC is at least competitive with IncDBSCAN at small strides, and
        # its speedup over DBSCAN grows as the stride shrinks.
        assert (
            by_ratio[0.001]["DISC"] >= by_ratio[0.25]["DISC"]
        ), f"{key}: DISC speedup did not grow as the stride shrank"
        assert by_ratio[0.05]["DISC"] >= 0.85 * by_ratio[0.05]["IncDBSCAN"], (
            f"{key}@5%: DISC clearly lost to IncDBSCAN"
        )
