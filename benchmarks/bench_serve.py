"""Serving throughput and query latency under multi-tenant load.

Boots the real asyncio serve stack (ClusterService + TCP server) in one
process, then drives it with ``repro.serve.loadgen``: 4 concurrent tenants,
each with its own connection and deterministic dataset stream, interleaving
INGEST frames with pid- and coords-queries. The aggregate — ingest
points/sec plus query p50/p95 — lands in
``benchmarks/results/BENCH_serve.json`` so CI can archive serving capacity
next to the kernel benchmarks.

No latency assertion gates the numbers (shared runners jitter); what *is*
asserted is the subsystem's core promise: every tenant's final served
snapshot is byte-identical to an offline ``api.cluster_stream`` run over
the same stream.
"""

import asyncio
import json
import os

from repro.api import cluster_stream
from repro.common.config import WindowSpec
from repro.bench.reporting import RESULTS_DIR, write_result
from repro.datasets.registry import DATASETS
from repro.serve.client import ServeClient
from repro.serve.config import SessionConfig
from repro.serve.loadgen import run_loadgen, tenant_stream
from repro.serve.server import run_server
from repro.serve.service import ClusterService

N_TENANTS = 4
POINTS_PER_TENANT = 2000
DATASET = "maze"
BATCH = 50


def serve_config() -> SessionConfig:
    info = DATASETS[DATASET]
    return SessionConfig(
        eps=info.eps,
        tau=info.tau,
        window=info.window,
        stride=max(1, info.window // 10),
        backpressure="block",
    )


async def _bench() -> dict:
    """One event loop hosting both the server and the load generator."""
    service = ClusterService()
    ready, stop = asyncio.Event(), asyncio.Event()
    server = asyncio.create_task(
        run_server(service, "127.0.0.1", 0, ready=ready, stop=stop)
    )
    await asyncio.wait_for(ready.wait(), timeout=10)
    config = serve_config()
    try:
        report = await run_loadgen(
            "127.0.0.1",
            service.port,
            tenants=N_TENANTS,
            points_per_tenant=POINTS_PER_TENANT,
            dataset=DATASET,
            config=config,
            batch=BATCH,
            query_every=1,
            flush_tail=True,
        )
        # Correctness gate: each tenant's served snapshot == offline run.
        spec = WindowSpec(window=config.window, stride=config.stride)
        async with await ServeClient.connect("127.0.0.1", service.port) as client:
            for i in range(N_TENANTS):
                points = tenant_stream(DATASET, POINTS_PER_TENANT, i, 0)
                served = await client.snapshot(f"tenant-{i}")
                last = None
                for snapshot, _ in cluster_stream(
                    points, spec, eps=config.eps, tau=config.tau
                ):
                    last = snapshot
                expected = {str(pid): cid for pid, cid in last.labels.items()}
                assert served["labels"] == expected, (
                    f"tenant-{i}: served labels diverged from offline"
                )
    finally:
        stop.set()
        await asyncio.wait_for(server, timeout=30)
    return report


def run_serve_bench() -> tuple[dict, str]:
    report = asyncio.run(_bench())
    report.pop("tenants_detail", None)
    payload = {
        "workload": f"{DATASET} x {N_TENANTS} tenants, "
        f"{POINTS_PER_TENANT} points each, batch {BATCH}",
        "offline_equivalence": "verified",
        **report,
    }
    path = os.path.join(os.path.abspath(RESULTS_DIR), "BENCH_serve.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload, path


def test_serve_throughput(benchmark):
    payload, path = benchmark.pedantic(run_serve_bench, rounds=1, iterations=1)
    lines = [
        f"Serving ({payload['workload']}):",
        f"  ingest: {payload['accepted_total']} points in "
        f"{payload['wall_seconds']:.2f}s "
        f"({payload['ingest_points_per_s']:.0f} points/s aggregate)",
        f"  queries: {payload['queries_total']} "
        f"(p50 {payload['query_p50_ms']:.2f} ms, "
        f"p95 {payload['query_p95_ms']:.2f} ms)",
        "  offline equivalence: verified for every tenant",
        f"[json written to {path}]",
    ]
    write_result("serve_throughput", "\n".join(lines))


if __name__ == "__main__":
    payload, path = run_serve_bench()
    print(json.dumps(payload, indent=2))
    print(f"written to {path}")
