"""Serving throughput and query latency under multi-tenant load.

Boots the real asyncio serve stack in one process, then drives it with
``repro.serve.loadgen``: 4 concurrent tenants, each with its own connection
and deterministic dataset stream, interleaving INGEST frames with pid- and
coords-queries. The aggregate — ingest points/sec plus query p50/p95 —
lands in ``benchmarks/results/BENCH_serve.json`` so CI can archive serving
capacity next to the kernel benchmarks.

The sharded variant measures the *aggregate-throughput scaling curve* of
``--shards N``: the same workload against 0 (single-process), 1, 2 and 4
worker processes, recorded with the host's CPU count in
``benchmarks/results/BENCH_shard.json``. On a single-core runner the curve
is flat by construction (there is nothing to scale onto); the acceptance
target — >= 2.5x aggregate ingest at 4 shards over ``--shards 0`` with 4+
tenants — applies to 4-core runners (the CI ``shard-smoke`` job).

No latency assertion gates the numbers (shared runners jitter); what *is*
asserted is the subsystem's core promise: every tenant's final served
snapshot is byte-identical to an offline ``api.cluster_stream`` run over
the same stream — sharded or not.
"""

import argparse
import asyncio
import json
import os

import pytest

from repro.api import cluster_stream
from repro.common.config import WindowSpec
from repro.bench.reporting import RESULTS_DIR, write_result
from repro.datasets.registry import DATASETS
from repro.serve.client import ServeClient
from repro.serve.config import SessionConfig
from repro.serve.loadgen import run_loadgen, tenant_stream
from repro.serve.router import run_router
from repro.serve.server import run_server
from repro.serve.service import ClusterService
from repro.serve.shard import ShardedClusterService

N_TENANTS = 4
POINTS_PER_TENANT = 2000
DATASET = "maze"
BATCH = 50

#: The scaling curve recorded in BENCH_shard.json (0 = single-process).
SHARD_CURVE = (0, 1, 2, 4)
#: Smaller per-tenant stream for the curve: four deployments are measured.
SHARD_POINTS = 1000


def serve_config() -> SessionConfig:
    info = DATASETS[DATASET]
    return SessionConfig(
        eps=info.eps,
        tau=info.tau,
        window=info.window,
        stride=max(1, info.window // 10),
        backpressure="block",
    )


async def _verify_offline(port: int, config: SessionConfig, tenants: int, n_points: int):
    """Correctness gate: each tenant's served snapshot == offline run."""
    spec = WindowSpec(window=config.window, stride=config.stride)
    async with await ServeClient.connect("127.0.0.1", port) as client:
        for i in range(tenants):
            points = tenant_stream(DATASET, n_points, i, 0)
            served = await client.snapshot(f"tenant-{i}")
            last = None
            for snapshot, _ in cluster_stream(
                points, spec, eps=config.eps, tau=config.tau
            ):
                last = snapshot
            expected = {str(pid): cid for pid, cid in last.labels.items()}
            assert served["labels"] == expected, (
                f"tenant-{i}: served labels diverged from offline"
            )


async def _bench_deployment(
    shards: int, *, tenants: int, points_per_tenant: int
) -> dict:
    """Measure one deployment shape (``shards=0`` = the in-process server)."""
    config = serve_config()
    ready, stop = asyncio.Event(), asyncio.Event()
    if shards == 0:
        core = ClusterService()
        task = asyncio.create_task(
            run_server(core, "127.0.0.1", 0, ready=ready, stop=stop)
        )
    else:
        core = ShardedClusterService(shards)
        task = asyncio.create_task(
            run_router(core, "127.0.0.1", 0, ready=ready, stop=stop)
        )
    await asyncio.wait_for(ready.wait(), timeout=60)
    try:
        report = await run_loadgen(
            "127.0.0.1",
            core.port,
            tenants=tenants,
            points_per_tenant=points_per_tenant,
            dataset=DATASET,
            config=config,
            batch=BATCH,
            query_every=1,
            flush_tail=True,
        )
        await _verify_offline(core.port, config, tenants, points_per_tenant)
    finally:
        stop.set()
        await asyncio.wait_for(task, timeout=60)
    return report


async def _bench() -> dict:
    """The classic single-process serving benchmark."""
    return await _bench_deployment(
        0, tenants=N_TENANTS, points_per_tenant=POINTS_PER_TENANT
    )


def run_serve_bench() -> tuple[dict, str]:
    report = asyncio.run(_bench())
    report.pop("tenants_detail", None)
    payload = {
        "workload": f"{DATASET} x {N_TENANTS} tenants, "
        f"{POINTS_PER_TENANT} points each, batch {BATCH}",
        "offline_equivalence": "verified",
        **report,
    }
    path = os.path.join(os.path.abspath(RESULTS_DIR), "BENCH_serve.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload, path


def run_shard_bench(shard_counts=SHARD_CURVE) -> tuple[dict, str]:
    """Measure the aggregate-throughput scaling curve over ``shard_counts``.

    Always includes the ``shards=0`` single-process baseline (prepended if
    missing) so every point carries a speedup ratio against it.
    """
    counts = list(dict.fromkeys([0, *shard_counts]))
    curve = []
    for shards in counts:
        report = asyncio.run(
            _bench_deployment(
                shards, tenants=N_TENANTS, points_per_tenant=SHARD_POINTS
            )
        )
        report.pop("tenants_detail", None)
        curve.append({"shards": shards, **report})
    baseline = curve[0]["ingest_points_per_s"]
    payload = {
        "workload": f"{DATASET} x {N_TENANTS} tenants, "
        f"{SHARD_POINTS} points each, batch {BATCH}",
        "cpu_count": os.cpu_count(),
        "offline_equivalence": "verified",
        "curve": curve,
        "speedup_vs_single_process": {
            str(point["shards"]): (
                point["ingest_points_per_s"] / baseline if baseline > 0 else None
            )
            for point in curve
        },
    }
    path = os.path.join(os.path.abspath(RESULTS_DIR), "BENCH_shard.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload, path


def test_serve_throughput(benchmark):
    payload, path = benchmark.pedantic(run_serve_bench, rounds=1, iterations=1)
    lines = [
        f"Serving ({payload['workload']}):",
        f"  ingest: {payload['accepted_total']} points in "
        f"{payload['wall_seconds']:.2f}s "
        f"({payload['ingest_points_per_s']:.0f} points/s aggregate)",
        f"  queries: {payload['queries_total']} "
        f"(p50 {payload['query_p50_ms']:.2f} ms, "
        f"p95 {payload['query_p95_ms']:.2f} ms)",
        "  offline equivalence: verified for every tenant",
        f"[json written to {path}]",
    ]
    write_result("serve_throughput", "\n".join(lines))


@pytest.mark.chaos
def test_shard_scaling(benchmark):
    """The scaling curve spawns worker processes — chaos-marked like the
    other process-level drills. No speedup assertion here: the 2.5x gate
    is meaningless on a 1-core runner and is enforced by the CI
    ``shard-smoke`` job on 4-core hardware instead."""
    payload, path = benchmark.pedantic(
        run_shard_bench, args=((0, 2),), rounds=1, iterations=1
    )
    lines = [f"Shard scaling ({payload['workload']}, {payload['cpu_count']} cores):"]
    for point in payload["curve"]:
        speedup = payload["speedup_vs_single_process"][str(point["shards"])]
        lines.append(
            f"  shards={point['shards']}: "
            f"{point['ingest_points_per_s']:.0f} points/s aggregate "
            f"({speedup:.2f}x vs single-process)"
        )
    lines.append(f"[json written to {path}]")
    write_result("shard_scaling", "\n".join(lines))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--shards",
        type=int,
        nargs="*",
        default=None,
        metavar="N",
        help="measure the sharded scaling curve for these shard counts "
        "(a shards=0 baseline is always included) and write "
        "BENCH_shard.json; omit for the classic single-process bench",
    )
    cli = parser.parse_args()
    if cli.shards is not None:
        payload, path = run_shard_bench(tuple(cli.shards) or SHARD_CURVE)
    else:
        payload, path = run_serve_bench()
    print(json.dumps(payload, indent=2))
    print(f"written to {path}")
