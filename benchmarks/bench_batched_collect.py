"""Microbenchmark: batched COLLECT/repair calls vs per-point loops.

COLLECT and anchor repair issue one ``insert_many`` / ``delete_many`` /
``ball_many`` call per stride instead of one Python-level index call per
point. Whether that pays depends entirely on the backend: the vectorized
grid amortises distance evaluations across centers in numpy, the R-tree can
STR-pack a prefill batch, while backends without overrides run the exact
generic loop the old per-point code ran (so for them the refactor must be a
wash).

This bench measures both arms on the same workload: the backend as
registered (batched overrides active) against the same backend behind
``LoopedView``, a forwarding wrapper that hides every ``*_many`` override so
the generic per-point fallbacks run. Epoch probing is off in both arms so
the comparison isolates the batched layer from probing-path differences.
Results land in benchmarks/results/batched_collect.txt and are discussed in
EXPERIMENTS.md.
"""

from _workloads import dataset_stream, scaled, spec_for, stream_length

from repro.bench.harness import measure_method
from repro.bench.reporting import Table, write_result
from repro.core.disc import DISC
from repro.datasets.registry import DATASETS
from repro.index.base import NeighborIndex
from repro.index.registry import available_indexes, make_index


class LoopedView(NeighborIndex):
    """Forwarding wrapper hiding a backend's batched-query overrides.

    Only the abstract primitives forward to the wrapped backend; the
    ``*_many`` methods resolve to the generic per-point fallbacks of
    :class:`NeighborIndex`, reproducing the pre-batching call pattern.
    """

    def __init__(self, inner: NeighborIndex) -> None:
        self.inner = inner
        self.radius_cap = inner.radius_cap

    @property
    def stats(self):
        return self.inner.stats

    def insert(self, pid, coords):
        self.inner.insert(pid, coords)

    def delete(self, pid):
        self.inner.delete(pid)

    def ball(self, center, radius):
        return self.inner.ball(center, radius)

    def count_ball(self, center, radius):
        return self.inner.count_ball(center, radius)

    def coords_of(self, pid):
        return self.inner.coords_of(pid)

    def items(self):
        return self.inner.items()

    def __len__(self):
        return len(self.inner)

    def __contains__(self, pid):
        return pid in self.inner


def run_batched_collect():
    backends = available_indexes()
    table = Table(
        "Microbench: per-stride latency, batched *_many vs per-point loops "
        "(5% stride, epoch probing off in both arms)",
        ["Dataset", "Backend", "batched ms", "looped ms", "speedup"],
    )
    shape = {}
    for key in ("dtg", "geolife"):
        info = DATASETS[key]
        window = scaled(info.window)
        spec = spec_for(window, 0.05)
        points = list(dataset_stream(key, stream_length(spec, 10)))
        for backend in backends:
            arms = {}
            for arm in ("batched", "looped"):
                index = make_index(backend, eps=info.eps, dim=info.dim)
                if arm == "looped":
                    index = LoopedView(index)
                method = DISC(
                    info.eps, info.tau, index=index, epoch_probing=False
                )
                result = measure_method(method, points, spec, n_measured=8)
                arms[arm] = result["mean_stride_s"] * 1000
            shape[(key, backend)] = arms
            table.add(
                info.name,
                backend,
                f"{arms['batched']:.1f}",
                f"{arms['looped']:.1f}",
                f"{arms['looped'] / arms['batched']:.2f}x",
            )
    return table, shape


def test_batched_collect(benchmark):
    table, shape = benchmark.pedantic(run_batched_collect, rounds=1, iterations=1)
    write_result("batched_collect", table.to_text())
    for (key, backend), arms in shape.items():
        # Backends without overrides run the identical generic loop in both
        # arms, so the only hard assertion everywhere is "batching never
        # costs much"; the vectorized grid is expected to actually win, but
        # wall-clock noise on shared runners makes a hard win assertion
        # flaky, so the measured ratio is recorded in the table instead.
        assert arms["batched"] < arms["looped"] * 1.35, (
            f"{key}/{backend}: batched COLLECT unexpectedly slower "
            f"({arms['batched']:.1f}ms vs {arms['looped']:.1f}ms)"
        )
