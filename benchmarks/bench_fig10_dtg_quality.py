"""Figure 10 — DTG: ARI and per-point update latency vs window size.

Ground truth is DBSCAN's clustering of the final window (exactly the paper's
protocol for the real DTG dataset). The high-resolution eps of the DTG
setting makes the summarisation methods manage many micro-clusters; the
paper's headline here is that DBSTREAM loses its latency advantage on
fine-grained clusters while DISC keeps exact quality.
"""

from _workloads import dataset_stream, scaled, spec_for, stream_length

from repro.baselines import (
    DBStream,
    EDMStream,
    RhoDoubleApproxDBSCAN,
    SlidingDBSCAN,
)
from repro.bench.harness import measure_method, window_ari
from repro.bench.reporting import Table, write_result
from repro.core.disc import DISC
from repro.datasets.registry import DATASETS

WINDOW_FACTORS = (0.25, 0.5, 1.0)
N_MEASURED = 8


def make_methods(eps, tau, window):
    # Summarisation settings tuned as in the paper's protocol: decay matched
    # to the window, slightly larger DBSTREAM micro-cluster radius.
    fade = 0.5 / window
    return (
        ("DISC", DISC(eps, tau)),
        (
            "DBSTREAM",
            DBStream(
                radius=1.5 * eps,
                dim=2,
                fade=fade,
                alpha=0.1,
                weak_threshold=0.5,
                gap=500,
            ),
        ),
        ("EDMSTREAM", EDMStream(radius=eps, dim=2, fade=fade)),
        ("rho2(0.1)", RhoDoubleApproxDBSCAN(eps, tau, dim=2, rho=0.1)),
        ("rho2(0.001)", RhoDoubleApproxDBSCAN(eps, tau, dim=2, rho=0.001)),
    )


def run_figure10():
    info = DATASETS["dtg"]
    eps, tau = info.eps, info.tau
    names = [name for name, _ in make_methods(eps, tau, scaled(info.window))]
    ari_table = Table(
        "Figure 10(a): DTG ARI vs window size (truth = DBSCAN labels)",
        ["window", *names],
    )
    lat_table = Table(
        "Figure 10(b): DTG per-point update latency vs window size (us/point)",
        ["window", *names],
    )
    shape = {}
    for factor in WINDOW_FACTORS:
        window = scaled(int(info.window * factor))
        spec = spec_for(window, 0.05)
        points = list(dataset_stream("dtg", stream_length(spec, N_MEASURED)))
        final_window = points[N_MEASURED * spec.stride :]
        window_pids = [sp.pid for sp in final_window]

        truth_method = SlidingDBSCAN(eps, tau)
        truth_method.advance(final_window, ())
        truth_snapshot = truth_method.snapshot()
        truth = {pid: truth_snapshot.label_of(pid) for pid in window_pids}

        aris = {}
        latencies = {}
        for name, method in make_methods(eps, tau, window):
            result = measure_method(method, points, spec, n_measured=N_MEASURED)
            aris[name] = window_ari(method, truth, window_pids)
            latencies[name] = result["per_point_s"] * 1e6
        shape[window] = (aris, latencies)
        ari_table.add(window, *(f"{aris[n]:.3f}" for n in names))
        lat_table.add(window, *(f"{latencies[n]:.0f}" for n in names))
    return ari_table, lat_table, shape


def test_fig10_dtg_quality(benchmark):
    ari_table, lat_table, shape = benchmark.pedantic(
        run_figure10, rounds=1, iterations=1
    )
    write_result(
        "fig10_dtg_quality",
        "\n\n".join((ari_table.to_text(), lat_table.to_text())),
    )
    for window, (aris, latencies) in shape.items():
        # DISC is exact: against DBSCAN truth its ARI must be essentially 1.
        assert aris["DISC"] >= 0.99, (
            f"window {window}: DISC not exact vs DBSCAN (ARI {aris['DISC']:.3f})"
        )
        # Summarisation methods cannot match exact fine-grained clusters.
        assert aris["DBSTREAM"] < aris["DISC"], "DBSTREAM matched exact labels"
        assert aris["EDMSTREAM"] < aris["DISC"], "EDMSTREAM matched exact labels"
    largest = max(shape)
    aris, latencies = shape[largest]
    # High-accuracy rho2 keeps ARI comparable to DISC but pays a large
    # latency premium over the summarisation methods (the paper's "much
    # slower than all the other methods"; DISC itself carries R-tree
    # constants on this scaled-down substrate — see EXPERIMENTS.md).
    assert aris["rho2(0.001)"] >= 0.9, "high-accuracy rho2 quality collapsed"
    assert latencies["rho2(0.001)"] > 3.0 * latencies["DBSTREAM"], (
        "rho2 lost its latency premium over DBSTREAM"
    )
    assert latencies["rho2(0.001)"] > 3.0 * latencies["EDMSTREAM"], (
        "rho2 lost its latency premium over EDMStream"
    )
