"""Figure 7 — number of range searches executed.

(a) per dataset at a 5% stride: DISC vs IncDBSCAN (DBSCAN always needs one
search per window point, shown for reference);
(b) DTG across stride-to-window ratios, relative to DBSCAN.

Paper shape: DISC consistently issues fewer range searches than IncDBSCAN
across all datasets and all ratios, and both issue far fewer than DBSCAN;
the search count tracks the elapsed-time results of Figure 4.
"""

from _workloads import (
    DATASET_KEYS,
    dataset_stream,
    scaled,
    spec_for,
    stream_length,
)

from repro.baselines import IncrementalDBSCAN
from repro.bench.harness import measure_method
from repro.bench.reporting import Table, write_result
from repro.core.disc import DISC
from repro.datasets.registry import DATASETS

RATIOS = (0.01, 0.05, 0.10, 0.25)


def run_figure7():
    table_a = Table(
        "Figure 7(a): range searches per stride (stride = 5% of window)",
        ["Dataset", "DISC", "IncDBSCAN", "DBSCAN (=window)"],
    )
    per_dataset = {}
    for key in DATASET_KEYS:
        info = DATASETS[key]
        window = scaled(info.window)
        spec = spec_for(window, 0.05)
        points = list(dataset_stream(key, stream_length(spec, 12)))
        counts = {}
        for name, method in (
            ("DISC", DISC(info.eps, info.tau)),
            ("IncDBSCAN", IncrementalDBSCAN(info.eps, info.tau)),
        ):
            result = measure_method(method, points, spec)
            counts[name] = result["range_searches"]
        per_dataset[key] = counts
        table_a.add(
            info.name,
            f"{counts['DISC']:.0f}",
            f"{counts['IncDBSCAN']:.0f}",
            window,
        )

    info = DATASETS["dtg"]
    window = scaled(info.window)
    table_b = Table(
        "Figure 7(b): DTG range searches relative to DBSCAN vs stride ratio",
        ["stride", "DISC/DBSCAN", "IncDBSCAN/DBSCAN"],
    )
    per_ratio = {}
    for ratio in RATIOS:
        spec = spec_for(window, ratio)
        points = list(dataset_stream("dtg", stream_length(spec, 12)))
        counts = {}
        for name, method in (
            ("DISC", DISC(info.eps, info.tau)),
            ("IncDBSCAN", IncrementalDBSCAN(info.eps, info.tau)),
        ):
            result = measure_method(method, points, spec)
            counts[name] = result["range_searches"] / window
        per_ratio[ratio] = counts
        table_b.add(
            f"{spec.stride} ({ratio:.0%})",
            f"{counts['DISC']:.3f}",
            f"{counts['IncDBSCAN']:.3f}",
        )
    return table_a, table_b, per_dataset, per_ratio


def test_fig7_range_searches(benchmark):
    table_a, table_b, per_dataset, per_ratio = benchmark.pedantic(
        run_figure7, rounds=1, iterations=1
    )
    write_result(
        "fig7_range_searches",
        "\n\n".join((table_a.to_text(), table_b.to_text())),
    )
    for key, counts in per_dataset.items():
        window = scaled(DATASETS[key].window)
        assert counts["DISC"] <= counts["IncDBSCAN"], (
            f"{key}: DISC issued more searches than IncDBSCAN"
        )
        assert counts["DISC"] < window, (
            f"{key}: DISC issued more searches than DBSCAN"
        )
    for ratio, counts in per_ratio.items():
        assert counts["DISC"] <= counts["IncDBSCAN"] * 1.02, (
            f"dtg@{ratio:.0%}: DISC not superior in search count"
        )
        if ratio <= 0.10:
            assert counts["DISC"] < 1.0, (
                f"dtg@{ratio:.0%}: DISC above the DBSCAN search budget"
            )
