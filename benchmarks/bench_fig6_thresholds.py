"""Figure 6 — effects of the distance (eps) and density (tau) thresholds.

DTG simulator, stride fixed at 5% of the window. Reproduced shapes: elapsed
times of all incremental methods grow with eps (bigger neighbourhoods) and
shrink as tau grows (fewer cores); the tau effect is the milder of the two;
DISC stays the most stable across the spectrum.
"""

from _workloads import dataset_stream, scaled, spec_for, stream_length

from repro.baselines import ExtraN, IncrementalDBSCAN
from repro.bench.harness import measure_method
from repro.bench.reporting import Table, write_result
from repro.core.disc import DISC
from repro.datasets.registry import DATASETS

EPS_FACTORS = (0.25, 0.5, 1.0, 2.0, 4.0)
TAU_FACTORS = (0.5, 1.0, 2.0, 4.0)


def _latencies(points, spec, eps, tau):
    row = {}
    for name, method in (
        ("DISC", DISC(eps, tau)),
        ("IncDBSCAN", IncrementalDBSCAN(eps, tau)),
        ("EXTRA-N", ExtraN(eps, tau, spec)),
    ):
        result = measure_method(method, points, spec)
        row[name] = result["mean_stride_s"] * 1000
    return row


def run_figure6():
    info = DATASETS["dtg"]
    window = scaled(info.window)
    spec = spec_for(window, 0.05)
    points = list(dataset_stream("dtg", stream_length(spec, 12)))

    eps_table = Table(
        "Figure 6(a): elapsed time vs distance threshold eps (DTG, tau fixed)",
        ["eps", "DISC ms", "IncDBSCAN ms", "EXTRA-N ms"],
    )
    eps_rows = {}
    for factor in EPS_FACTORS:
        eps = info.eps * factor
        row = _latencies(points, spec, eps, info.tau)
        eps_rows[eps] = row
        eps_table.add(
            f"{eps:g}",
            f"{row['DISC']:.1f}",
            f"{row['IncDBSCAN']:.1f}",
            f"{row['EXTRA-N']:.1f}",
        )

    tau_table = Table(
        "Figure 6(b): elapsed time vs density threshold tau (DTG, eps fixed)",
        ["tau", "DISC ms", "IncDBSCAN ms", "EXTRA-N ms"],
    )
    tau_rows = {}
    for factor in TAU_FACTORS:
        tau = max(2, int(info.tau * factor))
        row = _latencies(points, spec, info.eps, tau)
        tau_rows[tau] = row
        tau_table.add(
            tau,
            f"{row['DISC']:.1f}",
            f"{row['IncDBSCAN']:.1f}",
            f"{row['EXTRA-N']:.1f}",
        )
    return eps_table, tau_table, eps_rows, tau_rows


def test_fig6_thresholds(benchmark):
    eps_table, tau_table, eps_rows, tau_rows = benchmark.pedantic(
        run_figure6, rounds=1, iterations=1
    )
    text = "\n\n".join((eps_table.to_text(), tau_table.to_text()))
    write_result("fig6_thresholds", text)

    eps_values = sorted(eps_rows)
    # Larger eps costs more for every method (paper: times "elongated as the
    # value of eps increased").
    for name in ("DISC", "IncDBSCAN"):
        assert eps_rows[eps_values[-1]][name] > eps_rows[eps_values[0]][name], (
            f"{name}: no eps cost growth"
        )
    # DISC stays at least as stable as IncDBSCAN across the eps spectrum.
    disc_spread = eps_rows[eps_values[-1]]["DISC"] / eps_rows[eps_values[0]]["DISC"]
    inc_spread = (
        eps_rows[eps_values[-1]]["IncDBSCAN"] / eps_rows[eps_values[0]]["IncDBSCAN"]
    )
    assert disc_spread <= inc_spread * 1.5, "DISC less stable than IncDBSCAN"
    # tau has the milder effect (paper: "the impact of tau ... was not as
    # significant as we anticipated").
    tau_values = sorted(tau_rows)
    tau_spread = (
        tau_rows[tau_values[0]]["DISC"] / tau_rows[tau_values[-1]]["DISC"]
    )
    assert tau_spread < disc_spread * 2.0, "tau effect unexpectedly dominant"
