"""Figure 12 — illustration of clusters found in Maze and DTG.

The paper shows scatter plots; this textual stand-in reports, per method, the
quantities that make those pictures differ: number of clusters found, ARI
against the reference labelling, noise fraction, and the size of the largest
cluster. Paper shape: only DISC (and rho2, omitted in the paper's figure for
being identical) recovers the reference structure; EDMStream and DBSTREAM
either shatter trajectories into fragments or glue neighbouring ones
together.
"""

from _workloads import dataset_stream, maze_with_truth, scaled, spec_for, stream_length

from repro.baselines import DBStream, EDMStream, SlidingDBSCAN
from repro.bench.harness import measure_method, window_ari
from repro.bench.reporting import Table, write_result
from repro.core.disc import DISC
from repro.datasets.registry import DATASETS

N_MEASURED = 6


def summarize(method, truth, window_pids):
    snapshot = method.snapshot()
    ari = window_ari(method, truth, window_pids)
    clusters = snapshot.clusters()
    largest = max((len(members) for members in clusters.values()), default=0)
    labelled = sum(len(members) for members in clusters.values())
    noise = 1.0 - labelled / max(1, len(window_pids))
    return {
        "ari": ari,
        "clusters": len(clusters),
        "largest": largest,
        "noise": noise,
    }


def run_figure12():
    tables = []
    shapes = {}
    renders = []
    for label, key in (("Maze", "maze"), ("DTG", "dtg")):
        info = DATASETS[key]
        window = scaled(info.window)
        spec = spec_for(window, 0.05)
        length = stream_length(spec, N_MEASURED)
        if key == "maze":
            points, truth_all = maze_with_truth(length)
            points = list(points)
            window_pids = [sp.pid for sp in points[N_MEASURED * spec.stride :]]
            truth = {pid: truth_all[pid] for pid in window_pids}
            ref_clusters = len(set(truth.values()))
        else:
            points = list(dataset_stream(key, length))
            final_window = points[N_MEASURED * spec.stride :]
            window_pids = [sp.pid for sp in final_window]
            reference = SlidingDBSCAN(info.eps, info.tau)
            reference.advance(final_window, ())
            snapshot = reference.snapshot()
            truth = {pid: snapshot.label_of(pid) for pid in window_pids}
            ref_clusters = snapshot.num_clusters
        fade = 0.5 / window
        methods = (
            ("DISC", DISC(info.eps, info.tau)),
            ("EDMSTREAM", EDMStream(radius=info.eps, dim=info.dim, fade=fade)),
            (
                "DBSTREAM",
                DBStream(
                    radius=1.5 * info.eps,
                    dim=info.dim,
                    fade=fade,
                    alpha=0.1,
                    weak_threshold=0.5,
                    gap=500,
                ),
            ),
        )
        table = Table(
            f"Figure 12 ({label}): cluster structure recovered per method "
            f"(reference: {ref_clusters} clusters)",
            ["Method", "ARI", "clusters", "largest", "noise%"],
        )
        rows = {}
        for name, method in methods:
            measure_method(method, points, spec, n_measured=N_MEASURED)
            stats = summarize(method, truth, window_pids)
            rows[name] = stats
            table.add(
                name,
                f"{stats['ari']:.3f}",
                stats["clusters"],
                stats["largest"],
                f"{stats['noise']:.0%}",
            )
        shapes[label] = (rows, ref_clusters)
        tables.append(table.to_text())
        # The actual "illustration": ASCII scatter plots per method.
        from repro.viz import render_comparison

        window_coords = {
            pid: coords
            for pid, coords in (
                (p.pid, p.coords) for p in points[N_MEASURED * spec.stride :]
            )
        }
        renders.append(
            f"=== {label} window, clusters by method ===\n"
            + render_comparison(
                {name: method.snapshot() for name, method in methods},
                window_coords,
                width=76,
                height=20,
            )
        )
    return tables, shapes, renders


def test_fig12_cluster_shapes(benchmark):
    tables, shapes, renders = benchmark.pedantic(
        run_figure12, rounds=1, iterations=1
    )
    write_result(
        "fig12_cluster_shapes", "\n\n".join(tables) + "\n\n" + "\n\n".join(renders)
    )
    for label, (rows, ref_clusters) in shapes.items():
        assert rows["DISC"]["ari"] > rows["EDMSTREAM"]["ari"], (
            f"{label}: DISC did not beat EDMStream on structure recovery"
        )
        assert rows["DISC"]["ari"] > rows["DBSTREAM"]["ari"], (
            f"{label}: DISC did not beat DBSTREAM on structure recovery"
        )
        # DISC's cluster count lands in the right ballpark of the reference.
        assert 0.5 * ref_clusters <= rows["DISC"]["clusters"] <= 2.0 * ref_clusters, (
            f"{label}: DISC found {rows['DISC']['clusters']} clusters vs "
            f"reference {ref_clusters}"
        )
