"""Table II — threshold values and window sizes per dataset.

Prints the paper's parameters next to the scaled parameters this
reproduction runs with, and sanity-checks each scaled setting by clustering
one window (a setting that yields zero clusters or all-noise would invalidate
every downstream figure).
"""

from _workloads import DATASET_KEYS, dataset_stream, scaled

from repro.baselines.dbscan import SlidingDBSCAN
from repro.bench.reporting import Table, write_result
from repro.common.snapshot import Category
from repro.datasets.registry import DATASETS


def build_table2():
    table = Table(
        "Table II: threshold values and window sizes (paper -> scaled)",
        [
            "Dataset",
            "paper tau",
            "paper eps",
            "paper window",
            "tau",
            "eps",
            "window",
            "clusters",
            "core%",
            "noise%",
        ],
    )
    checks = {}
    for key in DATASET_KEYS:
        info = DATASETS[key]
        window = scaled(info.window)
        points = dataset_stream(key, window)
        dbscan = SlidingDBSCAN(info.eps, info.tau)
        dbscan.advance(list(points), ())
        snap = dbscan.snapshot()
        n = len(points)
        checks[key] = snap
        table.add(
            info.name,
            info.paper_tau,
            info.paper_eps,
            info.paper_window,
            info.tau,
            info.eps,
            window,
            snap.num_clusters,
            f"{snap.count(Category.CORE) / n:.0%}",
            f"{snap.count(Category.NOISE) / n:.0%}",
        )
    return table, checks


def test_table2_settings(benchmark):
    table, checks = benchmark.pedantic(build_table2, rounds=1, iterations=1)
    write_result("table2_settings", table.to_text())
    for key, snap in checks.items():
        assert snap.num_clusters >= 2, f"{key}: settings found no clusters"
        assert snap.count(Category.CORE) > 0, f"{key}: no cores"
