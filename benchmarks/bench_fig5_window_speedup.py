"""Figure 5 — relative speedup over DBSCAN with a varying size of window.

Stride fixed at 5% of each window. The paper's EXTRA-N result — memory and
maintenance that balloon with the window until it stops being viable — shows
up here through its bookkeeping-cell count, reported alongside the speedups.
"""

from _workloads import DATASET_KEYS, dataset_stream, scaled, spec_for, stream_length

from repro.baselines import ExtraN, IncrementalDBSCAN, SlidingDBSCAN
from repro.bench.harness import measure_method
from repro.bench.reporting import Table, write_result
from repro.core.disc import DISC
from repro.datasets.registry import DATASETS

WINDOW_FACTORS = (0.25, 0.5, 1.0, 2.0)


def run_figure5():
    table = Table(
        "Figure 5: speedup over DBSCAN vs window size (stride = 5% of window)",
        [
            "Dataset",
            "window",
            "DBSCAN ms",
            "DISC x",
            "IncDBSCAN x",
            "EXTRA-N x",
            "EXTRA-N cells",
        ],
    )
    shape = {}
    for key in DATASET_KEYS:
        info = DATASETS[key]
        shape[key] = {}
        for factor in WINDOW_FACTORS:
            window = scaled(int(info.window * factor))
            spec = spec_for(window, 0.05)
            points = list(dataset_stream(key, stream_length(spec, 12)))
            dbscan = measure_method(
                SlidingDBSCAN(info.eps, info.tau), points, spec, n_measured=3
            )
            row = {}
            extran = ExtraN(info.eps, info.tau, spec)
            for name, method in (
                ("DISC", DISC(info.eps, info.tau)),
                ("IncDBSCAN", IncrementalDBSCAN(info.eps, info.tau)),
                ("EXTRA-N", extran),
            ):
                result = measure_method(method, points, spec)
                row[name] = dbscan["mean_stride_s"] / result["mean_stride_s"]
            cells = extran.memory_cells()
            table.add(
                info.name,
                window,
                f"{dbscan['mean_stride_s'] * 1000:.1f}",
                f"{row['DISC']:.2f}",
                f"{row['IncDBSCAN']:.2f}",
                f"{row['EXTRA-N']:.2f}",
                cells,
            )
            shape[key][window] = (row, cells)
    return table, shape


def test_fig5_window_speedup(benchmark):
    table, shape = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    lines = [table.to_text(), ""]
    for key, by_window in shape.items():
        windows = sorted(by_window)
        small_cells = by_window[windows[0]][1]
        large_cells = by_window[windows[-1]][1]
        lines.append(
            f"paper-shape {key}: EXTRA-N bookkeeping grows "
            f"{small_cells} -> {large_cells} cells "
            f"({large_cells / max(1, small_cells):.1f}x) as the window grows "
            f"{windows[0]} -> {windows[-1]}"
        )
    write_result("fig5_window_speedup", "\n".join(lines))
    for key, by_window in shape.items():
        windows = sorted(by_window)
        for window in windows:
            row, _ = by_window[window]
            assert row["DISC"] > 1.0, (
                f"{key}@{window}: DISC did not beat DBSCAN ({row['DISC']:.2f}x)"
            )
        # EXTRA-N's memory footprint grows superlinearly-ish with the window.
        small_cells = by_window[windows[0]][1]
        large_cells = by_window[windows[-1]][1]
        window_growth = windows[-1] / windows[0]
        assert large_cells > small_cells * window_growth * 0.8, (
            f"{key}: EXTRA-N memory did not scale with the window"
        )
