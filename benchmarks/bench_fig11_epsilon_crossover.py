"""Figure 11 — update latency of DISC vs rho2-DBSCAN with varying eps.

Paper shape: DISC wins for every small (high-resolution) eps; rho2-DBSCAN
only overtakes once eps grows so large that the clustering degenerates into
one blob covering the window — "beyond those crossover points ... the
clustering results were completely meaningless". The bench locates the
crossover and reports the cluster count at every eps so the meaninglessness
is visible in the table.
"""

from _workloads import dataset_stream, maze_with_truth, scaled, spec_for, stream_length

from repro.baselines import RhoDoubleApproxDBSCAN
from repro.bench.harness import measure_method
from repro.bench.reporting import Table, write_result
from repro.core.disc import DISC
from repro.datasets.registry import DATASETS
from repro.index.grid import GridIndex

# Factors of each dataset's operating eps; the smallest value is the
# high-resolution setting the paper motivates (below it the data has too
# few cores for clusters to exist at all).
EPS_FACTORS = (1.0, 2.0, 4.0, 8.0, 16.0)


def _sweep(points, spec, base_eps, tau, dim):
    rows = {}
    for factor in EPS_FACTORS:
        eps = base_eps * factor
        disc = DISC(eps, tau)
        disc_result = measure_method(disc, points, spec, n_measured=6)
        clusters = disc.snapshot().num_clusters
        # Same algorithm on rho2's own substrate (a dict grid), isolating
        # the index-constant effect (S1) from the algorithmic comparison.
        disc_grid = DISC(
            eps,
            tau,
            index=GridIndex(eps, dim),
            epoch_probing=False,
        )
        grid_result = measure_method(disc_grid, points, spec, n_measured=6)
        rho = RhoDoubleApproxDBSCAN(eps, tau, dim=dim, rho=0.001)
        rho_result = measure_method(rho, points, spec, n_measured=6)
        rows[eps] = {
            "DISC": disc_result["mean_stride_s"] * 1000,
            "DISC(grid)": grid_result["mean_stride_s"] * 1000,
            "rho2": rho_result["mean_stride_s"] * 1000,
            "clusters": clusters,
        }
    return rows


def run_figure11():
    results = {}
    tables = []
    for label, key in (("Maze", "maze"), ("DTG", "dtg")):
        info = DATASETS[key]
        window = scaled(info.window)
        spec = spec_for(window, 0.05)
        if key == "maze":
            points, _ = maze_with_truth(stream_length(spec, 6))
            points = list(points)
        else:
            points = list(dataset_stream(key, stream_length(spec, 6)))
        rows = _sweep(points, spec, info.eps, info.tau, info.dim)
        results[label] = rows
        table = Table(
            f"Figure 11 ({label}): update latency vs eps (ms/stride)",
            ["eps", "DISC ms", "DISC(grid) ms", "rho2(0.001) ms",
             "clusters (DISC)"],
        )
        for eps in sorted(rows):
            row = rows[eps]
            table.add(
                f"{eps:g}",
                f"{row['DISC']:.1f}",
                f"{row['DISC(grid)']:.1f}",
                f"{row['rho2']:.1f}",
                row["clusters"],
            )
        tables.append(table.to_text())
    return tables, results


def test_fig11_epsilon_crossover(benchmark):
    tables, results = benchmark.pedantic(run_figure11, rounds=1, iterations=1)
    lines = list(tables)
    for label, rows in results.items():
        eps_values = sorted(rows)
        crossover = next(
            (eps for eps in eps_values if rows[eps]["rho2"] < rows[eps]["DISC"]),
            None,
        )
        lines.append(
            f"paper-shape {label}: rho2 first beats DISC at eps="
            f"{crossover if crossover is not None else 'never'}; clusters "
            f"there: {rows[crossover]['clusters'] if crossover else 'n/a'}"
        )
    write_result("fig11_epsilon_crossover", "\n\n".join(lines))
    for label, rows in results.items():
        eps_values = sorted(rows)
        smallest = rows[eps_values[0]]
        # High-accuracy rho2 must become the slower method somewhere in the
        # sweep — the "excessive computing time" the paper reports.
        worst_ratio = max(r["rho2"] / r["DISC"] for r in rows.values())
        assert worst_ratio > 1.2, (
            f"{label}: rho2 never fell clearly behind DISC "
            f"(worst ratio {worst_ratio:.2f})"
        )
        # At the largest eps the clustering degenerates: clusters merge into
        # ever fewer blobs (the paper's "completely meaningless" regime).
        largest = rows[eps_values[-1]]
        assert largest["clusters"] <= 0.6 * smallest["clusters"], (
            f"{label}: clustering did not degenerate at huge eps "
            f"({largest['clusters']} vs {smallest['clusters']} clusters)"
        )
    # The paper's headline crossover claim, reproduced on Maze: DISC wins at
    # the high-resolution operating eps. (On the scaled-down DTG simulator
    # the small-eps panel is substrate-bound; see EXPERIMENTS.md.)
    maze_rows = results["Maze"]
    maze_smallest = maze_rows[sorted(maze_rows)[0]]
    assert maze_smallest["DISC"] < maze_smallest["rho2"], (
        "Maze: DISC lost to rho2 at the operating eps"
    )
