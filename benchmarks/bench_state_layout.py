"""Storage-layout benchmark: columnar PointStore vs per-record objects.

PR 6 replaced the one-Python-object-per-point window state with the
struct-of-arrays :class:`~repro.core.store.PointStore`. This bench drives
the *same* steady-state workload through both layouts (``DISC(store=...)``)
on the vectorized grid backend and records stride latency (p50/p95) plus
the resident bytes of the per-point state, as
``benchmarks/results/BENCH_state.json``. The acceptance floor for the PR is
a >= 1.5x p50 stride speedup on the vectorgrid backend; the JSON is the
durable record CI archives.

Correctness is asserted here too: both layouts must produce identical
labels (the full equivalence surface lives in tests/test_store_equivalence).
"""

import json
import os
import sys
import time

from _workloads import dataset_stream, scaled, spec_for, stream_length

from repro.bench.harness import prefill, steady_slides
from repro.bench.reporting import RESULTS_DIR, write_result
from repro.core.disc import DISC
from repro.datasets.registry import DATASETS
from repro.observability import percentile

N_MEASURED = 16
STRIDE_RATIO = 0.10
BACKEND = "vectorgrid"


def resident_state_bytes(disc: DISC) -> int:
    """Bytes held by the per-point window state (not the spatial index)."""
    state = disc.state
    arena = state.columnar()
    if arena is not None:
        return arena.nbytes() + sys.getsizeof(arena._slot_of)
    total = sys.getsizeof(state.records)
    for pid, rec in state.records.items():
        total += sys.getsizeof(rec)
        total += sys.getsizeof(rec.coords)
        total += sum(sys.getsizeof(c) for c in rec.coords)
    return total


def _measure(layout: str):
    info = DATASETS["maze"]
    spec = spec_for(scaled(info.window), STRIDE_RATIO)
    points = list(dataset_stream("maze", stream_length(spec, N_MEASURED)))
    window_points, slides = steady_slides(points, spec, N_MEASURED)

    disc = DISC(info.eps, info.tau, index=BACKEND, store=layout)
    prefill(disc, window_points, spec)
    elapsed = []
    for delta_in, delta_out in slides:
        start = time.perf_counter()
        disc.advance(delta_in, delta_out)
        elapsed.append(time.perf_counter() - start)
    return {
        "mean_ms": sum(elapsed) / len(elapsed) * 1000,
        "p50_ms": percentile(elapsed, 50) * 1000,
        "p95_ms": percentile(elapsed, 95) * 1000,
        "resident_state_bytes": resident_state_bytes(disc),
        "window_points": len(disc),
        "labels": disc.snapshot().labels,
    }


def run_state_layout():
    legacy = _measure("object")
    columnar = _measure("columnar")
    # The layouts must be observationally identical before speed counts.
    assert columnar.pop("labels") == legacy.pop("labels")
    speedup = (
        legacy["p50_ms"] / columnar["p50_ms"] if columnar["p50_ms"] > 0 else 0.0
    )
    payload = {
        "workload": f"maze @ {STRIDE_RATIO:.0%} stride",
        "backend": BACKEND,
        "n_measured": N_MEASURED,
        "object": legacy,
        "columnar": columnar,
        "p50_speedup": round(speedup, 3),
        "bytes_ratio": round(
            legacy["resident_state_bytes"]
            / max(1, columnar["resident_state_bytes"]),
            3,
        ),
    }
    path = os.path.join(os.path.abspath(RESULTS_DIR), "BENCH_state.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload, path


def test_state_layout(benchmark):
    payload, path = benchmark.pedantic(run_state_layout, rounds=1, iterations=1)
    lines = [
        f"State layout (maze @ {STRIDE_RATIO:.0%} stride, {BACKEND} backend):",
        f"  object:   p50 {payload['object']['p50_ms']:.3f} ms/stride "
        f"(p95 {payload['object']['p95_ms']:.3f}), "
        f"{payload['object']['resident_state_bytes']:,} state bytes",
        f"  columnar: p50 {payload['columnar']['p50_ms']:.3f} ms/stride "
        f"(p95 {payload['columnar']['p95_ms']:.3f}), "
        f"{payload['columnar']['resident_state_bytes']:,} state bytes",
        f"  p50 speedup: {payload['p50_speedup']:.2f}x "
        f"(state bytes: {payload['bytes_ratio']:.2f}x smaller)",
        f"[json written to {path}]",
    ]
    write_result("state_layout", "\n".join(lines))


if __name__ == "__main__":
    payload, path = run_state_layout()
    print(json.dumps(payload, indent=2))
    print(f"written to {path}")
