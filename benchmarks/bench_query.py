"""Query-subsystem cost curves: journal overhead, AS-OF latency, fan-out.

Three measurements, one artifact (``benchmarks/results/BENCH_query.json``,
archived by the CI ``query-smoke`` job):

1. **Journal ingest overhead per fsync policy.** The real serve stack under
   identical loadgen workloads with the CDC journal off, then ``always`` /
   ``every_n`` / ``interval`` — the price of the "observed means durable"
   push guarantee, in points/second.
2. **AS-OF latency vs snapshot cadence.** One journaled pipeline history,
   materialised through archives built at several ``archive_every`` values
   (including 0 = pure delta replay) — the latency/space dial operators
   size with the runbook.
3. **Push fan-out vs subscriber count.** The same workload with N live
   subscribers per tenant; every subscriber must receive every stride's
   record, so the delta is the per-subscriber cost of the push path.

No thresholds gate the numbers (shared-runner weather); each mode asserts
its accounting instead — acks, journal appends, and per-subscriber record
counts must be exact.
"""

import asyncio
import json
import os
import shutil
import statistics
import tempfile
import time

from repro.api import cluster_stream
from repro.bench.reporting import RESULTS_DIR, write_result
from repro.common.config import WindowSpec
from repro.datasets.registry import DATASETS
from repro.query.archive import SnapshotArchive
from repro.query.journal import EvolutionJournal, stride_record
from repro.serve.config import SessionConfig
from repro.serve.loadgen import run_loadgen, tenant_stream
from repro.serve.server import run_server
from repro.serve.service import ClusterService

N_TENANTS = 2
POINTS_PER_TENANT = 1500
DATASET = "maze"
BATCH = 25

#: mode name -> SessionConfig journal overrides (overhead measurement).
FSYNC_MODES = {
    "off": {"journal": False},
    "always": {"journal": True, "journal_fsync": "always"},
    "every_n": {"journal": True, "journal_fsync": "every_n"},
    "interval": {"journal": True, "journal_fsync": "interval"},
}

#: archive_every cadences for the AS-OF latency curve (0 = replay-only).
CADENCES = (0, 1, 4, 16)

#: live subscribers per tenant for the fan-out curve.
FANOUTS = (0, 1, 4, 8)


def query_config(**overrides) -> SessionConfig:
    info = DATASETS[DATASET]
    return SessionConfig(
        eps=info.eps,
        tau=info.tau,
        window=info.window,
        stride=max(1, info.window // 10),
        backpressure="block",
        **overrides,
    )


def journaled_strides(config: SessionConfig) -> int:
    """Records per tenant for the workload: full strides + the flushed tail."""
    full, leftover = divmod(POINTS_PER_TENANT, config.stride)
    return full + (1 if leftover else 0)


async def _run_workload(data_dir: str, config: SessionConfig, **kwargs) -> dict:
    service = ClusterService(data_dir=data_dir)
    ready, stop = asyncio.Event(), asyncio.Event()
    server = asyncio.create_task(
        run_server(service, "127.0.0.1", 0, ready=ready, stop=stop)
    )
    await asyncio.wait_for(ready.wait(), timeout=10)
    try:
        report = await run_loadgen(
            "127.0.0.1",
            service.port,
            tenants=N_TENANTS,
            points_per_tenant=POINTS_PER_TENANT,
            dataset=DATASET,
            config=config,
            batch=BATCH,
            query_every=0,
            flush_tail=True,
            **kwargs,
        )
        assert report["accepted_total"] == N_TENANTS * POINTS_PER_TENANT
        assert report["rejected_total"] == 0
        strides = journaled_strides(config)
        if config.journal:
            for name in list(service.sessions):
                session = service.sessions[name]
                assert session.evjournal.stats.appends == strides
    finally:
        stop.set()
        await asyncio.wait_for(server, timeout=30)
    return report


def bench_fsync_overhead(workdir: str) -> dict:
    modes = {}
    for mode, overrides in FSYNC_MODES.items():
        report = asyncio.run(
            _run_workload(
                os.path.join(workdir, f"fsync-{mode}"),
                query_config(**overrides),
            )
        )
        modes[mode] = {
            "ingest_points_per_s": report["ingest_points_per_s"],
            "wall_seconds": report["wall_seconds"],
        }
    baseline = modes["off"]["ingest_points_per_s"]
    for mode, row in modes.items():
        row["overhead_pct"] = (
            0.0
            if mode == "off" or baseline <= 0
            else max(0.0, (1 - row["ingest_points_per_s"] / baseline) * 100)
        )
    return {"baseline_points_per_s": baseline, "modes": modes}


def bench_as_of_latency(workdir: str) -> dict:
    """One pipeline history, archived at every cadence, timed end to end.

    Uses a finer stride than the serving workload so the history is long
    enough (dozens of strides) for the cadence to actually move the replay
    length — the quantity the dial trades against snapshot storage.
    """
    info = DATASETS[DATASET]
    spec = WindowSpec(window=400, stride=30)
    points = tenant_stream(DATASET, POINTS_PER_TENANT, 0, 0)

    journal = EvolutionJournal(os.path.join(workdir, "asof-journal"))
    last = {"time": None}

    def tracked():
        for p in points:
            last["time"] = p.time
            yield p

    prev, history = None, []
    for s, (clustering, summary) in enumerate(
        cluster_stream(tracked(), spec, eps=info.eps, tau=info.tau)
    ):
        journal.publish(stride_record(s, prev, clustering, summary, time=last["time"]))
        prev = clustering
        history.append(clustering)
    journal.commit()

    strides = len(history)
    # Every answerable stride, round-robin, ~200 timed queries per cadence.
    targets = [s % (strides - 1) for s in range(min(200, (strides - 1) * 8))]
    curve = {}
    for every in CADENCES:
        archive = SnapshotArchive(
            os.path.join(workdir, f"asof-archive-{every}"),
            every=every,
            journal=journal,
        )
        if every:
            for s, clustering in enumerate(history):
                archive.maybe_snapshot(s, clustering)
        samples = []
        for s in targets:
            start = time.perf_counter()
            payload = archive.as_of(stride=s)
            samples.append((time.perf_counter() - start) * 1000)
            assert payload["stride"] == s
        samples.sort()
        curve[str(every)] = {
            "snapshots": len(archive.strides()),
            "p50_ms": round(statistics.median(samples), 4),
            "p95_ms": round(samples[int(len(samples) * 0.95) - 1], 4),
        }
    return {"strides": strides, "queries_per_cadence": len(targets), "curve": curve}


def bench_fanout(workdir: str) -> dict:
    config = query_config(journal=True, journal_fsync="always")
    strides = journaled_strides(config)
    curve = {}
    for n in FANOUTS:
        report = asyncio.run(
            _run_workload(
                os.path.join(workdir, f"fanout-{n}"), config, subscribers=n
            )
        )
        # Exact fan-out accounting: every subscriber saw every record.
        assert report["subscribers_per_tenant"] == n
        assert report["subscriber_events_total"] == n * N_TENANTS * strides
        curve[str(n)] = {
            "ingest_points_per_s": report["ingest_points_per_s"],
            "subscriber_events_total": report["subscriber_events_total"],
        }
    baseline = curve["0"]["ingest_points_per_s"]
    for n, row in curve.items():
        row["overhead_pct"] = (
            0.0
            if n == "0" or baseline <= 0
            else max(0.0, (1 - row["ingest_points_per_s"] / baseline) * 100)
        )
    return {"records_per_tenant": strides, "curve": curve}


def run_query_bench() -> tuple[dict, str]:
    workdir = tempfile.mkdtemp(prefix="bench-query-")
    try:
        payload = {
            "workload": f"{DATASET} x {N_TENANTS} tenants, "
            f"{POINTS_PER_TENANT} points each, batch {BATCH}, block policy",
            "journal_fsync_overhead": bench_fsync_overhead(workdir),
            "as_of_latency": bench_as_of_latency(workdir),
            "subscriber_fanout": bench_fanout(workdir),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    path = os.path.join(os.path.abspath(RESULTS_DIR), "BENCH_query.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload, path


def test_query_costs(benchmark):
    payload, path = benchmark.pedantic(run_query_bench, rounds=1, iterations=1)
    lines = [f"Query subsystem costs ({payload['workload']}):"]
    for mode, row in payload["journal_fsync_overhead"]["modes"].items():
        lines.append(
            f"  journal {mode:>8}: {row['ingest_points_per_s']:.0f} points/s "
            f"({row['overhead_pct']:.1f}% overhead)"
        )
    for every, row in payload["as_of_latency"]["curve"].items():
        lines.append(
            f"  as_of every={every:>2}: p50 {row['p50_ms']:.3f} ms "
            f"(p95 {row['p95_ms']:.3f} ms, {row['snapshots']} snapshots)"
        )
    for n, row in payload["subscriber_fanout"]["curve"].items():
        lines.append(
            f"  fanout N={n}: {row['ingest_points_per_s']:.0f} points/s "
            f"({row['overhead_pct']:.1f}% overhead)"
        )
    lines.append(f"[json written to {path}]")
    write_result("query_costs", "\n".join(lines))


if __name__ == "__main__":
    payload, path = run_query_bench()
    print(json.dumps(payload, indent=2))
    print(f"written to {path}")
