"""Figure 9 — Maze: ARI and per-point update latency vs window size.

DISC is compared with the summarisation-based methods (DBSTREAM, EDMStream)
and the approximate rho2-DBSCAN at low (rho=0.1) and high (rho=0.001)
accuracy. Ground truth is the Maze generator's trajectory labels; stride is
5% of each window.

Paper shapes: the summarisation methods are fastest but their ARI collapses
as the window (and hence the tangle of trajectories) grows; DISC and
rho2-DBSCAN both retain high ARI, with rho2 paying a large latency premium
at high accuracy.
"""

from _workloads import maze_with_truth, scaled, spec_for, stream_length

from repro.baselines import DBStream, EDMStream, RhoDoubleApproxDBSCAN
from repro.bench.harness import measure_method, window_ari
from repro.bench.reporting import Table, write_result
from repro.core.disc import DISC
from repro.datasets.registry import DATASETS

WINDOWS = (500, 1000, 2000, 4000)


def make_methods(eps, tau, window):
    # The summarisation methods get the settings that maximised their ARI
    # (the paper's protocol: "parameter settings that helped them achieve
    # the best ARI"): decay matched to the window and a slightly larger
    # micro-cluster radius for DBSTREAM.
    fade = 0.5 / window
    return (
        ("DISC", DISC(eps, tau)),
        (
            "DBSTREAM",
            DBStream(
                radius=1.5 * eps,
                dim=2,
                fade=fade,
                alpha=0.1,
                weak_threshold=0.5,
                gap=500,
            ),
        ),
        ("EDMSTREAM", EDMStream(radius=eps, dim=2, fade=fade)),
        ("rho2(0.1)", RhoDoubleApproxDBSCAN(eps, tau, dim=2, rho=0.1)),
        ("rho2(0.001)", RhoDoubleApproxDBSCAN(eps, tau, dim=2, rho=0.001)),
    )


def run_figure9():
    info = DATASETS["maze"]
    eps, tau = info.eps, info.tau
    names = [name for name, _ in make_methods(eps, tau, scaled(WINDOWS[0]))]
    ari_table = Table(
        "Figure 9(a): Maze ARI vs window size (stride = 5%)",
        ["window", *names],
    )
    lat_table = Table(
        "Figure 9(b): Maze per-point update latency vs window size (us/point)",
        ["window", *names],
    )
    shape = {}
    for window in WINDOWS:
        window = scaled(window)
        spec = spec_for(window, 0.05)
        points, truth = maze_with_truth(stream_length(spec, 8))
        points = list(points)
        window_pids = [
            sp.pid
            for sp in points[8 * spec.stride : 8 * spec.stride + spec.window]
        ]
        aris = {}
        latencies = {}
        for name, method in make_methods(eps, tau, window):
            result = measure_method(method, points, spec, n_measured=8)
            aris[name] = window_ari(method, truth, window_pids)
            latencies[name] = result["per_point_s"] * 1e6
        shape[window] = (aris, latencies)
        ari_table.add(window, *(f"{aris[n]:.3f}" for n in names))
        lat_table.add(window, *(f"{latencies[n]:.0f}" for n in names))
    return ari_table, lat_table, shape


def test_fig9_maze_quality(benchmark):
    ari_table, lat_table, shape = benchmark.pedantic(
        run_figure9, rounds=1, iterations=1
    )
    write_result(
        "fig9_maze_quality",
        "\n\n".join((ari_table.to_text(), lat_table.to_text())),
    )
    windows = sorted(shape)
    largest = windows[-1]
    aris, latencies = shape[largest]
    # Exact/approximate methods keep high quality at the largest window...
    assert aris["DISC"] >= 0.8, f"DISC ARI collapsed: {aris['DISC']:.3f}"
    assert aris["rho2(0.001)"] >= 0.8, "high-accuracy rho2 ARI collapsed"
    # ...while the summarisation methods fall visibly behind DISC.
    assert aris["DBSTREAM"] < aris["DISC"], "DBSTREAM did not trail DISC"
    assert aris["EDMSTREAM"] < aris["DISC"], "EDMSTREAM did not trail DISC"
    # Summarisation methods are the fastest (the paper's trade-off).
    assert latencies["EDMSTREAM"] < latencies["DISC"], (
        "EDMStream lost its latency advantage"
    )
