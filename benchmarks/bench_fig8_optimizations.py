"""Figure 8 — effects of the MS-BFS and epoch-based probing optimizations.

Runs DISC four ways on every dataset (neither optimization, epoch-only,
MS-BFS-only, both), stride fixed at 5% of the window. Paper shape: each
technique helps on its own; both together are best; MS-BFS tends to be the
stronger of the two. Exactness is unaffected (covered by the test suite);
here we compare elapsed time and index work.
"""

from _workloads import DATASET_KEYS, dataset_stream, scaled, spec_for, stream_length

from repro.bench.harness import measure_method
from repro.bench.reporting import Table, write_result
from repro.core.disc import DISC
from repro.datasets.registry import DATASETS

CONFIGS = (
    ("neither", False, False),
    ("epoch only", False, True),
    ("MS-BFS only", True, False),
    ("both", True, True),
)


def run_figure8():
    table = Table(
        "Figure 8: DISC optimization ablation (per-stride ms, stride = 5%)",
        ["Dataset", *(name for name, _, _ in CONFIGS)],
    )
    shape = {}
    for key in DATASET_KEYS:
        info = DATASETS[key]
        window = scaled(info.window)
        spec = spec_for(window, 0.05)
        points = list(dataset_stream(key, stream_length(spec, 12)))
        row = {}
        for name, multi_starter, epoch_probing in CONFIGS:
            method = DISC(
                info.eps,
                info.tau,
                multi_starter=multi_starter,
                epoch_probing=epoch_probing,
            )
            result = measure_method(method, points, spec)
            row[name] = result["mean_stride_s"] * 1000
        shape[key] = row
        table.add(info.name, *(f"{row[name]:.1f}" for name, _, _ in CONFIGS))
    return table, shape


def test_fig8_optimizations(benchmark):
    table, shape = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    lines = [table.to_text(), ""]
    for key, row in shape.items():
        lines.append(
            f"paper-shape {key}: both={row['both']:.1f}ms vs "
            f"neither={row['neither']:.1f}ms "
            f"({row['neither'] / row['both']:.2f}x)"
        )
    write_result("fig8_optimizations", "\n".join(lines))
    for key, row in shape.items():
        # The fully optimized configuration must not clearly lose to the
        # unoptimized one; single-round wall timing is noisy on the easy
        # datasets, so allow per-dataset slack and pin the stable aggregate.
        assert row["both"] <= row["neither"] * 1.30, (
            f"{key}: optimizations slowed DISC down "
            f"({row['both']:.1f}ms vs {row['neither']:.1f}ms)"
        )
    total_both = sum(row["both"] for row in shape.values())
    total_neither = sum(row["neither"] for row in shape.values())
    assert total_both <= total_neither * 1.05, (
        f"optimizations slowed DISC down in aggregate "
        f"({total_both:.1f}ms vs {total_neither:.1f}ms)"
    )
