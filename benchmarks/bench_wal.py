"""Write-ahead-log ingest overhead, per fsync policy, vs WAL-off.

Boots the real serve stack once per durability mode (same host process,
fresh data directory each time) and drives identical loadgen workloads
through it: ``off`` (checkpoints only), then ``always`` / ``every_n`` /
``interval``. The deltas are the *price of the durability promise* — how
many points/second an ``INGEST`` ack costs when it must also mean
"fsynced", "fsynced within N records", or "fsynced within an interval".

Numbers land in ``benchmarks/results/BENCH_wal.json`` (archived by the CI
``wal-smoke`` job). No threshold gates them — fsync latency on shared
runners is weather — but each mode asserts its accounting: every sent
point acknowledged, and (for WAL modes) every acknowledged point appended.
"""

import asyncio
import json
import os
import shutil
import tempfile

from repro.bench.reporting import RESULTS_DIR, write_result
from repro.datasets.registry import DATASETS
from repro.serve.config import SessionConfig
from repro.serve.loadgen import run_loadgen
from repro.serve.server import run_server
from repro.serve.service import ClusterService

N_TENANTS = 2
POINTS_PER_TENANT = 1500
DATASET = "maze"
BATCH = 25

#: mode name -> SessionConfig WAL overrides.
MODES = {
    "off": {"wal": False},
    "always": {"wal": True, "wal_fsync": "always"},
    "every_n": {"wal": True, "wal_fsync": "every_n", "wal_fsync_every": 64},
    "interval": {
        "wal": True,
        "wal_fsync": "interval",
        "wal_fsync_interval_s": 0.05,
    },
}


def wal_config(**overrides) -> SessionConfig:
    info = DATASETS[DATASET]
    return SessionConfig(
        eps=info.eps,
        tau=info.tau,
        window=info.window,
        stride=max(1, info.window // 10),
        backpressure="block",
        **overrides,
    )


async def _run_mode(data_dir: str, config: SessionConfig) -> dict:
    service = ClusterService(data_dir=data_dir)
    ready, stop = asyncio.Event(), asyncio.Event()
    server = asyncio.create_task(
        run_server(service, "127.0.0.1", 0, ready=ready, stop=stop)
    )
    await asyncio.wait_for(ready.wait(), timeout=10)
    try:
        report = await run_loadgen(
            "127.0.0.1",
            service.port,
            tenants=N_TENANTS,
            points_per_tenant=POINTS_PER_TENANT,
            dataset=DATASET,
            config=config,
            batch=BATCH,
            query_every=0,
            flush_tail=True,
        )
        assert report["accepted_total"] == N_TENANTS * POINTS_PER_TENANT
        assert report["rejected_total"] == 0
        if config.wal:
            for name in list(service.sessions):
                wal_stats = service.sessions[name].wal.stats
                assert wal_stats.appends == POINTS_PER_TENANT
    finally:
        stop.set()
        await asyncio.wait_for(server, timeout=30)
    return report


def run_wal_bench() -> tuple[dict, str]:
    workdir = tempfile.mkdtemp(prefix="bench-wal-")
    modes = {}
    try:
        for mode, overrides in MODES.items():
            report = asyncio.run(
                _run_mode(os.path.join(workdir, mode), wal_config(**overrides))
            )
            modes[mode] = {
                "ingest_points_per_s": report["ingest_points_per_s"],
                "wall_seconds": report["wall_seconds"],
            }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    baseline = modes["off"]["ingest_points_per_s"]
    for mode, row in modes.items():
        row["overhead_pct"] = (
            0.0
            if mode == "off" or baseline <= 0
            else max(0.0, (1 - row["ingest_points_per_s"] / baseline) * 100)
        )
    payload = {
        "workload": f"{DATASET} x {N_TENANTS} tenants, "
        f"{POINTS_PER_TENANT} points each, batch {BATCH}, block policy",
        "baseline_points_per_s": baseline,
        "modes": modes,
    }
    path = os.path.join(os.path.abspath(RESULTS_DIR), "BENCH_wal.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload, path


def test_wal_overhead(benchmark):
    payload, path = benchmark.pedantic(run_wal_bench, rounds=1, iterations=1)
    lines = [f"WAL ingest overhead ({payload['workload']}):"]
    for mode, row in payload["modes"].items():
        lines.append(
            f"  {mode:>8}: {row['ingest_points_per_s']:.0f} points/s "
            f"({row['overhead_pct']:.1f}% overhead)"
        )
    lines.append(f"[json written to {path}]")
    write_result("wal_overhead", "\n".join(lines))


if __name__ == "__main__":
    payload, path = run_wal_bench()
    print(json.dumps(payload, indent=2))
    print(f"written to {path}")
