"""Ablations beyond the paper: substrate choices this reproduction makes.

Two design choices DESIGN.md calls out get their own measurements:

1. **Index substrate.** The paper fixes an R-tree; DISC here runs on any
   registered ``NeighborIndex`` backend. This bench iterates the registry
   (``repro.index.registry``) — every backend gets epoch probing, natively
   or through the ``EpochAdapter`` — quantifying how much of the method
   comparisons is index constants (the (S1) effect discussed in
   EXPERIMENTS.md).

2. **Bulk loading.** Windows are prefilled constantly in benchmarks; STR
   bulk loading should build a better tree, faster, than repeated insertion.
"""

import time

from _workloads import dataset_stream, scaled, spec_for, stream_length

from repro.bench.harness import measure_method
from repro.bench.reporting import Table, write_result
from repro.core.disc import DISC
from repro.datasets.registry import DATASETS
from repro.index.registry import available_indexes
from repro.index.rtree import RTree

#: Display label per registry name (registry order drives the columns).
_LABELS = {
    "rtree": "R-tree",
    "grid": "grid",
    "vectorgrid": "vectorgrid",
    "linear": "linear",
}


def run_index_ablation():
    backends = available_indexes()
    table = Table(
        "Ablation: DISC per-stride latency by index substrate (5% stride)",
        ["Dataset"] + [f"{_LABELS.get(b, b)} ms" for b in backends],
    )
    shape = {}
    for key in ("dtg", "geolife"):
        info = DATASETS[key]
        window = scaled(info.window)
        spec = spec_for(window, 0.05)
        points = list(dataset_stream(key, stream_length(spec, 10)))
        row = {}
        for backend in backends:
            method = DISC(info.eps, info.tau, index=backend)
            result = measure_method(method, points, spec, n_measured=8)
            row[_LABELS.get(backend, backend)] = result["mean_stride_s"] * 1000
        shape[key] = row
        table.add(
            info.name,
            *[f"{row[_LABELS.get(b, b)]:.1f}" for b in backends],
        )
    return table, shape


def run_bulk_ablation():
    table = Table(
        "Ablation: R-tree construction, STR bulk load vs repeated insertion",
        ["Dataset", "points", "bulk ms", "insert ms", "bulk probe ms", "insert probe ms"],
    )
    shape = {}
    for key in ("dtg", "iris"):
        info = DATASETS[key]
        n = scaled(info.window)
        points = [(p.pid, p.coords) for p in dataset_stream(key, n)]

        start = time.perf_counter()
        bulk = RTree.bulk_load(points)
        bulk_ms = (time.perf_counter() - start) * 1000

        start = time.perf_counter()
        grown = RTree()
        for pid, coords in points:
            grown.insert(pid, coords)
        insert_ms = (time.perf_counter() - start) * 1000

        def probe_time(tree):
            start = time.perf_counter()
            for pid, coords in points[:: max(1, n // 200)]:
                tree.ball(coords, info.eps)
            return (time.perf_counter() - start) * 1000

        bulk_probe = probe_time(bulk)
        grown_probe = probe_time(grown)
        shape[key] = (bulk_ms, insert_ms, bulk_probe, grown_probe)
        table.add(
            info.name,
            n,
            f"{bulk_ms:.1f}",
            f"{insert_ms:.1f}",
            f"{bulk_probe:.1f}",
            f"{grown_probe:.1f}",
        )
    return table, shape


def test_ablation_index_substrate(benchmark):
    table, shape = benchmark.pedantic(run_index_ablation, rounds=1, iterations=1)
    write_result("ablation_index_substrate", table.to_text())
    for key, row in shape.items():
        # In 2D the grid beats the R-tree at its tuned radius (the S1
        # constant-factor effect); in 3D its 125-cell stencil erodes the
        # advantage, and the EpochAdapter (grids have no native epochs) adds
        # a constant per-probe cost, so the assertion only bounds the gap.
        # Exact results are identical regardless (covered by the test suite).
        assert row["grid"] < row["R-tree"] * 3.0, (
            f"{key}: grid substrate unexpectedly slow"
        )
        assert row["vectorgrid"] < row["R-tree"] * 3.0, (
            f"{key}: vectorgrid substrate unexpectedly slow"
        )
        assert row["linear"] > row["R-tree"], (
            f"{key}: linear scan unexpectedly beat the R-tree"
        )


def test_ablation_bulk_load(benchmark):
    table, shape = benchmark.pedantic(run_bulk_ablation, rounds=1, iterations=1)
    write_result("ablation_bulk_load", table.to_text())
    for key, (bulk_ms, insert_ms, bulk_probe, grown_probe) in shape.items():
        assert bulk_ms < insert_ms, f"{key}: bulk load slower than insertion"
        # Construction is the headline win (typically >50x). Probe quality is
        # usually on par; in 4D the STR slab tiling can trail the quadratic
        # split a little, so allow slack.
        assert bulk_probe <= grown_probe * 2.0, (
            f"{key}: bulk-loaded tree probes much slower"
        )
