"""Focused ablation: what MS-BFS actually buys, in range searches.

A chain of cores is cut at a chosen position; the connectivity check must
discover that the two fragments are separate. The instructive quantity is
the number of range searches as a function of *where* the cut is:

- **MS-BFS** advances the two sides round-robin, so it finishes when the
  *smaller* fragment is exhausted: cost ~ 2 x min(fragment) regardless of
  which side any search started from. Deterministic.
- **classic** sequential checking exhausts one side to completion before
  concluding; which side it starts with depends on incidental seed order,
  so its cost ranges from min(fragment) (lucky) to max(fragment) (unlucky).

On balanced cuts the round-robin insurance costs up to 2x; on skewed cuts it
wins by the fragment ratio whenever classic starts on the wrong side. This
is the per-check mechanism behind the paper's modest-but-consistent Figure 8
gains (real workloads mix both cases, plus the shrink early-exit).
"""

from repro.bench.reporting import Table, write_result
from repro.common.points import StreamPoint
from repro.core.disc import DISC

EPS = 1.0
TAU = 3


def chain_points(n, gap=0.9):
    return [StreamPoint(i, (i * gap, 0.0), float(i)) for i in range(n)]


def measure_deletion(n_chain, victim_index, *, multi_starter):
    """Searches spent by the stride that deletes one chain point."""
    disc = DISC(EPS, TAU, multi_starter=multi_starter)
    points = chain_points(n_chain)
    disc.advance(points, ())
    before = disc.stats.range_searches
    disc.advance((), [points[victim_index]])
    searches = disc.stats.range_searches - before
    return searches, disc.snapshot().num_clusters


def run_msbfs_ablation():
    n_chain = 400
    table = Table(
        f"Ablation: searches per split check on a {n_chain}-core chain",
        ["cut at", "min fragment", "MS-BFS", "classic", "MS-BFS bound (2*min)"],
    )
    rows = {}
    for fraction in (0.1, 0.3, 0.5):
        victim = int(n_chain * fraction)
        min_fragment = min(victim, n_chain - victim)
        multi, clusters_multi = measure_deletion(
            n_chain, victim, multi_starter=True
        )
        classic, clusters_classic = measure_deletion(
            n_chain, victim, multi_starter=False
        )
        assert clusters_multi == clusters_classic == 2
        rows[fraction] = (multi, classic, min_fragment)
        table.add(
            f"{fraction:.0%}",
            min_fragment,
            multi,
            classic,
            2 * min_fragment,
        )
    return table, rows


def test_ablation_msbfs_search_counts(benchmark):
    table, rows = benchmark.pedantic(run_msbfs_ablation, rounds=1, iterations=1)
    lines = [
        table.to_text(),
        "",
        "paper-shape: MS-BFS cost tracks 2*min(fragment) at every cut —",
        "the deterministic worst-case bound classic checking lacks.",
    ]
    write_result("ablation_msbfs", "\n".join(lines))
    for fraction, (multi, classic, min_fragment) in rows.items():
        # The defining MS-BFS property: bounded by ~2x the smaller fragment
        # (small slack for the COLLECT/retro searches of the same stride).
        assert multi <= 2 * min_fragment + 15, (
            f"cut {fraction:.0%}: MS-BFS exceeded its bound "
            f"({multi} vs 2*{min_fragment})"
        )
    # At the most skewed cut, the bound is far below exhausting the large
    # fragment — the robustness MS-BFS is for.
    multi, classic, min_fragment = rows[0.1]
    assert multi < 0.35 * max(classic, 2 * min_fragment * 4), (
        "skewed cut: MS-BFS did not realise its advantage"
    )
