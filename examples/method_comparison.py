"""Side-by-side comparison of every clustering method on the Maze stream.

Reproduces the paper's evaluation story in miniature: the exact methods
(DISC, IncDBSCAN, EXTRA-N, from-scratch DBSCAN, rho2 at high accuracy) agree
on quality but differ hugely in speed, while the summarisation methods
(DBSTREAM, EDMStream) are fastest but lose accuracy on the tangled
trajectories.

Run:
    python examples/method_comparison.py [window] [stride]
"""

import sys
import time

from repro import (
    DBStream,
    DISC,
    EDMStream,
    ExtraN,
    IncrementalDBSCAN,
    RhoDoubleApproxDBSCAN,
    SlidingDBSCAN,
    WindowSpec,
    adjusted_rand_index,
)
from repro.datasets.maze import maze_stream
from repro.window.sliding import materialize_slides


def main() -> None:
    window = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    stride = int(sys.argv[2]) if len(sys.argv) > 2 else 50
    spec = WindowSpec(window=window, stride=stride)
    eps, tau = 0.8, 4
    points, truth = maze_stream(window * 3, seed=13)
    slides = materialize_slides(points, spec)

    fade = 0.5 / window
    methods = [
        DISC(eps, tau),
        IncrementalDBSCAN(eps, tau),
        ExtraN(eps, tau, spec),
        SlidingDBSCAN(eps, tau),
        RhoDoubleApproxDBSCAN(eps, tau, dim=2, rho=0.001),
        DBStream(radius=1.5 * eps, dim=2, fade=fade, alpha=0.1,
                 weak_threshold=0.5, gap=500),
        EDMStream(radius=eps, dim=2, fade=fade),
    ]

    window_pids = [p.pid for p in points[len(points) - window:]]
    reference = [truth[pid] for pid in window_pids]

    print(f"Maze stream, window={window}, stride={stride}, "
          f"eps={eps}, tau={tau}\n")
    print(f"{'method':<14} {'total s':>8} {'ms/stride':>10} "
          f"{'ARI':>7} {'clusters':>9}")
    for method in methods:
        start = time.perf_counter()
        for delta_in, delta_out in slides:
            method.advance(delta_in, delta_out)
        elapsed = time.perf_counter() - start
        snapshot = method.snapshot()
        ari = adjusted_rand_index(reference, snapshot.label_array(window_pids))
        print(
            f"{method.name:<14} {elapsed:8.2f} "
            f"{elapsed / len(slides) * 1000:10.1f} "
            f"{ari:7.3f} {snapshot.num_clusters:9d}"
        )


if __name__ == "__main__":
    main()
