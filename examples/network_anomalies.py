"""Network anomaly detection — the intro's outlier-detection use case.

Flow records stream through a DISC-backed :class:`AnomalyMonitor`: records
that stay outside every dense traffic profile for two consecutive window
advances are reported as anomalies; false alarms that later join a profile
are retracted. Precision/recall against the generator's ground truth are
printed at the end.

Run:
    python examples/network_anomalies.py [n_points]
"""

import sys

from repro import DISC, WindowSpec
from repro.datasets.netflow import netflow_stream
from repro.monitoring import AnomalyMonitor
from repro.window.sliding import SlidingWindow


def main() -> None:
    n_points = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    points, truth = netflow_stream(n_points, seed=17)
    spec = WindowSpec(window=1500, stride=150)
    monitor = AnomalyMonitor(DISC(eps=1.0, tau=6), confirm_strides=2)

    reported: set[int] = set()
    for delta_in, delta_out in SlidingWindow(spec).slides(points):
        report = monitor.advance(delta_in, delta_out)
        reported |= set(report.confirmed)
        reported -= set(report.retracted)
        if report.confirmed:
            sample = ", ".join(str(pid) for pid in report.confirmed[:5])
            more = (
                f" (+{len(report.confirmed) - 5} more)"
                if len(report.confirmed) > 5
                else ""
            )
            print(f"stride {report.stride:3d}: ALERT flows {sample}{more}")
        if report.retracted:
            print(
                f"stride {report.stride:3d}: retracted "
                f"{len(report.retracted)} false alarm(s)"
            )

    true_positives = len(reported & truth)
    precision = true_positives / len(reported) if reported else 0.0
    recall = true_positives / len(truth) if truth else 0.0
    print(
        f"\nreported {len(reported)} anomalies; injected {len(truth)}; "
        f"precision {precision:.2f}, recall {recall:.2f}"
    )


if __name__ == "__main__":
    main()
