"""Community tracking — following cluster lineages through time.

The paper's introduction motivates streaming clustering with community
tracking over social networks: communities (clusters) are born, absorb each
other, fracture, and fade. DISC reports exactly those evolution events per
stride; :class:`repro.core.tracker.ClusterTracker` folds them into lineages
so each community's life story can be queried.

This example streams drifting activity blobs (communities moving through an
embedding space) and prints the biography of every community at the end.

Run:
    python examples/community_tracking.py [n_points]
"""

import sys

from repro import DISC, WindowSpec
from repro.core.tracker import ClusterTracker
from repro.datasets.synthetic import drifting_blob_stream
from repro.window.sliding import SlidingWindow


def main() -> None:
    n_points = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    disc = DISC(eps=0.7, tau=5)
    tracker = ClusterTracker()
    spec = WindowSpec(window=800, stride=80)
    stream = drifting_blob_stream(n_points, n_blobs=5, drift=0.02, seed=21)

    for stride, (delta_in, delta_out) in enumerate(
        SlidingWindow(spec).slides(stream)
    ):
        summary = disc.advance(delta_in, delta_out)
        tracker.observe(summary, stride)
        tracker.close_missing(set(disc.snapshot().core_clusters()), stride)

    print(f"tracked {len(tracker)} communities over "
          f"{stride + 1} strides\n")
    for lineage in sorted(tracker.all_lineages(), key=lambda l: l.born_at):
        span = f"strides {lineage.born_at}-" + (
            "now" if lineage.alive else str(lineage.died_at)
        )
        story = []
        if lineage.parents:
            story.append(f"split from / absorbed {lineage.parents}")
        if lineage.children:
            story.append(f"spawned / merged into {lineage.children}")
        merges = sum(1 for _, k in lineage.events if k.value == "merge")
        splits = sum(1 for _, k in lineage.events if k.value == "split")
        if merges:
            story.append(f"{merges} merges")
        if splits:
            story.append(f"{splits} splits")
        detail = "; ".join(story) if story else "quiet life"
        status = "alive" if lineage.alive else "gone"
        print(f"community {lineage.cluster_id:4d} [{span}, {status}]: {detail}")


if __name__ == "__main__":
    main()
