"""Ground-traffic monitoring — the paper's motivating DTG application.

Vehicles report positions on a grid of closely spaced roads; dense clusters
are congested road segments. The distance threshold is chosen well below the
road spacing so parallel roads are never conflated (the paper's
high-resolution requirement), and the density threshold follows the paper's
rule of thumb: the average number of points within eps.

The monitor reacts to cluster *evolution* events: a congestion cluster
emerging or expanding is a building jam; a split or dissipation means
traffic is easing somewhere.

Run:
    python examples/traffic_monitoring.py [n_points]
"""

import sys

from repro import DISC, WindowSpec
from repro.core.events import EvolutionKind
from repro.datasets.dtg import dtg_stream
from repro.window.sliding import SlidingWindow

ALERTS = {
    EvolutionKind.EMERGE: "new congestion zone",
    EvolutionKind.EXPAND: "congestion growing",
    EvolutionKind.MERGE: "jams merged into a corridor",
    EvolutionKind.SPLIT: "jam broke apart",
    EvolutionKind.SHRINK: "congestion easing",
    EvolutionKind.DISSIPATE: "congestion cleared",
}


def main() -> None:
    n_points = int(sys.argv[1]) if len(sys.argv) > 1 else 6000
    eps, tau = 0.05, 10  # eps far below the 0.5 road gap
    spec = WindowSpec(window=2000, stride=100)
    stream = dtg_stream(n_points, seed=11)

    disc = DISC(eps=eps, tau=tau)
    print(
        f"monitoring {n_points} vehicle reports "
        f"(window {spec.window}, stride {spec.stride}, eps={eps}, tau={tau})\n"
    )
    for i, (delta_in, delta_out) in enumerate(SlidingWindow(spec).slides(stream)):
        summary = disc.advance(delta_in, delta_out)
        interesting = [
            event for event in summary.events
            if event.kind in (EvolutionKind.EMERGE, EvolutionKind.MERGE,
                              EvolutionKind.SPLIT, EvolutionKind.DISSIPATE)
        ]
        if not interesting and i % 5 != 0:
            continue
        snapshot = disc.snapshot()
        print(f"t={i:3d}  {snapshot.num_clusters:3d} congested segments", end="")
        for event in interesting:
            print(f"  | {ALERTS[event.kind]} (clusters {event.cluster_ids})", end="")
        print()

    snapshot = disc.snapshot()
    print("\nheaviest congestion right now:")
    sizes = sorted(
        ((len(m), cid) for cid, m in snapshot.clusters().items()), reverse=True
    )
    for size, cid in sizes[:5]:
        print(f"  segment {cid}: {size} vehicles")


if __name__ == "__main__":
    main()
