"""Quickstart: incremental clustering of a drifting stream with DISC.

Run:
    python examples/quickstart.py
"""

from repro import DISC, Category, StreamPoint, WindowSpec
from repro.datasets.synthetic import drifting_blob_stream
from repro.window.sliding import SlidingWindow


def main() -> None:
    # Two thresholds, exactly like DBSCAN: eps is the neighbourhood radius,
    # tau the number of neighbours (self included) that makes a core.
    disc = DISC(eps=0.7, tau=5)

    # A sliding window of 500 points advancing 50 points at a time.
    spec = WindowSpec(window=500, stride=50)
    points: list[StreamPoint] = drifting_blob_stream(2000, seed=7)

    print(f"streaming {len(points)} points through a "
          f"{spec.window}/{spec.stride} window\n")
    for i, (delta_in, delta_out) in enumerate(SlidingWindow(spec).slides(points)):
        summary = disc.advance(delta_in, delta_out)
        snapshot = disc.snapshot()
        events = ", ".join(e.kind.value for e in summary.events) or "steady"
        print(
            f"stride {i:2d}: {snapshot.num_clusters} clusters, "
            f"{snapshot.count(Category.CORE):3d} cores, "
            f"{snapshot.count(Category.NOISE):3d} noise | {events}"
        )

    print("\nfinal clusters (id: size):")
    for cid, members in sorted(disc.snapshot().clusters().items()):
        print(f"  {cid}: {len(members)} points")


if __name__ == "__main__":
    main()
