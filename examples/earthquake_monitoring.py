"""Seismic activity clustering — the paper's IRIS workload in 4D.

Earthquake events are clustered in the paper's normalised coordinate space
(lat, lon, depth/10, magnitude*10), so a cluster is a group of events close
in space, depth AND magnitude — e.g. an aftershock sequence. The decade-long
sliding window advances as new events arrive; split events reveal when a
sequence differentiates into distinct zones.

Run:
    python examples/earthquake_monitoring.py [n_points]
"""

import sys
from statistics import mean

from repro import DISC, WindowSpec
from repro.datasets.iris_eq import iris_stream
from repro.window.sliding import SlidingWindow


def describe(cluster_points) -> str:
    lats = [c[0] for c in cluster_points]
    lons = [c[1] for c in cluster_points]
    mags = [c[3] / 10.0 for c in cluster_points]
    return (
        f"around ({mean(lats):+6.1f}, {mean(lons):+7.1f}), "
        f"mean magnitude {mean(mags):.1f}"
    )


def main() -> None:
    n_points = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    eps, tau = 3.0, 6
    spec = WindowSpec(window=2000, stride=200)
    stream = iris_stream(n_points, seed=5)

    disc = DISC(eps=eps, tau=tau)
    coords = {}
    for i, (delta_in, delta_out) in enumerate(SlidingWindow(spec).slides(stream)):
        for p in delta_in:
            coords[p.pid] = p.coords
        for p in delta_out:
            coords.pop(p.pid, None)
        summary = disc.advance(delta_in, delta_out)
        snapshot = disc.snapshot()
        print(
            f"window {i:2d}: {snapshot.num_clusters:2d} active seismic zones "
            f"({summary.num_neo_cores} cores gained, "
            f"{summary.num_ex_cores} lost)"
        )

    print("\nactive zones in the current window:")
    snapshot = disc.snapshot()
    clusters = sorted(
        snapshot.clusters().items(), key=lambda kv: -len(kv[1])
    )
    for cid, members in clusters[:8]:
        print(f"  zone {cid} ({len(members):4d} events) "
              f"{describe([coords[pid] for pid in members])}")


if __name__ == "__main__":
    main()
