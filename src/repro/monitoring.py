"""Streaming health monitoring: anomaly reports and runtime counters.

Streaming anomaly detection on top of DISC (the intro's third use case).

The paper motivates streaming density clustering with "outlier detection in
network communication": under DBSCAN semantics an anomaly is a *noise* point
— an observation with too few similar neighbours in the current window.
:class:`AnomalyMonitor` wraps any exact stream clusterer and turns its
per-stride output into debounced anomaly reports:

- a point is *suspicious* as soon as it is noise at the end of a stride;
- it is *reported* once it has stayed noise for ``confirm_strides``
  consecutive strides (new points often start as noise simply because their
  neighbourhood has not arrived yet — debouncing removes that churn);
- a report is *retracted* automatically if the point later joins a cluster;
- a report is *expired* when its point leaves the clusterer's snapshot —
  however it left. Departures listed in ``delta_out`` are the common route,
  but a resilient runtime can drop points through other doors (dead-letter
  quarantine, a rebuild after an invariant failure, a checkpoint restore to
  an earlier stride), so expiry reconciles against snapshot membership
  rather than trusting the delta alone.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.common.points import StreamPoint
from repro.common.snapshot import Category


@dataclass
class AnomalyReport:
    """Anomalies confirmed / retracted / expired by one window advance.

    ``expired`` lists previously reported anomalies whose points are no
    longer tracked by the clusterer at all (left the window or were evicted
    by the runtime); they were neither vindicated nor retracted.
    """

    stride: int
    confirmed: list[int] = field(default_factory=list)
    retracted: list[int] = field(default_factory=list)
    expired: list[int] = field(default_factory=list)


class AnomalyMonitor:
    """Debounced noise-point reporting over a stream clusterer.

    Args:
        clusterer: any object with ``advance`` and ``snapshot`` (DISC,
            IncDBSCAN, ...). The monitor owns driving it.
        confirm_strides: how many consecutive strides a point must remain
            noise before it is reported (>= 1).
    """

    def __init__(self, clusterer, confirm_strides: int = 2) -> None:
        if confirm_strides < 1:
            raise ValueError(
                f"confirm_strides must be >= 1, got {confirm_strides}"
            )
        self.clusterer = clusterer
        self.confirm_strides = confirm_strides
        self._noise_streak: dict[int, int] = {}
        self._reported: set[int] = set()
        self._stride = 0

    def advance(
        self,
        delta_in: Sequence[StreamPoint],
        delta_out: Sequence[StreamPoint] = (),
    ) -> AnomalyReport:
        """Advance the underlying clusterer and update anomaly state."""
        self.clusterer.advance(delta_in, delta_out)
        snapshot = self.clusterer.snapshot()
        report = AnomalyReport(stride=self._stride)

        gone = {sp.pid for sp in delta_out}
        for pid in gone:
            self._noise_streak.pop(pid, None)
            self._reported.discard(pid)

        categories = snapshot.categories
        still_noise: dict[int, int] = {}
        for pid, category in categories.items():
            if category is Category.NOISE:
                streak = self._noise_streak.get(pid, 0) + 1
                still_noise[pid] = streak
                if streak == self.confirm_strides and pid not in self._reported:
                    self._reported.add(pid)
                    report.confirmed.append(pid)
            elif pid in self._reported:
                # A previously reported anomaly joined a cluster after all.
                self._reported.discard(pid)
                report.retracted.append(pid)
        # Reconcile against snapshot membership: a reported point the
        # clusterer no longer tracks — evicted through any route that never
        # appeared in delta_out — must not stand as an anomaly forever.
        for pid in list(self._reported):
            if pid not in categories:
                self._reported.discard(pid)
                report.expired.append(pid)
        self._noise_streak = still_noise
        self._stride += 1
        report.confirmed.sort()
        report.retracted.sort()
        report.expired.sort()
        return report

    @property
    def active_anomalies(self) -> frozenset[int]:
        """Points currently standing as confirmed anomalies."""
        return frozenset(self._reported)

    def suspicion_of(self, pid: int) -> int:
        """How many consecutive strides ``pid`` has been noise (0 if none)."""
        return self._noise_streak.get(pid, 0)


def runtime_report(stats) -> str:
    """Render a :class:`~repro.runtime.stats.RuntimeStats` for operators.

    One line per concern, stable ordering, suitable for logs and the CLI's
    end-of-run summary. Fault reasons appear only when they occurred.
    """
    lines = [
        f"input: {stats.points_seen} seen, {stats.points_admitted} admitted, "
        f"{stats.points_clamped} clamped, "
        f"{stats.points_dead_lettered} dead-lettered",
        f"progress: {stats.strides} strides, "
        f"{stats.checkpoints_written} checkpoints written",
    ]
    if stats.faults:
        faults = ", ".join(
            f"{reason}={count}" for reason, count in sorted(stats.faults.items())
        )
        lines.append(f"faults: {faults}")
    if stats.resumes:
        lines.append(
            f"recovery: resumed {stats.resumes}x "
            f"(last at stride {stats.resumed_at_stride})"
        )
    if stats.invariant_failures:
        lines.append(
            f"integrity: {stats.invariant_failures} invariant failures, "
            f"{stats.rebuilds} full re-clusters"
        )
    return "\n".join(lines)
