"""Generic synthetic streams for tests and examples."""

from __future__ import annotations

import math
import random

from repro.common.points import StreamPoint

Coords = tuple[float, ...]


def blob_stream(
    n_points: int,
    centers: list[Coords],
    *,
    spread: float = 0.5,
    noise_fraction: float = 0.1,
    bounds: tuple[float, float] = (-10.0, 10.0),
    seed: int = 0,
    start_id: int = 0,
) -> list[StreamPoint]:
    """Points drawn from Gaussian blobs plus uniform background noise.

    Args:
        n_points: total stream length.
        centers: blob centres (all same dimensionality).
        spread: standard deviation of each blob.
        noise_fraction: probability a point is uniform noise instead.
        bounds: noise bounding box per dimension.
        seed: RNG seed (the stream is fully deterministic).
        start_id: first point id.
    """
    rng = random.Random(seed)
    dim = len(centers[0])
    points = []
    for i in range(n_points):
        if rng.random() < noise_fraction:
            coords = tuple(rng.uniform(*bounds) for _ in range(dim))
        else:
            center = rng.choice(centers)
            coords = tuple(c + rng.gauss(0.0, spread) for c in center)
        points.append(StreamPoint(start_id + i, coords, float(start_id + i)))
    return points


def drifting_blob_stream(
    n_points: int,
    n_blobs: int = 4,
    *,
    dim: int = 2,
    spread: float = 0.4,
    drift: float = 0.002,
    noise_fraction: float = 0.05,
    seed: int = 0,
    start_id: int = 0,
) -> list[StreamPoint]:
    """Gaussian blobs whose centres drift over time.

    Drifting centres exercise every evolution type — clusters emerge where a
    blob arrives, dissipate where it left, and split/merge as blobs cross.
    """
    rng = random.Random(seed)
    centers = [
        [rng.uniform(-5.0, 5.0) for _ in range(dim)] for _ in range(n_blobs)
    ]
    velocities = [
        [rng.uniform(-1.0, 1.0) for _ in range(dim)] for _ in range(n_blobs)
    ]
    points = []
    for i in range(n_points):
        for center, velocity in zip(centers, velocities):
            for d in range(dim):
                center[d] += drift * velocity[d]
                if abs(center[d]) > 6.0:
                    velocity[d] = -velocity[d]
        if rng.random() < noise_fraction:
            coords = tuple(rng.uniform(-7.0, 7.0) for _ in range(dim))
        else:
            center = rng.choice(centers)
            coords = tuple(c + rng.gauss(0.0, spread) for c in center)
        points.append(StreamPoint(start_id + i, coords, float(start_id + i)))
    return points


def uniform_noise(
    n_points: int,
    *,
    dim: int = 2,
    bounds: tuple[float, float] = (0.0, 1.0),
    seed: int = 0,
    start_id: int = 0,
) -> list[StreamPoint]:
    """Pure uniform noise — the degenerate no-cluster workload."""
    rng = random.Random(seed)
    return [
        StreamPoint(
            start_id + i,
            tuple(rng.uniform(*bounds) for _ in range(dim)),
            float(start_id + i),
        )
        for i in range(n_points)
    ]


def two_ring_stream(
    n_points: int,
    *,
    radius_inner: float = 2.0,
    radius_outer: float = 5.0,
    jitter: float = 0.15,
    seed: int = 0,
    start_id: int = 0,
) -> list[StreamPoint]:
    """Two concentric rings — the classic non-spherical-cluster workload.

    K-means-style methods cannot separate these; density-based methods can
    (the motivation of the paper's introduction).
    """
    rng = random.Random(seed)
    points = []
    for i in range(n_points):
        radius = radius_inner if rng.random() < 0.5 else radius_outer
        angle = rng.uniform(0.0, 2.0 * math.pi)
        coords = (
            radius * math.cos(angle) + rng.gauss(0.0, jitter),
            radius * math.sin(angle) + rng.gauss(0.0, jitter),
        )
        points.append(StreamPoint(start_id + i, coords, float(start_id + i)))
    return points
