"""Reading and writing point streams and clustering results.

Two interchange formats:

- **CSV**: one point per line. With a header, the columns ``pid`` and
  ``time`` are recognised by name and every other column is a coordinate (in
  header order). Without a header, all columns are coordinates and pid/time
  default to the line number.
- **JSONL**: one JSON object per line with keys ``coords`` (required),
  ``pid`` and ``time`` (optional, defaulting to the line number).

Label output is CSV with columns ``pid,label,category`` (noise rows carry
label -1), so results can be joined back onto the input stream.
"""

from __future__ import annotations

import csv
import json
import os
from collections.abc import Iterable, Iterator
from typing import NamedTuple

from repro.common.errors import ReproError
from repro.common.points import StreamPoint
from repro.common.snapshot import Clustering


class StreamFormatError(ReproError):
    """Raised when an input file cannot be parsed as a point stream."""


class MalformedRecord(NamedTuple):
    """One input record that could not be parsed as a stream point.

    Yielded by :func:`read_stream_lenient` in place of a
    :class:`~repro.common.points.StreamPoint`, so a downstream fault policy
    (``repro.runtime.policies``) can decide whether to raise, skip, or
    dead-letter it instead of the reader aborting the whole stream.
    """

    line_no: int
    raw: str
    error: str


def read_stream(path: str, fmt: str | None = None) -> Iterator[StreamPoint]:
    """Yield :class:`StreamPoint`s from a CSV or JSONL file.

    Args:
        path: input file.
        fmt: "csv" or "jsonl"; inferred from the extension when omitted.
    """
    if fmt is None:
        fmt = _infer_format(path)
    if fmt == "csv":
        yield from _read_csv(path)
    elif fmt == "jsonl":
        yield from _read_jsonl(path)
    else:
        raise StreamFormatError(f"unknown stream format: {fmt}")


def read_stream_lenient(
    path: str, fmt: str | None = None
) -> Iterator[StreamPoint | MalformedRecord]:
    """Like :func:`read_stream`, but yield bad records instead of raising.

    Rows that fail to parse come out as :class:`MalformedRecord` entries in
    stream position, leaving the skip/raise decision to the caller (see
    ``repro.runtime.policies.InputGuard``). File-level problems — a missing
    file, an unknown format — still raise :class:`StreamFormatError`.
    """
    if fmt is None:
        fmt = _infer_format(path)
    if fmt == "csv":
        yield from _read_csv(path, lenient=True)
    elif fmt == "jsonl":
        yield from _read_jsonl(path, lenient=True)
    else:
        raise StreamFormatError(f"unknown stream format: {fmt}")


def _infer_format(path: str) -> str:
    ext = os.path.splitext(path)[1].lower()
    if ext in (".csv", ".txt"):
        return "csv"
    if ext in (".jsonl", ".ndjson", ".json"):
        return "jsonl"
    raise StreamFormatError(
        f"cannot infer stream format from {path!r}; pass fmt explicitly"
    )


def _read_csv(
    path: str, lenient: bool = False
) -> Iterator[StreamPoint | MalformedRecord]:
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            first = next(reader)
        except StopIteration:
            return
        header = _detect_header(first)
        if header is None:
            # No header: the first row is data.
            yield _guarded(_csv_point, first, 0, None, lenient=lenient)
            for i, row in enumerate(reader, start=1):
                if row:
                    yield _guarded(_csv_point, row, i, None, lenient=lenient)
        else:
            for i, row in enumerate(reader):
                if row:
                    yield _guarded(_csv_point, row, i, header, lenient=lenient)


def _guarded(
    parse, row, line_no: int, header, *, lenient: bool
) -> StreamPoint | MalformedRecord:
    """Run one row parser, converting failures when ``lenient``."""
    try:
        return parse(row, line_no, header)
    except StreamFormatError as exc:
        if not lenient:
            raise
        return MalformedRecord(line_no, ",".join(map(str, row)), str(exc))


def _detect_header(row: list[str]) -> dict[str, int] | None:
    """Return column mapping when the first row is a header, else None."""
    try:
        [float(cell) for cell in row]
    except ValueError:
        return {name.strip().lower(): i for i, name in enumerate(row)}
    return None


def _csv_point(
    row: list[str], line_no: int, header: dict[str, int] | None
) -> StreamPoint:
    try:
        if header is None:
            coords = tuple(float(cell) for cell in row)
            return StreamPoint(line_no, coords, float(line_no))
        pid = int(float(row[header["pid"]])) if "pid" in header else line_no
        time = float(row[header["time"]]) if "time" in header else float(line_no)
        special = {header.get("pid"), header.get("time")}
        coords = tuple(
            float(cell)
            for i, cell in enumerate(row)
            if i not in special
        )
        return StreamPoint(pid, coords, time)
    except (ValueError, IndexError) as exc:
        raise StreamFormatError(
            f"bad CSV row {line_no}: {row!r} ({exc})"
        ) from exc


def _read_jsonl(
    path: str, lenient: bool = False
) -> Iterator[StreamPoint | MalformedRecord]:
    with open(path) as handle:
        for i, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                coords = tuple(float(c) for c in obj["coords"])
                pid = int(obj.get("pid", i))
                time = float(obj.get("time", i))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                if lenient:
                    yield MalformedRecord(i, line[:200], str(exc))
                    continue
                raise StreamFormatError(
                    f"bad JSONL line {i}: {line[:80]!r} ({exc})"
                ) from exc
            yield StreamPoint(pid, coords, time)


def write_stream(path: str, points: Iterable[StreamPoint], fmt: str | None = None) -> int:
    """Write points to a CSV (with header) or JSONL file; returns the count."""
    if fmt is None:
        fmt = _infer_format(path)
    count = 0
    if fmt == "csv":
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            header_written = False
            for point in points:
                if not header_written:
                    dims = [f"x{d}" for d in range(len(point.coords))]
                    writer.writerow(["pid", "time", *dims])
                    header_written = True
                writer.writerow([point.pid, point.time, *point.coords])
                count += 1
    elif fmt == "jsonl":
        with open(path, "w") as handle:
            for point in points:
                handle.write(
                    json.dumps(
                        {
                            "pid": point.pid,
                            "time": point.time,
                            "coords": list(point.coords),
                        }
                    )
                )
                handle.write("\n")
                count += 1
    else:
        raise StreamFormatError(f"unknown stream format: {fmt}")
    return count


def write_labels(path: str, clustering: Clustering) -> int:
    """Write ``pid,label,category`` CSV rows; returns the row count."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["pid", "label", "category"])
        count = 0
        for pid in sorted(clustering.categories):
            writer.writerow(
                [
                    pid,
                    clustering.label_of(pid),
                    clustering.category_of(pid).value,
                ]
            )
            count += 1
    return count
