"""DTG simulator — digital tachograph records on a metropolitan road grid.

The real DTG dataset (300M records from commercial vehicles in a Korean
metropolitan city) is proprietary. The evaluation leans on two of its
structural properties, both reproduced here:

- vehicles live on a *grid of closely spaced roads*, so the distance
  threshold must be "small enough to distinguish roads in close proximity"
  (the high-resolution motivation of Figures 10-12);
- density is very high around congestion hotspots (the paper's tau = 372 is
  "the average number of points within the distance threshold"), so clusters
  are dense road segments that build up and drain over time.

Coordinates play the role of (plat, plon).
"""

from __future__ import annotations

import random

from repro.common.points import StreamPoint


def dtg_stream(
    n_points: int,
    *,
    city_size: float = 10.0,
    road_gap: float = 0.5,
    n_hotspots: int = 12,
    hotspot_length: float = 1.2,
    congestion_fraction: float = 0.75,
    gps_jitter: float = 0.01,
    drift: float = 0.0005,
    seed: int = 0,
    start_id: int = 0,
) -> list[StreamPoint]:
    """Generate vehicle position records on a road grid.

    Args:
        n_points: stream length.
        city_size: the city covers ``[0, city_size]^2``.
        road_gap: spacing between parallel roads; an eps used against this
            stream should stay well below it (the paper's resolution story).
        n_hotspots: simultaneous congestion zones.
        hotspot_length: congested stretch length along the road.
        congestion_fraction: fraction of records emitted inside hotspots;
            the rest is free-flow traffic spread over the whole grid.
        gps_jitter: lateral GPS noise (much smaller than road_gap).
        drift: how fast hotspot centres crawl along their roads per record —
            congestion builds up at one end and drains at the other, driving
            cluster expansion/shrink/split/merge.
        seed: RNG seed.
        start_id: first point id.
    """
    rng = random.Random(seed)
    n_roads = int(city_size / road_gap) + 1

    def random_road() -> tuple[bool, float]:
        """(horizontal?, fixed coordinate of the road)."""
        return rng.random() < 0.5, rng.randrange(n_roads) * road_gap

    hotspots = []
    for _ in range(n_hotspots):
        horizontal, fixed = random_road()
        hotspots.append(
            {
                "horizontal": horizontal,
                "fixed": fixed,
                "along": rng.uniform(0.0, city_size),
                "velocity": rng.choice([-1.0, 1.0]),
            }
        )

    points = []
    for i in range(n_points):
        spot = rng.choice(hotspots)
        spot["along"] += drift * spot["velocity"]
        if not 0.0 <= spot["along"] <= city_size:
            spot["velocity"] = -spot["velocity"]
            spot["along"] = min(max(spot["along"], 0.0), city_size)
        if rng.random() < congestion_fraction:
            along = spot["along"] + rng.uniform(
                -hotspot_length / 2.0, hotspot_length / 2.0
            )
            fixed = spot["fixed"] + rng.gauss(0.0, gps_jitter)
            horizontal = spot["horizontal"]
        else:
            horizontal, road = random_road()
            along = rng.uniform(0.0, city_size)
            fixed = road + rng.gauss(0.0, gps_jitter)
        coords = (along, fixed) if horizontal else (fixed, along)
        pid = start_id + i
        points.append(StreamPoint(pid, coords, float(pid)))
    return points
