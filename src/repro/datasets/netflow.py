"""Network-communication simulator for the anomaly-detection use case.

The paper's introduction cites "outlier detection in network communication"
as a streaming-clustering application. This generator emits flow records in
a 3D feature space (log bytes, log duration, destination-port bucket):
normal traffic concentrates around a handful of service profiles (web, dns,
ssh, backup, ...) while injected anomalies — scans, exfiltration bursts —
land far from every profile. Ground truth marks which records are anomalous.
"""

from __future__ import annotations

import random

from repro.common.points import StreamPoint


def netflow_stream(
    n_points: int,
    *,
    n_profiles: int = 6,
    anomaly_rate: float = 0.02,
    profile_spread: float = 0.25,
    seed: int = 0,
    start_id: int = 0,
) -> tuple[list[StreamPoint], set[int]]:
    """Generate flow records plus the set of anomalous point ids.

    Args:
        n_points: stream length.
        n_profiles: distinct normal service profiles.
        anomaly_rate: fraction of injected anomalies.
        profile_spread: within-profile standard deviation.
        seed: RNG seed.
        start_id: first point id.

    Returns:
        ``(points, anomaly_ids)``.
    """
    rng = random.Random(seed)
    profiles = [
        (
            rng.uniform(4.0, 14.0),  # log2 bytes
            rng.uniform(0.0, 8.0),  # log2 duration ms
            rng.uniform(0.0, 10.0),  # port bucket
        )
        for _ in range(n_profiles)
    ]
    points: list[StreamPoint] = []
    anomalies: set[int] = set()
    for i in range(n_points):
        pid = start_id + i
        if rng.random() < anomaly_rate:
            # Anomalies avoid all profiles: sample until far from each.
            while True:
                candidate = (
                    rng.uniform(0.0, 20.0),
                    rng.uniform(0.0, 12.0),
                    rng.uniform(0.0, 14.0),
                )
                far = all(
                    sum((a - b) ** 2 for a, b in zip(candidate, profile)) > 4.0
                    for profile in profiles
                )
                if far:
                    break
            anomalies.add(pid)
            coords = candidate
        else:
            profile = rng.choice(profiles)
            coords = tuple(
                c + rng.gauss(0.0, profile_spread) for c in profile
            )
        points.append(StreamPoint(pid, coords, float(pid)))
    return points, anomalies
