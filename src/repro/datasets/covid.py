"""COVID-19 geo-tweet simulator — world-wide point bursts around cities.

The real dataset holds 210K geo-tagged tweets about the coronavirus
(March-September 2020). Structurally it is a sparse, world-spanning 2D point
cloud concentrated around population centres, with activity shifting between
regions over time as outbreaks move. The simulator draws tweets from a
mixture over synthetic "cities" whose activity weights drift with time.
Coordinates play the role of (plat, plon) in degrees, so the paper's
eps = 1.2 (about one degree) groups tweets by metropolitan region.
"""

from __future__ import annotations

import random

from repro.common.points import StreamPoint


def covid_stream(
    n_points: int,
    *,
    n_cities: int = 40,
    city_spread: float = 0.35,
    noise_fraction: float = 0.12,
    wave_period: int = 5000,
    seed: int = 0,
    start_id: int = 0,
) -> list[StreamPoint]:
    """Generate geo-tagged tweet locations.

    Args:
        n_points: stream length.
        n_cities: synthetic population centres scattered over the globe.
        city_spread: Gaussian spread of tweets around a city (degrees).
        noise_fraction: tweets from sparsely populated areas.
        wave_period: points per epidemic "wave"; each wave re-weights which
            cities are active, so clusters emerge and dissipate regionally.
        seed: RNG seed.
        start_id: first point id.
    """
    rng = random.Random(seed)
    cities = [
        (rng.uniform(-60.0, 70.0), rng.uniform(-180.0, 180.0))
        for _ in range(n_cities)
    ]
    weights = [rng.random() for _ in range(n_cities)]

    points = []
    for i in range(n_points):
        if i % wave_period == 0 and i > 0:
            # A new wave: activity shifts to a different set of regions.
            weights = [rng.random() ** 2 for _ in range(n_cities)]
        if rng.random() < noise_fraction:
            coords = (rng.uniform(-60.0, 70.0), rng.uniform(-180.0, 180.0))
        else:
            city = rng.choices(range(n_cities), weights=weights)[0]
            lat, lon = cities[city]
            coords = (
                lat + rng.gauss(0.0, city_spread),
                lon + rng.gauss(0.0, city_spread),
            )
        pid = start_id + i
        points.append(StreamPoint(pid, coords, float(pid)))
    return points
