"""IRIS simulator — global earthquake events in 4D.

The real IRIS catalogue covers 1.8M earthquakes (1960-2019), used by the
paper in 4D normalised coordinates ``(plat, plon, pdep/10, pmag*10)``. The
structure the evaluation relies on: events concentrate along fault arcs
(curved 1D structures in lat/lon), depth correlates with the fault, and
magnitudes follow a skewed (Gutenberg-Richter-like) distribution so the
magnitude axis separates common small events from rare large ones. Aftershock
sequences create temporal density bursts.
"""

from __future__ import annotations

import math
import random

from repro.common.points import StreamPoint


def iris_stream(
    n_points: int,
    *,
    n_faults: int = 10,
    fault_span: float = 40.0,
    fault_jitter: float = 0.8,
    depth_scale: float = 10.0,  # already divided by 10 as in the paper
    aftershock_probability: float = 0.35,
    seed: int = 0,
    start_id: int = 0,
) -> list[StreamPoint]:
    """Generate earthquake events as (lat, lon, depth/10, magnitude*10).

    Args:
        n_points: stream length.
        n_faults: synthetic fault arcs.
        fault_span: length of each arc in degrees.
        fault_jitter: spread of events around the arc.
        depth_scale: typical (already scaled) event depth per fault.
        aftershock_probability: chance an event repeats near the previous
            one, producing bursty local densities.
        seed: RNG seed.
        start_id: first point id.
    """
    rng = random.Random(seed)
    faults = []
    for _ in range(n_faults):
        faults.append(
            {
                "lat0": rng.uniform(-50.0, 50.0),
                "lon0": rng.uniform(-160.0, 160.0),
                "heading": rng.uniform(0.0, 2.0 * math.pi),
                "curvature": rng.uniform(-0.02, 0.02),
                "depth": rng.uniform(0.5, depth_scale),
            }
        )

    def draw_event() -> tuple[float, float, float, float]:
        fault = rng.choice(faults)
        t = rng.uniform(0.0, fault_span)
        heading = fault["heading"] + fault["curvature"] * t
        lat = fault["lat0"] + t * math.sin(heading) + rng.gauss(0.0, fault_jitter)
        lon = fault["lon0"] + t * math.cos(heading) + rng.gauss(0.0, fault_jitter)
        depth = max(0.0, fault["depth"] + rng.gauss(0.0, 0.5))
        # Gutenberg-Richter-like: many small events, few large; scaled by 10.
        magnitude = min(9.5, 2.0 + rng.expovariate(1.2)) * 10.0
        return lat, lon, depth, magnitude

    points = []
    previous: tuple[float, float, float, float] | None = None
    for i in range(n_points):
        if previous is not None and rng.random() < aftershock_probability:
            lat, lon, depth, magnitude = previous
            event = (
                lat + rng.gauss(0.0, 0.4),
                lon + rng.gauss(0.0, 0.4),
                max(0.0, depth + rng.gauss(0.0, 0.3)),
                max(20.0, magnitude - rng.uniform(0.0, 8.0)),
            )
        else:
            event = draw_event()
        previous = event
        pid = start_id + i
        points.append(StreamPoint(pid, event, float(pid)))
    return points
