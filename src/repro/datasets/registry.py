"""Dataset registry: the paper's Table II, scaled to this substrate.

The paper ran Java on a 64 GB Ryzen testbed with windows of up to 2M points;
this pure-Python reproduction scales windows down (~100x) while keeping every
stride-to-window ratio, so the evaluation's relative comparisons carry over.
Both the paper's original parameters and the scaled ones are recorded so
EXPERIMENTS.md can show them side by side.

Density thresholds follow the paper's methodology: for DTG, tau is the
average number of points within eps of a point (the ground-traffic-monitoring
rule); the other datasets use K-distance-graph-style values that keep a
similar core fraction to what their sources produce.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.common.points import StreamPoint
from repro.datasets.covid import covid_stream
from repro.datasets.dtg import dtg_stream
from repro.datasets.geolife import geolife_stream
from repro.datasets.iris_eq import iris_stream
from repro.datasets.maze import maze_stream


@dataclass(frozen=True)
class DatasetInfo:
    """One evaluation dataset with its (scaled) Table II parameters."""

    name: str
    dim: int
    eps: float
    tau: int
    window: int
    loader: Callable[..., list[StreamPoint]]
    paper_eps: float
    paper_tau: int
    paper_window: str
    description: str

    def load(self, n_points: int, seed: int = 0) -> list[StreamPoint]:
        """Generate ``n_points`` stream points deterministically."""
        return self.loader(n_points, seed=seed)


def _maze_points(n_points: int, seed: int = 0) -> list[StreamPoint]:
    points, _ = maze_stream(n_points, seed=seed)
    return points


DATASETS: dict[str, DatasetInfo] = {
    "dtg": DatasetInfo(
        name="DTG",
        dim=2,
        eps=0.05,
        tau=10,
        window=2000,
        loader=dtg_stream,
        paper_eps=0.002,
        paper_tau=372,
        paper_window="2M (~10 min)",
        description="vehicle tachograph records on a dense road grid",
    ),
    "geolife": DatasetInfo(
        name="GeoLife",
        dim=3,
        eps=0.01,
        tau=7,
        window=2000,
        loader=geolife_stream,
        paper_eps=0.01,
        paper_tau=7,
        paper_window="200K (~fortnight)",
        description="3D GPS trajectories of 182 users",
    ),
    "covid": DatasetInfo(
        name="COVID-19",
        dim=2,
        eps=1.2,
        tau=5,
        window=1500,
        loader=covid_stream,
        paper_eps=1.2,
        paper_tau=5,
        paper_window="15K (~fortnight)",
        description="geo-tagged tweets around world population centres",
    ),
    "iris": DatasetInfo(
        name="IRIS",
        dim=4,
        eps=3.0,
        tau=6,
        window=2000,
        loader=iris_stream,
        paper_eps=2.0,
        paper_tau=9,
        paper_window="200K (~decade)",
        description="4D earthquake events along fault arcs",
    ),
    "maze": DatasetInfo(
        name="Maze",
        dim=2,
        eps=0.8,
        tau=4,
        window=2000,
        loader=_maze_points,
        paper_eps=0.8,
        paper_tau=4,
        paper_window="up to 480K",
        description="100 spreading random-walk trajectories (paper recipe)",
    ),
}


def load_dataset(name: str, n_points: int, seed: int = 0) -> list[StreamPoint]:
    """Generate a named dataset's stream (case-insensitive key)."""
    return DATASETS[name.lower()].load(n_points, seed)
