"""Dataset simulators standing in for the paper's evaluation data.

The paper's four real datasets (DTG, GeoLife, COVID-19, IRIS) are proprietary
or unavailable offline; each has a generator here reproducing the structural
properties the evaluation depends on (see DESIGN.md §5). The Maze dataset is
synthetic in the paper too and follows its published recipe exactly.

All generators are deterministic given a seed and return
:class:`~repro.common.points.StreamPoint` lists in arrival order.
"""

from repro.datasets.covid import covid_stream
from repro.datasets.dtg import dtg_stream
from repro.datasets.geolife import geolife_stream
from repro.datasets.iris_eq import iris_stream
from repro.datasets.maze import maze_stream
from repro.datasets.netflow import netflow_stream
from repro.datasets.registry import DATASETS, DatasetInfo, load_dataset
from repro.datasets.synthetic import blob_stream, drifting_blob_stream, uniform_noise

__all__ = [
    "DATASETS",
    "DatasetInfo",
    "blob_stream",
    "covid_stream",
    "drifting_blob_stream",
    "dtg_stream",
    "geolife_stream",
    "iris_stream",
    "load_dataset",
    "maze_stream",
    "netflow_stream",
    "uniform_noise",
]
