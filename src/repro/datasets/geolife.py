"""GeoLife simulator — 3D GPS trajectories of many users.

The real GeoLife dataset holds 24.8M GPS records of 182 users over four
years, used by the paper in 3D normalised coordinates
``(plat, plon, palt / 300000)`` — i.e. the altitude axis is squashed to a
tiny range relative to the horizontal extent. The simulator reproduces that
geometry: users random-walk around a handful of activity areas (home, work,
commute corridors), emitting bursts of samples, with altitude a small, slowly
varying third coordinate.
"""

from __future__ import annotations

import random

from repro.common.points import StreamPoint


def geolife_stream(
    n_points: int,
    *,
    n_users: int = 182,
    n_areas: int = 8,
    area_extent: float = 1.0,
    walk_step: float = 0.004,
    relocate_probability: float = 0.002,
    burst_length: int = 20,
    altitude_scale: float = 0.003,
    seed: int = 0,
    start_id: int = 0,
) -> list[StreamPoint]:
    """Generate user-trajectory records in (lat, lon, scaled-altitude).

    Args:
        n_points: stream length.
        n_users: simulated users (182 in GeoLife).
        n_areas: shared activity areas users gravitate to.
        area_extent: lat/lon span of the covered region.
        walk_step: per-sample movement.
        relocate_probability: chance per sample a user jumps to a new
            activity area (teleports between recording sessions).
        burst_length: consecutive samples per user before the stream moves
            on to another user (GPS loggers record in bursts).
        altitude_scale: scale of the squashed third coordinate.
        seed: RNG seed.
        start_id: first point id.
    """
    rng = random.Random(seed)
    areas = [
        (rng.uniform(0.0, area_extent), rng.uniform(0.0, area_extent))
        for _ in range(n_areas)
    ]
    users = []
    for _ in range(n_users):
        ax, ay = rng.choice(areas)
        users.append(
            {
                "pos": [ax + rng.gauss(0.0, 0.02), ay + rng.gauss(0.0, 0.02)],
                "alt": rng.uniform(0.0, altitude_scale),
            }
        )

    points = []
    current_user = 0
    for i in range(n_points):
        if i % burst_length == 0:
            current_user = rng.randrange(n_users)
        user = users[current_user]
        if rng.random() < relocate_probability:
            ax, ay = rng.choice(areas)
            user["pos"] = [ax + rng.gauss(0.0, 0.02), ay + rng.gauss(0.0, 0.02)]
        user["pos"][0] += rng.gauss(0.0, walk_step)
        user["pos"][1] += rng.gauss(0.0, walk_step)
        user["alt"] = min(
            max(user["alt"] + rng.gauss(0.0, altitude_scale / 50.0), 0.0),
            altitude_scale,
        )
        pid = start_id + i
        coords = (user["pos"][0], user["pos"][1], user["alt"])
        points.append(StreamPoint(pid, coords, float(pid)))
    return points
