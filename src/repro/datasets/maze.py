"""The Maze dataset, following the paper's own recipe (Section VI-E).

"The synthetic dataset Maze was created by placing 100 random seeds in the
2-dimensional space. They spread out over time such that the trajectory of
each seed was mapped to a single cluster. When the window size increased,
trajectories became longer and closer to one another, and consequently the
shape of clusters grew more complicated. We manually labeled each point in
the Maze dataset so that each trajectory could be identified clearly as a
separate cluster."

Each seed performs an axis-aligned random walk (corridor-like trajectories —
hence "maze"); emitted points carry small jitter so the trajectory is a dense
band. Ground truth: the seed index.
"""

from __future__ import annotations

import random

from repro.common.points import StreamPoint


def maze_stream(
    n_points: int,
    *,
    n_seeds: int = 100,
    extent: float = 250.0,
    step: float = 0.35,
    jitter: float = 0.05,
    turn_probability: float = 0.05,
    seed: int = 0,
    start_id: int = 0,
) -> tuple[list[StreamPoint], dict[int, int]]:
    """Generate the Maze stream.

    Args:
        n_points: total stream length (walkers emit round-robin).
        n_seeds: number of trajectories (100 in the paper).
        extent: side of the square arena the walkers bounce inside.
        step: distance a walker advances per emitted point; with the default
            jitter this keeps consecutive points within a typical Maze eps.
        jitter: Gaussian noise on each emitted point.
        turn_probability: chance per step of turning 90 degrees, producing
            the maze-like corridors.
        seed: RNG seed.
        start_id: first point id.

    Returns:
        ``(points, truth)`` where truth maps point id -> seed index.
    """
    rng = random.Random(seed)
    positions = [
        [rng.uniform(0.0, extent), rng.uniform(0.0, extent)]
        for _ in range(n_seeds)
    ]
    directions = [rng.choice([(1, 0), (-1, 0), (0, 1), (0, -1)]) for _ in range(n_seeds)]

    points: list[StreamPoint] = []
    truth: dict[int, int] = {}
    for i in range(n_points):
        walker = i % n_seeds
        pos = positions[walker]
        if rng.random() < turn_probability:
            dx, dy = directions[walker]
            directions[walker] = rng.choice([(dy, dx), (-dy, -dx)])
        dx, dy = directions[walker]
        pos[0] += dx * step
        pos[1] += dy * step
        # Bounce off the arena walls by reversing direction.
        if not 0.0 <= pos[0] <= extent:
            pos[0] = min(max(pos[0], 0.0), extent)
            directions[walker] = (-dx, dy)
        if not 0.0 <= pos[1] <= extent:
            pos[1] = min(max(pos[1], 0.0), extent)
            directions[walker] = (dx, -dy)
        pid = start_id + i
        coords = (
            pos[0] + rng.gauss(0.0, jitter),
            pos[1] + rng.gauss(0.0, jitter),
        )
        points.append(StreamPoint(pid, coords, float(pid)))
        truth[pid] = walker
    return points, truth
