"""The paper's primary contribution: the DISC incremental clusterer.

Submodules follow the paper's structure: :mod:`repro.core.collect` is the
COLLECT step (Algorithm 1), :mod:`repro.core.cluster` is the CLUSTER step
(Algorithm 2), :mod:`repro.core.msbfs` is Multi-Starter BFS (Algorithm 3),
and :mod:`repro.core.disc` ties them together behind the public
:class:`~repro.core.disc.DISC` class.
"""

from repro.core.disc import DISC
from repro.core.events import EvolutionEvent, EvolutionKind, StrideSummary
from repro.core.store import PointStore, RecordMap, RecordView
from repro.core.tracker import ClusterTracker, Lineage

__all__ = [
    "DISC",
    "ClusterTracker",
    "EvolutionEvent",
    "EvolutionKind",
    "Lineage",
    "PointStore",
    "RecordMap",
    "RecordView",
    "StrideSummary",
]
