"""The public DISC clusterer (the paper's primary contribution).

One :meth:`DISC.advance` call processes one window advance: the COLLECT step
(Algorithm 1) updates neighbour counts and finds ex-cores and neo-cores; the
CLUSTER step (Algorithm 2) consolidates them into reachability classes and
updates cluster labels, using MS-BFS (Algorithm 3) and epoch-based R-tree
probing (Algorithm 4) unless the ablation knobs turn them off.

Example:
    >>> from repro import DISC
    >>> from repro.common.points import StreamPoint
    >>> disc = DISC(eps=1.0, tau=3)
    >>> batch = [StreamPoint(i, (float(i) * 0.1, 0.0)) for i in range(10)]
    >>> summary = disc.advance(batch, [])
    >>> disc.snapshot().num_clusters
    1
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.common.config import ClusteringParams
from repro.common.points import StreamPoint
from repro.common.snapshot import Clustering
from repro.core.cluster import process_ex_cores, process_neo_cores, repair_anchors
from repro.core.collect import collect
from repro.core.events import StrideSummary
from repro.core.state import WindowState
from repro.core.store import WAS_CORE
from repro.index.base import NeighborIndex
from repro.index.registry import resolve_index


class DISC:
    """Density-based Incremental Striding Clusterer.

    Produces exactly the same clustering as DBSCAN over the current window
    (core partition identical; border assignment valid per DESIGN.md §3.4)
    while doing work proportional to what actually changed.

    Args:
        eps: distance threshold.
        tau: density threshold (MinPts); a point is core when its
            epsilon-neighbourhood including itself holds >= tau points.
        index: spatial-index backend — a registry name (``"rtree"``,
            ``"grid"``, ``"vectorgrid"``, ``"linear"``), a ready
            :class:`~repro.index.base.NeighborIndex`, or a zero-argument
            factory. Defaults to the R-tree the paper uses. Backends without
            native epoch probing are transparently wrapped in an
            :class:`~repro.index.epochs.EpochAdapter` when ``epoch_probing``
            is on.
        index_factory: deprecated alias for ``index``; kept for backward
            compatibility.
        multi_starter: use MS-BFS for connectivity checks (Figure 8 knob).
        epoch_probing: use epoch-based index probing (Figure 8 knob).
        store: per-point state layout — ``"columnar"`` (default) for the
            struct-of-arrays :class:`~repro.core.store.PointStore` arena,
            ``"object"`` for the classic one-record-per-point dict. Both
            layouts produce identical clusterings; the object layout exists
            as the reference for the equivalence suite and the layout
            benchmark.
        tracer: optional :class:`~repro.observability.trace.Tracer`; when
            set, every ``advance`` produces one
            :class:`~repro.observability.trace.StrideTrace` with phase
            timings, algorithm counters and the index-stats delta. ``None``
            (the default) keeps the hot path untouched — no timing calls, no
            snapshots.
    """

    name = "DISC"

    def __init__(
        self,
        eps: float,
        tau: int,
        *,
        index: str | NeighborIndex | Callable[[], NeighborIndex] | None = None,
        index_factory: Callable[[], NeighborIndex] | None = None,
        multi_starter: bool = True,
        epoch_probing: bool = True,
        store: str = "columnar",
        tracer=None,
    ) -> None:
        self.params = ClusteringParams(
            eps, tau, index=index if isinstance(index, str) else None
        )
        self.state = WindowState(self.params, store=store)
        self.index = resolve_index(
            index if index is not None else self.params.index,
            index_factory,
            eps=eps,
            epoch_probing=epoch_probing,
        )
        self.multi_starter = multi_starter
        self.epoch_probing = epoch_probing
        self.tracer = tracer
        # Compact the cluster-id forest periodically so unbounded streams do
        # not accumulate merge-redirection chains (see WindowState.compact_cids).
        self.compact_every = 256
        self._strides_since_compact = 0

    @property
    def stats(self):
        """Operation counters of the underlying spatial index."""
        return self.index.stats

    def advance(
        self,
        delta_in: Sequence[StreamPoint],
        delta_out: Sequence[StreamPoint] = (),
    ) -> StrideSummary:
        """Advance the window by one stride and update all labels.

        Args:
            delta_in: points entering the window.
            delta_out: points leaving the window (ids must be present).

        Returns:
            A :class:`StrideSummary` with the evolution events observed.
        """
        state = self.state
        index = self.index
        tracer = self.tracer
        trace = None
        if tracer is not None:
            from repro.observability.trace import perf_counter

            trace = tracer.begin()
            stats_before = index.stats.snapshot()
            t0 = perf_counter()

        result = collect(state, index, delta_in, delta_out, trace=trace)
        if trace is not None:
            t1 = perf_counter()
            trace.phases["collect"] = t1 - t0
        ex_events = process_ex_cores(
            state,
            index,
            result.ex_cores,
            multi_starter=self.multi_starter,
            epoch_probing=self.epoch_probing,
            trace=trace,
        )
        if trace is not None:
            t2 = perf_counter()
            trace.phases["split_checks"] = t2 - t1
        # Algorithm 2, line 8: exited ex-cores leave the index only now.
        for pid in result.c_out:
            index.delete(pid)
        neo_events = process_neo_cores(state, index, result.neo_cores, trace=trace)
        if trace is not None:
            t3 = perf_counter()
            trace.phases["merge_checks"] = t3 - t2
        repair_anchors(state, index)
        self._advance_generation(result)
        self._strides_since_compact += 1
        if self._strides_since_compact >= self.compact_every:
            state.compact_cids()
            self._strides_since_compact = 0

        summary = StrideSummary(
            events=ex_events + neo_events,
            num_ex_cores=len(result.ex_cores),
            num_neo_cores=len(result.neo_cores),
            num_inserted=len(delta_in),
            num_deleted=len(delta_out),
        )
        if trace is not None:
            t4 = perf_counter()
            trace.phases["maintenance"] = t4 - t3
            trace.elapsed_s = t4 - t0
            trace.num_inserted = len(delta_in)
            trace.num_deleted = len(delta_out)
            trace.ex_cores = len(result.ex_cores)
            trace.neo_cores = len(result.neo_cores)
            trace.index = index.stats.snapshot() - stats_before
            arena = state.columnar()
            if arena is not None:
                trace.store = arena.counters()
            for event in summary.events:
                key = event.kind.value
                trace.events[key] = trace.events.get(key, 0) + 1
            tracer.emit(trace)
        return summary

    def _advance_generation(self, result) -> None:
        """Purge exited records and roll core flags into ``was_core``."""
        tau = self.params.tau
        arena = self.state.columnar()
        if arena is not None:
            arena.free(result.deleted_ids)
            ex_slots = [
                slot
                for pid in result.ex_cores
                if (slot := arena.get_slot(pid)) is not None
            ]
            if ex_slots:
                arena.flags[np.asarray(ex_slots, dtype=np.int64)] &= ~WAS_CORE
            if result.neo_cores:
                neo_slots = arena.slots_of(result.neo_cores)
                core = arena.n_eps[neo_slots] >= tau
                arena.flags[neo_slots[core]] |= WAS_CORE
                arena.flags[neo_slots[~core]] &= ~WAS_CORE
            return
        records = self.state.records
        for pid in result.deleted_ids:
            del records[pid]
        for pid in result.ex_cores:
            rec = records.get(pid)
            if rec is not None:
                rec.was_core = False
        for pid in result.neo_cores:
            rec = records[pid]
            rec.was_core = rec.n_eps >= tau

    def snapshot(self) -> Clustering:
        """Current clustering (cores, borders with valid anchors, noise)."""
        return self.state.snapshot()

    def labels(self) -> dict[int, int]:
        """Point id -> resolved cluster id for every non-noise point."""
        return dict(self.snapshot().labels)

    def __len__(self) -> int:
        """Number of points currently in the window."""
        return len(self.state.records)

    def __repr__(self) -> str:
        return (
            f"DISC(eps={self.params.eps}, tau={self.params.tau}, "
            f"points={len(self)}, msbfs={self.multi_starter}, "
            f"epoch={self.epoch_probing})"
        )
