"""The CLUSTER step (paper Algorithm 2).

Ex-cores are consolidated into retro-reachability classes; one representative
per class computes the minimal bonding cores ``M^-`` and a single
connectivity check decides split / shrink / dissipate for the whole class
(Theorem 1). Neo-cores are consolidated into nascent-reachability classes
whose ``M^+`` label multiset decides merge / expand / emerge — no
connectivity check needed, just label inspection.

Every ex-core and every neo-core is range-searched exactly once across the
whole step; those searches double as the maintenance pass for the border
bookkeeping (``c_core`` and anchors, Section V of the paper).
"""

from __future__ import annotations

from collections import deque

from repro.core.events import EvolutionEvent, EvolutionKind
from repro.core.msbfs import check_connectivity
from repro.core.state import WindowState


def process_ex_cores(
    state: WindowState,
    index,
    ex_cores: list[int],
    *,
    multi_starter: bool = True,
    epoch_probing: bool = True,
    trace=None,
) -> list[EvolutionEvent]:
    """Handle cluster evolution caused by ex-cores (Algorithm 2, lines 1-7).

    Returns one event per retro-reachability class. When ``trace`` (a
    :class:`~repro.observability.trace.StrideTrace`) is given, it accumulates
    the retro-class count, the Theorem-1 savings (ex-cores consolidated into
    a class beyond its representative, each of which would have cost its own
    connectivity check), and the checks actually issued.
    """
    params = state.params
    eps = params.eps
    tau = params.tau
    records = state.records
    events: list[EvolutionEvent] = []

    def on_border(border_pid: int, core_pid: int) -> None:
        """Refresh a border anchor when MS-BFS passes by (Section V)."""
        q = records[border_pid]
        if q.deleted:
            return
        q.anchor = core_pid
        state.repair.discard(border_pid)

    # Old cluster ids retained this stride, mapped to representative cores of
    # the components that kept them. Needed because several retro classes may
    # carve the *same* old cluster: each class's check sees only its own
    # fragments (Lemma 2 is per-class), so without reconciliation two
    # disconnected fragments could both retain the old id. Claims are
    # recorded here; ids actually at risk — fragmentation of a cluster always
    # makes some split survivor claim it, so only ids in ``split_claimed``
    # can be contested — are settled once at the end by a single connectivity
    # check over the claimants.
    kept: dict[int, list[int]] = {}
    split_claimed: set[int] = set()

    remaining = set(ex_cores)
    while remaining:
        seed = remaining.pop()
        # Breadth-first enumeration of the retro-reachability class R^-(seed);
        # the same searches collect the minimal bonding cores M^-(seed).
        retro = {seed}
        queue: deque[int] = deque([seed])
        bonding: list[int] = []
        bonding_seen: set[int] = set()
        # The cluster id the class belonged to, read off the first member
        # still carrying one (exited ex-cores keep theirs until purged, so a
        # cluster that left the window whole is covered too); a dissipating
        # class is this id's last trace, and _resolve_ex_class retires the
        # id with it.
        class_cid: int | None = None
        while queue:
            rid = queue.popleft()
            rec_r = records[rid]
            if class_cid is None and rec_r.cid is not None:
                class_cid = state.cids.find(rec_r.cid)
            r_in_window = not rec_r.deleted
            if r_in_window:
                # Demoted this stride: it no longer carries a core cid, and
                # any old anchor value is meaningless.
                rec_r.cid = None
                rec_r.anchor = None
            for qid, _ in index.ball(rec_r.coords, eps):
                if qid == rid:
                    continue
                q = records[qid]
                if q.deleted:
                    # A lingering exited ex-core: part of the retro chain.
                    if q.was_core and qid not in retro:
                        retro.add(qid)
                        remaining.discard(qid)
                        queue.append(qid)
                    continue
                q_core_now = q.n_eps >= tau
                if q.was_core and not q_core_now:
                    # In-window ex-core: extend the retro class.
                    if qid not in retro:
                        retro.add(qid)
                        remaining.discard(qid)
                        queue.append(qid)
                elif q_core_now and q.was_core and qid not in bonding_seen:
                    # Core in both windows adjacent to R^-: an M^- member.
                    bonding_seen.add(qid)
                    bonding.append(qid)
                if r_in_window:
                    # rid lost core status: its neighbours lose a core
                    # neighbour. (Exited ex-cores were already accounted for
                    # during COLLECT.)
                    q.c_core -= 1
                    if not q_core_now:
                        if q.anchor == rid or q.c_core == 0:
                            q.anchor = None
                        if q.c_core > 0 and q.anchor is None:
                            state.repair.add(qid)
                if q_core_now and r_in_window and rec_r.anchor is None:
                    # The demoted ex-core itself may become a border.
                    rec_r.anchor = qid
            if r_in_window and rec_r.c_core > 0 and rec_r.anchor is None:
                state.repair.add(rid)

        if trace is not None:
            trace.retro_classes += 1
            # Theorem 1: the whole class shares one check; every member
            # beyond the representative is a check a naive IncDBSCAN-style
            # deletion pass would have issued.
            trace.theorem1_skips += len(retro) - 1
        events.append(
            _resolve_ex_class(
                state,
                index,
                seed,
                bonding,
                kept,
                split_claimed,
                class_cid,
                multi_starter=multi_starter,
                epoch_probing=epoch_probing,
                on_border=on_border,
                trace=trace,
            )
        )
    events.extend(
        _settle_claims(
            state,
            index,
            kept,
            split_claimed,
            multi_starter=multi_starter,
            epoch_probing=epoch_probing,
            on_border=on_border,
            trace=trace,
        )
    )
    return events


def _claim(state: WindowState, kept: dict[int, list[int]], rep: int) -> int:
    """Record that ``rep``'s component retains its current cluster id."""
    cid = state.cids.find(state.records[rep].cid)
    kept.setdefault(cid, []).append(rep)
    return cid


def _settle_claims(
    state: WindowState,
    index,
    kept: dict[int, list[int]],
    split_claimed: set[int],
    *,
    multi_starter: bool,
    epoch_probing: bool,
    on_border,
    trace=None,
) -> list[EvolutionEvent]:
    """Ensure each retained cluster id labels exactly one component.

    Only ids claimed by at least one *split survivor* can be contested: if
    an old cluster fragmented, the class spanning two of its fragments saw a
    disconnected ``M^-`` and split, and its survivor claimed the id. For each
    such id with two or more claimants, one connectivity check over the
    claimant representatives decides: all connected (the common case — the
    check meets in the middle and exits early) means the shared id is
    legitimate; otherwise the exhausted components are fragments that must
    take fresh ids. Returns the extra split events this produces.
    """
    records = state.records
    events: list[EvolutionEvent] = []
    for cid in split_claimed:
        reps = kept.get(cid, ())
        live = []
        seen: set[int] = set()
        for rep in reps:
            rec = records.get(rep)
            if (
                rec is not None
                and state.is_core(rec)
                and state.cids.find(rec.cid) == cid
                and rep not in seen
            ):
                seen.add(rep)
                live.append(rep)
        if len(live) < 2:
            continue
        if trace is not None:
            trace.connectivity_checks += 1
        result = check_connectivity(
            index,
            state,
            live,
            multi_starter=multi_starter,
            epoch_probing=epoch_probing,
            on_border=on_border,
            trace=trace,
        )
        if result.connected:
            continue
        new_cids = []
        for component in result.exhausted:
            fresh = state.cids.make()
            new_cids.append(fresh)
            for pid in component:
                records[pid].cid = fresh
        events.append(
            EvolutionEvent(EvolutionKind.SPLIT, (cid, *new_cids), trigger=live[0])
        )
    return events


def _resolve_ex_class(
    state: WindowState,
    index,
    seed: int,
    bonding: list[int],
    kept: dict[int, list[int]],
    split_claimed: set[int],
    class_cid: int | None,
    *,
    multi_starter: bool,
    epoch_probing: bool,
    on_border,
    trace=None,
) -> EvolutionEvent:
    """Decide split / shrink / dissipate for one retro class."""
    records = state.records
    if not bonding:
        # No bonding cores: the retro class was the entire connected core
        # component, so nothing alive references its cluster id any more.
        # Retire the id so the union-find forest does not keep its whole
        # merge lineage pinned until the next compaction.
        if class_cid is not None:
            state.cids.retire(class_cid)
        return EvolutionEvent(EvolutionKind.DISSIPATE, trigger=seed)
    if len(bonding) == 1:
        cid = _claim(state, kept, bonding[0])
        return EvolutionEvent(EvolutionKind.SHRINK, (cid,), trigger=seed)

    if trace is not None:
        trace.connectivity_checks += 1
    result = check_connectivity(
        index,
        state,
        bonding,
        multi_starter=multi_starter,
        epoch_probing=epoch_probing,
        on_border=on_border,
        trace=trace,
    )
    if result.connected:
        cid = _claim(state, kept, bonding[0])
        return EvolutionEvent(EvolutionKind.SHRINK, (cid,), trigger=seed)

    # Split: each fully traversed component becomes a new cluster; the
    # surviving search's component claims the old cluster id, subject to the
    # end-of-stride reconciliation in _settle_claims (DESIGN.md §3.2, §3.4).
    new_cids = []
    for component in result.exhausted:
        cid = state.cids.make()
        new_cids.append(cid)
        kept[cid] = [component[0]]
        for pid in component:
            records[pid].cid = cid
    survivor_cid = _claim(state, kept, result.survivor[0])
    split_claimed.add(survivor_cid)
    return EvolutionEvent(
        EvolutionKind.SPLIT, (survivor_cid, *new_cids), trigger=seed
    )


def process_neo_cores(
    state: WindowState, index, neo_cores: list[int], *, trace=None
) -> list[EvolutionEvent]:
    """Handle cluster evolution caused by neo-cores (Algorithm 2, lines 9-13).

    Returns one event per nascent-reachability class. Unlike ex-cores, no
    connectivity check is needed: the labels of ``M^+`` decide everything.
    """
    params = state.params
    eps = params.eps
    tau = params.tau
    records = state.records
    cids = state.cids
    events: list[EvolutionEvent] = []

    remaining = set(neo_cores)
    while remaining:
        seed = remaining.pop()
        if trace is not None:
            trace.nascent_classes += 1
        group = [seed]
        seen = {seed}
        queue: deque[int] = deque([seed])
        bonding_roots: set[int] = set()
        while queue:
            sid = queue.popleft()
            rec_s = records[sid]
            if rec_s.cid is not None:
                # Pre-assigned by a split relabel earlier this stride; fold it
                # in so the final assignment stays consistent.
                bonding_roots.add(cids.find(rec_s.cid))
            for qid, _ in index.ball(rec_s.coords, eps):
                if qid == sid:
                    continue
                q = records[qid]
                if q.deleted:
                    continue
                # sid gained core status: neighbours gain a core neighbour.
                q.c_core += 1
                if q.n_eps < tau:
                    if q.anchor is None:
                        q.anchor = sid
                        state.repair.discard(qid)
                elif q.was_core:
                    # Core in both windows: an M^+ member; read its label.
                    assert q.cid is not None, f"old core {qid} lacks a cid"
                    bonding_roots.add(cids.find(q.cid))
                elif qid not in seen:
                    # Fellow neo-core: extend the nascent class.
                    seen.add(qid)
                    remaining.discard(qid)
                    queue.append(qid)
                    group.append(qid)

        if not bonding_roots:
            cid = cids.make()
            kind = EvolutionKind.EMERGE
        elif len(bonding_roots) == 1:
            cid = next(iter(bonding_roots))
            kind = EvolutionKind.EXPAND
        else:
            roots = iter(bonding_roots)
            cid = next(roots)
            for other in roots:
                cid = cids.union(cid, other)
            kind = EvolutionKind.MERGE
        for pid in group:
            rec = records[pid]
            rec.cid = cid
            rec.anchor = None  # cores do not use anchors
            state.repair.discard(pid)
        events.append(EvolutionEvent(kind, (cids.find(cid),), trigger=seed))
    return events


def repair_anchors(state: WindowState, index) -> int:
    """Re-anchor borders whose anchor core vanished (Section V, last resort).

    Each repair costs one range search; the searches are mutation-free, so
    the whole repair set is issued as one batched ``ball_many`` call.
    Returns the number of searches spent.
    """
    params = state.params
    eps = params.eps
    tau = params.tau
    records = state.records
    pending = []
    for pid in state.repair:
        rec = records.get(pid)
        if rec is None or rec.deleted:
            continue
        if rec.n_eps >= tau or rec.c_core <= 0:
            continue  # became a core, or is plain noise: no anchor needed
        anchor = records.get(rec.anchor) if rec.anchor is not None else None
        if anchor is not None and not anchor.deleted and anchor.n_eps >= tau:
            continue  # anchor is still a live core
        rec.anchor = None
        pending.append(rec)
    balls = (
        index.ball_many([rec.coords for rec in pending], eps)
        if pending
        else []
    )
    for rec, neighbours in zip(pending, balls):
        # Lowest-pid core, not first-in-ball-order: ball traversal order
        # depends on index shape, which differs after a checkpoint restore;
        # the repaired anchor must not.
        for qid, _ in neighbours:
            if qid == rec.pid:
                continue
            q = records[qid]
            if not q.deleted and q.n_eps >= tau:
                if rec.anchor is None or qid < rec.anchor:
                    rec.anchor = qid
        assert rec.anchor is not None, (
            f"border {rec.pid} has c_core={rec.c_core} but no core neighbour"
        )
    state.repair.clear()
    return len(pending)
