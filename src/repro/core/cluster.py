"""The CLUSTER step (paper Algorithm 2).

Ex-cores are consolidated into retro-reachability classes; one representative
per class computes the minimal bonding cores ``M^-`` and a single
connectivity check decides split / shrink / dissipate for the whole class
(Theorem 1). Neo-cores are consolidated into nascent-reachability classes
whose ``M^+`` label multiset decides merge / expand / emerge — no
connectivity check needed, just label inspection.

Every ex-core and every neo-core is range-searched exactly once across the
whole step; those searches double as the maintenance pass for the border
bookkeeping (``c_core`` and anchors, Section V of the paper).

On the columnar :class:`~repro.core.store.PointStore` layout each range
search result is processed as masked column operations over the ball's slot
array instead of one record lookup per neighbour; the breadth-first
traversal order itself is untouched. Because every ex-core and neo-core is
scanned exactly once per phase, and the quantities that classify a
neighbour (index membership, the ``DELETED``/``WAS_CORE`` flags and
``n_eps``) are all static within a phase — the BFS only mutates ``c_core``,
anchors and cluster ids — the columnar path prefetches *all* scan balls of
a phase with one batched ``ball_many`` call and gathers their
classification masks in one shot (:func:`_scan_plan`). All order-sensitive
iteration (class seeds, claim settlement, bonding-root unions, repair
scans) runs in sorted order so both storage layouts assign identical
cluster ids.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.events import EvolutionEvent, EvolutionKind
from repro.core.msbfs import check_connectivity
from repro.core.state import WindowState
from repro.core.store import DELETED, NO_ID, WAS_CORE


def _make_on_border(state: WindowState):
    """Border-anchor refresh callback for MS-BFS passes (Section V)."""
    store = state.columnar()
    if store is not None:
        flags = store.flags
        slot_of = store._slot_of

        def on_border(border_pid: int, core_pid: int) -> None:
            slot = slot_of[border_pid]
            if flags[slot] & DELETED:
                return
            store.anchor[slot] = core_pid
            state.repair.discard(border_pid)

        return on_border
    records = state.records

    def on_border(border_pid: int, core_pid: int) -> None:
        q = records[border_pid]
        if q.deleted:
            return
        q.anchor = core_pid
        state.repair.discard(border_pid)

    return on_border


def _scan_plan(store, index, pids, eps: float, tau: int) -> dict:
    """Prefetch the scan balls of one CLUSTER phase in a single batched call.

    Maps each pid to ``(qids, slots, deleted, was_core, core_now)`` — the
    ball with the center filtered out, its slot array, and the three static
    classification masks. Sound because within one phase the index
    membership, the ``DELETED``/``WAS_CORE`` flags and ``n_eps`` never
    change (the BFS mutates only ``c_core``, anchors and cluster ids), and
    every member of ``pids`` is range-searched exactly once by the
    sequential loop — so one ``ball_many`` over the deduplicated set leaves
    the index-stats ledger identical to per-pop :meth:`ball` calls.
    """
    order = sorted(set(pids))
    if not order:
        return {}
    centers = store.coords[store.slots_of(order)].tolist()
    balls = index.ball_many_pids(centers, eps)
    spans: list[tuple[int, list[int], int]] = []
    flat: list[int] = []
    for pid, ball in zip(order, balls):
        qids = ball[ball != pid].tolist()
        spans.append((pid, qids, len(flat)))
        flat.extend(qids)
    flat_slots = store.slots_of(flat) if flat else np.empty(0, dtype=np.int64)
    return _plan_entries(store, tau, spans, flat_slots)


def _plan_entries(store, tau: int, spans, flat_slots) -> dict:
    """Slice one phase's flat classification masks into per-pid plan entries.

    Every mask the scan bodies consume is derived here, once, over the
    whole phase's concatenated balls — the per-expansion cost is then just
    slicing views.
    """
    flags = store.flags[flat_slots]
    deleted = (flags & DELETED) != 0
    was_core = (flags & WAS_CORE) != 0
    live = ~deleted
    live_core = live & (store.n_eps[flat_slots] >= tau)
    border = live ^ live_core  # live but not currently core
    m_plus = live_core & was_core  # cores in both windows
    fellow = live_core ^ m_plus  # cores only in the new window
    retro_ext = was_core & ~live_core  # fellow ex-cores (incl. exited)
    plan = {}
    for pid, qids, lo in spans:
        sl = slice(lo, lo + len(qids))
        plan[pid] = (
            qids,
            flat_slots[sl],
            live[sl],
            live_core[sl],
            border[sl],
            m_plus[sl],
            fellow[sl],
            retro_ext[sl],
        )
    return plan


def _scan_entry(store, index, pid: int, slot: int, eps: float, tau: int, plan: dict):
    """A plan entry, or an equivalent one built on the fly for a pid the
    phase discovered outside the prefetch set (defensive: classification is
    static within the phase, so both routes agree)."""
    entry = plan.get(pid)
    if entry is not None:
        return entry
    ball = index.ball_pids(store.coords[slot].tolist(), eps)
    qids = ball[ball != pid].tolist()
    slots = store.slots_of(qids) if qids else np.empty(0, dtype=np.int64)
    return _plan_entries(store, tau, [(pid, qids, 0)], slots)[pid]


def _ordered_classes(pids: list[int]):
    """Yield (seed, remaining-set) pairs in ascending-pid order.

    Class consolidation consumes members from ``remaining`` as the BFS
    reaches them; seeding in sorted order (rather than ``set.pop``) makes
    class enumeration — and therefore fresh-cluster-id assignment —
    independent of set-iteration internals, so both storage layouts produce
    byte-identical output for the same stream.
    """
    remaining = set(pids)
    for seed in sorted(remaining):
        if seed not in remaining:
            continue
        remaining.discard(seed)
        yield seed, remaining


def process_ex_cores(
    state: WindowState,
    index,
    ex_cores: list[int],
    *,
    multi_starter: bool = True,
    epoch_probing: bool = True,
    trace=None,
) -> list[EvolutionEvent]:
    """Handle cluster evolution caused by ex-cores (Algorithm 2, lines 1-7).

    Returns one event per retro-reachability class. When ``trace`` (a
    :class:`~repro.observability.trace.StrideTrace`) is given, it accumulates
    the retro-class count, the Theorem-1 savings (ex-cores consolidated into
    a class beyond its representative, each of which would have cost its own
    connectivity check), and the checks actually issued.
    """
    params = state.params
    eps = params.eps
    tau = params.tau
    records = state.records
    store = state.columnar()
    events: list[EvolutionEvent] = []
    on_border = _make_on_border(state)

    # Old cluster ids retained this stride, mapped to representative cores of
    # the components that kept them. Needed because several retro classes may
    # carve the *same* old cluster: each class's check sees only its own
    # fragments (Lemma 2 is per-class), so without reconciliation two
    # disconnected fragments could both retain the old id. Claims are
    # recorded here; ids actually at risk — fragmentation of a cluster always
    # makes some split survivor claim it, so only ids in ``split_claimed``
    # can be contested — are settled once at the end by a single connectivity
    # check over the claimants.
    kept: dict[int, list[int]] = {}
    split_claimed: set[int] = set()
    plan = _scan_plan(store, index, ex_cores, eps, tau) if store is not None else {}

    for seed, remaining in _ordered_classes(ex_cores):
        # Breadth-first enumeration of the retro-reachability class R^-(seed);
        # the same searches collect the minimal bonding cores M^-(seed).
        retro = {seed}
        queue: deque[int] = deque([seed])
        bonding: list[int] = []
        bonding_seen: set[int] = set()
        # The cluster id the class belonged to, read off the first member
        # still carrying one (exited ex-cores keep theirs until purged, so a
        # cluster that left the window whole is covered too); a dissipating
        # class is this id's last trace, and _resolve_ex_class retires the
        # id with it.
        class_cid: int | None = None
        while queue:
            rid = queue.popleft()
            if store is not None:
                class_cid = _retro_scan_columnar(
                    state,
                    store,
                    index,
                    rid,
                    eps,
                    tau,
                    retro,
                    remaining,
                    queue,
                    bonding,
                    bonding_seen,
                    class_cid,
                    plan,
                )
                continue
            rec_r = records[rid]
            if class_cid is None and rec_r.cid is not None:
                class_cid = state.cids.find(rec_r.cid)
            r_in_window = not rec_r.deleted
            if r_in_window:
                # Demoted this stride: it no longer carries a core cid, and
                # any old anchor value is meaningless.
                rec_r.cid = None
                rec_r.anchor = None
            for qid, _ in index.ball(rec_r.coords, eps):
                if qid == rid:
                    continue
                q = records[qid]
                if q.deleted:
                    # A lingering exited ex-core: part of the retro chain.
                    if q.was_core and qid not in retro:
                        retro.add(qid)
                        remaining.discard(qid)
                        queue.append(qid)
                    continue
                q_core_now = q.n_eps >= tau
                if q.was_core and not q_core_now:
                    # In-window ex-core: extend the retro class.
                    if qid not in retro:
                        retro.add(qid)
                        remaining.discard(qid)
                        queue.append(qid)
                elif q_core_now and q.was_core and qid not in bonding_seen:
                    # Core in both windows adjacent to R^-: an M^- member.
                    bonding_seen.add(qid)
                    bonding.append(qid)
                if r_in_window:
                    # rid lost core status: its neighbours lose a core
                    # neighbour. (Exited ex-cores were already accounted for
                    # during COLLECT.)
                    q.c_core -= 1
                    if not q_core_now:
                        if q.anchor == rid or q.c_core == 0:
                            q.anchor = None
                        if q.c_core > 0 and q.anchor is None:
                            state.repair.add(qid)
                if q_core_now and r_in_window and rec_r.anchor is None:
                    # The demoted ex-core itself may become a border.
                    rec_r.anchor = qid
            if r_in_window and rec_r.c_core > 0 and rec_r.anchor is None:
                state.repair.add(rid)

        if trace is not None:
            trace.retro_classes += 1
            # Theorem 1: the whole class shares one check; every member
            # beyond the representative is a check a naive IncDBSCAN-style
            # deletion pass would have issued.
            trace.theorem1_skips += len(retro) - 1
        events.append(
            _resolve_ex_class(
                state,
                index,
                seed,
                bonding,
                kept,
                split_claimed,
                class_cid,
                multi_starter=multi_starter,
                epoch_probing=epoch_probing,
                on_border=on_border,
                trace=trace,
            )
        )
    events.extend(
        _settle_claims(
            state,
            index,
            kept,
            split_claimed,
            multi_starter=multi_starter,
            epoch_probing=epoch_probing,
            on_border=on_border,
            trace=trace,
        )
    )
    return events


def _retro_scan_columnar(
    state: WindowState,
    store,
    index,
    rid: int,
    eps: float,
    tau: int,
    retro: set[int],
    remaining: set[int],
    queue: deque,
    bonding: list[int],
    bonding_seen: set[int],
    class_cid: int | None,
    plan: dict,
) -> int | None:
    """One retro-BFS expansion as masked column ops; returns ``class_cid``.

    Sequencing note: within one ball the per-neighbour effects of the object
    loop are independent of each other (each neighbour's counter, its own
    anchor, and append-order-preserving set insertions), so splitting the
    ball into phase-ordered batch operations — extend class, collect
    bonding, decrement ``c_core``, invalidate anchors, then anchor the
    demoted core itself — is exact.
    """
    r_slot = store.slot_of(rid)
    raw_cid = int(store.cid[r_slot])
    if class_cid is None and raw_cid != NO_ID:
        class_cid = state.cids.find(raw_cid)
    r_in_window = not (store.flags[r_slot] & DELETED)
    if r_in_window:
        # Demoted this stride: it no longer carries a core cid, and any old
        # anchor value is meaningless.
        store.cid[r_slot] = NO_ID
        store.anchor[r_slot] = NO_ID
    qids, slots, live, live_core, border, _m_plus, _fellow, retro_ext = _scan_entry(
        store, index, rid, r_slot, eps, tau, plan
    )
    if not qids:
        if r_in_window and store.c_core[r_slot] > 0:
            state.repair.add(rid)
        return class_cid
    # Extend the retro class: lingering exited ex-cores and in-window
    # ex-cores alike, preserving ball order for the BFS queue.
    for j in retro_ext.nonzero()[0]:
        qid = qids[j]
        if qid not in retro:
            retro.add(qid)
            remaining.discard(qid)
            queue.append(qid)
    # Cores in both windows adjacent to R^-: the M^- members, in ball order.
    for j in _m_plus.nonzero()[0]:
        qid = qids[j]
        if qid not in bonding_seen:
            bonding_seen.add(qid)
            bonding.append(qid)
    if r_in_window:
        # rid lost core status: its neighbours lose a core neighbour.
        # (Exited ex-cores were already accounted for during COLLECT.)
        store.c_core[slots[live]] -= 1
        nc_slots = slots[border]
        if len(nc_slots):
            nulled = (store.anchor[nc_slots] == rid) | (store.c_core[nc_slots] == 0)
            store.anchor[nc_slots[nulled]] = NO_ID
            needs_repair = (store.c_core[nc_slots] > 0) & (
                store.anchor[nc_slots] == NO_ID
            )
            if needs_repair.any():
                state.repair.update(store.pid[nc_slots[needs_repair]].tolist())
        # The demoted ex-core itself may become a border: first live core in
        # ball order, exactly as the sequential loop assigns it.
        anchor_candidates = live_core.nonzero()[0]
        if len(anchor_candidates):
            store.anchor[r_slot] = qids[int(anchor_candidates[0])]
        elif store.c_core[r_slot] > 0:
            state.repair.add(rid)
    return class_cid


def _claim(state: WindowState, kept: dict[int, list[int]], rep: int) -> int:
    """Record that ``rep``'s component retains its current cluster id."""
    cid = state.cids.find(state.records[rep].cid)
    kept.setdefault(cid, []).append(rep)
    return cid


def _settle_claims(
    state: WindowState,
    index,
    kept: dict[int, list[int]],
    split_claimed: set[int],
    *,
    multi_starter: bool,
    epoch_probing: bool,
    on_border,
    trace=None,
) -> list[EvolutionEvent]:
    """Ensure each retained cluster id labels exactly one component.

    Only ids claimed by at least one *split survivor* can be contested: if
    an old cluster fragmented, the class spanning two of its fragments saw a
    disconnected ``M^-`` and split, and its survivor claimed the id. For each
    such id with two or more claimants, one connectivity check over the
    claimant representatives decides: all connected (the common case — the
    check meets in the middle and exits early) means the shared id is
    legitimate; otherwise the exhausted components are fragments that must
    take fresh ids. Returns the extra split events this produces.
    """
    records = state.records
    events: list[EvolutionEvent] = []
    for cid in sorted(split_claimed):
        reps = kept.get(cid, ())
        live = []
        seen: set[int] = set()
        for rep in reps:
            rec = records.get(rep)
            if (
                rec is not None
                and state.is_core(rec)
                and state.cids.find(rec.cid) == cid
                and rep not in seen
            ):
                seen.add(rep)
                live.append(rep)
        if len(live) < 2:
            continue
        if trace is not None:
            trace.connectivity_checks += 1
        result = check_connectivity(
            index,
            state,
            live,
            multi_starter=multi_starter,
            epoch_probing=epoch_probing,
            on_border=on_border,
            trace=trace,
        )
        if result.connected:
            continue
        new_cids = []
        for component in result.exhausted:
            fresh = state.cids.make()
            new_cids.append(fresh)
            state.set_cids(component, fresh)
        events.append(
            EvolutionEvent(EvolutionKind.SPLIT, (cid, *new_cids), trigger=live[0])
        )
    return events


def _resolve_ex_class(
    state: WindowState,
    index,
    seed: int,
    bonding: list[int],
    kept: dict[int, list[int]],
    split_claimed: set[int],
    class_cid: int | None,
    *,
    multi_starter: bool,
    epoch_probing: bool,
    on_border,
    trace=None,
) -> EvolutionEvent:
    """Decide split / shrink / dissipate for one retro class."""
    if not bonding:
        # No bonding cores: the retro class was the entire connected core
        # component, so nothing alive references its cluster id any more.
        # Retire the id so the union-find forest does not keep its whole
        # merge lineage pinned until the next compaction.
        if class_cid is not None:
            state.cids.retire(class_cid)
        return EvolutionEvent(EvolutionKind.DISSIPATE, trigger=seed)
    if len(bonding) == 1:
        cid = _claim(state, kept, bonding[0])
        return EvolutionEvent(EvolutionKind.SHRINK, (cid,), trigger=seed)

    if trace is not None:
        trace.connectivity_checks += 1
    result = check_connectivity(
        index,
        state,
        bonding,
        multi_starter=multi_starter,
        epoch_probing=epoch_probing,
        on_border=on_border,
        trace=trace,
    )
    if result.connected:
        cid = _claim(state, kept, bonding[0])
        return EvolutionEvent(EvolutionKind.SHRINK, (cid,), trigger=seed)

    # Split: each fully traversed component becomes a new cluster; the
    # surviving search's component claims the old cluster id, subject to the
    # end-of-stride reconciliation in _settle_claims (DESIGN.md §3.2, §3.4).
    new_cids = []
    for component in result.exhausted:
        cid = state.cids.make()
        new_cids.append(cid)
        kept[cid] = [component[0]]
        state.set_cids(component, cid)
    survivor_cid = _claim(state, kept, result.survivor[0])
    split_claimed.add(survivor_cid)
    return EvolutionEvent(
        EvolutionKind.SPLIT, (survivor_cid, *new_cids), trigger=seed
    )


def process_neo_cores(
    state: WindowState, index, neo_cores: list[int], *, trace=None
) -> list[EvolutionEvent]:
    """Handle cluster evolution caused by neo-cores (Algorithm 2, lines 9-13).

    Returns one event per nascent-reachability class. Unlike ex-cores, no
    connectivity check is needed: the labels of ``M^+`` decide everything.
    """
    params = state.params
    eps = params.eps
    tau = params.tau
    records = state.records
    cids = state.cids
    store = state.columnar()
    events: list[EvolutionEvent] = []
    plan = _scan_plan(store, index, neo_cores, eps, tau) if store is not None else {}

    for seed, remaining in _ordered_classes(neo_cores):
        if trace is not None:
            trace.nascent_classes += 1
        group = [seed]
        seen = {seed}
        queue: deque[int] = deque([seed])
        bonding_roots: set[int] = set()
        while queue:
            sid = queue.popleft()
            if store is not None:
                _nascent_scan_columnar(
                    state,
                    store,
                    index,
                    sid,
                    eps,
                    tau,
                    seen,
                    remaining,
                    queue,
                    group,
                    bonding_roots,
                    plan,
                )
                continue
            rec_s = records[sid]
            if rec_s.cid is not None:
                # Pre-assigned by a split relabel earlier this stride; fold it
                # in so the final assignment stays consistent.
                bonding_roots.add(cids.find(rec_s.cid))
            for qid, _ in index.ball(rec_s.coords, eps):
                if qid == sid:
                    continue
                q = records[qid]
                if q.deleted:
                    continue
                # sid gained core status: neighbours gain a core neighbour.
                q.c_core += 1
                if q.n_eps < tau:
                    if q.anchor is None:
                        q.anchor = sid
                        state.repair.discard(qid)
                elif q.was_core:
                    # Core in both windows: an M^+ member; read its label.
                    assert q.cid is not None, f"old core {qid} lacks a cid"
                    bonding_roots.add(cids.find(q.cid))
                elif qid not in seen:
                    # Fellow neo-core: extend the nascent class.
                    seen.add(qid)
                    remaining.discard(qid)
                    queue.append(qid)
                    group.append(qid)

        if not bonding_roots:
            cid = cids.make()
            kind = EvolutionKind.EMERGE
        elif len(bonding_roots) == 1:
            cid = next(iter(bonding_roots))
            kind = EvolutionKind.EXPAND
        else:
            # Sorted union order: merged-root identity must not depend on
            # set-iteration internals (see _ordered_classes).
            roots = iter(sorted(bonding_roots))
            cid = next(roots)
            for other in roots:
                cid = cids.union(cid, other)
            kind = EvolutionKind.MERGE
        if store is not None:
            group_slots = store.slots_of(group)
            store.cid[group_slots] = cid
            store.anchor[group_slots] = NO_ID  # cores do not use anchors
            state.repair.difference_update(group)
        else:
            for pid in group:
                rec = records[pid]
                rec.cid = cid
                rec.anchor = None  # cores do not use anchors
                state.repair.discard(pid)
        events.append(EvolutionEvent(kind, (cids.find(cid),), trigger=seed))
    return events


def _nascent_scan_columnar(
    state: WindowState,
    store,
    index,
    sid: int,
    eps: float,
    tau: int,
    seen: set[int],
    remaining: set[int],
    queue: deque,
    group: list[int],
    bonding_roots: set[int],
    plan: dict,
) -> None:
    """One nascent-BFS expansion as masked column ops."""
    cids = state.cids
    s_slot = store.slot_of(sid)
    raw = int(store.cid[s_slot])
    if raw != NO_ID:
        # Pre-assigned by a split relabel earlier this stride; fold it in so
        # the final assignment stays consistent.
        bonding_roots.add(cids.find(raw))
    qids, slots, live, _live_core, border, m_plus, fellow, _retro_ext = _scan_entry(
        store, index, sid, s_slot, eps, tau, plan
    )
    if not qids:
        return
    # sid gained core status: neighbours gain a core neighbour.
    store.c_core[slots[live]] += 1
    # Borders without an anchor adopt sid and leave the repair set.
    nc_slots = slots[border]
    if len(nc_slots):
        adopt = nc_slots[store.anchor[nc_slots] == NO_ID]
        if len(adopt):
            store.anchor[adopt] = sid
            state.repair.difference_update(store.pid[adopt].tolist())
    # Cores in both windows: the M^+ members; read their labels.
    m_slots = slots[m_plus]
    if len(m_slots):
        raw_cids = store.cid[m_slots]
        assert not np.any(raw_cids == NO_ID), "old core lacks a cid"
        for c in set(raw_cids.tolist()):
            bonding_roots.add(cids.find(c))
    # Fellow neo-cores extend the nascent class, in ball order.
    for j in fellow.nonzero()[0]:
        qid = qids[j]
        if qid not in seen:
            seen.add(qid)
            remaining.discard(qid)
            queue.append(qid)
            group.append(qid)


def repair_anchors(state: WindowState, index) -> int:
    """Re-anchor borders whose anchor core vanished (Section V, last resort).

    Each repair costs one range search; the searches are mutation-free, so
    the whole repair set is issued as one batched ``ball_many`` call.
    Returns the number of searches spent. The repair set is scanned in
    sorted order so the pending list — and with it the index-stats ledger —
    is identical on both storage layouts.
    """
    store = state.columnar()
    if store is not None:
        return _repair_anchors_columnar(state, store, index)
    params = state.params
    eps = params.eps
    tau = params.tau
    records = state.records
    pending = []
    for pid in sorted(state.repair):
        rec = records.get(pid)
        if rec is None or rec.deleted:
            continue
        if rec.n_eps >= tau or rec.c_core <= 0:
            continue  # became a core, or is plain noise: no anchor needed
        anchor = records.get(rec.anchor) if rec.anchor is not None else None
        if anchor is not None and not anchor.deleted and anchor.n_eps >= tau:
            continue  # anchor is still a live core
        rec.anchor = None
        pending.append(rec)
    balls = (
        index.ball_many([rec.coords for rec in pending], eps)
        if pending
        else []
    )
    for rec, neighbours in zip(pending, balls):
        # Lowest-pid core, not first-in-ball-order: ball traversal order
        # depends on index shape, which differs after a checkpoint restore;
        # the repaired anchor must not.
        for qid, _ in neighbours:
            if qid == rec.pid:
                continue
            q = records[qid]
            if not q.deleted and q.n_eps >= tau:
                if rec.anchor is None or qid < rec.anchor:
                    rec.anchor = qid
        assert rec.anchor is not None, (
            f"border {rec.pid} has c_core={rec.c_core} but no core neighbour"
        )
    state.repair.clear()
    return len(pending)


def _repair_anchors_columnar(state: WindowState, store, index) -> int:
    eps = state.params.eps
    tau = state.params.tau
    pending_pids: list[int] = []
    pending_slots: list[int] = []
    for pid in sorted(state.repair):
        slot = store.get_slot(pid)
        if slot is None or (store.flags[slot] & DELETED):
            continue
        if store.n_eps[slot] >= tau or store.c_core[slot] <= 0:
            continue  # became a core, or is plain noise: no anchor needed
        anchor = int(store.anchor[slot])
        if anchor != NO_ID:
            a_slot = store.get_slot(anchor)
            if (
                a_slot is not None
                and not (store.flags[a_slot] & DELETED)
                and store.n_eps[a_slot] >= tau
            ):
                continue  # anchor is still a live core
        store.anchor[slot] = NO_ID
        pending_pids.append(pid)
        pending_slots.append(slot)
    balls = (
        index.ball_many_pids(
            store.coords[np.asarray(pending_slots, dtype=np.int64)].tolist(), eps
        )
        if pending_pids
        else []
    )
    for pid, slot, neighbours in zip(pending_pids, pending_slots, balls):
        qids = neighbours[neighbours != pid]
        best = NO_ID
        if len(qids):
            slots = store.slots_of(qids.tolist())
            core = ((store.flags[slots] & DELETED) == 0) & (store.n_eps[slots] >= tau)
            if core.any():
                # Lowest-pid core, not first-in-ball-order: ball traversal
                # order depends on index shape, which differs after a
                # checkpoint restore; the repaired anchor must not.
                best = int(store.pid[slots[core]].min())
        assert best != NO_ID, (
            f"border {pid} has c_core={int(store.c_core[slot])} "
            "but no core neighbour"
        )
        store.anchor[slot] = best
    state.repair.clear()
    return len(pending_pids)
