"""Cluster-evolution events reported per stride.

The paper names six evolution types (Section III-C): clusters may *split*,
*shrink* or *dissipate* under ex-cores, and *merge*, *expand* or *emerge*
under neo-cores. DISC reports one event per processed reachability class so
applications (e.g. traffic monitoring) can react to topology changes without
diffing snapshots.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field


class EvolutionKind(enum.Enum):
    """The six cluster-evolution types of the paper."""

    SPLIT = "split"
    SHRINK = "shrink"
    DISSIPATE = "dissipate"
    MERGE = "merge"
    EXPAND = "expand"
    EMERGE = "emerge"


@dataclass(frozen=True)
class EvolutionEvent:
    """One evolution event.

    Attributes:
        kind: which of the six evolution types occurred.
        cluster_ids: the (resolved) cluster ids involved *after* the event —
            the resulting fragments for a split, the surviving cluster for a
            merge/expand, the new cluster for an emerge, and the empty tuple
            for dissipation.
        trigger: the ex-core or neo-core whose reachability class caused the
            event (the class representative DISC actually processed).
    """

    kind: EvolutionKind
    cluster_ids: tuple[int, ...] = ()
    trigger: int | None = None


class EventList(list):
    """An event list that keeps per-kind tallies current as it mutates.

    ``StrideSummary.count(kind)`` used to rescan the whole list per call —
    O(n · kinds) in the monitoring hot path, where every stride's counts
    are read once per kind. The common mutations (``append``/``extend``,
    which is all the clusterers use) update the tally in O(1); the rare
    destructive ones rebuild it.
    """

    __slots__ = ("kind_counts",)

    def __init__(self, iterable=()):
        super().__init__(iterable)
        self.kind_counts = Counter(event.kind for event in self)

    def _recount(self) -> None:
        self.kind_counts = Counter(event.kind for event in self)

    def append(self, event) -> None:
        super().append(event)
        self.kind_counts[event.kind] += 1

    def extend(self, events) -> None:
        for event in events:
            self.append(event)

    def __iadd__(self, events):
        self.extend(events)
        return self

    def insert(self, index, event) -> None:
        super().insert(index, event)
        self.kind_counts[event.kind] += 1

    def remove(self, event) -> None:
        super().remove(event)
        self.kind_counts[event.kind] -= 1

    def pop(self, index=-1):
        event = super().pop(index)
        self.kind_counts[event.kind] -= 1
        return event

    def clear(self) -> None:
        super().clear()
        self.kind_counts = Counter()

    def __setitem__(self, index, value) -> None:
        super().__setitem__(index, value)
        self._recount()

    def __delitem__(self, index) -> None:
        super().__delitem__(index)
        self._recount()

    def copy(self) -> "EventList":
        return EventList(self)


@dataclass
class StrideSummary:
    """What one window advance did, as reported by a stream clusterer.

    Exact incremental methods fill every field; approximate baselines fill
    what applies to them and leave the rest at defaults.
    """

    events: list[EvolutionEvent] = field(default_factory=EventList)
    num_ex_cores: int = 0
    num_neo_cores: int = 0
    num_inserted: int = 0
    num_deleted: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.events, EventList):
            self.events = EventList(self.events)

    def count(self, kind: EvolutionKind) -> int:
        """Number of events of one kind in this stride."""
        counts = getattr(self.events, "kind_counts", None)
        if counts is None:  # events was reassigned to a plain list
            return sum(1 for event in self.events if event.kind is kind)
        return counts[kind]
