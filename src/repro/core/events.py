"""Cluster-evolution events reported per stride.

The paper names six evolution types (Section III-C): clusters may *split*,
*shrink* or *dissipate* under ex-cores, and *merge*, *expand* or *emerge*
under neo-cores. DISC reports one event per processed reachability class so
applications (e.g. traffic monitoring) can react to topology changes without
diffing snapshots.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class EvolutionKind(enum.Enum):
    """The six cluster-evolution types of the paper."""

    SPLIT = "split"
    SHRINK = "shrink"
    DISSIPATE = "dissipate"
    MERGE = "merge"
    EXPAND = "expand"
    EMERGE = "emerge"


@dataclass(frozen=True)
class EvolutionEvent:
    """One evolution event.

    Attributes:
        kind: which of the six evolution types occurred.
        cluster_ids: the (resolved) cluster ids involved *after* the event —
            the resulting fragments for a split, the surviving cluster for a
            merge/expand, the new cluster for an emerge, and the empty tuple
            for dissipation.
        trigger: the ex-core or neo-core whose reachability class caused the
            event (the class representative DISC actually processed).
    """

    kind: EvolutionKind
    cluster_ids: tuple[int, ...] = ()
    trigger: int | None = None


@dataclass
class StrideSummary:
    """What one window advance did, as reported by a stream clusterer.

    Exact incremental methods fill every field; approximate baselines fill
    what applies to them and leave the rest at defaults.
    """

    events: list[EvolutionEvent] = field(default_factory=list)
    num_ex_cores: int = 0
    num_neo_cores: int = 0
    num_inserted: int = 0
    num_deleted: int = 0

    def count(self, kind: EvolutionKind) -> int:
        """Number of events of one kind in this stride."""
        return sum(1 for event in self.events if event.kind is kind)
