"""Cluster lineage tracking across window advances.

The paper's introduction motivates continuous clustering with applications
like community tracking over social networks: users care not only about the
clusters *now* but about how each cluster evolved — when it was born, what it
merged with, what split off it. DISC's evolution events carry exactly that
information; this tracker folds them into persistent lineages.

Example:
    >>> tracker = ClusterTracker()
    >>> summary = disc.advance(delta_in, delta_out)     # doctest: +SKIP
    >>> tracker.observe(summary, stride=3)              # doctest: +SKIP
    >>> tracker.lineage_of(cluster_id)                  # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import EvolutionKind, StrideSummary


@dataclass
class Lineage:
    """The life story of one cluster id.

    Attributes:
        cluster_id: the (resolved) id this lineage describes.
        born_at: stride index when the cluster first appeared.
        died_at: stride index when it dissipated or was merged away.
        parents: cluster ids it absorbed (merge) or split from.
        children: cluster ids that split off it or absorbed it.
        events: (stride, kind) history in order.
    """

    cluster_id: int
    born_at: int
    died_at: int | None = None
    parents: list[int] = field(default_factory=list)
    children: list[int] = field(default_factory=list)
    events: list[tuple[int, EvolutionKind]] = field(default_factory=list)

    @property
    def alive(self) -> bool:
        return self.died_at is None


class ClusterTracker:
    """Folds per-stride evolution events into cluster lineages."""

    def __init__(self) -> None:
        self._lineages: dict[int, Lineage] = {}

    def _ensure(self, cid: int, stride: int) -> Lineage:
        lineage = self._lineages.get(cid)
        if lineage is None:
            lineage = Lineage(cluster_id=cid, born_at=stride)
            self._lineages[cid] = lineage
        return lineage

    def observe(self, summary: StrideSummary, stride: int) -> None:
        """Fold one stride's events into the lineages."""
        for event in summary.events:
            kind = event.kind
            ids = event.cluster_ids
            if kind is EvolutionKind.EMERGE:
                lineage = self._ensure(ids[0], stride)
                lineage.events.append((stride, kind))
            elif kind is EvolutionKind.MERGE:
                survivor = self._ensure(ids[0], stride)
                survivor.events.append((stride, kind))
                # Other participants' ids resolved away; mark any lineage we
                # know about that is no longer its own root as absorbed.
                for cid, lineage in self._lineages.items():
                    if cid != ids[0] and lineage.alive and cid in ids[1:]:
                        lineage.died_at = stride
                        lineage.children.append(ids[0])
                        survivor.parents.append(cid)
            elif kind is EvolutionKind.SPLIT:
                survivor_id, *fragment_ids = ids
                survivor = self._ensure(survivor_id, stride)
                survivor.events.append((stride, kind))
                for fragment_id in fragment_ids:
                    fragment = self._ensure(fragment_id, stride)
                    fragment.parents.append(survivor_id)
                    survivor.children.append(fragment_id)
            elif kind is EvolutionKind.DISSIPATE:
                # The class representative's cluster vanished; events carry
                # no id for a fully gone cluster, so nothing to close here
                # beyond recording the observation for listeners.
                continue
            else:  # EXPAND / SHRINK: life goes on
                if ids:
                    lineage = self._ensure(ids[0], stride)
                    lineage.events.append((stride, kind))

    def close_missing(self, live_cluster_ids: set[int], stride: int) -> None:
        """Mark lineages absent from the live snapshot as dead.

        Call with ``set(snapshot.core_clusters())`` after :meth:`observe` to
        catch dissipations (which carry no surviving cluster id) and merges
        whose losers were not tracked yet.
        """
        for cid, lineage in self._lineages.items():
            if lineage.alive and cid not in live_cluster_ids:
                lineage.died_at = stride

    def lineage_of(self, cid: int) -> Lineage:
        return self._lineages[cid]

    def alive(self) -> list[Lineage]:
        return [lin for lin in self._lineages.values() if lin.alive]

    def all_lineages(self) -> list[Lineage]:
        return list(self._lineages.values())

    def __len__(self) -> int:
        return len(self._lineages)
