"""Checkpointing DISC's window state for fault tolerance.

A stream processor that dies mid-stream should not have to replay a whole
window. :func:`to_checkpoint` captures everything DISC needs — per-point
records, the cluster-id forest, the generation counters, and the name of the
index backend the run was using — as a JSON-friendly dict;
:func:`from_checkpoint` validates the payload *before* building anything,
rebuilds the same backend through the index registry (bulk-loading via the
batched ``insert_many`` layer, which STR-packs on the R-tree), and returns a
DISC that continues the stream with byte-identical results to an
uninterrupted run.

The durable envelope around these payloads (CRC, atomic writes, rotation)
lives in :mod:`repro.runtime.store`; this module owns only the logical
DISC state <-> dict mapping.
"""

from __future__ import annotations

import json

from repro.common.errors import ReproError
from repro.core.disc import DISC
from repro.core.state import PointRecord

CHECKPOINT_VERSION = 2

#: Versions this build can restore. Version 1 predates the index registry
#: and carries no backend name; it restores onto the default backend.
SUPPORTED_VERSIONS = (1, 2)

_REQUIRED_KEYS = (
    "eps",
    "tau",
    "multi_starter",
    "epoch_probing",
    "records",
    "cid_parents",
    "cid_next",
)

_REQUIRED_RECORD_KEYS = (
    "pid",
    "coords",
    "time",
    "n_eps",
    "c_core",
    "was_core",
    "cid",
    "anchor",
)


class CheckpointError(ReproError):
    """Raised when a checkpoint payload cannot be restored."""


def to_checkpoint(disc: DISC) -> dict:
    """Capture a DISC instance's full logical state.

    Exited ex-cores never survive past the end of an ``advance`` call, so a
    checkpoint taken between strides holds live points only.
    """
    state = disc.state
    records = []
    for rec in state.records.values():
        if rec.deleted:
            raise CheckpointError(
                "checkpoint mid-stride: deleted record still present"
            )
        records.append(
            {
                "pid": rec.pid,
                "coords": list(rec.coords),
                "time": rec.time,
                "n_eps": rec.n_eps,
                "c_core": rec.c_core,
                "was_core": rec.was_core,
                "cid": rec.cid,
                "anchor": rec.anchor,
            }
        )
    cids = state.cids
    return {
        "version": CHECKPOINT_VERSION,
        "eps": disc.params.eps,
        "tau": disc.params.tau,
        "index": disc.params.index,
        "multi_starter": disc.multi_starter,
        "epoch_probing": disc.epoch_probing,
        "records": records,
        "cid_parents": {str(k): v for k, v in cids._parent.items()},
        "cid_next": cids._next_id,
    }


def _validate(payload: dict) -> None:
    """Reject a malformed payload before any state is constructed."""
    version = payload.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r}; "
            f"this build restores versions "
            f"{', '.join(str(v) for v in SUPPORTED_VERSIONS)}"
        )
    missing = [key for key in _REQUIRED_KEYS if key not in payload]
    if missing:
        raise CheckpointError(
            f"checkpoint is missing required keys: {', '.join(missing)}"
        )
    if not isinstance(payload["records"], list):
        raise CheckpointError("checkpoint 'records' must be a list")
    index = payload.get("index")
    if index is not None and not isinstance(index, str):
        raise CheckpointError(
            f"checkpoint 'index' must be a backend name or null, got {index!r}"
        )
    dim: int | None = None
    for i, entry in enumerate(payload["records"]):
        if not isinstance(entry, dict):
            raise CheckpointError(f"checkpoint record {i} is not an object")
        missing = [key for key in _REQUIRED_RECORD_KEYS if key not in entry]
        if missing:
            raise CheckpointError(
                f"checkpoint record {i} is missing keys: {', '.join(missing)}"
            )
        coords = entry["coords"]
        if not isinstance(coords, (list, tuple)) or not coords:
            raise CheckpointError(
                f"checkpoint record {i} has invalid coords {coords!r}"
            )
        if dim is None:
            dim = len(coords)
        elif len(coords) != dim:
            raise CheckpointError(
                f"checkpoint record {i} (pid {entry['pid']!r}) is "
                f"{len(coords)}-dimensional; earlier records are "
                f"{dim}-dimensional"
            )


def from_checkpoint(payload: dict) -> DISC:
    """Rebuild a DISC instance from :func:`to_checkpoint` output.

    The payload is validated up front (version, required keys, coordinate
    dimensionality) so a bad checkpoint raises :class:`CheckpointError`
    before any state exists to corrupt. The spatial index is rebuilt on the
    backend named in the payload via the registry, using the batched
    ``insert_many`` layer so backends with bulk machinery (STR packing on
    the R-tree) load fast.
    """
    if not isinstance(payload, dict):
        raise CheckpointError(
            f"checkpoint payload must be an object, got {type(payload).__name__}"
        )
    _validate(payload)
    try:
        disc = DISC(
            payload["eps"],
            payload["tau"],
            index=payload.get("index"),
            multi_starter=payload["multi_starter"],
            epoch_probing=payload["epoch_probing"],
        )
        state = disc.state
        items = []
        for entry in payload["records"]:
            rec = PointRecord(
                int(entry["pid"]),
                tuple(float(c) for c in entry["coords"]),
                float(entry["time"]),
            )
            rec.n_eps = int(entry["n_eps"])
            rec.c_core = int(entry["c_core"])
            rec.was_core = bool(entry["was_core"])
            rec.cid = entry["cid"] if entry["cid"] is None else int(entry["cid"])
            rec.anchor = (
                entry["anchor"] if entry["anchor"] is None else int(entry["anchor"])
            )
            state.records[rec.pid] = rec
            items.append((rec.pid, rec.coords))
        disc.index.insert_many(items)
        parents = {
            int(k): int(v) for k, v in payload["cid_parents"].items()
        }
        state.cids._parent = parents
        state.cids._size = {k: 1 for k in parents}  # sizes only bias unions
        state.cids._next_id = int(payload["cid_next"])
        state.cids._rebuild_members()
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed checkpoint: {exc}") from exc
    return disc


def dumps(disc: DISC) -> str:
    """Checkpoint as a JSON string."""
    return json.dumps(to_checkpoint(disc))


def loads(text: str) -> DISC:
    """Restore from a JSON string checkpoint."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"invalid JSON: {exc}") from exc
    return from_checkpoint(payload)
