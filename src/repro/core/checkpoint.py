"""Checkpointing DISC's window state for fault tolerance.

A stream processor that dies mid-stream should not have to replay a whole
window. :func:`to_checkpoint` captures everything DISC needs — the per-point
state columns, the cluster-id forest, the generation counters, and the name
of the index backend the run was using — as a JSON-friendly dict;
:func:`from_checkpoint` validates the payload *before* building anything,
rebuilds the same backend through the index registry (bulk-loading via the
batched ``insert_many`` layer, which STR-packs on the R-tree), and returns a
DISC that continues the stream with byte-identical results to an
uninterrupted run.

Format version 3 serializes the :class:`~repro.core.store.PointStore`
columns directly — one JSON array per column, rows in window insertion
order, with ``-1`` encoding the ``None`` of ``cid``/``anchor`` and the
``flags`` bitfield carrying ``was_core`` (deleted rows never reach a
checkpoint). Both storage layouts emit the identical v3 payload. Versions 1
and 2 carried one object per record; they restore byte-identically onto
either layout (covered by tests/test_checkpoint.py).

The durable envelope around these payloads (CRC, atomic writes, rotation)
lives in :mod:`repro.runtime.store`; this module owns only the logical
DISC state <-> dict mapping.
"""

from __future__ import annotations

import json

import numpy as np

from repro.common.errors import ReproError
from repro.core.disc import DISC
from repro.core.state import PointRecord
from repro.core.store import DELETED, NO_ID, WAS_CORE

CHECKPOINT_VERSION = 3

#: Versions this build can restore. Version 1 predates the index registry
#: and carries no backend name; it restores onto the default backend.
#: Versions 1-2 carry per-record objects instead of columns.
SUPPORTED_VERSIONS = (1, 2, 3)

_REQUIRED_KEYS = (
    "eps",
    "tau",
    "multi_starter",
    "epoch_probing",
    "cid_parents",
    "cid_next",
)

_REQUIRED_RECORD_KEYS = (
    "pid",
    "coords",
    "time",
    "n_eps",
    "c_core",
    "was_core",
    "cid",
    "anchor",
)

_COLUMN_KEYS = (
    "pid",
    "coords",
    "time",
    "n_eps",
    "c_core",
    "flags",
    "cid",
    "anchor",
)


class CheckpointError(ReproError):
    """Raised when a checkpoint payload cannot be restored."""


def to_checkpoint(disc: DISC) -> dict:
    """Capture a DISC instance's full logical state.

    Exited ex-cores never survive past the end of an ``advance`` call, so a
    checkpoint taken between strides holds live points only.
    """
    state = disc.state
    arena = state.columnar()
    if arena is not None:
        slots = arena.live_slots()
        if len(slots) and np.any(arena.flags[slots] & DELETED):
            raise CheckpointError(
                "checkpoint mid-stride: deleted record still present"
            )
        columns = {
            "pid": arena.pid[slots].tolist(),
            "coords": arena.coords[slots].tolist(),
            "time": arena.time[slots].tolist(),
            "n_eps": arena.n_eps[slots].tolist(),
            "c_core": arena.c_core[slots].tolist(),
            "flags": arena.flags[slots].astype(int).tolist(),
            "cid": arena.cid[slots].tolist(),
            "anchor": arena.anchor[slots].tolist(),
        }
    else:
        columns = {key: [] for key in _COLUMN_KEYS}
        for rec in state.records.values():
            if rec.deleted:
                raise CheckpointError(
                    "checkpoint mid-stride: deleted record still present"
                )
            columns["pid"].append(rec.pid)
            columns["coords"].append(list(rec.coords))
            columns["time"].append(rec.time)
            columns["n_eps"].append(rec.n_eps)
            columns["c_core"].append(rec.c_core)
            columns["flags"].append(int(WAS_CORE) if rec.was_core else 0)
            columns["cid"].append(NO_ID if rec.cid is None else rec.cid)
            columns["anchor"].append(NO_ID if rec.anchor is None else rec.anchor)
    cids = state.cids
    return {
        "version": CHECKPOINT_VERSION,
        "eps": disc.params.eps,
        "tau": disc.params.tau,
        "index": disc.params.index,
        "multi_starter": disc.multi_starter,
        "epoch_probing": disc.epoch_probing,
        "columns": columns,
        "cid_parents": {str(k): v for k, v in cids._parent.items()},
        "cid_next": cids._next_id,
    }


def _validate_coords(i: int, coords, dim: int | None) -> int:
    if not isinstance(coords, (list, tuple)) or not coords:
        raise CheckpointError(
            f"checkpoint record {i} has invalid coords {coords!r}"
        )
    if dim is None:
        return len(coords)
    if len(coords) != dim:
        raise CheckpointError(
            f"checkpoint record {i} is {len(coords)}-dimensional; "
            f"earlier records are {dim}-dimensional"
        )
    return dim


def _validate(payload: dict) -> None:
    """Reject a malformed payload before any state is constructed."""
    version = payload.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r}; "
            f"this build restores versions "
            f"{', '.join(str(v) for v in SUPPORTED_VERSIONS)}"
        )
    missing = [key for key in _REQUIRED_KEYS if key not in payload]
    if version >= 3:
        if "columns" not in payload:
            missing.append("columns")
    elif "records" not in payload:
        missing.append("records")
    if missing:
        raise CheckpointError(
            f"checkpoint is missing required keys: {', '.join(missing)}"
        )
    index = payload.get("index")
    if index is not None and not isinstance(index, str):
        raise CheckpointError(
            f"checkpoint 'index' must be a backend name or null, got {index!r}"
        )
    if version >= 3:
        _validate_columns(payload["columns"])
    else:
        _validate_records(payload["records"])


def _validate_records(records) -> None:
    if not isinstance(records, list):
        raise CheckpointError("checkpoint 'records' must be a list")
    dim: int | None = None
    for i, entry in enumerate(records):
        if not isinstance(entry, dict):
            raise CheckpointError(f"checkpoint record {i} is not an object")
        missing = [key for key in _REQUIRED_RECORD_KEYS if key not in entry]
        if missing:
            raise CheckpointError(
                f"checkpoint record {i} is missing keys: {', '.join(missing)}"
            )
        dim = _validate_coords(i, entry["coords"], dim)


def _validate_columns(columns) -> None:
    if not isinstance(columns, dict):
        raise CheckpointError("checkpoint 'columns' must be an object")
    missing = [key for key in _COLUMN_KEYS if key not in columns]
    if missing:
        raise CheckpointError(
            f"checkpoint columns are missing keys: {', '.join(missing)}"
        )
    lengths = {key: len(columns[key]) for key in _COLUMN_KEYS}
    if len(set(lengths.values())) > 1:
        raise CheckpointError(
            "checkpoint columns have mismatched lengths: "
            + ", ".join(f"{k}={v}" for k, v in sorted(lengths.items()))
        )
    dim: int | None = None
    for i, coords in enumerate(columns["coords"]):
        dim = _validate_coords(i, coords, dim)
    for i, flags in enumerate(columns["flags"]):
        if not isinstance(flags, int) or flags & ~int(WAS_CORE):
            raise CheckpointError(
                f"checkpoint record {i} has invalid flags {flags!r}"
            )


def _columns_from_records(records: list[dict]) -> dict:
    """Lift a v1/v2 per-record payload into the v3 column layout."""
    return {
        "pid": [entry["pid"] for entry in records],
        "coords": [entry["coords"] for entry in records],
        "time": [entry["time"] for entry in records],
        "n_eps": [entry["n_eps"] for entry in records],
        "c_core": [entry["c_core"] for entry in records],
        "flags": [int(WAS_CORE) if entry["was_core"] else 0 for entry in records],
        "cid": [
            NO_ID if entry["cid"] is None else entry["cid"] for entry in records
        ],
        "anchor": [
            NO_ID if entry["anchor"] is None else entry["anchor"]
            for entry in records
        ],
    }


def from_checkpoint(payload: dict, *, store: str = "columnar") -> DISC:
    """Rebuild a DISC instance from :func:`to_checkpoint` output.

    The payload is validated up front (version, required keys, coordinate
    dimensionality) so a bad checkpoint raises :class:`CheckpointError`
    before any state exists to corrupt. The spatial index is rebuilt on the
    backend named in the payload via the registry, using the batched
    ``insert_many`` layer so backends with bulk machinery (STR packing on
    the R-tree) load fast. ``store`` picks the storage layout of the
    restored instance; any supported payload restores onto either layout.
    """
    if not isinstance(payload, dict):
        raise CheckpointError(
            f"checkpoint payload must be an object, got {type(payload).__name__}"
        )
    _validate(payload)
    try:
        disc = DISC(
            payload["eps"],
            payload["tau"],
            index=payload.get("index"),
            multi_starter=payload["multi_starter"],
            epoch_probing=payload["epoch_probing"],
            store=store,
        )
        if payload["version"] >= 3:
            columns = payload["columns"]
        else:
            columns = _columns_from_records(payload["records"])
        _populate(disc, columns)
        state = disc.state
        parents = {
            int(k): int(v) for k, v in payload["cid_parents"].items()
        }
        state.cids._parent = parents
        state.cids._size = {k: 1 for k in parents}  # sizes only bias unions
        state.cids._next_id = int(payload["cid_next"])
        state.cids._rebuild_members()
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed checkpoint: {exc}") from exc
    return disc


def _populate(disc: DISC, columns: dict) -> None:
    """Load the state columns into the new instance's storage layout."""
    state = disc.state
    pids = [int(pid) for pid in columns["pid"]]
    coords = [tuple(float(c) for c in row) for row in columns["coords"]]
    times = [float(t) for t in columns["time"]]
    arena = state.columnar()
    if arena is not None:
        slots = arena.bulk_insert(pids, coords, times)
        if len(slots):
            arena.n_eps[slots] = [int(v) for v in columns["n_eps"]]
            arena.c_core[slots] = [int(v) for v in columns["c_core"]]
            arena.cid[slots] = [int(v) for v in columns["cid"]]
            arena.anchor[slots] = [int(v) for v in columns["anchor"]]
            arena.flags[slots] = np.asarray(
                [int(v) for v in columns["flags"]], dtype=np.uint8
            )
    else:
        for i, pid in enumerate(pids):
            rec = PointRecord(pid, coords[i], times[i])
            rec.n_eps = int(columns["n_eps"][i])
            rec.c_core = int(columns["c_core"][i])
            rec.was_core = bool(int(columns["flags"][i]) & WAS_CORE)
            cid = int(columns["cid"][i])
            rec.cid = None if cid == NO_ID else cid
            anchor = int(columns["anchor"][i])
            rec.anchor = None if anchor == NO_ID else anchor
            state.records[pid] = rec
    disc.index.insert_many(list(zip(pids, coords)))


def dumps(disc: DISC) -> str:
    """Checkpoint as a JSON string."""
    return json.dumps(to_checkpoint(disc))


def loads(text: str) -> DISC:
    """Restore from a JSON string checkpoint."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"invalid JSON: {exc}") from exc
    return from_checkpoint(payload)
