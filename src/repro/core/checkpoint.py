"""Checkpointing DISC's window state for fault tolerance.

A stream processor that dies mid-stream should not have to replay a whole
window. :func:`to_checkpoint` captures everything DISC needs — per-point
records, the cluster-id forest, the generation counters — as a JSON-friendly
dict; :func:`from_checkpoint` rebuilds a DISC (the spatial index is
reconstructed with STR bulk loading, which is fast and does not need to be
serialized). A restored instance continues the stream with byte-identical
results to an uninterrupted run.
"""

from __future__ import annotations

import json

from repro.common.errors import ReproError
from repro.core.disc import DISC
from repro.core.state import PointRecord
from repro.index.rtree import RTree

CHECKPOINT_VERSION = 1


class CheckpointError(ReproError):
    """Raised when a checkpoint payload cannot be restored."""


def to_checkpoint(disc: DISC) -> dict:
    """Capture a DISC instance's full logical state.

    Exited ex-cores never survive past the end of an ``advance`` call, so a
    checkpoint taken between strides holds live points only.
    """
    state = disc.state
    records = []
    for rec in state.records.values():
        if rec.deleted:
            raise CheckpointError(
                "checkpoint mid-stride: deleted record still present"
            )
        records.append(
            {
                "pid": rec.pid,
                "coords": list(rec.coords),
                "time": rec.time,
                "n_eps": rec.n_eps,
                "c_core": rec.c_core,
                "was_core": rec.was_core,
                "cid": rec.cid,
                "anchor": rec.anchor,
            }
        )
    cids = state.cids
    return {
        "version": CHECKPOINT_VERSION,
        "eps": disc.params.eps,
        "tau": disc.params.tau,
        "multi_starter": disc.multi_starter,
        "epoch_probing": disc.epoch_probing,
        "records": records,
        "cid_parents": {str(k): v for k, v in cids._parent.items()},
        "cid_next": cids._next_id,
    }


def from_checkpoint(payload: dict) -> DISC:
    """Rebuild a DISC instance from :func:`to_checkpoint` output."""
    try:
        if payload.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {payload.get('version')!r}"
            )
        disc = DISC(
            payload["eps"],
            payload["tau"],
            multi_starter=payload["multi_starter"],
            epoch_probing=payload["epoch_probing"],
        )
        state = disc.state
        items = []
        for entry in payload["records"]:
            rec = PointRecord(
                int(entry["pid"]),
                tuple(float(c) for c in entry["coords"]),
                float(entry["time"]),
            )
            rec.n_eps = int(entry["n_eps"])
            rec.c_core = int(entry["c_core"])
            rec.was_core = bool(entry["was_core"])
            rec.cid = entry["cid"] if entry["cid"] is None else int(entry["cid"])
            rec.anchor = (
                entry["anchor"] if entry["anchor"] is None else int(entry["anchor"])
            )
            state.records[rec.pid] = rec
            items.append((rec.pid, rec.coords))
        disc.index = RTree.bulk_load(items)
        parents = {
            int(k): int(v) for k, v in payload["cid_parents"].items()
        }
        state.cids._parent = parents
        state.cids._size = {k: 1 for k in parents}  # sizes only bias unions
        state.cids._next_id = int(payload["cid_next"])
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed checkpoint: {exc}") from exc
    return disc


def dumps(disc: DISC) -> str:
    """Checkpoint as a JSON string."""
    return json.dumps(to_checkpoint(disc))


def loads(text: str) -> DISC:
    """Restore from a JSON string checkpoint."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"invalid JSON: {exc}") from exc
    return from_checkpoint(payload)
