"""Columnar (struct-of-arrays) storage for per-point window state.

The object layout of :class:`~repro.core.state.PointRecord` — one Python
object per point, one attribute chase per field — is what made COLLECT's
``n_eps``/``c_core`` maintenance and stride expiry the dominant cost of a
window advance. :class:`PointStore` replaces it with a struct-of-arrays
arena: one numpy column per field, grown in fixed-size slabs, with a
free-list recycling slots on expiry so a steady-state stream never
reallocates. The COLLECT/CLUSTER hot paths operate on whole index arrays
(``np.add.at`` over every neighbour of a stride at once) instead of touching
records one by one; everything else goes through the
:class:`RecordView`/:class:`RecordMap` façade, which preserves the classic
per-record API on top of the columns.

Layout (one row per resident point):

====== ========= =====================================================
column dtype     meaning
====== ========= =====================================================
pid    int64     stream point id (also the key of the pid -> slot map)
coords float64xd point coordinates (d fixed by the first insert)
time   float64   stream timestamp
n_eps  int64     epsilon-neighbour count, self included
c_core int64     current-core neighbours, self excluded
cid    int64     raw cluster id; ``-1`` encodes "no id" (None)
anchor int64     anchoring core pid for borders; ``-1`` encodes None
flags  uint8     bitfield: ``WAS_CORE`` (bit 0), ``DELETED`` (bit 1)
====== ========= =====================================================

Core status is *derived* (``n_eps >= tau``), never stored — exactly as in
the object layout. See DESIGN.md §3.3 and docs/performance.md.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

import numpy as np

#: flags bit: the point was a core at the end of the previous stride.
WAS_CORE = np.uint8(1)
#: flags bit: the point exited the window (ex-cores linger until CLUSTER ends).
DELETED = np.uint8(2)

#: Rows added per slab. Growth doubles in slab units, so the arena reaches
#: any window size in O(log n) reallocations and steady state in none.
SLAB_SLOTS = 1024

#: Sentinel for "no cluster id" / "no anchor" in the int64 columns.
NO_ID = -1

#: Keys of :meth:`PointStore.counters`, in emission order. The observability
#: schema and the Prometheus exporter treat these as gauges (point-in-time
#: occupancy, not per-stride deltas).
COUNTER_FIELDS = (
    "slots",
    "capacity",
    "slabs",
    "free",
    "recycled",
    "high_water",
    "occupancy",
)


class PointStore:
    """Struct-of-arrays arena for every point in (or just leaving) the window.

    Slots are recycled through a free-list: expiry pushes a row's slot, the
    next insert pops it, and a pid's slot never changes while the point is
    resident (``pid -> slot`` is stable across other points' expiry — the
    property the batched mutators and any future sharding rely on).

    Args:
        dim: coordinate dimensionality; lazily fixed by the first insert
            when omitted.
    """

    def __init__(self, dim: int | None = None) -> None:
        self.dim = dim
        self.capacity = 0
        self.coords = np.empty((0, dim if dim is not None else 0), dtype=np.float64)
        self.time = np.empty(0, dtype=np.float64)
        self.pid = np.empty(0, dtype=np.int64)
        self.n_eps = np.empty(0, dtype=np.int64)
        self.c_core = np.empty(0, dtype=np.int64)
        self.cid = np.empty(0, dtype=np.int64)
        self.anchor = np.empty(0, dtype=np.int64)
        self.flags = np.empty(0, dtype=np.uint8)
        # pid -> slot; insertion-ordered (Python dict), which keeps iteration
        # order identical to the object layout's records dict.
        self._slot_of: dict[int, int] = {}
        self._free: list[int] = []
        self.recycled_total = 0
        self.high_water = 0

    # ------------------------------------------------------------------ sizing

    def __len__(self) -> int:
        """Number of resident rows (live points plus lingering ex-cores)."""
        return len(self._slot_of)

    def __contains__(self, pid: int) -> bool:
        return pid in self._slot_of

    @property
    def slabs(self) -> int:
        return self.capacity // SLAB_SLOTS

    def counters(self) -> dict:
        """Occupancy counters for the observability layer."""
        in_use = len(self._slot_of)
        return {
            "slots": in_use,
            "capacity": self.capacity,
            "slabs": self.slabs,
            "free": len(self._free),
            "recycled": self.recycled_total,
            "high_water": self.high_water,
            "occupancy": (in_use / self.capacity) if self.capacity else 0.0,
        }

    def nbytes(self) -> int:
        """Resident bytes of all columns (the arena's memory footprint)."""
        return sum(
            col.nbytes
            for col in (
                self.coords,
                self.time,
                self.pid,
                self.n_eps,
                self.c_core,
                self.cid,
                self.anchor,
                self.flags,
            )
        )

    def _grow(self, need: int) -> None:
        """Extend every column so at least ``need`` free slots exist."""
        shortfall = need - (self.capacity - self.high_water + len(self._free))
        if shortfall <= 0:
            return
        add = max(self.capacity, SLAB_SLOTS)
        while add < shortfall:
            add += add
        add = -(-add // SLAB_SLOTS) * SLAB_SLOTS  # round up to whole slabs
        new_cap = self.capacity + add
        dim = self.dim if self.dim is not None else 0
        coords = np.zeros((new_cap, dim), dtype=np.float64)
        coords[: self.capacity] = self.coords
        self.coords = coords
        for name in ("time", "pid", "n_eps", "c_core", "cid", "anchor", "flags"):
            old = getattr(self, name)
            fresh = np.zeros(new_cap, dtype=old.dtype)
            fresh[: self.capacity] = old
            setattr(self, name, fresh)
        self.capacity = new_cap

    # --------------------------------------------------------------- mutation

    def bulk_insert(
        self,
        pids: Sequence[int],
        coords: Sequence[Sequence[float]],
        times: Sequence[float],
    ) -> np.ndarray:
        """Insert a batch of fresh points; returns their slots (int64).

        New rows start exactly like a fresh ``PointRecord``: ``n_eps=1``
        (a point is its own epsilon-neighbour), ``c_core=0``, no flags, no
        cluster id, no anchor.
        """
        n = len(pids)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if self.dim is None:
            self.dim = len(coords[0])
            self.coords = np.empty((self.capacity, self.dim), dtype=np.float64)
        self._grow(n)
        slots = np.empty(n, dtype=np.int64)
        take = min(len(self._free), n)
        for i in range(take):
            slots[i] = self._free.pop()
        if take:
            self.recycled_total += take
        if take < n:
            fresh = np.arange(self.high_water, self.high_water + (n - take))
            slots[take:] = fresh
            self.high_water += n - take
        self.coords[slots] = np.asarray(coords, dtype=np.float64)
        self.time[slots] = np.asarray(times, dtype=np.float64)
        self.pid[slots] = np.asarray(pids, dtype=np.int64)
        self.n_eps[slots] = 1
        self.c_core[slots] = 0
        self.cid[slots] = NO_ID
        self.anchor[slots] = NO_ID
        self.flags[slots] = 0
        slot_of = self._slot_of
        for pid, slot in zip(pids, slots.tolist()):
            slot_of[pid] = slot
        return slots

    def insert(self, pid: int, coords: Sequence[float], time: float = 0.0) -> int:
        """Insert one point; returns its slot."""
        return int(self.bulk_insert([pid], [tuple(coords)], [time])[0])

    def mark_deleted(self, slots: np.ndarray) -> None:
        """Flag rows as exited and zero their counts (rows stay resident)."""
        if len(slots) == 0:
            return
        self.flags[slots] |= DELETED
        self.n_eps[slots] = 0
        self.c_core[slots] = 0

    def free(self, pids: Iterable[int]) -> None:
        """Drop rows entirely, recycling their slots through the free-list."""
        slot_of = self._slot_of
        free = self._free
        for pid in pids:
            free.append(slot_of.pop(pid))

    # ---------------------------------------------------------------- lookups

    def slot_of(self, pid: int) -> int:
        """Slot of a resident pid (KeyError when absent)."""
        return self._slot_of[pid]

    def get_slot(self, pid: int) -> int | None:
        return self._slot_of.get(pid)

    def slots_of(self, pids: Iterable[int]) -> np.ndarray:
        """Translate resident pids to a slot array (KeyError on a miss)."""
        slot_of = self._slot_of
        return np.fromiter((slot_of[p] for p in pids), dtype=np.int64)

    def live_slots(self) -> np.ndarray:
        """Slots of every resident row, in insertion order.

        "Live" here means resident; during a stride the result can include
        rows carrying the ``DELETED`` flag (lingering exited ex-cores) —
        mask with :data:`DELETED` when that matters.
        """
        return np.fromiter(self._slot_of.values(), dtype=np.int64, count=len(self._slot_of))

    def iter_pids(self) -> Iterator[int]:
        """Resident pids in insertion order."""
        return iter(self._slot_of)

    def view(self, pid: int) -> "RecordView":
        return RecordView(self, self._slot_of[pid])

    # ------------------------------------------------------------- invariants

    def check_invariants(self) -> None:
        """Internal consistency of the slot map, free-list, and columns."""
        used = set(self._slot_of.values())
        assert len(used) == len(self._slot_of), "duplicate slots in the pid map"
        free = set(self._free)
        assert len(free) == len(self._free), "duplicate slots in the free-list"
        assert not (used & free), "slot both in use and free"
        assert all(0 <= s < self.high_water for s in used | free)
        assert self.high_water <= self.capacity
        for pid, slot in self._slot_of.items():
            assert int(self.pid[slot]) == pid, f"pid column out of sync at {slot}"


class RecordView:
    """A per-point proxy reading and writing one :class:`PointStore` row.

    Exposes exactly the :class:`~repro.core.state.PointRecord` attribute set
    so call sites (and tests) written against the object layout keep working
    unchanged. Views are transient — create, touch, discard; the hot paths
    never build them.
    """

    __slots__ = ("_store", "_slot")

    def __init__(self, store: PointStore, slot: int) -> None:
        object.__setattr__(self, "_store", store)
        object.__setattr__(self, "_slot", slot)

    @property
    def pid(self) -> int:
        return int(self._store.pid[self._slot])

    @property
    def coords(self) -> tuple[float, ...]:
        return tuple(self._store.coords[self._slot].tolist())

    @property
    def time(self) -> float:
        return float(self._store.time[self._slot])

    @time.setter
    def time(self, value: float) -> None:
        self._store.time[self._slot] = value

    @property
    def n_eps(self) -> int:
        return int(self._store.n_eps[self._slot])

    @n_eps.setter
    def n_eps(self, value: int) -> None:
        self._store.n_eps[self._slot] = value

    @property
    def c_core(self) -> int:
        return int(self._store.c_core[self._slot])

    @c_core.setter
    def c_core(self, value: int) -> None:
        self._store.c_core[self._slot] = value

    @property
    def cid(self) -> int | None:
        raw = self._store.cid[self._slot]
        return None if raw == NO_ID else int(raw)

    @cid.setter
    def cid(self, value: int | None) -> None:
        self._store.cid[self._slot] = NO_ID if value is None else value

    @property
    def anchor(self) -> int | None:
        raw = self._store.anchor[self._slot]
        return None if raw == NO_ID else int(raw)

    @anchor.setter
    def anchor(self, value: int | None) -> None:
        self._store.anchor[self._slot] = NO_ID if value is None else value

    @property
    def was_core(self) -> bool:
        return bool(self._store.flags[self._slot] & WAS_CORE)

    @was_core.setter
    def was_core(self, value: bool) -> None:
        if value:
            self._store.flags[self._slot] |= WAS_CORE
        else:
            self._store.flags[self._slot] &= ~WAS_CORE

    @property
    def deleted(self) -> bool:
        return bool(self._store.flags[self._slot] & DELETED)

    @deleted.setter
    def deleted(self, value: bool) -> None:
        if value:
            self._store.flags[self._slot] |= DELETED
        else:
            self._store.flags[self._slot] &= ~DELETED

    def __repr__(self) -> str:
        return (
            f"RecordView(pid={self.pid}, n={self.n_eps}, c_core={self.c_core}, "
            f"was_core={self.was_core}, cid={self.cid}, anchor={self.anchor}, "
            f"deleted={self.deleted}, time={self.time})"
        )


class RecordMap(Mapping):
    """Mapping façade: pid -> :class:`RecordView` over a :class:`PointStore`.

    Supports the read surface the per-record code paths use (`[]`, ``get``,
    ``in``, ``len``, iteration in insertion order, ``values``/``items``).
    Mutation goes through the store (``bulk_insert`` / ``free``); the only
    mapping-style mutation kept is ``del records[pid]``, for parity with the
    object layout's purge loop.
    """

    __slots__ = ("_store",)

    def __init__(self, store: PointStore) -> None:
        self._store = store

    @property
    def store(self) -> PointStore:
        return self._store

    def __getitem__(self, pid: int) -> RecordView:
        return RecordView(self._store, self._store._slot_of[pid])

    def __delitem__(self, pid: int) -> None:
        self._store.free([pid])

    def __len__(self) -> int:
        return len(self._store._slot_of)

    def __iter__(self) -> Iterator[int]:
        return iter(self._store._slot_of)

    def __contains__(self, pid: object) -> bool:
        return pid in self._store._slot_of

    def get(self, pid: int, default=None):
        slot = self._store._slot_of.get(pid)
        if slot is None:
            return default
        return RecordView(self._store, slot)

    def values(self):
        store = self._store
        return (RecordView(store, slot) for slot in store._slot_of.values())

    def items(self):
        store = self._store
        return (
            (pid, RecordView(store, slot))
            for pid, slot in store._slot_of.items()
        )
