"""Per-point window state shared by the COLLECT and CLUSTER steps.

Each point in the current window carries exactly the bookkeeping the paper
requires: its epsilon-neighbour count ``n_eps`` (self included), the derived
core status plus the *previous* window's core status (``was_core``), its
cluster id for cores, and the border machinery — ``c_core`` (how many current
cores lie within epsilon) and ``anchor`` (one such core, through which the
border's cluster id is resolved). See DESIGN.md §3.3.

Two storage layouts back the same state API:

* ``columnar`` (default) — a struct-of-arrays :class:`~repro.core.store.PointStore`
  arena; ``records`` is a :class:`~repro.core.store.RecordMap` of transient
  :class:`~repro.core.store.RecordView` proxies, and the COLLECT/CLUSTER hot
  paths bypass the proxies entirely with batched column operations.
* ``object`` — the classic one-``PointRecord``-per-point dict, kept as the
  reference implementation for the equivalence suite and the layout
  benchmark. Both layouts are required to produce byte-identical output
  (tests/test_store_equivalence.py).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.common.config import ClusteringParams
from repro.common.disjointset import DisjointSet
from repro.common.errors import StreamOrderError
from repro.common.snapshot import Category, Clustering
from repro.core.store import DELETED, NO_ID, PointStore, RecordMap

Coords = tuple[float, ...]


class PointRecord:
    """Mutable bookkeeping for one point in (or just leaving) the window."""

    __slots__ = (
        "pid",
        "coords",
        "n_eps",
        "c_core",
        "was_core",
        "cid",
        "anchor",
        "deleted",
        "time",
    )

    def __init__(self, pid: int, coords: Coords, time: float = 0.0) -> None:
        self.pid = pid
        self.coords = coords
        self.n_eps = 1  # a point is its own epsilon-neighbour
        self.c_core = 0  # current cores within eps, excluding the point itself
        self.was_core = False  # core status at the end of the previous stride
        self.cid: int | None = None  # raw cluster id; resolve through DisjointSet
        self.anchor: int | None = None  # a core neighbour lending borders a cid
        self.deleted = False  # exited the window (ex-cores linger in the index)
        self.time = time

    def __repr__(self) -> str:
        return (
            f"PointRecord(pid={self.pid}, n={self.n_eps}, c_core={self.c_core}, "
            f"was_core={self.was_core}, cid={self.cid}, anchor={self.anchor}, "
            f"deleted={self.deleted}, time={self.time})"
        )


class WindowState:
    """All per-point records plus the cluster-id disjoint set.

    The spatial index lives next to this object inside
    :class:`~repro.core.disc.DISC`; this class only owns the records so the
    COLLECT/CLUSTER functions can be tested against it in isolation.

    Args:
        params: epsilon/tau (and backend) configuration.
        store: ``"columnar"`` for the :class:`~repro.core.store.PointStore`
            arena (default), ``"object"`` for one ``PointRecord`` per point.
    """

    def __init__(self, params: ClusteringParams, store: str = "columnar") -> None:
        self.params = params
        if store == "columnar":
            self.store: PointStore | None = PointStore()
            self.records = RecordMap(self.store)
        elif store == "object":
            self.store = None
            self.records = {}
        else:
            raise ValueError(f"unknown store layout: {store!r}")
        self.cids = DisjointSet()
        # Non-core points whose border anchor was invalidated this stride and
        # needs one repair range search at the end of CLUSTER.
        self.repair: set[int] = set()

    @property
    def store_kind(self) -> str:
        return "object" if self.store is None else "columnar"

    def columnar(self) -> PointStore | None:
        """The backing arena when the columnar fast paths may be used.

        Tests are allowed to swap ``state.records`` for a plain dict of
        stand-alone records; the generic per-record code handles that, but
        the batched column paths must then stand down.
        """
        store = self.store
        if store is not None and isinstance(self.records, RecordMap):
            if self.records.store is store:
                return store
        return None

    def is_core(self, rec) -> bool:
        """Current core status, derived from the live neighbour count."""
        return not rec.deleted and rec.n_eps >= self.params.tau

    def get(self, pid: int):
        try:
            return self.records[pid]
        except KeyError:
            raise StreamOrderError(f"point {pid} is not in the window") from None

    def live_records(self) -> Iterable:
        """Records of points currently inside the window."""
        return (rec for rec in self.records.values() if not rec.deleted)

    def category_of(self, rec) -> Category:
        if rec.deleted:
            return Category.DELETED
        if rec.n_eps >= self.params.tau:
            return Category.CORE
        if rec.c_core > 0:
            return Category.BORDER
        return Category.NOISE

    def resolved_cid(self, rec) -> int:
        """Cluster id of a core or border record, resolved through union-find."""
        if self.is_core(rec):
            assert rec.cid is not None, f"core {rec.pid} has no cluster id"
            return self.cids.find(rec.cid)
        assert rec.anchor is not None, f"border {rec.pid} has no anchor"
        anchor = self.records[rec.anchor]
        assert self.is_core(anchor), (
            f"border {rec.pid} anchored to non-core {rec.anchor}"
        )
        assert anchor.cid is not None
        return self.cids.find(anchor.cid)

    def set_cids(self, pids: Iterable[int], cid: int | None) -> None:
        """Assign one raw cluster id to a batch of points."""
        store = self.columnar()
        if store is not None:
            slots = store.slots_of(pids)
            store.cid[slots] = NO_ID if cid is None else cid
            return
        records = self.records
        for pid in pids:
            records[pid].cid = cid

    def compact_cids(self) -> int:
        """Rebuild the cluster-id forest keeping only live roots.

        Every emerge/split mints a fresh id and every merge leaves a
        redirection chain behind, so over a long stream the disjoint set
        grows without bound even while the window stays small. Compaction
        resolves every core's id to its root and drops everything else.
        Returns the number of forest entries after compaction.
        """
        fresh = DisjointSet()
        live_roots: set[int] = set()
        store = self.columnar()
        if store is not None:
            # One vectorized pass: find the root of each *distinct* live id,
            # then remap the whole cid column through the unique-inverse.
            slots = store.live_slots()
            if len(slots):
                mask = (store.cid[slots] != NO_ID) & (
                    (store.flags[slots] & DELETED) == 0
                )
                slots = slots[mask]
            if len(slots):
                uniq, inverse = np.unique(store.cid[slots], return_inverse=True)
                roots = np.fromiter(
                    (self.cids.find(int(c)) for c in uniq),
                    dtype=np.int64,
                    count=len(uniq),
                )
                store.cid[slots] = roots[inverse]
                live_roots.update(roots.tolist())
        else:
            for rec in self.records.values():
                if rec.cid is not None and not rec.deleted:
                    root = self.cids.find(rec.cid)
                    rec.cid = root
                    live_roots.add(root)
        for root in live_roots:
            fresh.find(root)  # registers the id as its own singleton
        # Never reuse an id: carry the counter forward.
        fresh._next_id = max(self.cids._next_id, fresh._next_id)
        self.cids = fresh
        return len(fresh)

    def snapshot(self) -> Clustering:
        """Freeze the current labels into a :class:`Clustering`."""
        store = self.columnar()
        if store is not None:
            return self._snapshot_columnar(store)
        labels: dict[int, int] = {}
        categories: dict[int, Category] = {}
        for rec in self.live_records():
            category = self.category_of(rec)
            categories[rec.pid] = category
            if category in (Category.CORE, Category.BORDER):
                labels[rec.pid] = self.resolved_cid(rec)
        return Clustering(labels, categories)

    def _snapshot_columnar(self, store: PointStore) -> Clustering:
        """Column-sliced snapshot: category masks plus a unique-cid remap."""
        tau = self.params.tau
        slots = store.live_slots()
        if len(slots):
            slots = slots[(store.flags[slots] & DELETED) == 0]
        if not len(slots):
            return Clustering({}, {})
        pids = store.pid[slots].tolist()
        core_mask = store.n_eps[slots] >= tau
        border_mask = ~core_mask & (store.c_core[slots] > 0)

        # Resolve roots once per distinct raw id, not once per point.
        def resolve(raw_cids: np.ndarray) -> list[int]:
            if not len(raw_cids):
                return []
            uniq, inverse = np.unique(raw_cids, return_inverse=True)
            roots = np.fromiter(
                (self.cids.find(int(c)) for c in uniq),
                dtype=np.int64,
                count=len(uniq),
            )
            return roots[inverse].tolist()

        core_slots = slots[core_mask]
        core_raw = store.cid[core_slots]
        assert not np.any(core_raw == NO_ID), "core without a cluster id"
        core_pids = store.pid[core_slots].tolist()
        core_labels = resolve(core_raw)

        border_slots = slots[border_mask]
        border_anchors = store.anchor[border_slots]
        assert not np.any(border_anchors == NO_ID), "border without an anchor"
        anchor_slots = store.slots_of(border_anchors.tolist())
        border_pids = store.pid[border_slots].tolist()
        border_labels = resolve(store.cid[anchor_slots])

        labels = dict(zip(core_pids, core_labels))
        labels.update(zip(border_pids, border_labels))
        categories = {
            pid: (
                Category.CORE
                if is_core
                else (Category.BORDER if is_border else Category.NOISE)
            )
            for pid, is_core, is_border in zip(
                pids, core_mask.tolist(), border_mask.tolist()
            )
        }
        return Clustering(labels, categories)
