"""Per-point window state shared by the COLLECT and CLUSTER steps.

Each point in the current window carries exactly the bookkeeping the paper
requires: its epsilon-neighbour count ``n_eps`` (self included), the derived
core status plus the *previous* window's core status (``was_core``), its
cluster id for cores, and the border machinery — ``c_core`` (how many current
cores lie within epsilon) and ``anchor`` (one such core, through which the
border's cluster id is resolved). See DESIGN.md §3.3.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.common.config import ClusteringParams
from repro.common.disjointset import DisjointSet
from repro.common.errors import StreamOrderError
from repro.common.snapshot import Category, Clustering

Coords = tuple[float, ...]


class PointRecord:
    """Mutable bookkeeping for one point in (or just leaving) the window."""

    __slots__ = (
        "pid",
        "coords",
        "n_eps",
        "c_core",
        "was_core",
        "cid",
        "anchor",
        "deleted",
        "time",
    )

    def __init__(self, pid: int, coords: Coords, time: float = 0.0) -> None:
        self.pid = pid
        self.coords = coords
        self.n_eps = 1  # a point is its own epsilon-neighbour
        self.c_core = 0  # current cores within eps, excluding the point itself
        self.was_core = False  # core status at the end of the previous stride
        self.cid: int | None = None  # raw cluster id; resolve through DisjointSet
        self.anchor: int | None = None  # a core neighbour lending borders a cid
        self.deleted = False  # exited the window (ex-cores linger in the index)
        self.time = time

    def __repr__(self) -> str:
        return (
            f"PointRecord(pid={self.pid}, n={self.n_eps}, c_core={self.c_core}, "
            f"was_core={self.was_core}, cid={self.cid}, deleted={self.deleted})"
        )


class WindowState:
    """All per-point records plus the cluster-id disjoint set.

    The spatial index lives next to this object inside
    :class:`~repro.core.disc.DISC`; this class only owns the records so the
    COLLECT/CLUSTER functions can be tested against it in isolation.
    """

    def __init__(self, params: ClusteringParams) -> None:
        self.params = params
        self.records: dict[int, PointRecord] = {}
        self.cids = DisjointSet()
        # Non-core points whose border anchor was invalidated this stride and
        # needs one repair range search at the end of CLUSTER.
        self.repair: set[int] = set()

    def is_core(self, rec: PointRecord) -> bool:
        """Current core status, derived from the live neighbour count."""
        return not rec.deleted and rec.n_eps >= self.params.tau

    def get(self, pid: int) -> PointRecord:
        try:
            return self.records[pid]
        except KeyError:
            raise StreamOrderError(f"point {pid} is not in the window") from None

    def live_records(self) -> Iterable[PointRecord]:
        """Records of points currently inside the window."""
        return (rec for rec in self.records.values() if not rec.deleted)

    def category_of(self, rec: PointRecord) -> Category:
        if rec.deleted:
            return Category.DELETED
        if rec.n_eps >= self.params.tau:
            return Category.CORE
        if rec.c_core > 0:
            return Category.BORDER
        return Category.NOISE

    def resolved_cid(self, rec: PointRecord) -> int:
        """Cluster id of a core or border record, resolved through union-find."""
        if self.is_core(rec):
            assert rec.cid is not None, f"core {rec.pid} has no cluster id"
            return self.cids.find(rec.cid)
        assert rec.anchor is not None, f"border {rec.pid} has no anchor"
        anchor = self.records[rec.anchor]
        assert self.is_core(anchor), (
            f"border {rec.pid} anchored to non-core {rec.anchor}"
        )
        assert anchor.cid is not None
        return self.cids.find(anchor.cid)

    def compact_cids(self) -> int:
        """Rebuild the cluster-id forest keeping only live roots.

        Every emerge/split mints a fresh id and every merge leaves a
        redirection chain behind, so over a long stream the disjoint set
        grows without bound even while the window stays small. Compaction
        resolves every core's id to its root and drops everything else.
        Returns the number of forest entries after compaction.
        """
        fresh = DisjointSet()
        live_roots: set[int] = set()
        for rec in self.records.values():
            if rec.cid is not None and not rec.deleted:
                root = self.cids.find(rec.cid)
                rec.cid = root
                live_roots.add(root)
        for root in live_roots:
            fresh.find(root)  # registers the id as its own singleton
        # Never reuse an id: carry the counter forward.
        fresh._next_id = max(self.cids._next_id, fresh._next_id)
        self.cids = fresh
        return len(fresh)

    def snapshot(self) -> Clustering:
        """Freeze the current labels into a :class:`Clustering`."""
        labels: dict[int, int] = {}
        categories: dict[int, Category] = {}
        for rec in self.live_records():
            category = self.category_of(rec)
            categories[rec.pid] = category
            if category in (Category.CORE, Category.BORDER):
                labels[rec.pid] = self.resolved_cid(rec)
        return Clustering(labels, categories)
