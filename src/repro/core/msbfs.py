"""Multi-Starter BFS — the paper's Algorithm 3 — plus the classic fallback.

Given the minimal bonding cores of an ex-core, DISC must decide whether they
are density-connected in the *current* core graph (vertices = current cores,
edges = epsilon-neighbour pairs), where the graph is never materialised:
every expansion is a range search against the spatial index.

:func:`check_connectivity` implements both strategies behind one interface:

- ``multi_starter=True`` (MS-BFS): one BFS per seed, advanced round-robin.
  When two searches meet they merge queues and continue as one. The check
  stops as soon as a single search remains — in the common no-split case that
  happens long before the cluster is exhausted.
- ``multi_starter=False`` (classic): one BFS at a time, run to exhaustion of
  its component before the next unreached seed starts. This is what a
  straightforward IncDBSCAN-style implementation does and is the "neither /
  epoch-only" arm of the paper's Figure 8 ablation.

Epoch-based probing (``epoch_probing=True``) is orthogonal: expansions use
:meth:`ball_unvisited` with the current tick, so regions already covered are
pruned inside the index. Marking discipline (see ``repro.index.rtree``):
non-core points are marked when first returned (they are never expanded);
core vertices are marked only when *expanded*, so converging searches still
see each other's frontier cores and can merge.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.common.disjointset import DisjointSet
from repro.core.state import WindowState
from repro.core.store import DELETED


@dataclass
class ConnectivityResult:
    """Outcome of a density-connectedness check over a seed set.

    Attributes:
        num_components: connected components of the core graph touched by the
            seeds (0 when the seed set was empty).
        exhausted: fully traversed components, as lists of core pids; on a
            split these receive fresh cluster ids.
        survivor: cores visited by the search that was still running when the
            check stopped early; its component keeps the old cluster id and
            may be only partially traversed.
    """

    num_components: int = 0
    exhausted: list[list[int]] = field(default_factory=list)
    survivor: list[int] = field(default_factory=list)

    @property
    def connected(self) -> bool:
        return self.num_components <= 1


def check_connectivity(
    index,
    state: WindowState,
    seeds: Iterable[int],
    *,
    multi_starter: bool = True,
    epoch_probing: bool = True,
    on_border: Callable[[int, int], None] | None = None,
    trace=None,
) -> ConnectivityResult:
    """Count core-graph components reachable from ``seeds``.

    Args:
        index: spatial index holding every point in the window (plus any
            lingering exited ex-cores, which are skipped as deleted).
        state: window state providing per-point records.
        seeds: core pids — the minimal bonding cores ``M^-(p)``.
        multi_starter: use MS-BFS (True) or sequential BFS (False).
        epoch_probing: use epoch-filtered index probes.
        on_border: optional callback ``(border_pid, expanding_core_pid)``
            invoked for every non-core point seen during expansion; DISC uses
            it to refresh border anchors (Section V).
        trace: optional :class:`~repro.observability.trace.StrideTrace`;
            when present, expansion / queue-merge / early-exit counters are
            accumulated onto it.

    Returns:
        A :class:`ConnectivityResult`; traversal touches only the components
        containing seeds and stops as early as the strategy allows.
    """
    seed_list = list(dict.fromkeys(seeds))
    if not seed_list:
        return ConnectivityResult()

    records = state.records
    tau = state.params.tau
    eps = state.params.eps
    store = state.columnar()

    tick = index.new_tick() if epoch_probing else None

    if store is not None:
        flags_col = store.flags
        n_eps_col = store.n_eps
        slot_of = store._slot_of

        def is_core_pid(pid: int) -> bool:
            slot = slot_of[pid]
            return not (flags_col[slot] & DELETED) and n_eps_col[slot] >= tau

    else:

        def is_core_pid(pid: int) -> bool:
            rec = records[pid]
            return not rec.deleted and rec.n_eps >= tau

    def should_mark(pid: int) -> bool:
        # Mark non-cores at first sight; cores only at expansion (see above).
        return not is_core_pid(pid)

    groups = DisjointSet()
    owner: dict[int, int] = {}
    queues: dict[int, deque[int]] = {}
    members: dict[int, list[int]] = {}
    for seed in seed_list:
        gid = groups.make()
        owner[seed] = gid
        queues[gid] = deque([seed])
        members[gid] = [seed]

    alive: set[int] = set(queues)
    rotation: deque[int] = deque(queues)
    expanded: set[int] = set()
    # Exhausted components keyed by their group root. Kept addressable (not a
    # flat list) because a later expansion can touch an "exhausted" component
    # — e.g. a non-core seed whose group starts expanding after a neighbouring
    # component already ran dry — which proves the two were one component all
    # along. Such groups are revived instead of crashing the merge
    # bookkeeping on their missing queue.
    dead: dict[int, list[int]] = {}
    dead_order: list[int] = []

    def retire(root: int) -> None:
        alive.discard(root)
        dead[root] = members.pop(root)
        dead_order.append(root)
        del queues[root]

    def merge_into(root: int, qid: int) -> int:
        """Fold ``qid``'s group into ``root``'s; returns the merged root."""
        other = owner.get(qid)
        if other is None:
            owner[qid] = root
            members[root].append(qid)
            queues[root].append(qid)
            return root
        other_root = groups.find(other)
        root_now = groups.find(root)
        if other_root != root_now:
            if other_root in dead:
                # Contact with an exhausted group proves it never was a
                # separate component: bring it back before the union so
                # queue/member bookkeeping (and the final component count)
                # stay consistent.
                members[other_root] = dead.pop(other_root)
                dead_order.remove(other_root)
                queues[other_root] = deque()
                alive.add(other_root)
            winner = groups.union(other_root, root_now)
            loser = other_root if winner == root_now else root_now
            queues[winner].extend(queues.pop(loser))
            members[winner].extend(members.pop(loser))
            alive.discard(loser)
            root = winner
            if trace is not None:
                trace.msbfs_queue_merges += 1
        return root

    probe_pids = getattr(index, "ball_unvisited_pids", None)

    def expand(pid: int, group_root: int) -> int:
        """Expand one core vertex; returns the (possibly merged) group root."""
        if trace is not None:
            trace.msbfs_expansions += 1
        root = group_root
        if store is not None:
            # Columnar: ids-only probes (no candidate tuples), then scalar
            # column reads per neighbour in exact ball order — the balls
            # here are small enough that vectorized masking loses to two
            # array lookups per point.
            coords = store.coords[slot_of[pid]].tolist()
            if epoch_probing:
                if probe_pids is not None:
                    qids = probe_pids(coords, eps, tick, should_mark)
                else:  # native-epoch backend without an ids-only probe
                    qids = [
                        qid
                        for qid, _ in index.ball_unvisited(
                            coords, eps, tick, should_mark
                        )
                    ]
                index.mark(pid, tick)
            else:
                qids = index.ball_pids(coords, eps).tolist()
            for qid in qids:
                if qid == pid:
                    continue
                slot = slot_of[qid]
                if flags_col[slot] & DELETED:
                    continue
                if n_eps_col[slot] >= tau:
                    root = merge_into(root, qid)
                elif on_border is not None:
                    on_border(qid, pid)
            return root
        coords = records[pid].coords
        if epoch_probing:
            neighbours = index.ball_unvisited(coords, eps, tick, should_mark)
            index.mark(pid, tick)
        else:
            neighbours = index.ball(coords, eps)
        for qid, _ in neighbours:
            if qid == pid:
                continue
            q = records[qid]
            if q.deleted:
                continue
            if q.n_eps >= tau:
                root = merge_into(root, qid)
            elif on_border is not None:
                on_border(qid, pid)
        return root

    while len(alive) > 1:
        if not rotation:
            # Starvation guard: every live group must stay reachable from
            # the rotation even if its original entry was consumed as stale.
            rotation.extend(sorted(alive))
        gid = rotation.popleft()
        root = groups.find(gid)
        if root != gid or root not in alive:
            continue  # stale rotation entry: this group merged into another
        queue = queues[root]
        # Skip entries already expanded under a merged group.
        while queue and queue[0] in expanded:
            queue.popleft()
        if not queue:
            retire(root)
            continue
        if multi_starter:
            pid = queue.popleft()
            expanded.add(pid)
            root = expand(pid, root)
            rotation.append(root)
        else:
            # Classic mode: run this search to exhaustion (or early exit).
            while len(alive) > 1:
                while queue and queue[0] in expanded:
                    queue.popleft()
                if not queue:
                    retire(root)
                    break
                pid = queue.popleft()
                expanded.add(pid)
                new_root = expand(pid, root)
                if new_root != root:
                    root = new_root
                    queue = queues[root]

    survivor_root = next(iter(alive))
    survivor = members.pop(survivor_root)
    if trace is not None and any(
        pid not in expanded for pid in queues[survivor_root]
    ):
        trace.msbfs_early_exits += 1
    return ConnectivityResult(
        num_components=len(dead_order) + 1,
        exhausted=[dead[root] for root in dead_order],
        survivor=survivor,
    )


def collect_component(
    index,
    state: WindowState,
    start: int,
    *,
    on_border: Callable[[int, int], None] | None = None,
) -> list[int]:
    """Fully traverse the current-core component containing ``start``.

    Used when a partially traversed component must be pinned down — e.g. to
    resolve a kept-cluster-id conflict between two reachability classes that
    carved the same old cluster (see ``repro.core.cluster``). Plain range
    searches; one per expanded core.
    """
    records = state.records
    tau = state.params.tau
    eps = state.params.eps
    seen = {start}
    queue: deque[int] = deque([start])
    component = [start]
    while queue:
        pid = queue.popleft()
        for qid, _ in index.ball(records[pid].coords, eps):
            if qid == pid:
                continue
            q = records[qid]
            if q.deleted:
                continue
            if q.n_eps >= tau:
                if qid not in seen:
                    seen.add(qid)
                    component.append(qid)
                    queue.append(qid)
            elif on_border is not None:
                on_border(qid, pid)
    return component
