"""The COLLECT step (paper Algorithm 1).

COLLECT brings every ``n_eps`` count up to date for one window advance,
removes exiting points from the index (except ex-cores, which must stay
visible to the CLUSTER step), inserts entering points, and identifies the two
sets that drive all cluster evolution: *ex-cores* and *neo-cores*.

Two implementations share the entry point. The columnar path operates on the
:class:`~repro.core.store.PointStore` columns with whole-stride batched
updates (one ``np.add.at`` over every neighbour occurrence of the stride);
the object path is the classic per-record loop. They are required to produce
identical results — the batched update rules below are the order-free
closed forms of the sequential loop:

* ``n_eps``/``c_core`` decrements commute, and a departing point's counters
  are zeroed regardless, so departures apply as one flat scatter-add
  followed by a batch zero of the departures themselves.
* An affected point's anchor ends the departure phase ``None`` iff its core
  count hit zero or its anchor itself departed — anchors always reference
  ``was_core`` points, so the per-occurrence ``anchor == rec.pid`` test
  reduces to membership in the departing ex-core set.
* Anchor-repair candidacy is evaluated on the post-phase state; the
  difference against per-occurrence evaluation is provably washed out by
  the filters in :func:`~repro.core.cluster.repair_anchors` (members that
  differ are either re-anchored by the nascent pass or filtered before the
  repair search, in both layouts).
* A new point's ``n_eps`` is ``1 + |live old neighbours| + |fellow
  arrivals within eps|`` — the sequential later-arrival-counts-the-pair
  rule sums to exactly this, whatever the insertion order.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import StreamOrderError
from repro.common.points import StreamPoint
from repro.core.state import PointRecord, WindowState
from repro.core.store import DELETED, NO_ID, WAS_CORE, PointStore


@dataclass
class CollectResult:
    """What COLLECT hands to the CLUSTER step."""

    ex_cores: list[int] = field(default_factory=list)
    neo_cores: list[int] = field(default_factory=list)
    c_out: list[int] = field(default_factory=list)  # ex-cores in delta_out
    deleted_ids: list[int] = field(default_factory=list)  # all of delta_out


def collect(
    state: WindowState,
    index,
    delta_in: Sequence[StreamPoint],
    delta_out: Sequence[StreamPoint],
    *,
    trace=None,
) -> CollectResult:
    """Run COLLECT for one stride; returns ex-cores, neo-cores and C_out.

    One range search is executed per point in ``delta_out`` and per point in
    ``delta_in`` — exactly the paper's accounting — but each delta is issued
    as a *single* batched ``ball_many`` call, so backends with vectorized or
    bulk machinery amortise work across the whole stride. Alongside the
    ``n_eps`` updates of Algorithm 1, the same searches maintain each
    point's core neighbour count ``c_core`` (the border bookkeeping of
    DESIGN.md §3.3).
    """
    store = state.columnar()
    if store is not None:
        return _collect_columnar(state, store, index, delta_in, delta_out, trace=trace)
    return _collect_object(state, index, delta_in, delta_out, trace=trace)


# --------------------------------------------------------------------------
# Columnar path: batched column updates over the PointStore arena.
# --------------------------------------------------------------------------


def _collect_columnar(
    state: WindowState,
    store: PointStore,
    index,
    delta_in: Sequence[StreamPoint],
    delta_out: Sequence[StreamPoint],
    *,
    trace=None,
) -> CollectResult:
    params = state.params
    eps = params.eps
    tau = params.tau
    result = CollectResult()
    touched: set[int] = set()

    _validate_deltas_columnar(store, delta_in, delta_out)

    # --- departures (Algorithm 1, lines 2-7) -------------------------------
    out_pids = [sp.pid for sp in delta_out]
    out_slots = store.slots_of(out_pids)
    out_balls = (
        index.ball_many_pids(store.coords[out_slots].tolist(), eps)
        if out_pids
        else []
    )
    out_was_core = (store.flags[out_slots] & WAS_CORE) != 0
    non_core_exits: list[int] = []
    # Flatten every departure ball into one occurrence array (self excluded);
    # wc occurrences — neighbours of a departing *ex-core* — additionally
    # drive the c_core/anchor bookkeeping.
    occ_parts: list[np.ndarray] = []
    wc_parts: list[np.ndarray] = []
    for i, ball in enumerate(out_balls):
        pid_i = out_pids[i]
        others = ball[ball != pid_i]
        occ_parts.append(others)
        if out_was_core[i]:
            # Ex-cores linger in the index until CLUSTER finishes (line 3).
            result.c_out.append(pid_i)
            wc_parts.append(others)
        else:
            non_core_exits.append(pid_i)
    result.deleted_ids = out_pids
    flat_q = (
        np.concatenate(occ_parts) if occ_parts else np.empty(0, dtype=np.int64)
    )
    if len(flat_q):
        np.subtract.at(store.n_eps, store.slots_of(flat_q.tolist()), 1)
        touched.update(flat_q.tolist())
    flat_wc_q = (
        np.concatenate(wc_parts) if wc_parts else np.empty(0, dtype=np.int64)
    )
    wc_slots = (
        store.slots_of(flat_wc_q.tolist())
        if len(flat_wc_q)
        else np.empty(0, dtype=np.int64)
    )
    if len(wc_slots):
        np.subtract.at(store.c_core, wc_slots, 1)
    # Departing rows are out of the window from here on: flagged, zeroed.
    store.mark_deleted(out_slots)
    touched.difference_update(out_pids)
    if len(wc_slots):
        affected = np.unique(wc_slots)
        affected = affected[(store.flags[affected] & DELETED) == 0]
        if len(affected):
            wc_out = np.fromiter(
                (p for p, w in zip(out_pids, out_was_core) if w), dtype=np.int64
            )
            # Anchor invalidation, order-free closed form: the anchor departed
            # (anchors always point at was_core points) or no core remains.
            nulled = np.isin(store.anchor[affected], wc_out) | (
                store.c_core[affected] == 0
            )
            store.anchor[affected[nulled]] = NO_ID
            needs_repair = (
                (store.c_core[affected] > 0)
                & (store.anchor[affected] == NO_ID)
                & (store.n_eps[affected] < tau)
            )
            state.repair.update(store.pid[affected[needs_repair]].tolist())
    index.delete_many(non_core_exits)

    # --- arrivals (Algorithm 1, lines 8-12) --------------------------------
    in_pids = [sp.pid for sp in delta_in]
    in_coords = [tuple(sp.coords) for sp in delta_in]
    new_slots = store.bulk_insert(in_pids, in_coords, [sp.time for sp in delta_in])
    index.insert_many(list(zip(in_pids, in_coords)))
    in_balls = index.ball_many_pids(in_coords, eps) if in_pids else []
    if in_pids:
        n = len(in_pids)
        in_arr = np.fromiter(in_pids, dtype=np.int64, count=n)
        # One flat occurrence array over every arrival ball (self excluded),
        # with an owner index per occurrence; everything downstream is
        # order-free aggregation over (owner, neighbour) pairs.
        parts: list[np.ndarray] = []
        lens = np.empty(n, dtype=np.int64)
        for i, ball in enumerate(in_balls):
            others = ball[ball != in_pids[i]]
            parts.append(others)
            lens[i] = len(others)
        flat = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        owners = np.repeat(np.arange(n), lens)
        is_arrival = np.isin(flat, in_arr)
        fellows = np.bincount(owners[is_arrival], minlength=n)
        old_flat = flat[~is_arrival]
        old_owners = owners[~is_arrival]
        old_slots = (
            store.slots_of(old_flat.tolist())
            if len(old_flat)
            else np.empty(0, dtype=np.int64)
        )
        # Lingering exited ex-cores are still in the index: skip them.
        live = (store.flags[old_slots] & DELETED) == 0
        live_slots = old_slots[live]
        live_owners = old_owners[live]
        n_eps_new = 1 + fellows + np.bincount(live_owners, minlength=n)
        # q is a core of the previous window still present; whether it
        # survives as a core is settled by CLUSTER.
        wc = (store.flags[live_slots] & WAS_CORE) != 0
        c_core_new = np.bincount(live_owners[wc], minlength=n)
        # Lowest-pid core, not first-in-ball-order: ball traversal order
        # depends on index shape, which differs after a checkpoint restore;
        # the anchor choice must not.
        anchor_new = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(anchor_new, live_owners[wc], store.pid[live_slots[wc]])
        anchor_new[c_core_new == 0] = NO_ID
        store.n_eps[new_slots] = n_eps_new
        store.c_core[new_slots] = c_core_new
        store.anchor[new_slots] = anchor_new
        if len(live_slots):
            np.add.at(store.n_eps, live_slots, 1)
            touched.update(store.pid[live_slots].tolist())
        touched.update(in_pids)

    # --- classify the flips (Algorithm 1, line 13) -------------------------
    ordered = sorted(touched)
    if ordered:
        t_slots = store.slots_of(ordered)
        flags = store.flags[t_slots]
        live = (flags & DELETED) == 0
        is_core = store.n_eps[t_slots] >= tau
        was_core = (flags & WAS_CORE) != 0
        t_arr = np.asarray(ordered, dtype=np.int64)
        result.ex_cores = t_arr[live & was_core & ~is_core].tolist()
        result.neo_cores = t_arr[live & is_core & ~was_core].tolist()
    result.ex_cores.extend(result.c_out)
    if trace is not None:
        trace.collect_touched = len(touched)
    return result


def _validate_deltas_columnar(
    store: PointStore,
    delta_in: Sequence[StreamPoint],
    delta_out: Sequence[StreamPoint],
) -> None:
    out_ids: set[int] = set()
    for sp in delta_out:
        slot = store.get_slot(sp.pid)
        if slot is None or (store.flags[slot] & DELETED):
            raise StreamOrderError(f"cannot delete {sp.pid}: not in the window")
        if sp.pid in out_ids:
            raise StreamOrderError(f"point {sp.pid} deleted twice in one stride")
        out_ids.add(sp.pid)
    in_ids: set[int] = set()
    for sp in delta_in:
        if sp.pid in store:
            raise StreamOrderError(
                f"cannot insert {sp.pid}: id already in window"
            )
        if sp.pid in in_ids:
            raise StreamOrderError(
                f"point {sp.pid} inserted twice in one stride"
            )
        in_ids.add(sp.pid)


# --------------------------------------------------------------------------
# Object path: the classic per-record loop (reference implementation).
# --------------------------------------------------------------------------


def _collect_object(
    state: WindowState,
    index,
    delta_in: Sequence[StreamPoint],
    delta_out: Sequence[StreamPoint],
    *,
    trace=None,
) -> CollectResult:
    params = state.params
    eps = params.eps
    tau = params.tau
    records = state.records
    result = CollectResult()
    touched: set[int] = set()

    _validate_deltas(records, delta_in, delta_out)

    # --- departures (Algorithm 1, lines 2-7) -------------------------------
    # All departure balls are taken up front, before anything leaves the
    # index. That matches the one-search-at-a-time semantics exactly: a
    # departing point found in a later departure's ball is skipped through
    # its ``deleted`` flag, which is what the incremental index deletions
    # used to guarantee.
    out_recs = [records[sp.pid] for sp in delta_out]
    out_balls = (
        index.ball_many([rec.coords for rec in out_recs], eps)
        if out_recs
        else []
    )
    non_core_exits: list[int] = []
    for rec, neighbours in zip(out_recs, out_balls):
        was_core = rec.was_core
        if was_core:
            # Ex-cores linger in the index until CLUSTER finishes (line 3).
            result.c_out.append(rec.pid)
        else:
            non_core_exits.append(rec.pid)
        for qid, _ in neighbours:
            if qid == rec.pid:
                continue
            q = records[qid]
            if q.deleted:
                continue
            q.n_eps -= 1
            touched.add(qid)
            if was_core:
                q.c_core -= 1
                if q.anchor == rec.pid or q.c_core == 0:
                    q.anchor = None
                if q.c_core > 0 and q.anchor is None and q.n_eps < tau:
                    state.repair.add(qid)
        rec.deleted = True
        rec.n_eps = 0
        rec.c_core = 0
        result.deleted_ids.append(rec.pid)
        touched.discard(rec.pid)
    index.delete_many(non_core_exits)

    # --- arrivals (Algorithm 1, lines 8-12) --------------------------------
    # Insert the whole delta, then take every arrival ball in one batched
    # call. Each ball now also contains arrivals inserted *after* its
    # center; skipping those keeps the pair accounting identical to the
    # sequential insert-then-search loop, where each new-new pair is counted
    # exactly once — by the later arrival's search, for both endpoints.
    new_recs = []
    for sp in delta_in:
        rec = PointRecord(sp.pid, tuple(sp.coords), sp.time)
        records[sp.pid] = rec
        new_recs.append(rec)
    index.insert_many([(rec.pid, rec.coords) for rec in new_recs])
    in_balls = (
        index.ball_many([rec.coords for rec in new_recs], eps)
        if new_recs
        else []
    )
    arrival_order = {rec.pid: i for i, rec in enumerate(new_recs)}
    for i, (rec, neighbours) in enumerate(zip(new_recs, in_balls)):
        for qid, _ in neighbours:
            if qid == rec.pid:
                continue
            order = arrival_order.get(qid)
            if order is not None and order > i:
                continue  # pair handled when the later arrival is processed
            q = records[qid]
            if q.deleted:
                continue
            q.n_eps += 1
            rec.n_eps += 1
            touched.add(qid)
            if q.was_core:
                # q is a core of the previous window still present; whether it
                # survives as a core is settled by CLUSTER (ex-core handling
                # decrements again if it does not).
                rec.c_core += 1
                # Lowest-pid core, not first-in-ball-order: ball traversal
                # order depends on index shape, which differs after a
                # checkpoint restore; the anchor choice must not.
                if rec.anchor is None or qid < rec.anchor:
                    rec.anchor = qid
        touched.add(rec.pid)

    # --- classify the flips (Algorithm 1, line 13) -------------------------
    # Ascending pid order: iteration order must not depend on set internals,
    # or the two storage layouts could assign different (if isomorphic)
    # cluster ids for the same stream.
    for pid in sorted(touched):
        rec = records[pid]
        if rec.deleted:
            continue
        is_core = rec.n_eps >= tau
        if rec.was_core and not is_core:
            result.ex_cores.append(pid)
        elif is_core and not rec.was_core:
            result.neo_cores.append(pid)
    result.ex_cores.extend(result.c_out)
    if trace is not None:
        trace.collect_touched = len(touched)
    return result


def _validate_deltas(
    records,
    delta_in: Sequence[StreamPoint],
    delta_out: Sequence[StreamPoint],
) -> None:
    """Reject malformed deltas *before* any state is mutated.

    COLLECT mutates counts, labels and the index as it goes; validating up
    front keeps ``advance`` atomic — a rejected stride leaves the clusterer
    exactly as it was, so callers can catch :class:`StreamOrderError` and
    continue.
    """
    out_ids: set[int] = set()
    for sp in delta_out:
        rec = records.get(sp.pid)
        if rec is None or rec.deleted:
            raise StreamOrderError(f"cannot delete {sp.pid}: not in the window")
        if sp.pid in out_ids:
            raise StreamOrderError(f"point {sp.pid} deleted twice in one stride")
        out_ids.add(sp.pid)
    in_ids: set[int] = set()
    for sp in delta_in:
        if sp.pid in records:
            raise StreamOrderError(
                f"cannot insert {sp.pid}: id already in window"
            )
        if sp.pid in in_ids:
            raise StreamOrderError(
                f"point {sp.pid} inserted twice in one stride"
            )
        in_ids.add(sp.pid)
