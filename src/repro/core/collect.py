"""The COLLECT step (paper Algorithm 1).

COLLECT brings every ``n_eps`` count up to date for one window advance,
removes exiting points from the index (except ex-cores, which must stay
visible to the CLUSTER step), inserts entering points, and identifies the two
sets that drive all cluster evolution: *ex-cores* and *neo-cores*.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.common.errors import StreamOrderError
from repro.common.points import StreamPoint
from repro.core.state import PointRecord, WindowState


@dataclass
class CollectResult:
    """What COLLECT hands to the CLUSTER step."""

    ex_cores: list[int] = field(default_factory=list)
    neo_cores: list[int] = field(default_factory=list)
    c_out: list[int] = field(default_factory=list)  # ex-cores in delta_out
    deleted_ids: list[int] = field(default_factory=list)  # all of delta_out


def collect(
    state: WindowState,
    index,
    delta_in: Sequence[StreamPoint],
    delta_out: Sequence[StreamPoint],
    *,
    trace=None,
) -> CollectResult:
    """Run COLLECT for one stride; returns ex-cores, neo-cores and C_out.

    One range search is executed per point in ``delta_out`` and per point in
    ``delta_in`` — exactly the paper's accounting — but each delta is issued
    as a *single* batched ``ball_many`` call, so backends with vectorized or
    bulk machinery amortise work across the whole stride. Alongside the
    ``n_eps`` updates of Algorithm 1, the same searches maintain each
    point's core neighbour count ``c_core`` (the border bookkeeping of
    DESIGN.md §3.3).
    """
    params = state.params
    eps = params.eps
    tau = params.tau
    records = state.records
    result = CollectResult()
    touched: set[int] = set()

    _validate_deltas(records, delta_in, delta_out)

    # --- departures (Algorithm 1, lines 2-7) -------------------------------
    # All departure balls are taken up front, before anything leaves the
    # index. That matches the one-search-at-a-time semantics exactly: a
    # departing point found in a later departure's ball is skipped through
    # its ``deleted`` flag, which is what the incremental index deletions
    # used to guarantee.
    out_recs = [records[sp.pid] for sp in delta_out]
    out_balls = (
        index.ball_many([rec.coords for rec in out_recs], eps)
        if out_recs
        else []
    )
    non_core_exits: list[int] = []
    for rec, neighbours in zip(out_recs, out_balls):
        was_core = rec.was_core
        if was_core:
            # Ex-cores linger in the index until CLUSTER finishes (line 3).
            result.c_out.append(rec.pid)
        else:
            non_core_exits.append(rec.pid)
        for qid, _ in neighbours:
            if qid == rec.pid:
                continue
            q = records[qid]
            if q.deleted:
                continue
            q.n_eps -= 1
            touched.add(qid)
            if was_core:
                q.c_core -= 1
                if q.anchor == rec.pid or q.c_core == 0:
                    q.anchor = None
                if q.c_core > 0 and q.anchor is None and q.n_eps < tau:
                    state.repair.add(qid)
        rec.deleted = True
        rec.n_eps = 0
        rec.c_core = 0
        result.deleted_ids.append(rec.pid)
        touched.discard(rec.pid)
    index.delete_many(non_core_exits)

    # --- arrivals (Algorithm 1, lines 8-12) --------------------------------
    # Insert the whole delta, then take every arrival ball in one batched
    # call. Each ball now also contains arrivals inserted *after* its
    # center; skipping those keeps the pair accounting identical to the
    # sequential insert-then-search loop, where each new-new pair is counted
    # exactly once — by the later arrival's search, for both endpoints.
    new_recs = []
    for sp in delta_in:
        rec = PointRecord(sp.pid, tuple(sp.coords), sp.time)
        records[sp.pid] = rec
        new_recs.append(rec)
    index.insert_many([(rec.pid, rec.coords) for rec in new_recs])
    in_balls = (
        index.ball_many([rec.coords for rec in new_recs], eps)
        if new_recs
        else []
    )
    arrival_order = {rec.pid: i for i, rec in enumerate(new_recs)}
    for i, (rec, neighbours) in enumerate(zip(new_recs, in_balls)):
        for qid, _ in neighbours:
            if qid == rec.pid:
                continue
            order = arrival_order.get(qid)
            if order is not None and order > i:
                continue  # pair handled when the later arrival is processed
            q = records[qid]
            if q.deleted:
                continue
            q.n_eps += 1
            rec.n_eps += 1
            touched.add(qid)
            if q.was_core:
                # q is a core of the previous window still present; whether it
                # survives as a core is settled by CLUSTER (ex-core handling
                # decrements again if it does not).
                rec.c_core += 1
                # Lowest-pid core, not first-in-ball-order: ball traversal
                # order depends on index shape, which differs after a
                # checkpoint restore; the anchor choice must not.
                if rec.anchor is None or qid < rec.anchor:
                    rec.anchor = qid
        touched.add(rec.pid)

    # --- classify the flips (Algorithm 1, line 13) -------------------------
    for pid in touched:
        rec = records[pid]
        if rec.deleted:
            continue
        is_core = rec.n_eps >= tau
        if rec.was_core and not is_core:
            result.ex_cores.append(pid)
        elif is_core and not rec.was_core:
            result.neo_cores.append(pid)
    result.ex_cores.extend(result.c_out)
    if trace is not None:
        trace.collect_touched = len(touched)
    return result


def _validate_deltas(
    records: dict[int, PointRecord],
    delta_in: Sequence[StreamPoint],
    delta_out: Sequence[StreamPoint],
) -> None:
    """Reject malformed deltas *before* any state is mutated.

    COLLECT mutates counts, labels and the index as it goes; validating up
    front keeps ``advance`` atomic — a rejected stride leaves the clusterer
    exactly as it was, so callers can catch :class:`StreamOrderError` and
    continue.
    """
    out_ids: set[int] = set()
    for sp in delta_out:
        rec = records.get(sp.pid)
        if rec is None or rec.deleted:
            raise StreamOrderError(f"cannot delete {sp.pid}: not in the window")
        if sp.pid in out_ids:
            raise StreamOrderError(f"point {sp.pid} deleted twice in one stride")
        out_ids.add(sp.pid)
    in_ids: set[int] = set()
    for sp in delta_in:
        if sp.pid in records:
            raise StreamOrderError(
                f"cannot insert {sp.pid}: id already in window"
            )
        if sp.pid in in_ids:
            raise StreamOrderError(
                f"point {sp.pid} inserted twice in one stride"
            )
        in_ids.add(sp.pid)
