"""The COLLECT step (paper Algorithm 1).

COLLECT brings every ``n_eps`` count up to date for one window advance,
removes exiting points from the index (except ex-cores, which must stay
visible to the CLUSTER step), inserts entering points, and identifies the two
sets that drive all cluster evolution: *ex-cores* and *neo-cores*.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.common.errors import StreamOrderError
from repro.common.points import StreamPoint
from repro.core.state import PointRecord, WindowState


@dataclass
class CollectResult:
    """What COLLECT hands to the CLUSTER step."""

    ex_cores: list[int] = field(default_factory=list)
    neo_cores: list[int] = field(default_factory=list)
    c_out: list[int] = field(default_factory=list)  # ex-cores in delta_out
    deleted_ids: list[int] = field(default_factory=list)  # all of delta_out


def collect(
    state: WindowState,
    index,
    delta_in: Sequence[StreamPoint],
    delta_out: Sequence[StreamPoint],
) -> CollectResult:
    """Run COLLECT for one stride; returns ex-cores, neo-cores and C_out.

    One range search is executed per point in ``delta_out`` and per point in
    ``delta_in`` — exactly the paper's accounting. Alongside the ``n_eps``
    updates of Algorithm 1, the same searches maintain each point's core
    neighbour count ``c_core`` (the border bookkeeping of DESIGN.md §3.3).
    """
    params = state.params
    eps = params.eps
    tau = params.tau
    records = state.records
    result = CollectResult()
    touched: set[int] = set()

    _validate_deltas(records, delta_in, delta_out)

    # --- departures (Algorithm 1, lines 2-7) -------------------------------
    for sp in delta_out:
        rec = records[sp.pid]
        was_core = rec.was_core
        neighbours = index.ball(rec.coords, eps)
        if was_core:
            # Ex-cores linger in the index until CLUSTER finishes (line 3).
            result.c_out.append(rec.pid)
        else:
            index.delete(rec.pid)
        for qid, _ in neighbours:
            if qid == rec.pid:
                continue
            q = records[qid]
            if q.deleted:
                continue
            q.n_eps -= 1
            touched.add(qid)
            if was_core:
                q.c_core -= 1
                if q.anchor == rec.pid or q.c_core == 0:
                    q.anchor = None
                if q.c_core > 0 and q.anchor is None and q.n_eps < tau:
                    state.repair.add(qid)
        rec.deleted = True
        rec.n_eps = 0
        rec.c_core = 0
        result.deleted_ids.append(rec.pid)
        touched.discard(rec.pid)

    # --- arrivals (Algorithm 1, lines 8-12) --------------------------------
    for sp in delta_in:
        rec = PointRecord(sp.pid, tuple(sp.coords), sp.time)
        records[sp.pid] = rec
        index.insert(sp.pid, rec.coords)
        for qid, _ in index.ball(rec.coords, eps):
            if qid == sp.pid:
                continue
            q = records[qid]
            if q.deleted:
                continue
            q.n_eps += 1
            rec.n_eps += 1
            touched.add(qid)
            if q.was_core:
                # q is a core of the previous window still present; whether it
                # survives as a core is settled by CLUSTER (ex-core handling
                # decrements again if it does not).
                rec.c_core += 1
                if rec.anchor is None:
                    rec.anchor = qid
        touched.add(sp.pid)

    # --- classify the flips (Algorithm 1, line 13) -------------------------
    for pid in touched:
        rec = records[pid]
        if rec.deleted:
            continue
        is_core = rec.n_eps >= tau
        if rec.was_core and not is_core:
            result.ex_cores.append(pid)
        elif is_core and not rec.was_core:
            result.neo_cores.append(pid)
    result.ex_cores.extend(result.c_out)
    return result


def _validate_deltas(
    records: dict[int, PointRecord],
    delta_in: Sequence[StreamPoint],
    delta_out: Sequence[StreamPoint],
) -> None:
    """Reject malformed deltas *before* any state is mutated.

    COLLECT mutates counts, labels and the index as it goes; validating up
    front keeps ``advance`` atomic — a rejected stride leaves the clusterer
    exactly as it was, so callers can catch :class:`StreamOrderError` and
    continue.
    """
    out_ids: set[int] = set()
    for sp in delta_out:
        rec = records.get(sp.pid)
        if rec is None or rec.deleted:
            raise StreamOrderError(f"cannot delete {sp.pid}: not in the window")
        if sp.pid in out_ids:
            raise StreamOrderError(f"point {sp.pid} deleted twice in one stride")
        out_ids.add(sp.pid)
    in_ids: set[int] = set()
    for sp in delta_in:
        if sp.pid in records:
            raise StreamOrderError(
                f"cannot insert {sp.pid}: id already in window"
            )
        if sp.pid in in_ids:
            raise StreamOrderError(
                f"point {sp.pid} inserted twice in one stride"
            )
        in_ids.add(sp.pid)
