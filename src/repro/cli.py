"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``generate`` — write one of the dataset simulators to a stream file.
- ``cluster`` — run a clustering method over a stream file under a sliding
  window and write the final labels (optionally logging evolution events).
- ``estimate`` — suggest eps (k-distance knee) and tau for a stream sample.
- ``compare`` — quick side-by-side of all methods on a stream.
- ``serve`` — host multi-tenant live sessions over the JSON-lines TCP
  protocol (see docs/serving.md).
- ``loadgen`` — drive a serve endpoint with N concurrent tenants and report
  ingest throughput and query-latency percentiles.
- ``tail`` — follow a tenant's evolution journal over ``SUBSCRIBE``,
  printing one CDC record per line.
- ``fuzz`` — seeded differential fuzzing: adversarial streams through every
  backend under the oracle matrix, shrinking failures to replayable case
  files (see docs/testing.md).

``cluster`` can run resiliently: ``--checkpoint-dir`` turns on durable
checkpoints every ``--checkpoint-every`` strides, ``--resume`` continues a
crashed run from its latest checkpoint with byte-identical results, and
``--on-malformed`` picks the input-fault policy (strict/skip/clamp, with an
optional ``--dead-letter`` JSONL sink). ``--chaos-kill-at`` injects a crash
at a stride boundary for drills. See docs/operations.md.

``cluster`` can also run instrumented (``--method disc`` only): ``--trace``
streams one JSON trace record per stride (phase timings, algorithm counters,
index statistics) and ``--metrics-out`` maintains a Prometheus textfile with
the run totals; either flag also prints the trace summary at the end. See
the Observability section of docs/operations.md.

Examples:
    python -m repro generate --dataset maze --n 5000 --output maze.csv
    python -m repro cluster --input maze.csv --eps 0.8 --tau 4 \\
        --window 2000 --stride 100 --output labels.csv --events
    python -m repro cluster --input maze.csv --eps 0.8 --tau 4 \\
        --window 2000 --stride 100 --checkpoint-dir ./ckpt --resume \\
        --on-malformed skip --dead-letter bad.jsonl
    python -m repro estimate --input maze.csv --k 4 --sample 1000
"""

from __future__ import annotations

import argparse
import sys
import time

from repro._version import __version__
from repro.baselines import (
    DBStream,
    EDMStream,
    ExtraN,
    IncrementalDBSCAN,
    RhoDoubleApproxDBSCAN,
    SlidingDBSCAN,
)
from repro.common.config import WindowSpec
from repro.common.errors import ReproError
from repro.core.checkpoint import CheckpointError
from repro.core.disc import DISC
from repro.datasets.io import read_stream, read_stream_lenient, write_labels, write_stream
from repro.datasets.registry import DATASETS
from repro.index.registry import DEFAULT_INDEX, available_indexes
from repro.metrics.kdist import suggest_eps, suggest_tau
from repro.monitoring import runtime_report
from repro.window.sliding import SlidingWindow

#: Exit code for an injected chaos kill, distinct from ordinary failures so
#: recovery drills can assert the crash happened as planned.
EXIT_CHAOS = 3

#: Exit code when the fuzzer finds an oracle violation, distinct from usage
#: errors so CI can tell "bug found" (collect the case artifact) from
#: "harness misconfigured".
EXIT_FUZZ = 4

METHODS = ("disc", "incdbscan", "extran", "dbscan", "rho2", "dbstream", "edmstream")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DISC incremental density-based clustering (ICDE 2021 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="write a dataset simulator's stream to a file"
    )
    generate.add_argument(
        "--dataset", required=True, choices=sorted(DATASETS)
    )
    generate.add_argument("--n", type=int, required=True, help="points to emit")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True, help=".csv or .jsonl path")

    cluster = commands.add_parser(
        "cluster", help="cluster a stream file under a sliding window"
    )
    cluster.add_argument("--input", required=True)
    cluster.add_argument("--method", choices=METHODS, default="disc")
    cluster.add_argument("--eps", type=float, required=True)
    cluster.add_argument("--tau", type=int, required=True)
    cluster.add_argument("--window", type=int, required=True)
    cluster.add_argument("--stride", type=int, required=True)
    cluster.add_argument("--time-based", action="store_true")
    cluster.add_argument(
        "--index",
        choices=available_indexes(),
        default=DEFAULT_INDEX,
        help="spatial-index backend for index-based methods "
        "(disc/incdbscan/extran/dbscan)",
    )
    cluster.add_argument("--rho", type=float, default=0.001, help="rho2 only")
    cluster.add_argument("--output", help="labels CSV for the final window")
    cluster.add_argument(
        "--events", action="store_true", help="log evolution events per stride"
    )
    cluster.add_argument(
        "--checkpoint-dir",
        help="directory for durable checkpoints (disc only); enables the "
        "resilient runtime",
    )
    cluster.add_argument(
        "--checkpoint-every",
        type=int,
        default=16,
        help="strides between checkpoints (default: 16)",
    )
    cluster.add_argument(
        "--resume",
        action="store_true",
        help="resume from the latest checkpoint in --checkpoint-dir",
    )
    cluster.add_argument(
        "--on-malformed",
        choices=("strict", "skip", "clamp"),
        default="strict",
        help="policy for malformed input records (default: strict = fail)",
    )
    cluster.add_argument(
        "--dead-letter",
        help="JSONL file collecting records rejected by skip/clamp policies",
    )
    cluster.add_argument(
        "--chaos-kill-at",
        type=int,
        metavar="STRIDE",
        help="fault injection: crash at this stride boundary (recovery drills)",
    )
    cluster.add_argument(
        "--trace",
        metavar="PATH",
        help="write one JSON trace record per stride to this JSONL file "
        "(disc only)",
    )
    cluster.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="maintain a Prometheus textfile with cumulative run metrics "
        "(disc only)",
    )

    estimate = commands.add_parser(
        "estimate", help="suggest eps/tau from a stream sample"
    )
    estimate.add_argument("--input", required=True)
    estimate.add_argument("--k", type=int, default=4)
    estimate.add_argument(
        "--sample", type=int, default=1000, help="points to sample from the head"
    )

    compare = commands.add_parser(
        "compare", help="run every method over a stream and report speed"
    )
    compare.add_argument("--input", required=True)
    compare.add_argument("--eps", type=float, required=True)
    compare.add_argument("--tau", type=int, required=True)
    compare.add_argument("--window", type=int, required=True)
    compare.add_argument("--stride", type=int, required=True)
    compare.add_argument(
        "--index",
        choices=available_indexes(),
        default=DEFAULT_INDEX,
        help="spatial-index backend for index-based methods",
    )

    serve = commands.add_parser(
        "serve",
        help="host multi-tenant live clustering sessions over TCP "
        "(JSON-lines protocol; see docs/serving.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7171, help="0 picks a free port")
    serve.add_argument(
        "--data-dir",
        help="root directory for per-tenant durability (session metadata + "
        "checkpoints); omit for ephemeral sessions",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="resurrect every tenant persisted under --data-dir before "
        "accepting connections",
    )
    serve.add_argument(
        "--metrics-dir",
        help="maintain a Prometheus textfile per tenant in this directory",
    )
    serve.add_argument(
        "--trace-dir",
        help="append per-stride JSONL traces per tenant in this directory",
    )
    serve.add_argument(
        "--restart-budget",
        type=int,
        default=3,
        help="supervised restarts allowed per crashed tenant before its "
        "circuit breaker opens and the session stays failed",
    )
    serve.add_argument(
        "--restart-backoff",
        type=float,
        default=0.05,
        help="base seconds of the exponential restart backoff "
        "(backoff * 2**attempt)",
    )
    serve.add_argument(
        "--restart-reset",
        type=float,
        default=5.0,
        help="seconds a restarted tenant (or shard worker) must stay "
        "healthy before its restart-budget window resets",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help="worker processes to shard tenants across (consistent hashing "
        "on the tenant name); 0 = single-process serving (the default)",
    )

    loadgen = commands.add_parser(
        "loadgen",
        help="drive a serve endpoint with N concurrent tenants and report "
        "throughput + query latency",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=7171)
    loadgen.add_argument("--tenants", type=int, default=4)
    loadgen.add_argument(
        "--points", type=int, default=2000, help="points per tenant"
    )
    loadgen.add_argument(
        "--dataset",
        choices=sorted(DATASETS),
        default="maze",
        help="dataset simulator feeding each tenant (seeded per tenant)",
    )
    loadgen.add_argument(
        "--eps", type=float, help="default: the dataset's calibrated eps"
    )
    loadgen.add_argument(
        "--tau", type=int, help="default: the dataset's calibrated tau"
    )
    loadgen.add_argument(
        "--window", type=int, help="default: the dataset's calibrated window"
    )
    loadgen.add_argument("--stride", type=int, help="default: window/10")
    loadgen.add_argument(
        "--index",
        choices=available_indexes(),
        default=None,
        help="spatial-index backend name for the served sessions",
    )
    loadgen.add_argument(
        "--policy",
        choices=("block", "shed-oldest", "reject"),
        default="block",
        help="backpressure policy of the opened sessions",
    )
    loadgen.add_argument("--queue-limit", type=int, default=2048)
    loadgen.add_argument("--checkpoint-every", type=int, default=16)
    loadgen.add_argument(
        "--wal",
        action="store_true",
        help="journal every admitted point to a per-tenant write-ahead log "
        "before acknowledging it (needs a server with --data-dir and the "
        "block policy; ACK => durable)",
    )
    loadgen.add_argument(
        "--wal-fsync",
        choices=("always", "every_n", "interval"),
        default="always",
        help="WAL fsync policy: every commit / every N records / at most "
        "once per interval (see docs/serving.md for the loss matrix)",
    )
    loadgen.add_argument(
        "--wal-segment-bytes",
        type=int,
        default=4 * 1024 * 1024,
        help="WAL segment rotation threshold in bytes",
    )
    loadgen.add_argument(
        "--journal",
        action="store_true",
        help="record every stride's evolution events + membership delta to "
        "a per-tenant CDC journal (needs a server with --data-dir; feeds "
        "SUBSCRIBE/EVENTS and AS_OF time travel)",
    )
    loadgen.add_argument(
        "--journal-fsync",
        choices=("always", "every_n", "interval"),
        default="always",
        help="journal fsync policy ('always' makes a stride's events "
        "durable before subscribers see them)",
    )
    loadgen.add_argument(
        "--journal-retention",
        type=int,
        default=0,
        help="strides of CDC history to retain (0 = unbounded)",
    )
    loadgen.add_argument(
        "--archive-every",
        type=int,
        default=0,
        help="strides between full AS_OF snapshots (0 = delta-replay only; "
        "needs --journal)",
    )
    loadgen.add_argument(
        "--subscribers",
        type=int,
        default=0,
        help="push subscribers per tenant, each on its own connection "
        "(needs --journal)",
    )
    loadgen.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="target points/second per tenant (0 = as fast as admitted)",
    )
    loadgen.add_argument("--batch", type=int, default=50, help="points per INGEST")
    loadgen.add_argument(
        "--query-every",
        type=int,
        default=1,
        help="one pid-query + one coords-query every N batches (0 = none)",
    )
    loadgen.add_argument(
        "--no-flush-tail",
        action="store_true",
        help="drain without end-of-stream tail flush (mid-run drain semantics)",
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--json", help="also write the full report as JSON here")

    fuzz = commands.add_parser(
        "fuzz",
        help="seeded differential fuzzing over every index backend: "
        "adversarial streams checked against the oracle matrix, failures "
        "shrunk to replayable case files (see docs/testing.md)",
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        action="append",
        metavar="N",
        help="master seed to fuzz (repeatable; deterministic per seed)",
    )
    fuzz.add_argument(
        "--budget",
        type=float,
        metavar="MINUTES",
        help="draw fresh seeds until this wall-clock budget is spent "
        "(the nightly CI mode)",
    )
    fuzz.add_argument(
        "--start-seed",
        type=int,
        default=0,
        help="first seed of a --budget run (default: 0)",
    )
    fuzz.add_argument(
        "--replay",
        action="append",
        metavar="CASE",
        help="re-run a saved case file instead of generating scenarios "
        "(repeatable; clean exit means the bug stays fixed)",
    )
    fuzz.add_argument(
        "--backends",
        help="comma-separated index backends (default: all registered)",
    )
    fuzz.add_argument(
        "--oracles",
        help="comma-separated oracle names (default: all)",
    )
    fuzz.add_argument(
        "--scenarios",
        type=int,
        default=None,
        metavar="N",
        help="scenarios derived per seed (default: 3)",
    )
    fuzz.add_argument(
        "--out",
        metavar="DIR",
        help="directory for shrunk case files (omit to skip writing cases)",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures without minimizing the failing stream",
    )
    fuzz.add_argument(
        "--json", help="also write the full report as JSON here"
    )

    tail = commands.add_parser(
        "tail",
        help="follow a tenant's evolution journal over SUBSCRIBE, printing "
        "one CDC record per line (jq-friendly)",
    )
    tail.add_argument("session", help="tenant session name")
    tail.add_argument("--host", default="127.0.0.1")
    tail.add_argument("--port", type=int, default=7171)
    tail.add_argument(
        "--cursor",
        type=int,
        default=0,
        help="stride to start from (clamped to the journal's retention floor)",
    )
    tail.add_argument(
        "--policy",
        choices=("block", "disconnect"),
        default="block",
        help="slow-consumer policy: stall the pipeline, or get cut off "
        "with a resume cursor",
    )
    tail.add_argument(
        "--max",
        type=int,
        default=0,
        help="stop after N records (0 = follow until the stream ends)",
    )
    return parser


def make_method(name: str, args) -> object:
    """Instantiate a clusterer by CLI name."""
    spec = WindowSpec(window=args.window, stride=args.stride)
    dim = getattr(args, "dim", None)
    index = getattr(args, "index", DEFAULT_INDEX)
    if name == "disc":
        return DISC(args.eps, args.tau, index=index)
    if name == "incdbscan":
        return IncrementalDBSCAN(args.eps, args.tau, index=index)
    if name == "extran":
        return ExtraN(args.eps, args.tau, spec, index=index)
    if name == "dbscan":
        return SlidingDBSCAN(args.eps, args.tau, index=index)
    if name == "rho2":
        return RhoDoubleApproxDBSCAN(
            args.eps, args.tau, dim=dim, rho=getattr(args, "rho", 0.001)
        )
    if name == "dbstream":
        return DBStream(
            radius=1.5 * args.eps,
            dim=dim,
            fade=0.5 / args.window,
            alpha=0.1,
            weak_threshold=0.5,
        )
    if name == "edmstream":
        return EDMStream(radius=args.eps, dim=dim, fade=0.5 / args.window)
    raise ValueError(f"unknown method {name}")


def cmd_generate(args) -> int:
    points = DATASETS[args.dataset].load(args.n, seed=args.seed)
    count = write_stream(args.output, points)
    print(f"wrote {count} points of {args.dataset} to {args.output}")
    return 0


def _wants_runtime(args) -> bool:
    """Do the flags ask for the resilient runtime (supervisor) path?"""
    return bool(
        args.checkpoint_dir
        or args.resume
        or args.chaos_kill_at is not None
        or args.on_malformed != "strict"
        or args.dead_letter
    )


def _make_tracer(args):
    """Build a tracer from --trace/--metrics-out, or None when neither set.

    Returns an error string instead when the flags are misused.
    """
    if not (args.trace or args.metrics_out):
        return None
    if args.method != "disc":
        return (
            "--trace/--metrics-out instrument DISC internals and require "
            f"--method disc (got {args.method})"
        )
    from repro.observability import (
        JsonlTraceWriter,
        PrometheusTextfileExporter,
        Tracer,
    )

    sinks = []
    if args.trace:
        sinks.append(JsonlTraceWriter(args.trace))
    if args.metrics_out:
        sinks.append(PrometheusTextfileExporter(args.metrics_out))
    return Tracer(*sinks)


def cmd_cluster(args) -> int:
    tracer = _make_tracer(args)
    if isinstance(tracer, str):
        print(tracer, file=sys.stderr)
        return 1
    if _wants_runtime(args):
        return _cluster_supervised(args, tracer)
    points = list(read_stream(args.input))
    if not points:
        print("input stream is empty", file=sys.stderr)
        return 1
    args.dim = len(points[0].coords)
    method = make_method(args.method, args)
    if tracer is not None:
        method.tracer = tracer
    spec = WindowSpec(window=args.window, stride=args.stride)
    start = time.perf_counter()
    strides = 0
    try:
        for delta_in, delta_out in SlidingWindow(spec, args.time_based).slides(
            points
        ):
            summary = method.advance(delta_in, delta_out)
            strides += 1
            if args.events and summary is not None and summary.events:
                for event in summary.events:
                    print(
                        f"stride {strides - 1}: {event.kind.value} "
                        f"clusters={event.cluster_ids}"
                    )
    finally:
        if tracer is not None:
            tracer.close()
    elapsed = time.perf_counter() - start
    snapshot = method.snapshot()
    print(
        f"{method.name}: {strides} strides in {elapsed:.2f}s "
        f"({elapsed / max(1, strides) * 1000:.1f} ms/stride); "
        f"final window: {snapshot.num_points} points, "
        f"{snapshot.num_clusters} clusters"
    )
    if tracer is not None:
        print(tracer.report())
    if args.output:
        rows = write_labels(args.output, snapshot)
        print(f"wrote {rows} labels to {args.output}")
    return 0


def _cluster_supervised(args, tracer=None) -> int:
    """The resilient path: supervisor-driven DISC with checkpoint/resume."""
    from repro.runtime.chaos import ChaosKill, ChaosMonkey
    from repro.runtime.policies import DeadLetterSink
    from repro.runtime.supervisor import Supervisor

    if args.method != "disc":
        print(
            "checkpoint/resume and fault policies require --method disc "
            f"(got {args.method})",
            file=sys.stderr,
        )
        return 1
    needs_store = args.resume or args.checkpoint_dir
    if needs_store and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 1
    spec = WindowSpec(window=args.window, stride=args.stride)
    hooks = (
        ChaosMonkey(kill_before_stride=args.chaos_kill_at)
        if args.chaos_kill_at is not None
        else None
    )
    dead_letter = DeadLetterSink(args.dead_letter) if args.dead_letter else None
    supervisor = Supervisor(
        args.eps,
        args.tau,
        spec,
        store=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        index=args.index,
        time_based=args.time_based,
        policy=args.on_malformed,
        dead_letter=dead_letter,
        hooks=hooks,
        tracer=tracer,
    )
    stream = read_stream_lenient(args.input)
    start = time.perf_counter()
    strides = 0
    try:
        for _, summary in supervisor.run(stream, resume=args.resume):
            strides += 1
            if args.events and summary.events:
                for event in summary.events:
                    print(
                        f"stride {supervisor.stride - 1}: {event.kind.value} "
                        f"clusters={event.cluster_ids}"
                    )
    except ChaosKill as exc:
        print(f"killed: {exc}", file=sys.stderr)
        print(runtime_report(supervisor.stats), file=sys.stderr)
        return EXIT_CHAOS
    except CheckpointError as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if tracer is not None:
            tracer.close()
    elapsed = time.perf_counter() - start
    if supervisor.clusterer is None:
        print("input stream is empty", file=sys.stderr)
        return 1
    snapshot = supervisor.snapshot()
    print(
        f"DISC (supervised): {strides} strides in {elapsed:.2f}s "
        f"({elapsed / max(1, strides) * 1000:.1f} ms/stride); "
        f"final window: {snapshot.num_points} points, "
        f"{snapshot.num_clusters} clusters"
    )
    if tracer is not None:
        # One merged end-of-run block: runtime counters + trace totals.
        print(tracer.report(supervisor.stats))
    else:
        print(runtime_report(supervisor.stats))
    if args.output:
        rows = write_labels(args.output, snapshot)
        print(f"wrote {rows} labels to {args.output}")
    return 0


def cmd_estimate(args) -> int:
    points = []
    for point in read_stream(args.input):
        points.append(point)
        if len(points) >= args.sample:
            break
    if len(points) <= args.k:
        print("not enough points to estimate", file=sys.stderr)
        return 1
    eps = suggest_eps(points, args.k)
    tau = suggest_tau(points, eps, sample_every=max(1, len(points) // 300))
    print(f"sampled {len(points)} points (k={args.k})")
    print(f"suggested eps: {eps:.6g}")
    print(f"suggested tau: {tau}")
    return 0


def cmd_compare(args) -> int:
    points = list(read_stream(args.input))
    if not points:
        print("input stream is empty", file=sys.stderr)
        return 1
    args.dim = len(points[0].coords)
    spec = WindowSpec(window=args.window, stride=args.stride)
    print(f"{'method':<12} {'total s':>8} {'ms/stride':>10} {'clusters':>9}")
    for name in METHODS:
        method = make_method(name, args)
        start = time.perf_counter()
        strides = 0
        for delta_in, delta_out in SlidingWindow(spec).slides(points):
            method.advance(delta_in, delta_out)
            strides += 1
        elapsed = time.perf_counter() - start
        snapshot = method.snapshot()
        print(
            f"{method.name:<12} {elapsed:8.2f} "
            f"{elapsed / max(1, strides) * 1000:10.1f} "
            f"{snapshot.num_clusters:9d}"
        )
    return 0


def cmd_serve(args) -> int:
    from repro.serve.server import main as serve_main

    return serve_main(args)


def cmd_loadgen(args) -> int:
    from repro.serve.loadgen import main as loadgen_main

    return loadgen_main(args)


def cmd_fuzz(args) -> int:
    """Differential fuzzing: exit 0 clean, EXIT_FUZZ on an oracle violation."""
    import json

    from repro.fuzz import replay_case, run_budget, run_fuzz
    from repro.fuzz.harness import SCENARIOS_PER_SEED

    modes = sum(
        1 for flag in (args.seed, args.budget, args.replay) if flag
    )
    if modes != 1:
        print(
            "pick exactly one of --seed, --budget, or --replay",
            file=sys.stderr,
        )
        return 1
    backends = args.backends.split(",") if args.backends else None
    oracles = args.oracles.split(",") if args.oracles else None
    scenarios = (
        args.scenarios if args.scenarios is not None else SCENARIOS_PER_SEED
    )
    try:
        if args.replay:
            from repro.fuzz.harness import FuzzReport

            report = FuzzReport()
            for path in args.replay:
                report.merge(
                    replay_case(path, backends=backends, oracles=oracles)
                )
        elif args.budget is not None:
            report = run_budget(
                args.budget,
                start_seed=args.start_seed,
                backends=backends,
                oracles=oracles,
                scenarios_per_seed=scenarios,
                out_dir=args.out,
            )
        else:
            report = run_fuzz(
                args.seed,
                backends=backends,
                oracles=oracles,
                scenarios_per_seed=scenarios,
                out_dir=args.out,
                do_shrink=not args.no_shrink,
            )
    except (ReproError, KeyError, OSError) as exc:
        print(f"fuzz error: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")
    return 0 if report.ok else EXIT_FUZZ


def cmd_tail(args) -> int:
    """Follow a tenant's CDC journal: records to stdout, status to stderr."""
    import asyncio
    import json

    from repro.serve.client import ServeClient

    async def _tail() -> int:
        client = await ServeClient.connect(args.host, args.port)
        try:
            reply = await client.subscribe(
                args.session, cursor=args.cursor, policy=args.policy
            )
            print(
                f"tail: subscribed to {args.session!r} at cursor "
                f"{reply['cursor']} (head {reply['head']})",
                file=sys.stderr,
            )
            seen = 0
            async for frame in client.pushes():
                if frame.get("push") == "event":
                    print(
                        json.dumps(
                            frame["record"],
                            separators=(",", ":"),
                            sort_keys=True,
                        ),
                        flush=True,
                    )
                    seen += 1
                    if args.max and seen >= args.max:
                        return 0
                else:
                    print(
                        f"tail: stream ended ({frame.get('reason')}), "
                        f"resume cursor {frame.get('cursor')}",
                        file=sys.stderr,
                    )
            return 0
        finally:
            await client.close()

    try:
        return asyncio.run(_tail())
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        return 0
    except (ReproError, OSError) as exc:
        print(f"tail error: {exc}", file=sys.stderr)
        return 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": cmd_generate,
        "cluster": cmd_cluster,
        "estimate": cmd_estimate,
        "compare": cmd_compare,
        "serve": cmd_serve,
        "loadgen": cmd_loadgen,
        "tail": cmd_tail,
        "fuzz": cmd_fuzz,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
