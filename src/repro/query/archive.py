"""Stride-indexed snapshot archive: time travel over the journal.

``AS_OF(stride)`` needs the full membership at an arbitrary past stride,
but the journal only stores deltas. The archive keeps *sparse full
snapshots* every K strides — the same columnar-list + CRC-envelope shape
as the checkpoint store's v3 payloads, restricted to the read-side columns
(pid, label, category) — and answers any retained stride by loading the
newest snapshot at or before it and replaying the journal deltas between
them. Nothing here touches the live session: snapshots are written by the
session's single writer at the publish point, reads happen from files and
the journal.

Snapshot envelope (atomic tmp + fsync + rename, like checkpoints)::

    {"format": 1, "stride": 42, "crc32": ..., "payload":
        {"pid": [2, 5, ...], "label": [0, 0, ...], "cat": ["core", ...]}}

``AS_OF(time)`` resolves a stream timestamp to a stride first: the
journal stamps each record with the time of the point that closed its
stride, so the answer is the newest retained stride whose stamp is at or
before the asked time (see :func:`stride_at_time`).
"""

from __future__ import annotations

import json
import os
import re
import zlib
from pathlib import Path

from repro.common.errors import ReproError
from repro.query.journal import EvolutionJournal, apply_record

ARCHIVE_FORMAT = 1

_NAME = re.compile(r"^snap-(\d{10})\.json$")


class ArchiveError(ReproError):
    """A snapshot could not be written, loaded, or materialized."""


def _canonical(payload: dict) -> bytes:
    """Deterministic byte encoding of a payload, the CRC input."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def stride_at_time(journal: EvolutionJournal, time: float) -> int | None:
    """Newest retained stride whose closing stamp is <= ``time``.

    Returns ``None`` when ``time`` predates every retained record.
    """
    found: int | None = None
    for record in journal.read(journal.floor):
        stamp = record.get("time")
        if stamp is not None and stamp <= time:
            found = record["stride"]
        elif stamp is not None and stamp > time:
            break  # stamps are monotone along the stride axis
    return found


class SnapshotArchive:
    """Directory of sparse membership snapshots, one file per K strides.

    Args:
        directory: snapshot directory; created when missing.
        every: snapshot cadence in strides (``maybe_snapshot`` writes at
            stride 0, K, 2K, ...). ``0`` disables automatic snapshots —
            materialization then replays the journal from its floor.
        journal: the tenant's evolution journal (delta source).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        every: int = 0,
        journal: EvolutionJournal | None = None,
    ) -> None:
        if every < 0:
            raise ArchiveError(f"every must be >= 0, got {every}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.every = every
        self.journal = journal
        self.snapshots_written = 0
        self._strides = self._scan()

    def _scan(self) -> list[int]:
        strides = []
        for path in self.directory.iterdir():
            match = _NAME.match(path.name)
            if match:
                strides.append(int(match.group(1)))
        return sorted(strides)

    # ---------------------------------------------------------------- writing

    def maybe_snapshot(self, stride: int, clustering) -> bool:
        """Write a snapshot when ``stride`` is on the cadence grid."""
        if self.every <= 0 or stride % self.every != 0:
            return False
        self.snapshot(stride, clustering)
        return True

    def snapshot(self, stride: int, clustering) -> Path:
        """Atomically persist the full membership at ``stride``."""
        labels = clustering.labels
        cats = clustering.categories
        pids = sorted(cats)
        payload = {
            "pid": pids,
            "label": [labels.get(pid, clustering.NOISE_ID) for pid in pids],
            "cat": [cats[pid].value for pid in pids],
        }
        body = _canonical(payload)
        envelope = {
            "format": ARCHIVE_FORMAT,
            "stride": int(stride),
            "crc32": zlib.crc32(body),
            "payload": payload,
        }
        final = self.directory / f"snap-{stride:010d}.json"
        tmp = final.with_name(final.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(json.dumps(envelope, sort_keys=True).encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        if stride not in self._strides:
            self._strides.append(stride)
            self._strides.sort()
        self.snapshots_written += 1
        return final

    # ---------------------------------------------------------------- reading

    def strides(self) -> list[int]:
        """Strides with a snapshot on disk, oldest first."""
        return list(self._strides)

    def latest_at_or_before(self, stride: int) -> int | None:
        """Newest snapshot stride <= ``stride``, or ``None``."""
        found = None
        for snap in self._strides:
            if snap > stride:
                break
            found = snap
        return found

    def load(self, stride: int) -> dict[int, list]:
        """Membership at a snapshot stride: ``{pid: [label, category]}``."""
        path = self.directory / f"snap-{stride:010d}.json"
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError as exc:
            raise ArchiveError(f"no snapshot at stride {stride}") from exc
        except (OSError, ValueError) as exc:
            raise ArchiveError(f"unreadable snapshot {path.name}: {exc}") from exc
        try:
            payload = envelope["payload"]
            if zlib.crc32(_canonical(payload)) != envelope["crc32"]:
                raise ArchiveError(f"snapshot {path.name} failed its CRC check")
            return {
                int(pid): [label, cat]
                for pid, label, cat in zip(
                    payload["pid"], payload["label"], payload["cat"]
                )
            }
        except (KeyError, TypeError) as exc:
            raise ArchiveError(f"malformed snapshot {path.name}: {exc}") from exc

    def materialize(self, stride: int) -> dict[int, list]:
        """Full membership at ``stride``: nearest snapshot + delta replay.

        Raises :class:`ArchiveError` when ``stride`` is not answerable —
        ahead of the journal head, or behind both the oldest snapshot and
        the journal's retention floor.
        """
        if self.journal is None:
            raise ArchiveError("archive has no journal to replay deltas from")
        if stride >= self.journal.head:
            raise ArchiveError(
                f"stride {stride} is ahead of the journal head "
                f"({self.journal.head - 1} is the newest closed stride)"
            )
        base = self.latest_at_or_before(stride)
        if base is not None:
            state = self.load(base)
            replay_from = base + 1
        elif self.journal.floor == 0:
            state = {}
            replay_from = 0
        else:
            raise ArchiveError(
                f"stride {stride} predates both the oldest snapshot and the "
                f"journal retention floor ({self.journal.floor})"
            )
        for record in self.journal.read(replay_from, stride + 1):
            apply_record(state, record)
        return state

    def as_of(
        self, stride: int | None = None, time: float | None = None
    ) -> dict:
        """The ``QUERY {as_of}`` answer: full membership payload at a past
        stride (or at the stride live when ``time`` passed)."""
        if (stride is None) == (time is None):
            raise ArchiveError("as_of needs exactly one of stride or time")
        if stride is None:
            if self.journal is None:
                raise ArchiveError("archive has no journal to resolve time")
            stride = stride_at_time(self.journal, time)
            if stride is None:
                raise ArchiveError(f"no retained stride at or before time {time}")
        state = self.materialize(stride)
        labels = {}
        categories = {}
        clusters = set()
        for pid in sorted(state):
            label, cat = state[pid]
            labels[str(pid)] = label
            categories[str(pid)] = cat
            if cat == "core":
                clusters.add(label)
        return {
            "stride": stride,
            "num_points": len(state),
            "num_clusters": len(clusters),
            "labels": labels,
            "categories": categories,
        }
