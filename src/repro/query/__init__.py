"""Read-side subsystem: CDC journal, snapshot archive, time travel.

The serving layer computes cluster-evolution events every stride; this
package makes them consumable. :mod:`repro.query.journal` persists a
stride-sequenced change-data-capture log per tenant (the feed behind the
``SUBSCRIBE``/``EVENTS`` protocol verbs), and :mod:`repro.query.archive`
keeps sparse full snapshots so ``QUERY {as_of: ...}`` can answer
label/membership questions about any retained past stride without
touching the live session.
"""

from repro.query.archive import ArchiveError, SnapshotArchive, stride_at_time
from repro.query.journal import (
    JOURNAL_FIELDS,
    EvolutionJournal,
    JournalError,
    JournalStats,
    encode_record,
    stride_record,
)

__all__ = [
    "ArchiveError",
    "SnapshotArchive",
    "stride_at_time",
    "JOURNAL_FIELDS",
    "EvolutionJournal",
    "JournalError",
    "JournalStats",
    "encode_record",
    "stride_record",
]
