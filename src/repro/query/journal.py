"""Per-tenant evolution journal: a stride-sequenced CDC log.

Every window advance produces a :class:`~repro.core.events.StrideSummary`
(the paper's six evolution event types) and a new
:class:`~repro.common.snapshot.Clustering`. The journal persists one
*record* per stride — the events plus the membership delta against the
previous stride — in the same segmented, CRC32-framed, torn-tail-safe
format as the ingest write-ahead log (:class:`repro.runtime.wal.SegmentedLog`
is the shared engine). Sequence numbers **are** stride indices, so a
``SUBSCRIBE`` cursor, an ``EVENTS`` range, a ``QUERY`` consistency token,
and an ``AS_OF`` stride all live on one axis.

The record is built by :func:`stride_record`, a pure function of
``(stride, previous clustering, clustering, summary, time)`` — the serve
push path, the journal replay path, and an offline
:func:`repro.api.cluster_stream` run therefore produce byte-identical
records by construction (canonical encoding via :func:`encode_record`).

Record layout (canonical JSON, sorted keys)::

    {
      "stride": 17,              # == journal sequence number
      "time": 41.0,              # stamp of the point that closed the stride
      "events": [["merge", [3, 5], 102], ...],
      "counts": {"ex_cores": 2, "neo_cores": 3, "inserted": 8, "deleted": 8},
      "clusters": 4,             # live clusters after the stride
      "add":    {"830": [3, "border"], ...},   # pid -> [label, category]
      "expire": [101, 102],                    # pids that left the window
      "change": {"640": [5, "core"], ...}      # pid -> new [label, category]
    }

Deltas are *reassignment-complete*: a cid rewrite by ``compact_cids``
shows up as ``change`` entries like any other relabel, so replaying
``add``/``expire``/``change`` from an empty (or archived) base state
reconstructs the exact membership at any retained stride.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.common.limits import MAX_JOURNAL_RECORD_BYTES
from repro.common.snapshot import Clustering
from repro.core.events import StrideSummary
from repro.runtime.wal import SegmentedLog, WalError

#: Counter names surfaced through the trace schema and Prometheus exporter.
JOURNAL_FIELDS = (
    "appends",
    "fsyncs",
    "bytes",
    "reads",
    "truncated_tail",
    "compacted_segments",
)


class JournalError(WalError):
    """The evolution journal could not append, scan, or read."""


@dataclass
class JournalStats:
    """Cumulative counters of one journal (survives tenant restarts).

    Attributes:
        appends: stride records appended.
        fsyncs: physical ``fsync`` calls issued.
        bytes: framed bytes appended.
        reads: records served to ``EVENTS``/``SUBSCRIBE`` readers.
        truncated_tail: recovery scans that had to cut a torn/corrupt tail.
        compacted_segments: segments garbage-collected by retention.
    """

    appends: int = 0
    fsyncs: int = 0
    bytes: int = 0
    reads: int = 0
    truncated_tail: int = 0
    compacted_segments: int = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in JOURNAL_FIELDS}


# ------------------------------------------------------------------ records


def stride_record(
    stride: int,
    prev: Clustering | None,
    clustering: Clustering,
    summary: StrideSummary,
    *,
    time: float | None = None,
) -> dict:
    """The CDC record of one stride: events + membership delta vs ``prev``.

    Pure and deterministic: every consumer (the live push path, a journal
    replay, an offline ``cluster_stream`` run) calls this with the same
    inputs and gets the same record. ``prev=None`` means the empty window
    (stride 0, or the base of a fresh materialization).
    """
    prev_cats = {} if prev is None else prev.categories
    prev_labels = {} if prev is None else prev.labels
    cats = clustering.categories
    labels = clustering.labels
    add: dict[str, list] = {}
    change: dict[str, list] = {}
    for pid in sorted(cats):
        label = labels.get(pid, Clustering.NOISE_ID)
        cat = cats[pid].value
        if pid not in prev_cats:
            add[str(pid)] = [label, cat]
        elif prev_labels.get(pid, Clustering.NOISE_ID) != label or (
            prev_cats[pid].value != cat
        ):
            change[str(pid)] = [label, cat]
    return {
        "stride": stride,
        "time": time,
        "events": [
            [event.kind.value, list(event.cluster_ids), event.trigger]
            for event in summary.events
        ],
        "counts": {
            "ex_cores": summary.num_ex_cores,
            "neo_cores": summary.num_neo_cores,
            "inserted": summary.num_inserted,
            "deleted": summary.num_deleted,
        },
        "clusters": clustering.num_clusters,
        "add": add,
        "expire": sorted(pid for pid in prev_cats if pid not in cats),
        "change": change,
    }


def encode_record(record: dict) -> bytes:
    """Canonical bytes of one record (sorted keys, compact separators)."""
    return json.dumps(record, separators=(",", ":"), sort_keys=True).encode("utf-8")


def apply_record(state: dict[int, list], record: dict) -> None:
    """Apply one record's membership delta to ``{pid: [label, category]}``."""
    for pid, value in record["add"].items():
        state[int(pid)] = list(value)
    for pid in record["expire"]:
        state.pop(int(pid), None)
    for pid, value in record["change"].items():
        state[int(pid)] = list(value)


# ------------------------------------------------------------------ journal


class EvolutionJournal(SegmentedLog):
    """Durable CDC log keyed by stride index.

    The storage engine (framing, fsync policies, recovery scan, rotation,
    compaction) is :class:`~repro.runtime.wal.SegmentedLog`; this subclass
    fixes the codec to canonical stride records, makes :meth:`publish`
    idempotent across crash-replay (a record at a stride the journal
    already holds is skipped, since the deterministic pipeline re-derives
    it byte-identically), and caps records below the serve transport
    ceiling so every record ships in one push frame.
    """

    prefix = "evj"
    max_record_bytes = MAX_JOURNAL_RECORD_BYTES

    def __init__(self, directory: str | os.PathLike, **kwargs) -> None:
        kwargs.setdefault("stats", JournalStats())
        super().__init__(directory, **kwargs)

    def _encode_body(self, seq: int, record: dict) -> bytes:
        if int(record.get("stride", -1)) != seq:
            raise JournalError(
                f"record stride {record.get('stride')!r} != journal seq {seq}"
            )
        return encode_record(record)

    def _decode_body(self, body: bytes) -> tuple[int, dict]:
        try:
            record = json.loads(body)
            return int(record["stride"]), record
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(f"undecodable journal record body: {exc}") from exc

    # ---------------------------------------------------------- publishing

    def publish(self, record: dict) -> int | None:
        """Append one stride record; return its seq, or ``None`` if it is
        already journaled (idempotent crash-replay).

        A record *ahead* of the contiguous tail is a bug in the caller
        (strides close in order) and raises :class:`JournalError`.
        """
        seq = int(record["stride"])
        if seq < self.next_seq:
            return None
        if seq != self.next_seq:
            raise JournalError(
                f"journal gap: got stride {seq}, expected {self.next_seq}"
            )
        return self.append(record)

    # ---------------------------------------------------------- reading

    @property
    def head(self) -> int:
        """One past the newest journaled stride (the live cursor)."""
        return self.next_seq

    @property
    def floor(self) -> int:
        """Oldest stride still retained (== ``head`` when empty)."""
        return self.floor_seq

    def read(
        self,
        from_seq: int,
        to_seq: int | None = None,
        *,
        limit: int | None = None,
    ) -> list[dict]:
        """Records with ``from_seq <= stride`` (``< to_seq``), in order."""
        records: list[dict] = []
        for _, record in self.scan(max(0, from_seq), to_seq):
            records.append(record)
            if limit is not None and len(records) >= limit:
                break
        self.stats.reads += len(records)
        return records

    # ---------------------------------------------------------- compaction

    def compact(self, upto_seq: int) -> int:
        removed = super().compact(upto_seq)
        self.stats.compacted_segments += removed
        return removed
