"""EXTRA-N (Yang, Rundensteiner, Ward — EDBT 2009), predicted-view style.

EXTRA-N attacks the *slow deletion* problem by never running a range search
for an expiring point. Under a count-based window whose stride divides it,
every point's expiry slide is known the moment it arrives (arrival + m where
m = window/stride sub-windows fit one window). EXTRA-N therefore:

- runs exactly **one** range search per *arriving* point, recording the
  neighbour relationship together with each endpoint's expiry slide — the
  per-sub-window "predicted views" of the original paper;
- on every slide, retires expired points by bookkeeping alone: counts are
  decremented through the expiring points' materialised neighbour lists
  (robust even to a trailing partial stride), with the per-slide expiry
  histograms providing the predicted views;
- reclusters per slide by walking the *materialised* neighbour lists (no
  index probes at all).

This keeps the reported trade-off intact: deletions are free of range
searches, but per-slide maintenance touches the whole window (so the speedup
saturates as the stride shrinks) and memory holds the full neighbourship
relation plus per-view bookkeeping (so large window/stride ratios blow up —
the paper's Figure 5 failure mode). Exact results: identical to DBSCAN.
"""

from __future__ import annotations

from collections import Counter, deque
from collections.abc import Callable, Sequence

from repro.common.config import ClusteringParams, WindowSpec
from repro.common.errors import ConfigurationError, StreamOrderError
from repro.common.points import StreamPoint
from repro.common.snapshot import Category, Clustering
from repro.core.events import StrideSummary
from repro.index.base import NeighborIndex
from repro.index.registry import resolve_index

Coords = tuple[float, ...]


class _ExtraNRecord:
    """Per-point predicted view: neighbour list plus expiry histogram."""

    __slots__ = ("pid", "coords", "expiry", "n_eps", "neighbours", "hist")

    def __init__(self, pid: int, coords: Coords, expiry: int) -> None:
        self.pid = pid
        self.coords = coords
        self.expiry = expiry  # first slide at which this point is gone
        self.n_eps = 1  # includes the point itself
        self.neighbours: list[int] = []
        self.hist: Counter[int] = Counter()  # expiry slide -> neighbour count


class ExtraN:
    """Sliding-window exact clustering via predicted views.

    Args:
        eps, tau: DBSCAN thresholds (neighbourhood includes the point).
        spec: the window specification; the stride must divide the window so
            expiry slides are exact (the setting used throughout the paper's
            evaluation).
        index: substrate for the single arrival-time range search — a
            registry name, a ready :class:`~repro.index.base.NeighborIndex`,
            or a factory (default R-tree).
        index_factory: deprecated alias for ``index``.
    """

    name = "EXTRA-N"

    def __init__(
        self,
        eps: float,
        tau: int,
        spec: WindowSpec,
        *,
        index: str | NeighborIndex | Callable[[], NeighborIndex] | None = None,
        index_factory: Callable[[], NeighborIndex] | None = None,
    ) -> None:
        if spec.window % spec.stride != 0:
            raise ConfigurationError(
                "EXTRA-N needs stride to divide window "
                f"(got window={spec.window}, stride={spec.stride})"
            )
        self.params = ClusteringParams(
            eps, tau, index=index if isinstance(index, str) else None
        )
        self.spec = spec
        self._lifetime = spec.strides_per_window  # m sub-windows
        self.index = resolve_index(index, index_factory, eps=eps, owner="ExtraN")
        self._records: dict[int, _ExtraNRecord] = {}
        self._slide = 0
        self._labels: dict[int, int] = {}
        self._categories: dict[int, Category] = {}

    @property
    def stats(self):
        return self.index.stats

    def advance(
        self,
        delta_in: Sequence[StreamPoint],
        delta_out: Sequence[StreamPoint] = (),
    ) -> StrideSummary:
        """Advance one slide: free expirations, searched arrivals, recluster."""
        self._apply(delta_in, delta_out)
        self._recluster()
        return StrideSummary(
            num_inserted=len(delta_in), num_deleted=len(delta_out)
        )

    def prefill(self, batches: Sequence[Sequence[StreamPoint]]) -> None:
        """Fill the window slide-by-slide, reclustering only once at the end.

        The benchmark harness uses this so arrival-slide bookkeeping (which
        the predicted views depend on) is correct without paying a full
        reclustering pass per fill slide.
        """
        for batch in batches:
            self._apply(batch, ())
        self._recluster()

    def _apply(
        self,
        delta_in: Sequence[StreamPoint],
        delta_out: Sequence[StreamPoint],
    ) -> None:
        records = self._records
        slide = self._slide

        # --- expirations: pure bookkeeping, zero range searches ------------
        # Counts are decremented through the materialised neighbour lists of
        # the points that *actually* leave. (Decrementing from the predicted
        # views alone breaks on a trailing partial stride, where points can
        # outlive their predicted slide.)
        for sp in delta_out:
            rec = records.pop(sp.pid, None)
            if rec is None:
                raise StreamOrderError(f"cannot delete {sp.pid}: not in window")
            self.index.delete(sp.pid)
            for qid in rec.neighbours:
                q = records.get(qid)
                if q is not None:
                    q.n_eps -= 1
                    q.hist[rec.expiry] -= 1
                    if q.hist[rec.expiry] <= 0:
                        del q.hist[rec.expiry]

        # --- arrivals: one range search each --------------------------------
        expiry = slide + self._lifetime
        for sp in delta_in:
            if sp.pid in records:
                raise StreamOrderError(f"cannot insert {sp.pid}: already present")
            rec = _ExtraNRecord(sp.pid, tuple(sp.coords), expiry)
            records[sp.pid] = rec
            self.index.insert(sp.pid, rec.coords)
            for qid, _ in self.index.ball(rec.coords, self.params.eps):
                if qid == sp.pid:
                    continue
                q = records[qid]
                rec.neighbours.append(qid)
                q.neighbours.append(sp.pid)
                rec.n_eps += 1
                q.n_eps += 1
                rec.hist[q.expiry] += 1
                q.hist[expiry] += 1
        self._slide += 1

    def _recluster(self) -> None:
        """Label the window from the materialised neighbour lists."""
        tau = self.params.tau
        records = self._records
        labels: dict[int, int] = {}
        categories: dict[int, Category] = {}
        next_cid = 0

        for rec in records.values():
            # Lazy compaction: drop expired pids from the neighbour list.
            if len(rec.neighbours) + 1 != rec.n_eps:
                rec.neighbours = [q for q in rec.neighbours if q in records]

        for pid, rec in records.items():
            if pid in categories:
                continue
            if rec.n_eps < tau:
                categories[pid] = Category.NOISE  # may be reclaimed as border
                continue
            cid = next_cid
            next_cid += 1
            categories[pid] = Category.CORE
            labels[pid] = cid
            queue = deque(rec.neighbours)
            while queue:
                qid = queue.popleft()
                q = records[qid]
                known = categories.get(qid)
                if known is Category.NOISE:
                    categories[qid] = Category.BORDER
                    labels[qid] = cid
                    continue
                if known is not None:
                    continue
                labels[qid] = cid
                if q.n_eps >= tau:
                    categories[qid] = Category.CORE
                    queue.extend(q.neighbours)
                else:
                    categories[qid] = Category.BORDER
        self._labels = labels
        self._categories = categories

    def memory_cells(self) -> int:
        """Bookkeeping cells held (neighbour entries + histogram buckets).

        This is the quantity that explodes with the window/stride ratio and
        produces the paper's Figure 5 out-of-memory behaviour.
        """
        return sum(
            len(rec.neighbours) + len(rec.hist) for rec in self._records.values()
        )

    def snapshot(self) -> Clustering:
        return Clustering(self._labels, self._categories)

    def labels(self) -> dict[int, int]:
        return dict(self._labels)

    def __len__(self) -> int:
        return len(self._records)
