"""Incremental DBSCAN (Ester, Kriegel, Sander, Wimmer, Xu — VLDB 1998).

IncDBSCAN updates clusters *one point at a time*: every insertion runs the
affected-core case analysis (noise / creation / absorption / merge), every
deletion runs the potential-split analysis (the "slow deletion problem").
Those per-point procedures are exactly DISC's neo-core and ex-core machinery
restricted to a single-point delta, so this implementation processes each
point as a one-point stride over the shared substrate. Following the paper's
experimental setup, the split-side reachability check "ran with our MS-BFS
algorithm in its own favor" — both optimization knobs are exposed here too.

What it deliberately does *not* do is DISC's per-stride consolidation:
retro/nascent reachability classes are rebuilt from scratch for every single
point, one connectivity check per affected point rather than one per class.
That difference is the entire performance gap measured in Figures 4-7.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.common.points import StreamPoint
from repro.common.snapshot import Clustering
from repro.core.disc import DISC
from repro.core.events import StrideSummary
from repro.index.base import NeighborIndex
from repro.index.registry import resolve_index


class IncrementalDBSCAN:
    """Point-at-a-time incremental DBSCAN over a sliding window.

    Produces exactly the same clustering as DBSCAN (same contract as DISC).

    Args:
        eps: distance threshold.
        tau: density threshold (MinPts, neighbourhood includes the point).
        index: spatial-index backend — a registry name, a ready
            :class:`~repro.index.base.NeighborIndex`, or a factory
            (default R-tree).
        index_factory: deprecated alias for ``index``.
        multi_starter / epoch_probing: reachability-check optimizations,
            granted "in its own favor" as in the paper's evaluation.
    """

    name = "IncDBSCAN"

    def __init__(
        self,
        eps: float,
        tau: int,
        *,
        index: str | NeighborIndex | Callable[[], NeighborIndex] | None = None,
        index_factory: Callable[[], NeighborIndex] | None = None,
        multi_starter: bool = True,
        epoch_probing: bool = True,
    ) -> None:
        self._engine = DISC(
            eps,
            tau,
            index=resolve_index(
                index,
                index_factory,
                eps=eps,
                owner="IncrementalDBSCAN",
            ),
            multi_starter=multi_starter,
            epoch_probing=epoch_probing,
        )

    @property
    def params(self):
        return self._engine.params

    @property
    def stats(self):
        return self._engine.stats

    def advance(
        self,
        delta_in: Sequence[StreamPoint],
        delta_out: Sequence[StreamPoint] = (),
    ) -> StrideSummary:
        """Process the stride's points strictly one by one.

        Deletions are applied before insertions, matching the order in which
        a sliding window retires and admits data.
        """
        combined = StrideSummary(
            num_inserted=len(delta_in), num_deleted=len(delta_out)
        )
        for sp in delta_out:
            summary = self._engine.advance((), (sp,))
            combined.events.extend(summary.events)
            combined.num_ex_cores += summary.num_ex_cores
            combined.num_neo_cores += summary.num_neo_cores
        for sp in delta_in:
            summary = self._engine.advance((sp,), ())
            combined.events.extend(summary.events)
            combined.num_ex_cores += summary.num_ex_cores
            combined.num_neo_cores += summary.num_neo_cores
        return combined

    def snapshot(self) -> Clustering:
        return self._engine.snapshot()

    def labels(self) -> dict[int, int]:
        return self._engine.labels()

    def __len__(self) -> int:
        return len(self._engine)
