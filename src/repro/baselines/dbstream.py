"""DBSTREAM (Hahsler & Bolanos, TKDE 2016) — shared-density micro-clusters.

A summarisation-based stream clusterer: points are absorbed into
micro-clusters (MCs) whose weights fade exponentially; MCs whose coverage
areas overlap accumulate *shared density*, and reclustering connects MCs
whose shared density (relative to their weights) exceeds the intersection
factor alpha. Insertion-only — expired points simply fade away, which is why
the paper measures only its insertion latency (Figures 9-10).

The implementation follows the published algorithm: Gaussian neighbourhood
competitive learning for centre updates, collapse prevention by reverting
moves that bring two MCs within radius of each other, and periodic cleanup of
weak MCs and weak shared-density entries.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.common.config import ClusteringParams
from repro.common.disjointset import DisjointSet
from repro.common.points import StreamPoint
from repro.common.snapshot import Category, Clustering
from repro.core.events import StrideSummary
from repro.index.grid import GridIndex

Coords = tuple[float, ...]


class _MicroCluster:
    __slots__ = ("mc_id", "center", "weight", "last_update")

    def __init__(self, mc_id: int, center: Coords, now: float) -> None:
        self.mc_id = mc_id
        self.center = center
        self.weight = 1.0
        self.last_update = now


class DBStream:
    """Micro-cluster stream clusterer with shared-density reclustering.

    Args:
        radius: MC radius r (plays the role of the clustering resolution;
            set it near the DBSCAN eps being compared against).
        dim: dimensionality of the stream.
        fade: decay rate lambda; weights fade as ``2**(-fade * dt)``.
        alpha: intersection factor — MCs i, j are connected when
            ``s_ij / ((w_i + w_j) / 2) >= alpha``.
        weak_threshold: MCs with faded weight below this are dropped during
            cleanup.
        gap: cleanup period, counted in processed points.
    """

    name = "DBSTREAM"

    def __init__(
        self,
        radius: float,
        dim: int,
        *,
        fade: float = 0.001,
        alpha: float = 0.3,
        weak_threshold: float = 1.0,
        gap: int = 1000,
    ) -> None:
        self.params = ClusteringParams(radius, 1)
        self.radius = radius
        self.dim = dim
        self.fade = fade
        self.alpha = alpha
        self.weak_threshold = weak_threshold
        self.gap = gap
        self._mcs: dict[int, _MicroCluster] = {}
        self._shared: dict[tuple[int, int], tuple[float, float]] = {}
        self._grid = GridIndex(eps=radius, dim=dim)
        self._next_mc = 0
        self._clock = 0.0
        self._ticks = 0
        self._window: dict[int, Coords] = {}  # for labelling snapshots only

    @property
    def stats(self):
        return self._grid.stats

    def _decay(self, weight: float, since: float) -> float:
        return weight * (2.0 ** (-self.fade * (self._clock - since)))

    def advance(
        self,
        delta_in: Sequence[StreamPoint],
        delta_out: Sequence[StreamPoint] = (),
    ) -> StrideSummary:
        """Absorb arrivals; departures only update the labelling window."""
        for sp in delta_out:
            self._window.pop(sp.pid, None)
        for sp in delta_in:
            coords = tuple(sp.coords)
            self._window[sp.pid] = coords
            self._insert(coords)
        return StrideSummary(
            num_inserted=len(delta_in), num_deleted=len(delta_out)
        )

    def _insert(self, x: Coords) -> None:
        self._clock += 1.0
        self._ticks += 1
        touched = [
            self._mcs[mc_id] for mc_id, _ in self._grid.ball(x, self.radius)
        ]
        if not touched:
            mc = _MicroCluster(self._next_mc, x, self._clock)
            self._next_mc += 1
            self._mcs[mc.mc_id] = mc
            self._grid.insert(mc.mc_id, mc.center)
        else:
            sigma = self.radius / 3.0
            proposals: list[tuple[_MicroCluster, Coords]] = []
            for mc in touched:
                mc.weight = self._decay(mc.weight, mc.last_update) + 1.0
                mc.last_update = self._clock
                dist_sq = _dist_sq(mc.center, x)
                h = math.exp(-dist_sq / (2.0 * sigma * sigma))
                moved = tuple(
                    c + h * (xi - c) for c, xi in zip(mc.center, x)
                )
                proposals.append((mc, moved))
            # Collapse prevention: revert moves bringing two MCs within r.
            accepted = self._prevent_collapse(proposals)
            for mc, new_center in accepted:
                if new_center != mc.center:
                    self._grid.delete(mc.mc_id)
                    mc.center = new_center
                    self._grid.insert(mc.mc_id, mc.center)
            # Shared density between every pair of touched MCs.
            for i in range(len(touched)):
                for j in range(i + 1, len(touched)):
                    key = _pair(touched[i].mc_id, touched[j].mc_id)
                    weight, since = self._shared.get(key, (0.0, self._clock))
                    faded = weight * (2.0 ** (-self.fade * (self._clock - since)))
                    self._shared[key] = (faded + 1.0, self._clock)
        if self._ticks % self.gap == 0:
            self._cleanup()

    def _prevent_collapse(self, proposals):
        """Keep proposed centre moves only when no touched pair collapses."""
        r_sq = self.radius * self.radius
        accepted = []
        for idx, (mc, moved) in enumerate(proposals):
            ok = True
            for jdx, (other, other_moved) in enumerate(proposals):
                if jdx == idx:
                    continue
                if _dist_sq(moved, other_moved) < r_sq:
                    ok = False
                    break
            accepted.append((mc, moved if ok else mc.center))
        return accepted

    def _cleanup(self) -> None:
        weak = 2.0 ** (-self.fade * self.gap)
        dead = [
            mc_id
            for mc_id, mc in self._mcs.items()
            if self._decay(mc.weight, mc.last_update) < weak
        ]
        for mc_id in dead:
            self._grid.delete(mc_id)
            del self._mcs[mc_id]
        dead_set = set(dead)
        stale = [
            key
            for key, (weight, since) in self._shared.items()
            if key[0] in dead_set
            or key[1] in dead_set
            or weight * (2.0 ** (-self.fade * (self._clock - since)))
            < self.alpha * weak
        ]
        for key in stale:
            del self._shared[key]

    def macro_clusters(self) -> dict[int, int]:
        """MC id -> macro cluster id, from the shared-density graph."""
        ds = DisjointSet()
        weights = {
            mc_id: self._decay(mc.weight, mc.last_update)
            for mc_id, mc in self._mcs.items()
        }
        strong = {
            mc_id for mc_id, w in weights.items() if w >= self.weak_threshold
        }
        roots = {mc_id: ds.find(mc_id) for mc_id in strong}
        for (i, j), (weight, since) in self._shared.items():
            if i not in strong or j not in strong:
                continue
            faded = weight * (2.0 ** (-self.fade * (self._clock - since)))
            mean_weight = (weights[i] + weights[j]) / 2.0
            if mean_weight > 0 and faded / mean_weight >= self.alpha:
                ds.union(i, j)
        return {mc_id: ds.find(mc_id) for mc_id in roots}

    def snapshot(self) -> Clustering:
        """Label current window points through their covering micro-cluster."""
        macro = self.macro_clusters()
        labels: dict[int, int] = {}
        categories: dict[int, Category] = {}
        for pid, coords in self._window.items():
            best = None
            best_d = None
            for mc_id, center in self._grid.ball(coords, self.radius):
                if mc_id not in macro:
                    continue
                d = _dist_sq(coords, center)
                if best_d is None or d < best_d:
                    best, best_d = mc_id, d
            if best is None:
                categories[pid] = Category.NOISE
            else:
                categories[pid] = Category.CORE
                labels[pid] = macro[best]
        return Clustering(labels, categories)

    def labels(self) -> dict[int, int]:
        return dict(self.snapshot().labels)

    def num_micro_clusters(self) -> int:
        return len(self._mcs)

    def __len__(self) -> int:
        return len(self._window)


def _pair(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)


def _dist_sq(a: Coords, b: Coords) -> float:
    total = 0.0
    for xa, xb in zip(a, b):
        diff = xa - xb
        total += diff * diff
    return total
