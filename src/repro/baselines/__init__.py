"""Every comparison method of the paper's evaluation, built from scratch.

Exact methods (identical output to DBSCAN):

- :class:`~repro.baselines.dbscan.SlidingDBSCAN` — recluster from scratch on
  every window advance (the Figures 4-5 baseline).
- :class:`~repro.baselines.incdbscan.IncrementalDBSCAN` — Ester et al. 1998,
  one update procedure per inserted/deleted point.
- :class:`~repro.baselines.extran.ExtraN` — Yang et al. 2009, predicted
  views over sub-windows to avoid deletion-time range searches.

Approximate / summarisation methods:

- :class:`~repro.baselines.dbstream.DBStream` — micro-clusters with a
  shared-density graph (Hahsler & Bolanos 2016).
- :class:`~repro.baselines.edmstream.EDMStream` — cluster-cells on a density
  mountain / dependency tree (Gong et al. 2017).
- :class:`~repro.baselines.rho2dbscan.RhoDoubleApproxDBSCAN` — dynamic
  rho-approximate DBSCAN on a grid (Gan & Tao 2017).
"""

from repro.baselines.dbscan import SlidingDBSCAN, dbscan_labels
from repro.baselines.dbstream import DBStream
from repro.baselines.edmstream import EDMStream
from repro.baselines.extran import ExtraN
from repro.baselines.incdbscan import IncrementalDBSCAN
from repro.baselines.rho2dbscan import RhoDoubleApproxDBSCAN

__all__ = [
    "DBStream",
    "EDMStream",
    "ExtraN",
    "IncrementalDBSCAN",
    "RhoDoubleApproxDBSCAN",
    "SlidingDBSCAN",
    "dbscan_labels",
]
