"""Static DBSCAN (Ester et al. 1996) and its sliding-window wrapper.

The wrapper maintains the spatial index incrementally but reclusters the
whole window from scratch on every advance — exactly how the paper uses
DBSCAN as the baseline of Figures 4 and 5 ("at least 19 range searches" in
Example 1: one per point in the window).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Sequence

from repro.common.config import ClusteringParams
from repro.common.errors import StreamOrderError
from repro.common.points import StreamPoint
from repro.common.snapshot import Category, Clustering
from repro.core.events import StrideSummary
from repro.index.base import NeighborIndex
from repro.index.registry import resolve_index

Coords = tuple[float, ...]


def dbscan_labels(
    index,
    points: dict[int, Coords],
    params: ClusteringParams,
) -> tuple[dict[int, int], dict[int, Category]]:
    """Run classic DBSCAN over ``points`` using ``index`` for neighbourhoods.

    Executes exactly one range search per point. Border points are assigned
    to the first cluster whose expansion reaches them (the classic
    order-dependent rule; see DESIGN.md §3.4 for the equivalence contract).

    Returns:
        ``(labels, categories)`` where labels maps non-noise pids to cluster
        ids numbered from 0 in discovery order.
    """
    eps = params.eps
    tau = params.tau
    labels: dict[int, int] = {}
    categories: dict[int, Category] = {}
    visited: set[int] = set()
    next_cid = 0

    for pid, coords in points.items():
        if pid in visited:
            continue
        visited.add(pid)
        neighbours = index.ball(coords, eps)
        if len(neighbours) < tau:
            categories[pid] = Category.NOISE  # may be reclaimed as a border
            continue
        cid = next_cid
        next_cid += 1
        categories[pid] = Category.CORE
        labels[pid] = cid
        queue = deque(qid for qid, _ in neighbours if qid != pid)
        while queue:
            qid = queue.popleft()
            if qid in visited:
                if categories.get(qid) is Category.NOISE:
                    # Noise seen earlier turns out to be density-reachable.
                    categories[qid] = Category.BORDER
                    labels[qid] = cid
                continue
            visited.add(qid)
            labels[qid] = cid
            q_neighbours = index.ball(points[qid], eps)
            if len(q_neighbours) >= tau:
                categories[qid] = Category.CORE
                # Visited points must still be enqueued: noise seen earlier is
                # reclaimed as border at dequeue time.
                queue.extend(x for x, _ in q_neighbours if x != qid)
            else:
                categories[qid] = Category.BORDER
    return labels, categories


class SlidingDBSCAN:
    """Recompute-from-scratch DBSCAN over a sliding window.

    The index is maintained incrementally across strides (matching the
    paper's setup, where index maintenance is not what distinguishes the
    methods), but every :meth:`advance` runs a full reclustering pass.

    Args:
        eps, tau: DBSCAN thresholds.
        index: injected spatial substrate — a registry name, a ready
            :class:`~repro.index.base.NeighborIndex`, or a factory; defaults
            to the R-tree.
        index_factory: deprecated alias for ``index``.
    """

    name = "DBSCAN"

    def __init__(
        self,
        eps: float,
        tau: int,
        *,
        index: str | NeighborIndex | Callable[[], NeighborIndex] | None = None,
        index_factory: Callable[[], NeighborIndex] | None = None,
    ) -> None:
        self.params = ClusteringParams(
            eps, tau, index=index if isinstance(index, str) else None
        )
        self.index = resolve_index(
            index, index_factory, eps=eps, owner="SlidingDBSCAN"
        )
        self._points: dict[int, Coords] = {}
        self._labels: dict[int, int] = {}
        self._categories: dict[int, Category] = {}

    @property
    def stats(self):
        return self.index.stats

    def advance(
        self,
        delta_in: Sequence[StreamPoint],
        delta_out: Sequence[StreamPoint] = (),
    ) -> StrideSummary:
        """Apply the stride's deltas and recluster the whole window."""
        for sp in delta_out:
            if sp.pid not in self._points:
                raise StreamOrderError(f"cannot delete {sp.pid}: not in the window")
            del self._points[sp.pid]
            self.index.delete(sp.pid)
        for sp in delta_in:
            if sp.pid in self._points:
                raise StreamOrderError(
                    f"cannot insert {sp.pid}: id already in window"
                )
            coords = tuple(sp.coords)
            self._points[sp.pid] = coords
            self.index.insert(sp.pid, coords)
        self._labels, self._categories = dbscan_labels(
            self.index, self._points, self.params
        )
        return StrideSummary(
            num_inserted=len(delta_in), num_deleted=len(delta_out)
        )

    def snapshot(self) -> Clustering:
        return Clustering(self._labels, self._categories)

    def labels(self) -> dict[int, int]:
        return dict(self._labels)

    def __len__(self) -> int:
        return len(self._points)
