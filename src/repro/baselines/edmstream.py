"""EDMStream (Gong, Zhang, Yu — VLDB 2017) — density-mountain clustering.

EDMStream summarises the stream into *cluster-cells* (a seed point plus a
faded density counter) and organises the cells into a dependency tree a la
density peaks (Rodriguez & Laio): every cell depends on its nearest cell of
higher density. Cutting dependency edges longer than a separation threshold
yields the clusters; cells with too little density are outliers.

Insertions are cheap (absorb into the nearest cell within radius, or spawn a
new cell); deletions are not supported — old data fades away — so the paper
measures insertion latency only. The dependency tree is re-derived lazily at
snapshot time from the current faded densities, which keeps per-insert work
minimal while reproducing the published clustering semantics.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.common.config import ClusteringParams
from repro.common.points import StreamPoint
from repro.common.snapshot import Category, Clustering
from repro.core.events import StrideSummary
from repro.index.grid import GridIndex

Coords = tuple[float, ...]


class _Cell:
    __slots__ = ("cell_id", "seed", "density", "last_update")

    def __init__(self, cell_id: int, seed: Coords, now: float) -> None:
        self.cell_id = cell_id
        self.seed = seed
        self.density = 1.0
        self.last_update = now


class EDMStream:
    """Cluster-cell stream clusterer over a density mountain.

    Args:
        radius: cell radius r; a point is absorbed by a cell whose seed lies
            within r.
        dim: dimensionality of the stream.
        fade: decay rate lambda (densities fade as ``2**(-fade * dt)``).
        separation: dependency-distance threshold; a cell whose nearest
            higher-density cell is farther than this starts its own cluster.
        min_density: cells with faded density below this are outliers.
    """

    name = "EDMSTREAM"

    def __init__(
        self,
        radius: float,
        dim: int,
        *,
        fade: float = 0.001,
        separation: float | None = None,
        min_density: float = 2.0,
    ) -> None:
        self.params = ClusteringParams(radius, 1)
        self.radius = radius
        self.dim = dim
        self.fade = fade
        self.separation = separation if separation is not None else 4.0 * radius
        self.min_density = min_density
        self._cells: dict[int, _Cell] = {}
        self._grid = GridIndex(eps=radius, dim=dim)
        self._next_cell = 0
        self._clock = 0.0
        self._window: dict[int, Coords] = {}  # for labelling snapshots only

    @property
    def stats(self):
        return self._grid.stats

    def advance(
        self,
        delta_in: Sequence[StreamPoint],
        delta_out: Sequence[StreamPoint] = (),
    ) -> StrideSummary:
        """Absorb arrivals; departures only update the labelling window."""
        for sp in delta_out:
            self._window.pop(sp.pid, None)
        for sp in delta_in:
            coords = tuple(sp.coords)
            self._window[sp.pid] = coords
            self._insert(coords)
        return StrideSummary(
            num_inserted=len(delta_in), num_deleted=len(delta_out)
        )

    def _insert(self, x: Coords) -> None:
        self._clock += 1.0
        best = None
        best_d = None
        for cell_id, seed in self._grid.ball(x, self.radius):
            d = _dist_sq(x, seed)
            if best_d is None or d < best_d:
                best, best_d = cell_id, d
        if best is None:
            cell = _Cell(self._next_cell, x, self._clock)
            self._next_cell += 1
            self._cells[cell.cell_id] = cell
            self._grid.insert(cell.cell_id, x)
        else:
            cell = self._cells[best]
            dt = self._clock - cell.last_update
            cell.density = cell.density * (2.0 ** (-self.fade * dt)) + 1.0
            cell.last_update = self._clock

    def _faded_density(self, cell: _Cell) -> float:
        dt = self._clock - cell.last_update
        return cell.density * (2.0 ** (-self.fade * dt))

    def dependency_tree(self) -> dict[int, int]:
        """Cell id -> cluster id via the density-mountain dependency tree.

        Only active cells (faded density >= min_density) participate; every
        active cell depends on its nearest strictly-denser active cell, and
        an over-long dependency (or none) makes the cell a cluster root.
        """
        active = [
            (cell_id, self._faded_density(cell), cell.seed)
            for cell_id, cell in self._cells.items()
            if self._faded_density(cell) >= self.min_density
        ]
        # Descending density; ties broken by id for determinism.
        active.sort(key=lambda item: (-item[1], item[0]))
        sep_sq = self.separation * self.separation
        assignment: dict[int, int] = {}
        for rank, (cell_id, _, seed) in enumerate(active):
            parent = None
            parent_d = None
            for other_id, _, other_seed in active[:rank]:
                d = _dist_sq(seed, other_seed)
                if parent_d is None or d < parent_d:
                    parent, parent_d = other_id, d
            if parent is None or parent_d > sep_sq:
                assignment[cell_id] = cell_id  # a density peak: new cluster
            else:
                assignment[cell_id] = assignment[parent]
        return assignment

    def snapshot(self) -> Clustering:
        """Label current window points through their covering cluster-cell."""
        assignment = self.dependency_tree()
        labels: dict[int, int] = {}
        categories: dict[int, Category] = {}
        for pid, coords in self._window.items():
            best = None
            best_d = None
            for cell_id, seed in self._grid.ball(coords, self.radius):
                if cell_id not in assignment:
                    continue
                d = _dist_sq(coords, seed)
                if best_d is None or d < best_d:
                    best, best_d = cell_id, d
            if best is None:
                categories[pid] = Category.NOISE
            else:
                categories[pid] = Category.CORE
                labels[pid] = assignment[best]
        return Clustering(labels, categories)

    def labels(self) -> dict[int, int]:
        return dict(self.snapshot().labels)

    def num_cells(self) -> int:
        return len(self._cells)

    def __len__(self) -> int:
        return len(self._window)


def _dist_sq(a: Coords, b: Coords) -> float:
    total = 0.0
    for xa, xb in zip(a, b):
        diff = xa - xb
        total += diff * diff
    return total
