"""Dynamic rho-double-approximate DBSCAN (Gan & Tao, SIGMOD 2015/2017).

rho-approximate DBSCAN relaxes cluster connectivity: two core points may be
considered connected when their distance is at most ``(1 + rho) * eps``
(points within eps must connect; points beyond (1+rho)eps must not; in
between is the implementation's choice). The grid formulation:

- space is tiled into cells of side ``eps / sqrt(d)`` so all points sharing a
  cell are mutually within eps;
- core status is tracked per point (one grid range search per inserted or
  deleted point);
- two *core cells* are connected when their core points contain a pair within
  the approximate threshold. The test quantises each cell's core points to a
  sub-grid of side ``rho * eps / (2 sqrt(d))`` and compares occupied
  sub-cells: a large rho collapses many points into few sub-cells (fast), a
  small rho degenerates to all-pairs comparisons — the (1/rho)-driven cost
  behind Schubert et al.'s critique and the paper's Figure 11.

Faithful to the *dynamic* algorithm of the 2017 paper, updates are processed
**one point at a time** and the clustering is valid after every update:

- an insertion can only add connectivity, so new/changed core cells union
  into the existing component structure incrementally (cheap);
- a deletion that removes or demotes core points may *split* components, and
  a union-find cannot un-merge — the component structure over the affected
  cells must be re-verified. This is the density-based slow-deletion problem
  resurfacing at the cell level, and it is what makes the method expensive
  under sliding windows with many evictions.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Sequence

from repro.common.config import ClusteringParams
from repro.common.errors import StreamOrderError
from repro.common.points import StreamPoint
from repro.common.snapshot import Category, Clustering
from repro.core.events import StrideSummary
from repro.index.grid import GridIndex

Coords = tuple[float, ...]
CellKey = tuple[int, ...]


class RhoDoubleApproxDBSCAN:
    """Dynamic grid-based rho-approximate DBSCAN over a sliding window.

    Args:
        eps, tau: DBSCAN thresholds (neighbourhood includes the point).
        dim: dimensionality.
        rho: approximation parameter; the paper's Figures 9-11 use 0.1
            ("low accuracy") and 0.001 ("high accuracy").
    """

    name = "rho2-DBSCAN"

    def __init__(self, eps: float, tau: int, dim: int, rho: float = 0.001) -> None:
        if rho <= 0:
            raise ValueError(f"rho must be positive, got {rho}")
        self.params = ClusteringParams(eps, tau)
        self.dim = dim
        self.rho = rho
        self._grid = GridIndex(eps=eps, dim=dim)
        self._counts: dict[int, int] = {}  # pid -> n_eps (self included)
        self._sub_side = rho * eps / (2.0 * math.sqrt(dim))
        self._connect_stencil = self._build_connect_stencil()
        # Core-cell component structure, valid after every update. The
        # adjacency map lets deletions verify locally whether any edge was
        # actually lost before paying for a component re-verification.
        self._core_cells: set[CellKey] = set()
        self._parent: dict[CellKey, CellKey] = {}
        self._edges: dict[CellKey, set[CellKey]] = {}
        # Per-cell core summaries (core coords + their sub-grid projection),
        # invalidated by a version counter whenever a cell's core set changes.
        self._versions: dict[CellKey, int] = {}
        self._summaries: dict[CellKey, tuple[int, list[Coords], set[CellKey]]] = {}

    @property
    def stats(self):
        return self._grid.stats

    def _build_connect_stencil(self) -> list[CellKey]:
        """Cell offsets that can host a pair within (1+rho) * eps."""
        eps = self.params.eps
        side = self._grid.side
        threshold = (1.0 + self.rho) * eps
        reach = math.ceil(threshold / side) + 1
        offsets = []
        for offset in itertools.product(range(-reach, reach + 1), repeat=self.dim):
            if all(o == 0 for o in offset):
                continue
            min_dist_sq = 0.0
            for o in offset:
                gap = (abs(o) - 1) * side
                if gap > 0:
                    min_dist_sq += gap * gap
            if min_dist_sq <= threshold * threshold:
                offsets.append(offset)
        return offsets

    # --------------------------------------------------------------- updates

    def advance(
        self,
        delta_in: Sequence[StreamPoint],
        delta_out: Sequence[StreamPoint] = (),
    ) -> StrideSummary:
        """Apply the stride one point at a time (the dynamic contract)."""
        for sp in delta_out:
            self._delete(sp)
        for sp in delta_in:
            self._insert(sp)
        return StrideSummary(
            num_inserted=len(delta_in), num_deleted=len(delta_out)
        )

    def _delete(self, sp: StreamPoint) -> None:
        counts = self._counts
        if sp.pid not in counts:
            raise StreamOrderError(f"cannot delete {sp.pid}: not in window")
        eps = self.params.eps
        tau = self.params.tau
        coords = self._grid.coords_of(sp.pid)
        shrunk: set[CellKey] = set()
        if counts[sp.pid] >= tau:
            shrunk.add(self._grid.cell_of(coords))
        for qid, qcoords in self._grid.ball(coords, eps):
            if qid == sp.pid:
                continue
            was_core = counts[qid] >= tau
            counts[qid] -= 1
            if was_core and counts[qid] < tau:
                shrunk.add(self._grid.cell_of(qcoords))
        del counts[sp.pid]
        self._grid.delete(sp.pid)
        if not shrunk:
            return
        self._bump(shrunk)
        # Core mass was lost. A union-find cannot split, so check locally
        # whether the cell graph actually changed: if every shrunk cell is
        # still a core cell and kept all its edges, components are intact.
        affected_roots: set[CellKey] = set()
        for cell in shrunk:
            if cell not in self._core_cells:
                continue
            if not self._cell_cores(cell):
                affected_roots.add(self._find(cell))
                self._drop_cell(cell)
                continue
            old_edges = self._edges.get(cell, set())
            new_edges = self._compute_edges(cell)
            if new_edges != old_edges:
                affected_roots.add(self._find(cell))
                for other in old_edges - new_edges:
                    self._edges[other].discard(cell)
                for other in new_edges - old_edges:
                    self._edges.setdefault(other, set()).add(cell)
                self._edges[cell] = new_edges
        if affected_roots:
            # A vertex or edge vanished: re-verify only the components that
            # contained it (splits cannot leak into other components).
            self._reverify_components(affected_roots)

    def _insert(self, sp: StreamPoint) -> None:
        counts = self._counts
        if sp.pid in counts:
            raise StreamOrderError(f"cannot insert {sp.pid}: already present")
        eps = self.params.eps
        tau = self.params.tau
        coords = tuple(sp.coords)
        self._grid.insert(sp.pid, coords)
        n = 1
        grown: set[CellKey] = set()
        for qid, qcoords in self._grid.ball(coords, eps):
            if qid == sp.pid:
                continue
            n += 1
            was_core = counts[qid] >= tau
            counts[qid] += 1
            if not was_core and counts[qid] >= tau:
                grown.add(self._grid.cell_of(qcoords))
        counts[sp.pid] = n
        if n >= tau:
            grown.add(self._grid.cell_of(coords))
        self._bump(grown)
        for cell in grown:
            # Insertions only add connectivity: union the affected cells'
            # fresh edges into the standing component structure.
            self._core_cells.add(cell)
            if cell not in self._parent:
                self._parent[cell] = cell
            new_edges = self._compute_edges(cell)
            self._edges[cell] = new_edges
            for other in new_edges:
                self._edges.setdefault(other, set()).add(cell)
                self._union(cell, other)

    # ---------------------------------------------------------- cell algebra

    def _bump(self, cells) -> None:
        """Record that these cells' core populations changed."""
        for cell in cells:
            self._versions[cell] = self._versions.get(cell, 0) + 1

    def _summary(self, key: CellKey) -> tuple[list[Coords], set[CellKey]]:
        """Cached (core coords, occupied sub-cells) for one cell."""
        version = self._versions.get(key, 0)
        cached = self._summaries.get(key)
        if cached is not None and cached[0] == version:
            return cached[1], cached[2]
        tau = self.params.tau
        counts = self._counts
        cores = [
            coords
            for pid, coords in self._grid.cell_points(key).items()
            if counts[pid] >= tau
        ]
        sub = self._sub_side
        floor = math.floor
        subs = {tuple(int(floor(x / sub)) for x in c) for c in cores}
        self._summaries[key] = (version, cores, subs)
        return cores, subs

    def _cell_cores(self, key: CellKey) -> list[Coords]:
        return self._summary(key)[0]

    def _find(self, key: CellKey) -> CellKey:
        parent = self._parent
        root = key
        while parent[root] != root:
            root = parent[root]
        while parent[key] != root:
            parent[key], key = root, parent[key]
        return root

    def _union(self, a: CellKey, b: CellKey) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            self._parent[rb] = ra

    def _compute_edges(self, cell: CellKey) -> set[CellKey]:
        """Core cells within the connection stencil actually connected."""
        cores = self._cell_cores(cell)
        edges: set[CellKey] = set()
        if not cores:
            return edges
        core_cells = self._core_cells
        for offset in self._connect_stencil:
            other = tuple(k + o for k, o in zip(cell, offset))
            if other not in core_cells or other == cell:
                continue
            if self._cells_connected(cell, other):
                edges.add(other)
        return edges

    def _drop_cell(self, cell: CellKey) -> None:
        """Remove a no-longer-core cell from the graph bookkeeping."""
        self._core_cells.discard(cell)
        for other in self._edges.pop(cell, set()):
            self._edges[other].discard(cell)

    def _reverify_components(self, roots: set[CellKey]) -> None:
        """Recompute connectivity of the components owned by ``roots``.

        Other components are untouched: removing vertices or edges inside a
        component can split that component but never affect another.
        """
        affected = [
            key for key in self._parent if self._find(key) in roots
        ]
        for key in affected:
            if key in self._core_cells:
                self._parent[key] = key
            else:
                del self._parent[key]
        for key in affected:
            if key not in self._core_cells:
                continue
            for other in self._edges.get(key, ()):
                self._union(key, other)

    def _cells_connected(self, a: CellKey, b: CellKey) -> bool:
        """Approximate bichromatic closest-pair test between two core cells.

        Fast accept first: a handful of real point-pair distances (dense
        adjacent cells almost always connect on the first sample). Then the
        sub-grid test: each side's cores quantised to sub-cells of side
        ``rho*eps/(2 sqrt(d))`` — a large rho collapses whole cells into a
        few sub-cells, a small rho keeps one sub-cell per point, which is
        where the (1/rho) cost of high accuracy lives.
        """
        eps = self.params.eps
        cores_a, subs_a = self._summary(a)
        cores_b, subs_b = self._summary(b)
        dist = math.dist
        for pa in cores_a[:3]:
            for pb in cores_b[:3]:
                if dist(pa, pb) <= eps:
                    return True
        sub = self._sub_side
        eps_sq = eps * eps
        for sa in subs_a:
            for sb in subs_b:
                dist_sq = 0.0
                for ia, ib in zip(sa, sb):
                    gap = (abs(ia - ib) - 1) * sub
                    if gap > 0:
                        dist_sq += gap * gap
                if dist_sq <= eps_sq:
                    return True
        return False

    def _rebuild_components(self) -> None:
        """Rebuild the whole core-cell graph from scratch.

        Not used on the hot path (deletions re-verify locally); kept as the
        reference implementation the incremental bookkeeping is tested
        against.
        """
        core_cells: set[CellKey] = set()
        for key in self._grid.occupied_cells():
            if self._cell_cores(key):
                core_cells.add(key)
        self._core_cells = core_cells
        self._parent = {key: key for key in core_cells}
        self._edges = {}
        for key in core_cells:
            edges = self._compute_edges(key)
            self._edges[key] = edges
            for other in edges:
                self._union(key, other)

    # ------------------------------------------------------------- snapshots

    def snapshot(self) -> Clustering:
        """Current labels: cores via cell components, borders via one search."""
        eps = self.params.eps
        tau = self.params.tau
        counts = self._counts
        cluster_ids: dict[CellKey, int] = {}
        labels: dict[int, int] = {}
        categories: dict[int, Category] = {}

        def cid_of(key: CellKey) -> int:
            root = self._find(key)
            if root not in cluster_ids:
                cluster_ids[root] = len(cluster_ids)
            return cluster_ids[root]

        for pid, n in counts.items():
            if n >= tau:
                coords = self._grid.coords_of(pid)
                categories[pid] = Category.CORE
                labels[pid] = cid_of(self._grid.cell_of(coords))
        for pid, n in counts.items():
            if n >= tau:
                continue
            coords = self._grid.coords_of(pid)
            assigned = False
            for qid, qcoords in self._grid.ball(coords, eps):
                if qid != pid and counts[qid] >= tau:
                    categories[pid] = Category.BORDER
                    labels[pid] = cid_of(self._grid.cell_of(qcoords))
                    assigned = True
                    break
            if not assigned:
                categories[pid] = Category.NOISE
        return Clustering(labels, categories)

    def labels(self) -> dict[int, int]:
        return dict(self.snapshot().labels)

    def __len__(self) -> int:
        return len(self._counts)
