"""Plain-text tables mirroring the paper's figures, plus result persistence."""

from __future__ import annotations

import os
from collections.abc import Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", "benchmarks", "results")


class Table:
    """A simple aligned text table with a caption."""

    def __init__(self, caption: str, headers: Sequence[str]) -> None:
        self.caption = caption
        self.headers = list(headers)
        self.rows: list[list[str]] = []

    def add(self, *cells) -> None:
        """Append one row; cells are formatted with sensible defaults."""
        row = []
        for cell in cells:
            if isinstance(cell, float):
                row.append(f"{cell:.4g}")
            else:
                row.append(str(cell))
        self.rows.append(row)

    def to_text(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.caption]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()


def write_result(name: str, text: str, echo: bool = True) -> str:
    """Persist a bench result under ``benchmarks/results/<name>.txt``.

    Returns the path written. Also echoes to stdout (pytest shows it with
    ``-s``; the file is the durable record either way).
    """
    directory = os.path.abspath(RESULTS_DIR)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")
    if echo:
        print(f"\n{text}\n[written to {path}]")
    return path
