"""Measurement helpers shared by every figure bench.

The paper measures "the average elapsed time taken to update clusters when
the sliding window advanced by a single stride", at steady state. To make
that affordable across a large sweep, each measurement:

1. *prefills* the clusterer with one whole window (a single batch — every
   method here produces the identical state it would reach stride-by-stride,
   except EXTRA-N which needs arrival slides and exposes ``prefill``);
2. replays ``n_measured`` steady-state strides, timing each ``advance``.

Counters come from the observability layer: every method exposing ``stats``
has its :class:`~repro.index.stats.IndexStats` delta taken over the measured
strides, and a method that supports tracing (DISC's ``tracer`` attribute)
additionally yields the per-stride algorithm counters the paper's Figure 7
(range searches per stride) and Figure 8 (MS-BFS / epoch-probing activity)
are read from — one source of truth for the figures and the CLI.
"""

from __future__ import annotations

import time
from statistics import mean

from repro.common.config import WindowSpec
from repro.common.points import StreamPoint
from repro.metrics.ari import adjusted_rand_index

Slide = tuple[list[StreamPoint], list[StreamPoint]]


def steady_slides(
    points: list[StreamPoint], spec: WindowSpec, n_measured: int
) -> tuple[list[StreamPoint], list[Slide]]:
    """Split a stream into (fill window, measured steady-state slides).

    Requires ``len(points) >= spec.window + n_measured * spec.stride``.
    """
    needed = spec.window + n_measured * spec.stride
    if len(points) < needed:
        raise ValueError(
            f"stream too short: need {needed} points, have {len(points)}"
        )
    window = points[: spec.window]
    slides = []
    for k in range(n_measured):
        lo = spec.window + k * spec.stride
        delta_in = points[lo : lo + spec.stride]
        delta_out = points[lo - spec.window : lo - spec.window + spec.stride]
        slides.append((delta_in, delta_out))
    return window, slides


def default_measured_strides(spec: WindowSpec, cap: int = 12) -> int:
    """How many steady strides to average: more for tiny strides, capped."""
    return max(3, min(cap, spec.strides_per_window // 2))


def prefill(method, window_points: list[StreamPoint], spec: WindowSpec) -> None:
    """Load one full window into ``method`` before measurement starts.

    EXTRA-N needs per-slide arrival bookkeeping and exposes ``prefill``;
    everything else takes the window as one batch (identical end state).
    """
    custom = getattr(method, "prefill", None)
    if custom is not None:
        batches = [
            window_points[i : i + spec.stride]
            for i in range(0, len(window_points), spec.stride)
        ]
        custom(batches)
    else:
        method.advance(window_points, ())


def measure_method(
    method,
    points: list[StreamPoint],
    spec: WindowSpec,
    n_measured: int | None = None,
) -> dict:
    """Prefill, then measure per-stride latency and counters at steady state.

    Returns a dict with:

    - ``mean_stride_s`` / ``p50_stride_s`` / ``p95_stride_s`` — latency over
      the measured strides (nearest-rank percentiles);
    - ``per_point_s`` — mean latency divided by points changed per stride;
    - ``range_searches`` — average searches per measured stride (0 for
      methods without ``stats``), the Figure 7 quantity;
    - ``index`` — the full :class:`~repro.index.stats.IndexStats` delta over
      the measured strides, as a dict;
    - ``counters`` — per-method algorithm totals (DISC only: MS-BFS
      expansions, Theorem-1 skips, ... — the Figure 8 quantities); empty
      for methods that do not support tracing;
    - ``n_measured``.

    Latency is still taken around the plain ``advance`` call: for traceable
    methods the tracer is attached only for the counter collection and the
    timing numbers come from the same wall clock as every baseline, so
    cross-method comparisons stay apples-to-apples.
    """
    if n_measured is None:
        n_measured = default_measured_strides(spec)
    window_points, slides = steady_slides(points, spec, n_measured)
    prefill(method, window_points, spec)
    stats = getattr(method, "stats", None)
    stats_before = stats.snapshot() if stats is not None else None
    traceable = hasattr(method, "tracer")
    tracer = None
    saved_tracer = None
    if traceable:
        from repro.observability import Tracer

        saved_tracer = method.tracer
        tracer = Tracer()
        method.tracer = tracer
    try:
        elapsed = []
        for delta_in, delta_out in slides:
            start = time.perf_counter()
            method.advance(delta_in, delta_out)
            elapsed.append(time.perf_counter() - start)
    finally:
        if traceable:
            method.tracer = saved_tracer
    index_delta = (
        (stats.snapshot() - stats_before).as_dict()
        if stats is not None
        else {}
    )
    searches = index_delta.get("range_searches", 0)
    mean_stride = mean(elapsed)

    from repro.observability import percentile

    return {
        "mean_stride_s": mean_stride,
        "p50_stride_s": percentile(elapsed, 50),
        "p95_stride_s": percentile(elapsed, 95),
        "per_point_s": mean_stride / max(1, spec.stride),
        "range_searches": searches / n_measured,
        "index": index_delta,
        "counters": dict(tracer.aggregate.counters) if tracer is not None else {},
        "n_measured": n_measured,
    }


def window_ari(method, truth: dict[int, int], window_pids: list[int]) -> float:
    """ARI of ``method``'s current snapshot against ground-truth labels."""
    snapshot = method.snapshot()
    predicted = snapshot.label_array(window_pids)
    reference = [truth[pid] for pid in window_pids]
    return adjusted_rand_index(reference, predicted)
