"""Benchmark harness regenerating the paper's tables and figures.

The modules here are library code; the runnable benches live in
``benchmarks/`` (one per figure/table) and are executed with
``pytest benchmarks/ --benchmark-only``. Result tables are written to
``benchmarks/results/`` and summarised in EXPERIMENTS.md.
"""

from repro.bench.harness import (
    measure_method,
    prefill,
    steady_slides,
    window_ari,
)
from repro.bench.reporting import Table, write_result

__all__ = [
    "Table",
    "measure_method",
    "prefill",
    "steady_slides",
    "window_ari",
    "write_result",
]
