"""Terminal visualization of clusterings (2D projections).

A dependency-free stand-in for the paper's Figure 12 scatter plots: clusters
are rendered into a character grid, each cluster with its own glyph, noise as
dots. Higher-dimensional data is projected onto two chosen axes.

Example:
    >>> from repro.viz import render_clustering
    >>> print(render_clustering(snapshot, coords, width=60))   # doctest: +SKIP
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.common.snapshot import Category, Clustering

Coords = tuple[float, ...]

# Glyph palette: distinct, terminal-safe; reused cyclically for many clusters.
GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
NOISE_GLYPH = "."
EMPTY_GLYPH = " "


def render_clustering(
    clustering: Clustering,
    coords: Mapping[int, Coords],
    *,
    width: int = 72,
    height: int = 24,
    axes: tuple[int, int] = (0, 1),
    legend: bool = True,
) -> str:
    """Render a clustering as an ASCII scatter plot.

    Args:
        clustering: the snapshot to draw.
        coords: pid -> coordinates for every point in the snapshot.
        width, height: character-grid size.
        axes: which two coordinate dimensions to project onto (x, y).
        legend: append a cluster-size legend below the plot.

    Returns:
        A multi-line string. Cells holding points of several clusters show
        the glyph of the most frequent one; any noise sharing a cell with
        cluster points is hidden beneath them.
    """
    pids = [pid for pid in clustering.categories if pid in coords]
    if not pids:
        return "(empty window)"
    ax, ay = axes
    xs = [coords[pid][ax] for pid in pids]
    ys = [coords[pid][ay] for pid in pids]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    # Stable glyph assignment: biggest clusters get the earliest glyphs.
    sizes = sorted(
        clustering.clusters().items(), key=lambda kv: (-len(kv[1]), kv[0])
    )
    glyph_of = {
        cid: GLYPHS[i % len(GLYPHS)] for i, (cid, _) in enumerate(sizes)
    }

    # cell -> {glyph: count}
    from collections import Counter, defaultdict

    cells: dict[tuple[int, int], Counter] = defaultdict(Counter)
    for pid in pids:
        col = int((coords[pid][ax] - x_lo) / x_span * (width - 1))
        row = int((coords[pid][ay] - y_lo) / y_span * (height - 1))
        category = clustering.category_of(pid)
        if category is Category.NOISE:
            glyph = NOISE_GLYPH
        else:
            glyph = glyph_of.get(clustering.label_of(pid), "?")
        cells[(row, col)][glyph] += 1

    lines = []
    for row in range(height - 1, -1, -1):
        chars = []
        for col in range(width):
            counter = cells.get((row, col))
            if not counter:
                chars.append(EMPTY_GLYPH)
                continue
            # Cluster glyphs win over noise dots in shared cells.
            best = max(
                counter.items(),
                key=lambda kv: (kv[0] != NOISE_GLYPH, kv[1]),
            )[0]
            chars.append(best)
        lines.append("".join(chars))

    if legend:
        lines.append("")
        noise = clustering.count(Category.NOISE)
        parts = [
            f"{glyph_of[cid]}={len(members)}"
            for cid, members in sizes[: len(GLYPHS)]
        ]
        lines.append(
            f"clusters: {', '.join(parts) if parts else 'none'}"
            + (f"   noise(.)={noise}" if noise else "")
        )
    return "\n".join(lines)


def render_comparison(
    snapshots: Mapping[str, Clustering],
    coords: Mapping[int, Coords],
    *,
    width: int = 60,
    height: int = 18,
    axes: tuple[int, int] = (0, 1),
) -> str:
    """Render several methods' clusterings of the same window, stacked."""
    blocks = []
    for name, clustering in snapshots.items():
        blocks.append(f"--- {name} ({clustering.num_clusters} clusters) ---")
        blocks.append(
            render_clustering(
                clustering, coords, width=width, height=height, axes=axes,
                legend=False,
            )
        )
    return "\n".join(blocks)
