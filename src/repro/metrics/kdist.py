"""K-distance-graph parameter estimation (Ester et al. 1996, Sec. 4.2).

The paper sets its thresholds "based on a K-distance graph [13], [19]": sort
every point's distance to its k-th nearest neighbour in descending order and
look for the valley/knee — points left of the knee are cluster points, right
of it noise. This module computes the k-distance profile and suggests an eps
at the knee, plus the paper's DTG rule of thumb (tau = average number of
points within eps).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.common.errors import ConfigurationError
from repro.common.points import StreamPoint


def k_distances(points: Sequence[StreamPoint], k: int) -> list[float]:
    """Each point's distance to its k-th nearest neighbour, sorted descending.

    Brute force (O(n^2)); intended for calibration on a window-sized sample,
    not for the streaming hot path.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if len(points) <= k:
        raise ConfigurationError(
            f"need more than k={k} points, got {len(points)}"
        )
    coords = [p.coords for p in points]
    dist = math.dist
    result = []
    for i, center in enumerate(coords):
        distances = sorted(
            dist(center, other) for j, other in enumerate(coords) if j != i
        )
        result.append(distances[k - 1])
    result.sort(reverse=True)
    return result


def suggest_eps(points: Sequence[StreamPoint], k: int) -> float:
    """Eps at the knee of the k-distance graph.

    The knee is located as the point of maximum distance to the straight
    line joining the first and last profile values — the standard discrete
    "elbow" criterion.
    """
    profile = k_distances(points, k)
    n = len(profile)
    first, last = profile[0], profile[-1]
    if first == last:
        return first
    # Distance from each profile point to the chord, up to a common factor.
    best_idx = 0
    best_score = -1.0
    dx = n - 1
    dy = last - first
    norm = math.hypot(dx, dy)
    for i, value in enumerate(profile):
        score = abs(dy * i - dx * (value - first)) / norm
        if score > best_score:
            best_score = score
            best_idx = i
    return profile[best_idx]


def suggest_tau(
    points: Sequence[StreamPoint], eps: float, sample_every: int = 1
) -> int:
    """The paper's DTG rule: tau = average number of points within eps.

    Args:
        points: a window-sized sample.
        eps: the distance threshold to calibrate against.
        sample_every: probe every n-th point to cut the quadratic cost.
    """
    if eps <= 0:
        raise ConfigurationError(f"eps must be positive, got {eps}")
    coords = [p.coords for p in points]
    probes = coords[::sample_every] or coords
    dist = math.dist
    total = 0
    for center in probes:
        total += sum(1 for other in coords if dist(center, other) <= eps)
    return max(1, round(total / len(probes)))
