"""Clustering quality metrics and exactness comparisons."""

from repro.metrics.ari import adjusted_rand_index
from repro.metrics.compare import EquivalenceError, assert_equivalent, equivalent
from repro.metrics.kdist import k_distances, suggest_eps, suggest_tau

__all__ = [
    "EquivalenceError",
    "adjusted_rand_index",
    "assert_equivalent",
    "equivalent",
    "k_distances",
    "suggest_eps",
    "suggest_tau",
]
