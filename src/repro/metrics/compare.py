"""Exactness comparison between clusterings (DESIGN.md §3.4).

DBSCAN's border assignment is order-dependent, so "identical results" is
checked as the strongest order-independent contract:

1. the two clusterings agree on every point's *category* (core/border/noise);
2. the partitions of **core** points are identical up to cluster renaming;
3. every border point is assigned to a cluster that contains at least one
   core within epsilon of it, in *both* clusterings, and the two assigned
   clusters correspond whenever the border has cores of only one cluster
   nearby.

Condition 3's escape hatch only applies to borders sitting within epsilon of
cores from two different clusters — the one genuinely ambiguous case.
"""

from __future__ import annotations

from repro.common.config import ClusteringParams
from repro.common.distance import within_eps
from repro.common.errors import ReproError
from repro.common.snapshot import Category, Clustering

Coords = tuple[float, ...]


class EquivalenceError(ReproError):
    """Raised by :func:`assert_equivalent` with a human-readable reason."""


def assert_equivalent(
    a: Clustering,
    b: Clustering,
    points: dict[int, Coords],
    params: ClusteringParams,
) -> None:
    """Raise :class:`EquivalenceError` unless ``a`` and ``b`` are equivalent.

    Args:
        a, b: the clusterings to compare (e.g. DISC vs DBSCAN).
        points: coordinates of every point in the window, used to validate
            border assignments.
        params: the thresholds both clusterings were computed with.
    """
    if set(a.categories) != set(b.categories):
        only_a = set(a.categories) - set(b.categories)
        only_b = set(b.categories) - set(a.categories)
        raise EquivalenceError(
            f"point sets differ: only-in-a={sorted(only_a)[:5]}, "
            f"only-in-b={sorted(only_b)[:5]}"
        )

    for pid, cat_a in a.categories.items():
        cat_b = b.categories[pid]
        if cat_a is not cat_b:
            raise EquivalenceError(
                f"category mismatch for {pid}: {cat_a.value} vs {cat_b.value}"
            )

    mapping = _match_core_partitions(a, b)

    # Border validity and correspondence.
    cores_a = a.core_clusters()
    for pid, cat in a.categories.items():
        if cat is not Category.BORDER:
            continue
        cid_a = a.label_of(pid)
        cid_b = b.label_of(pid)
        nearby = _nearby_core_clusters(pid, a, points, params)
        if cid_a not in nearby:
            raise EquivalenceError(
                f"border {pid} assigned by a to cluster {cid_a} with no "
                f"adjacent core (nearby clusters: {sorted(nearby)})"
            )
        if mapping[cid_a] != cid_b and len(nearby) == 1:
            raise EquivalenceError(
                f"border {pid} unambiguously belongs to a-cluster {cid_a} "
                f"(= b-cluster {mapping[cid_a]}) but b assigned {cid_b}"
            )
        if mapping[cid_a] != cid_b:
            # Ambiguous border: b's choice must still be one of the clusters
            # with an adjacent core.
            valid_b = {mapping[c] for c in nearby}
            if cid_b not in valid_b:
                raise EquivalenceError(
                    f"border {pid} assigned by b to {cid_b}, not adjacent to "
                    f"any of its nearby clusters"
                )
    _ = cores_a  # partition equality already checked via the mapping


def _match_core_partitions(a: Clustering, b: Clustering) -> dict[int, int]:
    """Build the a-cluster -> b-cluster bijection over core points."""
    clusters_a = a.core_clusters()
    clusters_b = b.core_clusters()
    if len(clusters_a) != len(clusters_b):
        raise EquivalenceError(
            f"core cluster counts differ: {len(clusters_a)} vs {len(clusters_b)}"
        )
    members_to_b = {members: cid for cid, members in clusters_b.items()}
    mapping: dict[int, int] = {}
    for cid_a, members in clusters_a.items():
        cid_b = members_to_b.get(members)
        if cid_b is None:
            sample = sorted(members)[:5]
            raise EquivalenceError(
                f"a-cluster {cid_a} (cores {sample}...) has no matching "
                f"core set in b"
            )
        mapping[cid_a] = cid_b
    return mapping


def _nearby_core_clusters(
    pid: int,
    clustering: Clustering,
    points: dict[int, Coords],
    params: ClusteringParams,
) -> set[int]:
    """Clusters (by a-side id) having a core within eps of ``pid``."""
    coords = points[pid]
    nearby: set[int] = set()
    for qid, category in clustering.categories.items():
        if category is not Category.CORE or qid == pid:
            continue
        if within_eps(coords, points[qid], params.eps):
            nearby.add(clustering.label_of(qid))
    return nearby


def equivalent(
    a: Clustering,
    b: Clustering,
    points: dict[int, Coords],
    params: ClusteringParams,
) -> bool:
    """Boolean form of :func:`assert_equivalent`."""
    try:
        assert_equivalent(a, b, points, params)
    except EquivalenceError:
        return False
    return True
