"""Adjusted Rand Index (Hubert & Arabie 1985), implemented from scratch.

The paper's Figures 9 and 10 report ARI against ground-truth labels; noise
points are treated as ordinary singletonish labels exactly as produced by
the clusterers (label ``-1``), matching how stream-clustering papers
conventionally score DBSCAN-family output.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence


def _comb2(n: int) -> int:
    """n choose 2."""
    return n * (n - 1) // 2


def adjusted_rand_index(truth: Sequence[int], predicted: Sequence[int]) -> float:
    """ARI between two labelings of the same points.

    Args:
        truth: ground-truth label per point.
        predicted: predicted label per point (same order, same length).

    Returns:
        1.0 for identical partitions (up to renaming), ~0.0 for random
        agreement, negative for worse-than-random. Degenerate inputs where
        both partitions are single-cluster or all-singletons return 1.0 when
        they match and 0.0 otherwise, following the usual convention.
    """
    if len(truth) != len(predicted):
        raise ValueError(
            f"label sequences differ in length: {len(truth)} vs {len(predicted)}"
        )
    n = len(truth)
    if n == 0:
        return 1.0

    contingency: Counter[tuple[int, int]] = Counter(zip(truth, predicted))
    row_sums: Counter[int] = Counter(truth)
    col_sums: Counter[int] = Counter(predicted)

    sum_cells = sum(_comb2(c) for c in contingency.values())
    sum_rows = sum(_comb2(c) for c in row_sums.values())
    sum_cols = sum(_comb2(c) for c in col_sums.values())
    total_pairs = _comb2(n)

    if total_pairs == 0:
        return 1.0
    expected = sum_rows * sum_cols / total_pairs
    max_index = (sum_rows + sum_cols) / 2.0
    if max_index == expected:
        # Both partitions are trivial (all one cluster, or all singletons).
        return 1.0 if sum_rows == sum_cols == sum_cells else 0.0
    return (sum_cells - expected) / (max_index - expected)
