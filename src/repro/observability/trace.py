"""Per-stride trace records and the tracer that collects them.

The paper's evaluation is built on *internal* measurements: Figure 7 counts
range searches per stride, Figure 8 ablates MS-BFS and epoch-based probing.
:class:`StrideTrace` is the record both are read from — one per window
advance, carrying the phase split of Algorithm 1/2 (COLLECT, the ex-core
split checks, the neo-core merge checks, index maintenance), the algorithm
counters (reachability classes, Theorem-1 checks skipped, MS-BFS activity),
and the :class:`~repro.index.stats.IndexStats` delta of the stride.

Instrumentation is strictly opt-in: a :class:`~repro.core.disc.DISC` built
without a tracer passes ``trace=None`` down the call tree and every
instrumentation site is a single ``is not None`` test, so the off path does
no timing, no snapshotting and no allocation.
"""

from __future__ import annotations

import math
import time
from statistics import mean

from repro.index.stats import FIELDS as INDEX_FIELDS
from repro.index.stats import IndexStats

#: Phase keys, in pipeline order (see ``DISC.advance``).
PHASES = ("collect", "split_checks", "merge_checks", "maintenance")

#: Algorithm counter names carried by every trace record.
COUNTERS = (
    "num_inserted",
    "num_deleted",
    "collect_touched",
    "ex_cores",
    "neo_cores",
    "retro_classes",
    "nascent_classes",
    "connectivity_checks",
    "theorem1_skips",
    "msbfs_expansions",
    "msbfs_queue_merges",
    "msbfs_early_exits",
)


class StrideTrace:
    """Everything observed during one window advance.

    Mutable by design: the COLLECT/CLUSTER/MS-BFS code increments the
    counters in place while the stride runs; :class:`Tracer` seals the record
    by emitting it to the sinks.
    """

    __slots__ = (
        "stride",
        "elapsed_s",
        "phases",
        "index",
        "store",
        "wal",
        "journal",
        "events",
        *COUNTERS,
    )

    def __init__(self, stride: int) -> None:
        self.stride = stride
        self.elapsed_s = 0.0
        self.phases: dict[str, float] = dict.fromkeys(PHASES, 0.0)
        self.index: IndexStats | None = None  # delta over the stride
        # PointStore occupancy gauges at end of stride (columnar layout only;
        # the object layout leaves this None and the key off the record).
        self.store: dict | None = None
        # Write-ahead-log counters at end of stride (WAL-enabled served
        # sessions only; batch runs leave this None and the key off).
        self.wal: dict | None = None
        # Evolution-journal (CDC) counters, same convention as ``wal``.
        self.journal: dict | None = None
        self.events: dict[str, int] = {}
        for name in COUNTERS:
            setattr(self, name, 0)

    def as_dict(self) -> dict:
        """JSON-friendly form — the JSONL trace schema (see ``schema.py``)."""
        index = self.index if self.index is not None else IndexStats()
        record = {
            "stride": self.stride,
            "elapsed_s": self.elapsed_s,
            "phases": dict(self.phases),
            "counters": {name: getattr(self, name) for name in COUNTERS},
            "index": index.as_dict(),
            "events": dict(self.events),
        }
        if self.store is not None:
            record["store"] = dict(self.store)
        if self.wal is not None:
            record["wal"] = dict(self.wal)
        if self.journal is not None:
            record["journal"] = dict(self.journal)
        return record

    def __repr__(self) -> str:
        return (
            f"StrideTrace(stride={self.stride}, "
            f"elapsed_s={self.elapsed_s:.6f}, "
            f"searches={0 if self.index is None else self.index.range_searches})"
        )


def percentile(values, q: float) -> float:
    """Linearly interpolated percentile (q in [0, 100]) of a non-empty
    sequence — numpy's default method.

    Nearest-rank made every p95 on fewer than 20 samples *the maximum*,
    so a single outlier stride dominated the loadgen/trace latency
    summaries of short runs. Interpolation degrades gracefully: p95 of
    two samples is 0.95 of the way between them, not the larger one.
    """
    ordered = sorted(values)
    h = (len(ordered) - 1) * q / 100.0
    lo = math.floor(h)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (h - lo)


class TraceAggregate:
    """Running totals over every emitted stride trace."""

    def __init__(self) -> None:
        self.strides = 0
        self.elapsed: list[float] = []
        self.phases: dict[str, float] = dict.fromkeys(PHASES, 0.0)
        self.counters: dict[str, int] = dict.fromkeys(COUNTERS, 0)
        self.index = IndexStats()
        self.store: dict | None = None  # latest PointStore gauges seen
        self.wal: dict | None = None  # latest WAL counters seen (cumulative)
        self.journal: dict | None = None  # latest CDC-journal counters seen
        self.events: dict[str, int] = {}

    def add(self, trace: StrideTrace) -> None:
        self.strides += 1
        self.elapsed.append(trace.elapsed_s)
        if trace.store is not None:
            self.store = dict(trace.store)
        if trace.wal is not None:
            self.wal = dict(trace.wal)
        if trace.journal is not None:
            self.journal = dict(trace.journal)
        for name in PHASES:
            self.phases[name] += trace.phases[name]
        for name in COUNTERS:
            self.counters[name] += getattr(trace, name)
        if trace.index is not None:
            for name in INDEX_FIELDS:
                setattr(
                    self.index, name, getattr(self.index, name) + getattr(trace.index, name)
                )
        for kind, count in trace.events.items():
            self.events[kind] = self.events.get(kind, 0) + count

    def latency_summary(self) -> dict[str, float]:
        """Mean / p50 / p95 stride latency in seconds (zeros when empty)."""
        if not self.elapsed:
            return {"mean_stride_s": 0.0, "p50_stride_s": 0.0, "p95_stride_s": 0.0}
        return {
            "mean_stride_s": mean(self.elapsed),
            "p50_stride_s": percentile(self.elapsed, 50),
            "p95_stride_s": percentile(self.elapsed, 95),
        }

    def as_dict(self) -> dict:
        out = {
            "strides": self.strides,
            **self.latency_summary(),
            "phases": dict(self.phases),
            "counters": dict(self.counters),
            "index": self.index.as_dict(),
            "events": dict(self.events),
        }
        if self.store is not None:
            out["store"] = dict(self.store)
        if self.wal is not None:
            out["wal"] = dict(self.wal)
        if self.journal is not None:
            out["journal"] = dict(self.journal)
        return out

    def report(self) -> str:
        """Human-readable totals, one line per concern (operator format)."""
        if not self.strides:
            return "trace: no strides recorded"
        latency = self.latency_summary()
        lines = [
            f"trace: {self.strides} strides, "
            f"mean {latency['mean_stride_s'] * 1000:.2f} ms, "
            f"p50 {latency['p50_stride_s'] * 1000:.2f} ms, "
            f"p95 {latency['p95_stride_s'] * 1000:.2f} ms"
        ]
        total_phase = sum(self.phases.values())
        if total_phase > 0:
            share = ", ".join(
                f"{name.replace('_', ' ')} {self.phases[name] / total_phase:.0%}"
                for name in PHASES
            )
            lines.append(f"phases: {share}")
        c = self.counters
        lines.append(
            f"cores: {c['ex_cores']} ex, {c['neo_cores']} neo; "
            f"classes: {c['retro_classes']} retro, {c['nascent_classes']} nascent; "
            f"theorem-1 skipped {c['theorem1_skips']} checks"
        )
        lines.append(
            f"ms-bfs: {c['connectivity_checks']} checks, "
            f"{c['msbfs_expansions']} expansions, "
            f"{c['msbfs_queue_merges']} queue merges, "
            f"{c['msbfs_early_exits']} early exits"
        )
        idx = self.index
        lines.append(
            f"index: {idx.range_searches} range searches "
            f"({idx.range_searches / self.strides:.1f}/stride), "
            f"{idx.nodes_accessed} nodes, {idx.entries_scanned} entries, "
            f"{idx.epoch_prunes} epoch prunes"
        )
        if self.store is not None:
            s = self.store
            lines.append(
                f"store: {s['slots']}/{s['capacity']} slots "
                f"({s['occupancy']:.0%} occupied), {s['slabs']} slabs, "
                f"{s['recycled']} recycled, high water {s['high_water']}"
            )
        if self.wal is not None:
            w = self.wal
            lines.append(
                f"wal: {w['appends']} appends, {w['fsyncs']} fsyncs, "
                f"{w['bytes']} bytes, {w['replayed']} replayed, "
                f"{w['truncated_tail']} torn tails cut, "
                f"{w['tenant_restarts']} restarts"
            )
        if self.journal is not None:
            j = self.journal
            lines.append(
                f"journal: {j['appends']} records, {j['fsyncs']} fsyncs, "
                f"{j['bytes']} bytes, {j['reads']} reads, "
                f"{j['truncated_tail']} torn tails cut, "
                f"{j['compacted_segments']} segments compacted"
            )
        if self.events:
            lines.append(
                "events: "
                + ", ".join(f"{k}={v}" for k, v in sorted(self.events.items()))
            )
        return "\n".join(lines)


class Tracer:
    """Owns the stride numbering, the aggregate, and the configured sinks.

    Args:
        *sinks: objects with ``emit(trace)`` (and optionally ``close()``) —
            see :mod:`repro.observability.sinks`. Zero sinks is fine: the
            aggregate alone already powers ``report()`` and the bench
            harness.
    """

    def __init__(self, *sinks) -> None:
        self.sinks = list(sinks)
        self.aggregate = TraceAggregate()
        # When a served session attaches its WriteAheadLog here, every
        # emitted stride record is stamped with the log's counters.
        self.wal_source = None
        # Same for its EvolutionJournal (CDC) counters.
        self.journal_source = None
        self._next_stride = 0

    def begin(self) -> StrideTrace:
        """Open the trace record for the stride about to run."""
        trace = StrideTrace(self._next_stride)
        self._next_stride += 1
        return trace

    def emit(self, trace: StrideTrace) -> None:
        """Seal a stride record: fold into the aggregate, fan out to sinks."""
        if self.wal_source is not None:
            trace.wal = self.wal_source.stats.as_dict()
        if self.journal_source is not None:
            trace.journal = self.journal_source.stats.as_dict()
        self.aggregate.add(trace)
        for sink in self.sinks:
            sink.emit(trace)

    def close(self) -> None:
        """Flush and close every sink that supports it."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def report(self, runtime_stats=None) -> str:
        """Operator summary; merges the runtime report when stats are given.

        Args:
            runtime_stats: optional
                :class:`~repro.runtime.stats.RuntimeStats`; when present its
                :func:`~repro.monitoring.runtime_report` rendering is
                prepended, giving one combined end-of-run block.
        """
        parts = []
        if runtime_stats is not None:
            from repro.monitoring import runtime_report

            parts.append(runtime_report(runtime_stats))
        parts.append(self.aggregate.report())
        return "\n".join(parts)


perf_counter = time.perf_counter
