"""Schema for JSONL trace records, with a dependency-free validator.

``TRACE_SCHEMA`` is an ordinary JSON-Schema document so external tooling can
validate trace files too, but the validator here is hand-rolled — the
container deliberately ships no ``jsonschema`` — and checks exactly what the
schema states: required keys, types, non-negativity, and the closed key sets
for ``phases`` / ``counters`` / ``index``.
"""

from __future__ import annotations

import json
import os

from repro.core.store import COUNTER_FIELDS as STORE_FIELDS
from repro.index.stats import FIELDS as INDEX_FIELDS
from repro.observability.trace import COUNTERS, PHASES
from repro.query.journal import JOURNAL_FIELDS
from repro.runtime.wal import WAL_FIELDS

TRACE_SCHEMA = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "DISC stride trace record",
    "type": "object",
    "required": ["stride", "elapsed_s", "phases", "counters", "index", "events"],
    "additionalProperties": False,
    "properties": {
        "stride": {"type": "integer", "minimum": 0},
        "elapsed_s": {"type": "number", "minimum": 0},
        "phases": {
            "type": "object",
            "required": list(PHASES),
            "additionalProperties": False,
            "properties": {
                name: {"type": "number", "minimum": 0} for name in PHASES
            },
        },
        "counters": {
            "type": "object",
            "required": list(COUNTERS),
            "additionalProperties": False,
            "properties": {
                name: {"type": "integer", "minimum": 0} for name in COUNTERS
            },
        },
        "index": {
            "type": "object",
            "required": list(INDEX_FIELDS),
            "additionalProperties": False,
            "properties": {
                name: {"type": "integer", "minimum": 0} for name in INDEX_FIELDS
            },
        },
        "events": {
            "type": "object",
            "additionalProperties": {"type": "integer", "minimum": 0},
        },
        # Optional: PointStore occupancy gauges. Only columnar-layout runs
        # carry it; ``occupancy`` is a ratio, the rest are integers.
        "store": {
            "type": "object",
            "required": list(STORE_FIELDS),
            "additionalProperties": False,
            "properties": {
                name: (
                    {"type": "number", "minimum": 0, "maximum": 1}
                    if name == "occupancy"
                    else {"type": "integer", "minimum": 0}
                )
                for name in STORE_FIELDS
            },
        },
        # Optional: write-ahead-log counters (cumulative). Only WAL-enabled
        # served sessions carry it; batch runs leave the key off.
        "wal": {
            "type": "object",
            "required": list(WAL_FIELDS),
            "additionalProperties": False,
            "properties": {
                name: {"type": "integer", "minimum": 0} for name in WAL_FIELDS
            },
        },
        # Optional: evolution-journal (CDC) counters, same convention as
        # ``wal`` — only journal-enabled served sessions carry it.
        "journal": {
            "type": "object",
            "required": list(JOURNAL_FIELDS),
            "additionalProperties": False,
            "properties": {
                name: {"type": "integer", "minimum": 0}
                for name in JOURNAL_FIELDS
            },
        },
    },
}


class TraceSchemaError(ValueError):
    """A trace record does not match :data:`TRACE_SCHEMA`."""


def _fail(where: str, message: str) -> None:
    raise TraceSchemaError(f"{where}: {message}")


def _check_closed_ints(record, key: str, names, where: str) -> None:
    block = record.get(key)
    if not isinstance(block, dict):
        _fail(where, f"'{key}' must be an object")
    missing = set(names) - set(block)
    if missing:
        _fail(where, f"'{key}' missing {sorted(missing)}")
    extra = set(block) - set(names)
    if extra:
        _fail(where, f"'{key}' has unknown keys {sorted(extra)}")
    for name, value in block.items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            _fail(where, f"'{key}.{name}' must be a non-negative integer")


def validate_trace_record(record: dict, where: str = "record") -> None:
    """Raise :class:`TraceSchemaError` unless ``record`` matches the schema."""
    if not isinstance(record, dict):
        _fail(where, "must be an object")
    required = TRACE_SCHEMA["required"]
    missing = set(required) - set(record)
    if missing:
        _fail(where, f"missing keys {sorted(missing)}")
    extra = set(record) - set(TRACE_SCHEMA["properties"])
    if extra:
        _fail(where, f"unknown keys {sorted(extra)}")
    stride = record["stride"]
    if not isinstance(stride, int) or isinstance(stride, bool) or stride < 0:
        _fail(where, "'stride' must be a non-negative integer")
    elapsed = record["elapsed_s"]
    if not isinstance(elapsed, (int, float)) or isinstance(elapsed, bool) or elapsed < 0:
        _fail(where, "'elapsed_s' must be a non-negative number")
    phases = record["phases"]
    if not isinstance(phases, dict):
        _fail(where, "'phases' must be an object")
    missing = set(PHASES) - set(phases)
    if missing:
        _fail(where, f"'phases' missing {sorted(missing)}")
    extra = set(phases) - set(PHASES)
    if extra:
        _fail(where, f"'phases' has unknown keys {sorted(extra)}")
    for name, value in phases.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
            _fail(where, f"'phases.{name}' must be a non-negative number")
    _check_closed_ints(record, "counters", COUNTERS, where)
    _check_closed_ints(record, "index", INDEX_FIELDS, where)
    if "store" in record:
        store = record["store"]
        if not isinstance(store, dict):
            _fail(where, "'store' must be an object")
        missing = set(STORE_FIELDS) - set(store)
        if missing:
            _fail(where, f"'store' missing {sorted(missing)}")
        extra = set(store) - set(STORE_FIELDS)
        if extra:
            _fail(where, f"'store' has unknown keys {sorted(extra)}")
        for name, value in store.items():
            if name == "occupancy":
                ok = (
                    isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and 0 <= value <= 1
                )
                if not ok:
                    _fail(where, "'store.occupancy' must be a ratio in [0, 1]")
            elif not isinstance(value, int) or isinstance(value, bool) or value < 0:
                _fail(where, f"'store.{name}' must be a non-negative integer")
    if "wal" in record:
        _check_closed_ints(record, "wal", WAL_FIELDS, where)
    if "journal" in record:
        _check_closed_ints(record, "journal", JOURNAL_FIELDS, where)
    events = record["events"]
    if not isinstance(events, dict):
        _fail(where, "'events' must be an object")
    for kind, count in events.items():
        if not isinstance(kind, str):
            _fail(where, "'events' keys must be strings")
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            _fail(where, f"'events.{kind}' must be a non-negative integer")


def validate_trace_file(path: str | os.PathLike) -> int:
    """Validate a JSONL trace file; returns the number of records.

    Raises :class:`TraceSchemaError` on the first invalid line (including
    lines that are not valid JSON) and requires stride numbers to be strictly
    increasing — a torn or interleaved file fails loudly.
    """
    count = 0
    last_stride = -1
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(f"{where}: not valid JSON ({exc})") from exc
            validate_trace_record(record, where=where)
            if record["stride"] <= last_stride:
                _fail(where, f"stride {record['stride']} not increasing")
            last_stride = record["stride"]
            count += 1
    return count
