"""Stride-level observability for the DISC reproduction.

Opt-in instrumentation of the streaming pipeline: phase timings, algorithm
counters and index-statistics deltas per window advance, fanned out to JSONL
traces, Prometheus textfiles, or in-memory buffers. Off by default and free
when off — see :mod:`repro.observability.trace`.
"""

from repro.observability.schema import (
    TRACE_SCHEMA,
    TraceSchemaError,
    validate_trace_file,
    validate_trace_record,
)
from repro.observability.sinks import (
    InMemorySink,
    JsonlTraceWriter,
    PrometheusTextfileExporter,
)
from repro.observability.trace import (
    COUNTERS,
    PHASES,
    StrideTrace,
    TraceAggregate,
    Tracer,
    percentile,
)

__all__ = [
    "COUNTERS",
    "PHASES",
    "TRACE_SCHEMA",
    "InMemorySink",
    "JsonlTraceWriter",
    "PrometheusTextfileExporter",
    "StrideTrace",
    "TraceAggregate",
    "TraceSchemaError",
    "Tracer",
    "percentile",
    "validate_trace_file",
    "validate_trace_record",
]
