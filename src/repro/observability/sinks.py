"""Trace sinks: JSONL stream, Prometheus textfile, in-memory buffer.

A sink is anything with ``emit(trace: StrideTrace)``; ``close()`` is
optional. The :class:`~repro.observability.trace.Tracer` fans every sealed
stride record out to all of its sinks and closes them on ``close()``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro._version import __version__
from repro.observability.trace import COUNTERS, PHASES, StrideTrace


class InMemorySink:
    """Keeps every trace record; used by tests and the bench harness."""

    def __init__(self) -> None:
        self.records: list[StrideTrace] = []

    def emit(self, trace: StrideTrace) -> None:
        self.records.append(trace)


class JsonlTraceWriter:
    """Appends one JSON object per stride to a file.

    The line layout is the trace schema (``repro.observability.schema``);
    each line is flushed immediately so a crashed run still leaves every
    completed stride on disk.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")

    def emit(self, trace: StrideTrace) -> None:
        json.dump(trace.as_dict(), self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class PrometheusTextfileExporter:
    """Maintains a Prometheus textfile with cumulative run totals.

    Written in the text exposition format consumed by node_exporter's
    textfile collector. The file is rewritten atomically (tmp + rename) on
    every emit, so a scraper never reads a torn file; ``every`` throttles the
    rewrite to one per N strides (the final totals land on ``close()``).

    ``labels`` stamps extra label pairs onto *every* series (the sharded
    serving layer passes ``{"shard": k}`` so one Prometheus job can scrape
    all workers without relabeling). With no extra labels the output is
    byte-identical to what this exporter has always produced.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        every: int = 1,
        *,
        labels: dict | None = None,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.every = every
        self.labels = dict(labels or {})
        self._extra = ",".join(
            f'{key}="{value}"' for key, value in sorted(self.labels.items())
        )
        self._emitted = 0
        self._aggregate = None

    def _line(self, name: str, value, inner: str = "") -> str:
        """One exposition line, with the extra labels merged in."""
        body = ",".join(part for part in (inner, self._extra) if part)
        return f"{name}{{{body}}} {value}" if body else f"{name} {value}"

    def emit(self, trace: StrideTrace) -> None:
        from repro.observability.trace import TraceAggregate

        if self._aggregate is None:
            self._aggregate = TraceAggregate()
        self._aggregate.add(trace)
        self._emitted += 1
        if self._emitted % self.every == 0:
            self._write()

    def close(self) -> None:
        if self._aggregate is not None:
            self._write()

    def render(self) -> str:
        """The current exposition text (also what lands in the file)."""
        agg = self._aggregate
        lines = [
            "# HELP disc_build_info Build metadata of the emitting process.",
            "# TYPE disc_build_info gauge",
            self._line("disc_build_info", 1, f'version="{__version__}"'),
            "# HELP disc_strides_total Window advances processed.",
            "# TYPE disc_strides_total counter",
            self._line("disc_strides_total", 0 if agg is None else agg.strides),
        ]
        if agg is None:
            return "\n".join(lines) + "\n"
        lines += [
            "# HELP disc_stride_seconds_total Wall time spent inside advance().",
            "# TYPE disc_stride_seconds_total counter",
            self._line("disc_stride_seconds_total", f"{sum(agg.elapsed):.9f}"),
            "# HELP disc_phase_seconds_total Wall time per pipeline phase.",
            "# TYPE disc_phase_seconds_total counter",
        ]
        for name in PHASES:
            lines.append(
                self._line(
                    "disc_phase_seconds_total",
                    f"{agg.phases[name]:.9f}",
                    f'phase="{name}"',
                )
            )
        lines += [
            "# HELP disc_counter_total Algorithm counters (see trace schema).",
            "# TYPE disc_counter_total counter",
        ]
        for name in COUNTERS:
            lines.append(
                self._line(
                    "disc_counter_total", agg.counters[name], f'counter="{name}"'
                )
            )
        lines += [
            "# HELP disc_index_total Spatial-index statistics.",
            "# TYPE disc_index_total counter",
        ]
        for name, value in agg.index.as_dict().items():
            lines.append(self._line("disc_index_total", value, f'stat="{name}"'))
        if agg.store is not None:
            lines += [
                "# HELP disc_store_gauge PointStore arena occupancy gauges.",
                "# TYPE disc_store_gauge gauge",
            ]
            for name, value in agg.store.items():
                rendered = f"{value:.6f}" if name == "occupancy" else str(value)
                lines.append(
                    self._line("disc_store_gauge", rendered, f'stat="{name}"')
                )
        if agg.wal is not None:
            lines += [
                "# HELP disc_wal_total Write-ahead-log counters (cumulative).",
                "# TYPE disc_wal_total counter",
            ]
            for name, value in agg.wal.items():
                lines.append(self._line("disc_wal_total", value, f'stat="{name}"'))
        if agg.journal is not None:
            lines += [
                "# HELP disc_journal_total Evolution-journal (CDC) counters "
                "(cumulative).",
                "# TYPE disc_journal_total counter",
            ]
            for name, value in agg.journal.items():
                lines.append(
                    self._line("disc_journal_total", value, f'stat="{name}"')
                )
        if agg.events:
            lines += [
                "# HELP disc_events_total Cluster evolution events.",
                "# TYPE disc_events_total counter",
            ]
            for kind in sorted(agg.events):
                lines.append(
                    self._line("disc_events_total", agg.events[kind], f'kind="{kind}"')
                )
        return "\n".join(lines) + "\n"

    def _write(self) -> None:
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(self.render(), encoding="utf-8")
        os.replace(tmp, self.path)
