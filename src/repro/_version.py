"""Single-source version resolution.

The authoritative version lives in ``pyproject.toml`` (``[project] version``).
When the package is installed, importlib metadata serves it; when running
from a source checkout (``PYTHONPATH=src``), the adjacent ``pyproject.toml``
is parsed directly so the two paths can never disagree.
"""

from __future__ import annotations

import re
from pathlib import Path

_FALLBACK = "0.0.0+unknown"


def _from_metadata() -> str | None:
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - py3.10+ always has it
        return None
    try:
        return version("repro")
    except PackageNotFoundError:
        return None


def _from_pyproject() -> str | None:
    pyproject = Path(__file__).resolve().parent.parent.parent / "pyproject.toml"
    try:
        text = pyproject.read_text(encoding="utf-8")
    except OSError:
        return None
    match = re.search(r'^version\s*=\s*"([^"]+)"', text, re.MULTILINE)
    return match.group(1) if match else None


def resolve_version() -> str:
    """The package version, from installed metadata or the source tree."""
    return _from_metadata() or _from_pyproject() or _FALLBACK


__version__ = resolve_version()
